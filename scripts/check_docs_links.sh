#!/usr/bin/env bash
# Docs link-check + markdown lint-lite.
#
# Over every tracked *.md (repo root, docs/, .github/):
#   1. every relative markdown link [text](path[#anchor]) must point at an
#      existing file or directory, resolved against the linking file;
#   2. code fences (```) must be balanced per file.
# External links (http/https/mailto) and pure #anchors are not checked —
# CI must not depend on the network.
#
# Usage: scripts/check_docs_links.sh   (from anywhere inside the repo)

set -u
cd "$(dirname "$0")/.."

fail=0

# PAPERS.md and SNIPPETS.md are generated reference dumps (arxiv extraction,
# exemplar code) whose links point outside the repo by design.
docs=$(find . -maxdepth 3 \( -name build -o -name .git \) -prune -o \
       -name '*.md' ! -name PAPERS.md ! -name SNIPPETS.md -print | sort)

for doc in $docs; do
  dir=$(dirname "$doc")

  # --- 1. relative links exist ---
  # Drop fenced code blocks (C++ lambdas like [](const T&) would read as
  # links), then pull every ](target) out, one per line.
  links=$(awk '/^[[:space:]]*```/ {fence = !fence; next} !fence' "$doc" |
          grep -o '](\([^)]*\))' | sed 's/^](//; s/)$//')
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target=${link%%#*}              # drop any #anchor
    [ -n "$target" ] || continue
    if [ ! -e "$dir/$target" ]; then
      echo "BROKEN LINK: $doc -> $link"
      fail=1
    fi
  done

  # --- 2. balanced code fences ---
  fences=$(grep -c '^[[:space:]]*```' "$doc")
  if [ $((fences % 2)) -ne 0 ]; then
    echo "UNBALANCED CODE FENCES: $doc ($fences \`\`\` lines)"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "docs check FAILED"
  exit 1
fi
echo "docs check OK ($(echo "$docs" | wc -l) markdown files)"
