#!/usr/bin/env bash
# Validates Prometheus text exposition format 0.0.4 (what `GET /metrics`
# and `evocat_evaluate --metrics-dump` emit):
#
#   1. every non-comment line parses as `name{labels} value` or `name value`;
#   2. every sample's family has exactly one `# HELP` and one `# TYPE` line,
#      with HELP before TYPE before the first sample;
#   3. TYPE is counter|gauge|histogram|summary|untyped;
#   4. no series (name + label set) appears twice;
#   5. histogram families: every series has a `+Inf` bucket, its `_count`
#      equals the `+Inf` bucket value, `_sum` is present, and cumulative
#      bucket counts never decrease as `le` grows.
#
# Label VALUES are free text (route="/v1/jobs/{id}" is legal), so sample
# lines are split at the LAST close-brace, not the first.
#
# Usage: scripts/check_prom_format.sh [metrics.txt]   (reads stdin if no file)
# Exits non-zero if any violation was found, listing every offender.

set -u

input=${1:-/dev/stdin}
[ -r "$input" ] || { echo "cannot read $input"; exit 2; }

awk '
function fail(msg) { print "FAIL: " msg; failures++ }

# Histogram samples export under <family>_bucket/_sum/_count; resolve the
# declared family so HELP/TYPE checks look at the right name.
function family_of(name,   base) {
  base = name
  if (sub(/_bucket$/, "", base) && (base in type) && type[base] == "histogram")
    return base
  base = name
  if (sub(/_sum$/, "", base) && (base in type) && type[base] == "histogram")
    return base
  base = name
  if (sub(/_count$/, "", base) && (base in type) && type[base] == "histogram")
    return base
  return name
}

/^# HELP / {
  fam = $3
  if (fam in help) fail("duplicate HELP for family " fam " (line " NR ")")
  help[fam] = NR
  next
}
/^# TYPE / {
  fam = $3; t = $4
  if (fam in type) fail("duplicate TYPE for family " fam " (line " NR ")")
  if (t !~ /^(counter|gauge|histogram|summary|untyped)$/)
    fail("bad TYPE \"" t "\" for family " fam " (line " NR ")")
  if (!(fam in help)) fail("TYPE before HELP for family " fam " (line " NR ")")
  type[fam] = t
  next
}
/^#/ { next }        # other comments are legal
/^[[:space:]]*$/ { next }

{
  # --- sample line: name[{labels}] value; labels may contain braces inside
  # quoted values, so the series/value split is at the LAST "} ".
  if (index($0, "{") > 0) {
    if (!match($0, /^[a-zA-Z_:][a-zA-Z0-9_:]*\{.*\} [^ ]+$/)) {
      fail("unparseable sample (line " NR "): " $0)
      next
    }
    pos = 0
    for (i = length($0); i > 0; --i)
      if (substr($0, i, 1) == "}") { pos = i; break }
    series = substr($0, 1, pos)
    value = substr($0, pos + 2)
  } else {
    if (NF != 2 || $1 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*$/) {
      fail("unparseable sample (line " NR "): " $0)
      next
    }
    series = $1
    value = $2
  }
  if (value !~ /^[+-]?([0-9.]+([eE][+-]?[0-9]+)?|Inf|NaN)$/) {
    fail("bad sample value \"" value "\" (line " NR ")")
    next
  }
  name = series
  sub(/\{.*/, "", name)

  if (series in seen)
    fail("duplicate series " series " (lines " seen[series] " and " NR ")")
  seen[series] = NR

  fam = family_of(name)
  if (!(fam in type)) fail("sample " name " has no TYPE (line " NR ")")
  if (!(fam in help)) fail("sample " name " has no HELP (line " NR ")")

  # --- histogram bookkeeping, keyed by family + labels-without-le ---
  if ((fam in type) && type[fam] == "histogram") {
    lbl = series
    sub(/^[^{]*/, "", lbl)            # the {…} part, or ""
    if (name == fam "_bucket") {
      le = lbl
      if (!sub(/.*le="/, "", le)) {
        fail("histogram bucket without le label (line " NR "): " series)
        next
      }
      sub(/".*/, "", le)
      gsub(/le="[^"]*",?/, "", lbl)   # series identity without le
      sub(/,}$/, "}", lbl)
      # A le-only label set collapses to "" so the key matches the braceless
      # _sum/_count samples of an unlabeled histogram.
      if (lbl == "{}") lbl = ""
      key = fam "|" lbl
      if (le == "+Inf") inf_bucket[key] = value + 0
      if ((key in last_bucket) && value + 0 < last_bucket[key])
        fail("non-cumulative buckets in " series " (line " NR ")")
      last_bucket[key] = value + 0
      bucket_seen[key] = 1
    } else if (name == fam "_count") {
      count_val[fam "|" lbl] = value + 0
    } else if (name == fam "_sum") {
      sum_seen[fam "|" lbl] = 1
    }
  }
}

END {
  for (key in bucket_seen) {
    if (!(key in inf_bucket))
      fail("histogram series " key " missing +Inf bucket")
    else if (!(key in count_val))
      fail("histogram series " key " missing _count")
    else if (count_val[key] != inf_bucket[key])
      fail("histogram " key ": _count " count_val[key] " != +Inf bucket " inf_bucket[key])
    if (!(key in sum_seen)) fail("histogram series " key " missing _sum")
  }
  if (failures) { print failures " violation(s)"; exit 1 }
  print "OK: " length(seen) " series, " length(type) " families"
}
' "$input"
