#!/usr/bin/env python3
"""Merge BENCH_*.json bench artifacts into one BENCH_summary.json.

Walks every BENCH_*.json in a directory (the bench binaries each write one),
collects the speedup and max_abs_diff fields of every scenario under a
dotted "file:path" key, and writes a single flat summary. With --baseline
pointing at a previous run's BENCH_summary.json it additionally reports the
per-scenario delta (after / before), so a perf regression shows up as a
ratio < 1 in one place instead of being buried across files.

Stdlib only — runs on a bare CI runner.

Usage: bench_summary.py [--dir DIR] [--out FILE] [--baseline FILE]
"""

import argparse
import glob
import json
import os
import sys

# Scenario fields worth tracking across runs: anything named like a speedup,
# plus the exactness fields the gates pin at zero.
TRACKED_SUFFIXES = ("speedup", "max_abs_diff")


def tracked_fields(node, path=""):
    """Yields (dotted_path, value) for every tracked numeric leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            child = f"{path}.{key}" if path else key
            if isinstance(value, (dict, list)):
                yield from tracked_fields(value, child)
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                leaf = key.rsplit(".", 1)[-1]
                if any(
                    leaf == s or leaf.endswith("_" + s) or leaf.startswith(s + "_")
                    for s in TRACKED_SUFFIXES
                ):
                    yield child, value
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from tracked_fields(value, f"{path}[{i}]")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", default=".", help="directory holding BENCH_*.json")
    parser.add_argument("--out", default="BENCH_summary.json")
    parser.add_argument(
        "--baseline",
        default=None,
        help="previous BENCH_summary.json to compute per-scenario deltas against",
    )
    args = parser.parse_args()

    out_name = os.path.basename(args.out)
    sources = {}
    scenarios = {}
    for bench_path in sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json"))):
        name = os.path.basename(bench_path)
        if name == out_name:
            continue
        try:
            with open(bench_path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"bench_summary: skipping {name}: {error}", file=sys.stderr)
            continue
        fields = dict(tracked_fields(data))
        sources[name] = fields
        for path, value in fields.items():
            scenarios[f"{name}:{path}"] = value

    if not sources:
        print(f"bench_summary: no BENCH_*.json found in {args.dir}", file=sys.stderr)
        return 1

    summary = {"sources": sources, "scenarios": scenarios}

    if args.baseline:
        with open(args.baseline, encoding="utf-8") as handle:
            before = json.load(handle).get("scenarios", {})
        deltas = {}
        for key, after in scenarios.items():
            if key in before and "speedup" in key:
                prev = before[key]
                deltas[key] = {
                    "before": prev,
                    "after": after,
                    "ratio": after / prev if prev else None,
                }
        summary["deltas_vs_baseline"] = deltas

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"bench_summary: wrote {args.out} ({len(scenarios)} tracked fields "
          f"from {len(sources)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
