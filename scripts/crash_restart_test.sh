#!/usr/bin/env bash
# Crash/restart smoke test for evocatd's WAL, driven entirely over HTTP with
# curl (the same walkthrough docs/server.md documents):
#
#   1. reference run: an uninterrupted daemon executes the probe job;
#   2. crash run: a WAL-backed daemon takes a forever-job plus the probe job
#      and is SIGKILLed with both unfinished;
#   3. recovery run: a new daemon on the same WAL re-queues both under their
#      original ids; the forever-job is canceled, the probe job completes and
#      its scores must be byte-identical to the reference (specs embed their
#      seeds, so a crash costs wall-clock, never changes the answer);
#   4. a garbage tail is appended to the WAL and the daemon must still boot,
#      quarantining the damage.
#
# Usage: scripts/crash_restart_test.sh [path/to/evocatd]   (default: build/evocatd)

set -eu
cd "$(dirname "$0")/.."

EVOCATD=${1:-build/evocatd}
[ -x "$EVOCATD" ] || { echo "evocatd binary not found at $EVOCATD (build first)"; exit 2; }
command -v curl >/dev/null || { echo "curl is required"; exit 2; }
command -v python3 >/dev/null || { echo "python3 is required"; exit 2; }

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

wal="$workdir/jobs.wal"
probe_spec="$workdir/probe.json"
cat > "$probe_spec" <<'EOF'
{
  "name": "crash-probe",
  "source": {
    "kind": "synthetic",
    "profile": {
      "name": "tiny",
      "num_records": 60,
      "attributes": [
        {"name": "a0", "kind": "ordinal", "cardinality": 7},
        {"name": "a1", "kind": "nominal", "cardinality": 5},
        {"name": "a2", "kind": "nominal", "cardinality": 9}
      ],
      "protected_attributes": ["a0", "a1", "a2"]
    }
  },
  "methods": [
    {"name": "microaggregation", "grid": {"k": [3, 6]}},
    {"name": "pram", "grid": {"retain": [0.7, 0.4]}}
  ],
  "measures": {"prl_em_iterations": 10},
  "ga": {"generations": 12},
  "seeds": {"master": 404}
}
EOF
# The blocker pins the single worker forever, guaranteeing both jobs are
# still unfinished when the SIGKILL lands.
blocker_spec="$workdir/blocker.json"
python3 - "$probe_spec" "$blocker_spec" <<'EOF'
import json, sys
spec = json.load(open(sys.argv[1]))
spec["name"] = "blocker"
spec["ga"]["generations"] = 50000000
json.dump(spec, open(sys.argv[2], "w"))
EOF

start_daemon() {  # args: extra evocatd flags; sets $port and $daemon_pid
  local log="$workdir/evocatd.$RANDOM.log"
  "$EVOCATD" --port=0 "$@" > "$log" 2>&1 &
  daemon_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's#.*listening on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' "$log")
    [ -n "$port" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo "daemon died on start:"; cat "$log"; exit 1; }
    sleep 0.1
  done
  [ -n "$port" ] || { echo "daemon never reported its port:"; cat "$log"; exit 1; }
  for _ in $(seq 1 100); do
    curl -sf "localhost:$port/healthz" > /dev/null && return 0
    sleep 0.1
  done
  echo "daemon never became healthy"; exit 1
}

stop_daemon() {
  kill "$daemon_pid" 2>/dev/null || true
  wait "$daemon_pid" 2>/dev/null || true
  daemon_pid=""
}

jget() {  # jget <json-file> <python-expression over d>
  python3 -c "import json,sys; d=json.load(open(sys.argv[1])); print($2)" "$1"
}

poll_until() {  # poll_until <port> <job-id> <state>
  for _ in $(seq 1 600); do
    state=$(curl -s "localhost:$1/v1/jobs/$2" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
    [ "$state" = "$3" ] && return 0
    case "$state" in done|failed|canceled) echo "job $2 ended as $state, wanted $3"; return 1 ;; esac
    sleep 0.1
  done
  echo "job $2 never reached $3 (last: $state)"; return 1
}

# Scores + winning origin identify the run; timing fields legitimately vary.
fingerprint() {  # fingerprint <result-json-file>
  jget "$1" 'json.dumps({"scores": d["final_scores"], "origin": d["best"]["origin"], "evaluations": d["evaluations"]}, sort_keys=True)'
}

echo "== 1. reference run (no crash) =="
start_daemon --threads=1
curl -s -X POST "localhost:$port/v1/jobs" --data-binary "@$probe_spec" > /dev/null
poll_until "$port" job-000001 done
curl -s "localhost:$port/v1/jobs/job-000001/result?best_csv=0" > "$workdir/reference.json"
reference=$(fingerprint "$workdir/reference.json")
stop_daemon
echo "   reference: $reference"

echo "== 2. crash run: SIGKILL with both jobs unfinished =="
start_daemon --threads=1 --wal="$wal"
curl -s -X POST "localhost:$port/v1/jobs" --data-binary "@$blocker_spec" > "$workdir/submit1.json"
curl -s -X POST "localhost:$port/v1/jobs" --data-binary "@$probe_spec" > "$workdir/submit2.json"
[ "$(jget "$workdir/submit1.json" 'd["id"]')" = "job-000001" ]
[ "$(jget "$workdir/submit2.json" 'd["id"]')" = "job-000002" ]
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
echo "   killed mid-run; WAL: $(wc -c < "$wal") bytes"

echo "== 3. restart on the same WAL: recover, finish, compare =="
start_daemon --threads=1 --wal="$wal"
curl -s "localhost:$port/healthz" > "$workdir/health.json"
recovered=$(jget "$workdir/health.json" 'd["wal"]["recovered_jobs"]')
[ "$recovered" = "2" ] || { echo "expected 2 recovered jobs, got $recovered"; exit 1; }
[ "$(curl -s "localhost:$port/v1/jobs/job-000002" | python3 -c 'import json,sys; print(json.load(sys.stdin)["recovered"])')" = "True" ]
curl -s -X POST "localhost:$port/v1/jobs/job-000001/cancel" > /dev/null
poll_until "$port" job-000002 done
curl -s "localhost:$port/v1/jobs/job-000002/result?best_csv=0" > "$workdir/recovered.json"
recovered_fp=$(fingerprint "$workdir/recovered.json")
stop_daemon
echo "   recovered: $recovered_fp"
if [ "$reference" != "$recovered_fp" ]; then
  echo "FAIL: recovered artifacts differ from the uninterrupted run"
  exit 1
fi

echo "== 4. corrupt WAL tail: boot, quarantine, report =="
printf 'R submit job-000099 - 4096 00000000\n{"name": "torn' >> "$wal"
start_daemon --threads=1 --wal="$wal"
curl -s "localhost:$port/healthz" > "$workdir/health2.json"
quarantined=$(jget "$workdir/health2.json" 'd["wal"]["quarantined_bytes"]')
[ "$quarantined" -gt 0 ] || { echo "expected quarantined bytes, got $quarantined"; exit 1; }
[ -s "$wal.quarantine" ] || { echo "quarantine file missing"; exit 1; }
stop_daemon
echo "   quarantined $quarantined bytes to jobs.wal.quarantine"

echo "crash/restart test OK"
