// Credit-scoring data sharing with a custom threat model.
//
// A bank shares a German-Credit-like file with an external analytics
// partner. Its threat model differs from the default: attribute disclosure
// via rank intervals (ID) is considered harmless for these coarse financial
// buckets — what matters is record re-identification (DBRL, PRL, RSRL). The
// paper's §4 highlights that the GA adapts to any fitness; this example
// shows how: configure the measure set, evolve with an early-stopping
// engine, and watch progress through the generation callback.
//
// Run:  ./build/examples/credit_scoring

#include <cstdio>
#include <iostream>

#include "common/logging.h"
#include "core/engine.h"
#include "datagen/generator.h"
#include "metrics/fitness.h"
#include "protection/population_builder.h"

using namespace evocat;

namespace {

int Fail(const Status& status) {
  std::cerr << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);

  // German-Credit-like data; quasi-identifiers from the paper.
  auto profile = datagen::GermanCreditProfile();
  auto original = datagen::Generate(profile, 404);
  if (!original.ok()) return Fail(original.status());
  auto attrs_result =
      datagen::ProtectedAttributeIndices(profile, original.ValueOrDie());
  if (!attrs_result.ok()) return Fail(attrs_result.status());
  const auto& attrs = attrs_result.ValueOrDie();

  // Custom threat model: drop interval disclosure from DR; keep the three
  // linkage attacks. Balance still enforced via the max score.
  metrics::FitnessEvaluator::Options fitness_options;
  fitness_options.aggregation = metrics::ScoreAggregation::kMax;
  fitness_options.use_id = false;
  fitness_options.rsrl_assumed_p_percent = 10.0;  // sharper assumed attack
  auto evaluator = metrics::FitnessEvaluator::Create(
      original.ValueOrDie(), attrs, fitness_options);
  if (!evaluator.ok()) return Fail(evaluator.status());

  // Seed with the paper's German/Flare method mix (104 protections).
  auto protections = protection::BuildProtections(
      original.ValueOrDie(), attrs, protection::GermanFlarePopulationSpec(),
      /*seed=*/11);
  if (!protections.ok()) return Fail(protections.status());
  std::vector<core::Individual> seeds;
  for (auto& file : protections.ValueOrDie()) {
    core::Individual individual;
    individual.data = std::move(file.data);
    individual.origin = std::move(file.method_label);
    seeds.push_back(std::move(individual));
  }

  core::GaConfig config;
  config.generations = 3000;
  config.no_improvement_window = 400;  // stop when converged
  config.seed = 31;
  core::EvolutionEngine engine(evaluator.ValueOrDie().get(), config);

  std::printf("evolving (max %d generations, early stop after %d stale)...\n",
              config.generations, config.no_improvement_window);
  int last_logged = 0;
  auto run = engine.Run(std::move(seeds),
                        [&](const core::GenerationRecord& record,
                            const core::Population& population) {
                          if (record.generation - last_logged >= 250) {
                            last_logged = record.generation;
                            std::printf(
                                "  gen %4d: min=%.2f mean=%.2f max=%.2f\n",
                                record.generation, record.min_score,
                                record.mean_score, record.max_score);
                          }
                          (void)population;
                        });
  if (!run.ok()) return Fail(run.status());
  const auto& evolution = run.ValueOrDie();

  const auto& best = evolution.population.best();
  std::printf("\nstopped after %zu generations\n", evolution.history.size());
  std::printf("best release candidate: score=%.2f IL=%.2f DR=%.2f\n",
              best.fitness.score, best.fitness.il, best.fitness.dr);
  std::printf("  linkage risks: DBRL=%.1f%% PRL=%.1f%% RSRL=%.1f%% "
              "(ID excluded by threat model)\n",
              best.fitness.dbrl, best.fitness.prl, best.fitness.rsrl);
  std::printf("  provenance: %s\n", best.origin.c_str());
  return 0;
}
