// Robustness study: can the GA recover protections it was never given?
//
// The paper's §3.3 removes the best 5% / 10% of the initial Solar-Flare
// protections and shows the evolutionary search still reaches nearly the
// same best score — evidence that the GA synthesizes good protections
// rather than merely picking the best seed. This example reproduces that
// study and reports the gaps.
//
// Run:  ./build/examples/robustness_study

#include <cstdio>
#include <iostream>

#include "common/logging.h"
#include "experiments/runner.h"

using namespace evocat;

int main() {
  SetLogLevel(LogLevel::kWarning);

  auto dataset_case = experiments::CaseByName("flare");
  if (!dataset_case.ok()) {
    std::cerr << dataset_case.status().ToString() << "\n";
    return 1;
  }

  std::printf("robustness study: Flare-like dataset, Eq.2 (max) fitness\n\n");
  std::printf("%-22s %12s %12s %12s\n", "population", "initial min",
              "final min", "gap to full");

  double full_min = 0.0;
  for (double fraction : {0.0, 0.05, 0.10}) {
    experiments::ExperimentOptions options;
    options.aggregation = metrics::ScoreAggregation::kMax;
    options.generations = 1200;
    options.remove_best_fraction = fraction;
    auto result = experiments::RunExperiment(dataset_case.ValueOrDie(), options);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    const auto& experiment = result.ValueOrDie();
    if (fraction == 0.0) full_min = experiment.final_scores.min;

    char label[64];
    std::snprintf(label, sizeof(label), "best %.0f%% removed", fraction * 100);
    std::printf("%-22s %12.2f %12.2f %12.2f\n",
                fraction == 0.0 ? "full population" : label,
                experiment.initial_scores.min, experiment.final_scores.min,
                experiment.final_scores.min - full_min);
  }

  std::printf("\npaper gaps: 1.33 (5%% removed), 1.08 (10%% removed) — the "
              "search recovers most of the removed elite's quality.\n");
  return 0;
}
