// Census microdata release: choosing a score function.
//
// A statistical agency wants to publish an Adult-like census extract. The
// paper's central finding is that the *score aggregation* matters: the mean
// of IL and DR (Eq. 1) accepts unbalanced protections (e.g. no information
// loss but high re-identification risk), while max(IL, DR) (Eq. 2) forces
// balance. This example runs both on the same initial population and prints
// the best protection each one selects, plus the balance of the final
// populations.
//
// Run:  ./build/examples/census_release

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/logging.h"
#include "experiments/report.h"
#include "experiments/runner.h"

using namespace evocat;

namespace {

int Fail(const Status& status) {
  std::cerr << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);

  auto dataset_case = experiments::CaseByName("adult");
  if (!dataset_case.ok()) return Fail(dataset_case.status());

  std::printf("census release study: Adult-like extract, %d initial "
              "protections\n\n",
              dataset_case.ValueOrDie().population_spec.TotalCount());

  for (auto aggregation :
       {metrics::ScoreAggregation::kMean, metrics::ScoreAggregation::kMax}) {
    experiments::ExperimentOptions options;
    options.aggregation = aggregation;
    options.generations = 500;
    options.ga_seed = 7;

    auto result = experiments::RunExperiment(dataset_case.ValueOrDie(), options);
    if (!result.ok()) return Fail(result.status());
    const auto& experiment = result.ValueOrDie();

    const auto& best = experiment.final_population.front();
    std::printf("score = %s\n",
                metrics::ScoreAggregationToString(aggregation));
    std::printf("  best protection: score=%.2f IL=%.2f DR=%.2f (|IL-DR|=%.2f)\n",
                best.score, best.il, best.dr, std::fabs(best.il - best.dr));
    std::printf("  derived from: %s\n", best.origin.c_str());
    std::printf("  population balance |IL-DR|: initial %.2f -> final %.2f\n",
                experiments::MeanImbalance(experiment.initial),
                experiments::MeanImbalance(experiment.final_population));
    std::printf("  mean score: %.2f -> %.2f\n\n",
                experiment.initial_scores.mean, experiment.final_scores.mean);
  }

  std::printf("takeaway: Eq.2 (max) accepts a slightly worse headline score "
              "in exchange for balanced IL/DR — the release a data custodian "
              "should prefer.\n");
  return 0;
}
