// Quickstart: protect a categorical dataset and optimize the protection.
//
// The whole evocat pipeline — dataset, masking roster, fitness, evolution —
// is driven by one declarative JobSpec through the evocat::api façade:
//   1. describe the job as JSON (a file, a string, or a built JobSpec),
//   2. run it with api::Session,
//   3. inspect the structured RunArtifacts that come back.
//
// Run:  ./build/example_quickstart

#include <cstdio>
#include <iostream>

#include "api/session.h"
#include "common/logging.h"

using namespace evocat;

int main() {
  SetLogLevel(LogLevel::kWarning);

  // 1. One JSON document describes the whole job. Swap the synthetic source
  //    for {"kind": "csv", "path": "yours.csv"} (plus protected_attributes)
  //    to protect real data; add a "methods" roster to change the masking
  //    mix. Everything omitted keeps its documented default (docs/api.md).
  const char* job_json = R"({
    "name": "quickstart",
    "source": {"kind": "synthetic", "case": "adult"},
    "measures": {"aggregation": "max"},
    "ga": {"generations": 150},
    "seeds": {"master": 2024},
    "outputs": {"best_csv_path": "/tmp/evocat_best.csv"}
  })";

  auto spec_result = api::JobSpec::FromJsonText(job_json);
  if (!spec_result.ok()) {
    std::cerr << spec_result.status().ToString() << "\n";
    return 1;
  }

  // 2. A Session executes JobSpecs (and caches shared inputs across jobs —
  //    see Session::RunBatch for running many specs concurrently).
  api::Session session;
  auto run_result = session.Run(spec_result.ValueOrDie());
  if (!run_result.ok()) {
    std::cerr << run_result.status().ToString() << "\n";
    return 1;
  }
  const api::RunArtifacts& artifacts = run_result.ValueOrDie();

  // 3. Structured artifacts: populations, history, stats, the best file.
  std::printf("dataset: %s, %lld records, protecting %zu attributes\n",
              artifacts.dataset.c_str(),
              static_cast<long long>(artifacts.num_rows),
              artifacts.protected_attrs.size());
  std::printf("initial population: %zu protected files, score %.2f..%.2f\n",
              artifacts.initial.size(), artifacts.initial_scores.min,
              artifacts.initial_scores.max);
  std::printf("generations: %zu  (mutation %lld / crossover %lld)\n",
              artifacts.history.size(),
              static_cast<long long>(artifacts.stats.mutation_generations),
              static_cast<long long>(artifacts.stats.crossover_generations));
  std::printf("best protection: score=%.2f  IL=%.2f  DR=%.2f  origin=%s\n",
              artifacts.best.fitness.score, artifacts.best.fitness.il,
              artifacts.best.fitness.dr, artifacts.best.origin.c_str());
  std::printf("  measures: CTBIL=%.1f DBIL=%.1f EBIL=%.1f | ID=%.1f DBRL=%.1f "
              "PRL=%.1f RSRL=%.1f\n",
              artifacts.best.fitness.ctbil, artifacts.best.fitness.dbil,
              artifacts.best.fitness.ebil, artifacts.best.fitness.id,
              artifacts.best.fitness.dbrl, artifacts.best.fitness.prl,
              artifacts.best.fitness.rsrl);

  // The exact spec that ran (all seeds pinned) re-runs this job bit-for-bit.
  std::printf("resolved spec:\n%s", artifacts.spec.ToJsonText().c_str());
  std::printf("best protected file written to %s\n",
              artifacts.spec.outputs.best_csv_path.c_str());
  return 0;
}
