// Quickstart: protect a categorical dataset and optimize the protection.
//
// This walks the full evocat pipeline on the Adult-like dataset:
//   1. generate (or load) a categorical microdata file,
//   2. mask it with the classical SDC methods to seed a population,
//   3. evolve the population under the max(IL, DR) fitness (paper Eq. 2),
//   4. inspect the best protection found and export it as CSV.
//
// Run:  ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "common/logging.h"
#include "core/engine.h"
#include "data/csv.h"
#include "datagen/generator.h"
#include "experiments/dataset_case.h"
#include "metrics/fitness.h"
#include "protection/population_builder.h"

using namespace evocat;

int main() {
  SetLogLevel(LogLevel::kWarning);

  // 1. A categorical microdata file. Here we synthesize the Adult-like file;
  //    with real data you would call ReadCsvFile(path, options) instead.
  auto profile = datagen::AdultProfile();
  auto original_result = datagen::Generate(profile, /*seed=*/2024);
  if (!original_result.ok()) {
    std::cerr << original_result.status().ToString() << "\n";
    return 1;
  }
  Dataset original = std::move(original_result).ValueOrDie();
  auto attrs =
      std::move(datagen::ProtectedAttributeIndices(profile, original)).ValueOrDie();
  std::printf("dataset: %lld records, %d attributes, protecting %zu\n",
              static_cast<long long>(original.num_rows()),
              original.num_attributes(), attrs.size());

  // 2. Seed population: the paper's Adult mix (86 protections from
  //    microaggregation, coding, recoding, rank swapping and PRAM).
  auto protections_result = protection::BuildProtections(
      original, attrs, protection::AdultPopulationSpec(), /*seed=*/7);
  if (!protections_result.ok()) {
    std::cerr << protections_result.status().ToString() << "\n";
    return 1;
  }
  auto protections = std::move(protections_result).ValueOrDie();
  std::printf("initial population: %zu protected files\n", protections.size());

  // 3. Fitness: IL = mean(CTBIL, DBIL, EBIL), DR = mean(ID, DBRL, PRL, RSRL),
  //    score = max(IL, DR) — penalizes unbalanced protections.
  metrics::FitnessEvaluator::Options fitness_options;
  fitness_options.aggregation = metrics::ScoreAggregation::kMax;
  auto evaluator_result =
      metrics::FitnessEvaluator::Create(original, attrs, fitness_options);
  if (!evaluator_result.ok()) {
    std::cerr << evaluator_result.status().ToString() << "\n";
    return 1;
  }
  auto evaluator = std::move(evaluator_result).ValueOrDie();

  std::vector<core::Individual> seeds;
  for (auto& file : protections) {
    core::Individual individual;
    individual.data = std::move(file.data);
    individual.origin = std::move(file.method_label);
    seeds.push_back(std::move(individual));
  }

  core::GaConfig config;
  config.generations = 150;
  config.seed = 1;
  core::EvolutionEngine engine(evaluator.get(), config);

  auto run_result = engine.Run(std::move(seeds));
  if (!run_result.ok()) {
    std::cerr << run_result.status().ToString() << "\n";
    return 1;
  }
  auto evolution = std::move(run_result).ValueOrDie();

  // 4. The best individual is a full protected file, ready to publish.
  const core::Individual& best = evolution.population.best();
  std::printf("generations: %zu  (mutation %lld / crossover %lld)\n",
              evolution.history.size(),
              static_cast<long long>(evolution.stats.mutation_generations),
              static_cast<long long>(evolution.stats.crossover_generations));
  std::printf("best protection: score=%.2f  IL=%.2f  DR=%.2f  origin=%s\n",
              best.fitness.score, best.fitness.il, best.fitness.dr,
              best.origin.c_str());
  std::printf("  measures: CTBIL=%.1f DBIL=%.1f EBIL=%.1f | ID=%.1f DBRL=%.1f "
              "PRL=%.1f RSRL=%.1f\n",
              best.fitness.ctbil, best.fitness.dbil, best.fitness.ebil,
              best.fitness.id, best.fitness.dbrl, best.fitness.prl,
              best.fitness.rsrl);

  Status write_status = WriteCsvFile(best.data, "/tmp/evocat_best.csv");
  if (!write_status.ok()) {
    std::cerr << write_status.ToString() << "\n";
    return 1;
  }
  std::printf("best protected file written to /tmp/evocat_best.csv\n");
  return 0;
}
