// evocat_evaluate — score a protected CSV against its original.
//
// Prints the seven IL/DR measures, the aggregate IL and DR, and the score
// aggregations, so any masked file (from evocat or elsewhere) can be placed
// on the paper's trade-off map. The original dataset and measure
// configuration come from a JobSpec (--job) and/or flags; measures disabled
// in the spec print as '-' and are footnoted.
//
// Masked values are decoded strictly onto the original's dictionaries by
// default — a value the original never contained is an error naming its line
// and column. Files from other tools that introduce new (generalized) labels
// need --allow-new-categories, which registers such labels as fresh
// categories instead.
//
// Examples:
//   evocat_evaluate --original=census.csv --protected=census_protected.csv \
//       --attrs=EDUCATION,MARITAL,OCCUPATION --ordinal=EDUCATION
//   evocat_evaluate --job=job.json --protected=census_protected.csv

#include <cmath>
#include <cstdio>
#include <iostream>

#include "api/session.h"
#include "common/flags.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "spec_flags.h"
#include "data/csv.h"

using namespace evocat;

namespace {

int Fail(const Status& status) {
  EVOCAT_LOG(ERROR) << status.ToString();
  return 1;
}

/// Formats one measure cell: disabled measures (NaN) print as '-'.
std::string Cell(double value) {
  if (std::isnan(value)) return "-";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);

  std::string job_path, original_path, protected_path, attrs_flag, ordinal_flag;
  FlagParser parser("evocat_evaluate",
                    "information loss / disclosure risk report for a masked file");
  parser.AddString("job",
                   "JSON JobSpec naming the original source, protected "
                   "attributes and measure configuration (see docs/api.md)",
                   &job_path);
  parser.AddString("original", "original CSV file", &original_path);
  parser.AddString("protected", "masked CSV file to evaluate", &protected_path);
  parser.AddString("attrs", "comma-separated quasi-identifier names",
                   &attrs_flag);
  parser.AddString("ordinal", "comma-separated ordinal attribute names",
                   &ordinal_flag);
  bool allow_new_categories = false;
  parser.AddBool("allow-new-categories",
                 "register masked values missing from the original's "
                 "dictionaries as new categories instead of failing",
                 &allow_new_categories);
  bool metrics_dump = false;
  parser.AddBool("metrics-dump",
                 "print the process metrics registry (Prometheus text "
                 "exposition) after the report",
                 &metrics_dump);
  std::string trace_out;
  parser.AddString("trace-out",
                   "record trace spans and write Chrome trace_event JSON "
                   "here on exit",
                   &trace_out);

  Status parse_status = parser.Parse(argc, argv);
  if (!parse_status.ok()) return Fail(parse_status);
  if (parser.help_requested()) {
    std::cout << parser.Usage();
    return 0;
  }
  if (!trace_out.empty()) obs::EnableTracing();
  if (protected_path.empty()) {
    return Fail(Status::Invalid("--protected is required\n", parser.Usage()));
  }

  // --- Assemble the JobSpec: file first, then flag overrides --------------
  api::JobSpec spec;
  if (!job_path.empty()) {
    auto loaded = api::JobSpec::FromJsonFile(job_path);
    if (!loaded.ok()) return Fail(loaded.status());
    spec = std::move(loaded).ValueOrDie();
  } else if (original_path.empty() || attrs_flag.empty()) {
    return Fail(Status::Invalid(
        "--original and --attrs are required without --job\n",
        parser.Usage()));
  }
  tools::OverrideCsvSource(&spec, original_path);
  tools::OverrideAttributeFlags(&spec, attrs_flag, ordinal_flag);
  Status valid = spec.Validate();
  if (!valid.ok()) return Fail(valid);

  // --- Load the original through the façade, the masked file onto its
  // schema (strict by default: every masked value must be a known category) -
  api::Session session;
  auto source = session.LoadSource(spec);
  if (!source.ok()) return Fail(source.status());
  const Dataset& original = source.ValueOrDie().original;

  CsvReadOptions masked_options;
  masked_options.has_header = spec.source.has_header;
  masked_options.separator = spec.source.separator[0];
  Result<Dataset> masked = Status::Internal("unset");
  if (allow_new_categories) {
    // Lenient: re-encode row by row, growing the shared dictionaries for
    // labels the original never contained (external generalizing tools).
    auto raw = ReadCsvFile(protected_path, masked_options);
    if (!raw.ok()) return Fail(raw.status());
    if (raw.ValueOrDie().num_attributes() != original.num_attributes()) {
      return Fail(Status::Invalid("attribute count mismatch between files"));
    }
    Dataset recoded(original.schema_ptr());
    const Dataset& raw_data = raw.ValueOrDie();
    std::vector<std::string> row(
        static_cast<size_t>(raw_data.num_attributes()));
    for (int64_t r = 0; r < raw_data.num_rows(); ++r) {
      for (int a = 0; a < raw_data.num_attributes(); ++a) {
        row[static_cast<size_t>(a)] = raw_data.Value(r, a);
      }
      Status status = recoded.AppendRowValues(row);
      if (!status.ok()) return Fail(status);
    }
    masked = std::move(recoded);
  } else {
    masked_options.bind_schema = original.schema_ptr();
    masked = ReadCsvFile(protected_path, masked_options);
    if (!masked.ok()) return Fail(masked.status());
  }

  auto evaluator = metrics::FitnessEvaluator::Create(
      original, source.ValueOrDie().attrs, spec.FitnessOptions());
  if (!evaluator.ok()) return Fail(evaluator.status());
  metrics::FitnessBreakdown b =
      evaluator.ValueOrDie()->Evaluate(masked.ValueOrDie());

  std::printf("information loss:  CTBIL=%s DBIL=%s EBIL=%s  -> IL=%.2f\n",
              Cell(b.ctbil).c_str(), Cell(b.dbil).c_str(),
              Cell(b.ebil).c_str(), b.il);
  std::printf("disclosure risk:   ID=%s DBRL=%s PRL=%s RSRL=%s  -> DR=%.2f\n",
              Cell(b.id).c_str(), Cell(b.dbrl).c_str(), Cell(b.prl).c_str(),
              Cell(b.rsrl).c_str(), b.dr);
  std::printf("scores:            mean=%.2f max=%.2f euclidean=%.2f\n",
              metrics::AggregateScore(metrics::ScoreAggregation::kMean, b.il, b.dr),
              metrics::AggregateScore(metrics::ScoreAggregation::kMax, b.il, b.dr),
              metrics::AggregateScore(metrics::ScoreAggregation::kEuclidean,
                                      b.il, b.dr));

  std::vector<std::string> disabled;
  for (const auto& [name, value] :
       {std::pair<const char*, double>{"CTBIL", b.ctbil},
        {"DBIL", b.dbil},
        {"EBIL", b.ebil},
        {"ID", b.id},
        {"DBRL", b.dbrl},
        {"PRL", b.prl},
        {"RSRL", b.rsrl}}) {
    if (std::isnan(value)) disabled.push_back(name);
  }
  if (!disabled.empty()) {
    std::printf("note: '-' marks measures disabled in the spec (%s); they are "
                "excluded from the IL/DR averages\n",
                Join(disabled, ',').c_str());
  }

  if (metrics_dump) {
    std::printf("\n%s",
                obs::MetricsRegistry::Global().ToPrometheusText().c_str());
  }
  if (!trace_out.empty()) {
    std::string error;
    if (!obs::WriteChromeTrace(trace_out, obs::SnapshotTrace(), &error)) {
      return Fail(Status::IOError("trace export failed: ", error));
    }
  }
  return 0;
}
