// evocat_evaluate — score a protected CSV against its original.
//
// Prints the seven IL/DR measures, the aggregate IL and DR, and all four
// score aggregations, so any masked file (from evocat or elsewhere) can be
// placed on the paper's trade-off map.
//
// Example:
//   evocat_evaluate --original=census.csv --protected=census_protected.csv \
//       --attrs=EDUCATION,MARITAL,OCCUPATION --ordinal=EDUCATION

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/logging.h"
#include "common/string_utils.h"
#include "data/csv.h"
#include "metrics/fitness.h"

using namespace evocat;

namespace {

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);

  std::string original_path, protected_path, attrs_flag, ordinal_flag;
  FlagParser parser("evocat_evaluate",
                    "information loss / disclosure risk report for a masked file");
  parser.AddString("original", "original CSV file", &original_path);
  parser.AddString("protected", "masked CSV file to evaluate", &protected_path);
  parser.AddString("attrs", "comma-separated quasi-identifier names",
                   &attrs_flag);
  parser.AddString("ordinal", "comma-separated ordinal attribute names",
                   &ordinal_flag);

  Status parse_status = parser.Parse(argc, argv);
  if (!parse_status.ok()) return Fail(parse_status);
  if (parser.help_requested()) {
    std::cout << parser.Usage();
    return 0;
  }
  if (original_path.empty() || protected_path.empty() || attrs_flag.empty()) {
    return Fail(Status::Invalid(
        "--original, --protected and --attrs are all required\n",
        parser.Usage()));
  }

  CsvReadOptions csv_options;
  for (const auto& name : Split(ordinal_flag, ',')) {
    if (!name.empty()) csv_options.ordinal_attributes.insert(name);
  }
  auto original = ReadCsvFile(original_path, csv_options);
  if (!original.ok()) return Fail(original.status());

  // The masked file must share the original's dictionaries: re-read it onto
  // the original's schema by appending its values.
  auto masked_raw = ReadCsvFile(protected_path, csv_options);
  if (!masked_raw.ok()) return Fail(masked_raw.status());
  if (masked_raw.ValueOrDie().num_attributes() !=
      original.ValueOrDie().num_attributes()) {
    return Fail(Status::Invalid("attribute count mismatch between files"));
  }
  Dataset masked(original.ValueOrDie().schema_ptr());
  {
    const Dataset& raw = masked_raw.ValueOrDie();
    std::vector<std::string> row(static_cast<size_t>(raw.num_attributes()));
    for (int64_t r = 0; r < raw.num_rows(); ++r) {
      for (int a = 0; a < raw.num_attributes(); ++a) {
        row[static_cast<size_t>(a)] = raw.Value(r, a);
      }
      Status status = masked.AppendRowValues(row);
      if (!status.ok()) return Fail(status);
    }
  }

  std::vector<std::string> names;
  for (const auto& name : Split(attrs_flag, ',')) {
    if (!name.empty()) names.push_back(name);
  }
  auto attrs = original.ValueOrDie().schema().IndicesOf(names);
  if (!attrs.ok()) return Fail(attrs.status());

  auto evaluator = metrics::FitnessEvaluator::Create(original.ValueOrDie(),
                                                     attrs.ValueOrDie());
  if (!evaluator.ok()) return Fail(evaluator.status());
  metrics::FitnessBreakdown b =
      evaluator.ValueOrDie()->Evaluate(masked);

  std::printf("information loss:  CTBIL=%.2f DBIL=%.2f EBIL=%.2f  -> IL=%.2f\n",
              b.ctbil, b.dbil, b.ebil, b.il);
  std::printf("disclosure risk:   ID=%.2f DBRL=%.2f PRL=%.2f RSRL=%.2f  -> "
              "DR=%.2f\n",
              b.id, b.dbrl, b.prl, b.rsrl, b.dr);
  std::printf("scores:            mean=%.2f max=%.2f euclidean=%.2f\n",
              metrics::AggregateScore(metrics::ScoreAggregation::kMean, b.il, b.dr),
              metrics::AggregateScore(metrics::ScoreAggregation::kMax, b.il, b.dr),
              metrics::AggregateScore(metrics::ScoreAggregation::kEuclidean,
                                      b.il, b.dr));
  return 0;
}
