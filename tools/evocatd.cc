// evocatd — long-running JobSpec server.
//
// Accepts the evocat::api JobSpec JSON over a minimal HTTP/1.1 front-end
// (TCP or Unix-domain socket) and executes jobs asynchronously on the
// work-stealing scheduler: submit returns a job id immediately, status is
// polled, results come back as RunArtifacts JSON. Protocol reference and
// deployment notes: docs/server.md.
//
// Examples:
//   evocatd --port=8080
//   evocatd --port=0                       # ephemeral port, printed on start
//   evocatd --socket=/run/evocat.sock      # Unix-domain socket instead
//   evocatd --threads=8 --cache-capacity=32 --max-finished-jobs=256
//
//   curl -s localhost:8080/healthz
//   curl -s -X POST localhost:8080/v1/jobs --data-binary @job.json
//   curl -s localhost:8080/v1/jobs/job-000001
//   curl -s localhost:8080/v1/jobs/job-000001/result?best_csv=0
//   curl -s -X POST localhost:8080/v1/jobs/job-000001/cancel

#include <csignal>
#include <cstdio>
#include <thread>

#include "common/flags.h"
#include "common/logging.h"
#include "common/version.h"
#include "server/server.h"

using namespace evocat;

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string socket_path;
  int64_t port = 8080;
  int64_t threads = 0;
  int64_t cache_capacity = 8;
  int64_t max_finished_jobs = 64;
  int64_t max_body_mb = 8;
  bool verbose = false;

  FlagParser parser("evocatd",
                    "long-running JobSpec server (protocol: docs/server.md)");
  parser.AddString("host", "TCP bind address", &host);
  parser.AddInt("port", "TCP port (0 = ephemeral, printed on start)", &port);
  parser.AddString("socket",
                   "serve on this Unix-domain socket path instead of TCP",
                   &socket_path);
  parser.AddInt("threads",
                "scheduler worker threads (0 = hardware concurrency)",
                &threads);
  parser.AddInt("cache-capacity",
                "max CSV originals kept in the session's LRU cache",
                &cache_capacity);
  parser.AddInt("max-finished-jobs",
                "finished jobs retained for result fetches", &max_finished_jobs);
  parser.AddInt("max-body-mb", "request body limit in MiB", &max_body_mb);
  parser.AddBool("verbose", "log at INFO instead of WARNING", &verbose);

  Status parsed = parser.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.ToString().c_str());
    return 2;
  }
  if (parser.help_requested()) return 0;
  SetLogLevel(verbose ? LogLevel::kInfo : LogLevel::kWarning);

  api::Session::Options session_options;
  session_options.max_cached_sources =
      cache_capacity < 0 ? 0 : static_cast<size_t>(cache_capacity);
  api::Session session(session_options);

  TaskScheduler scheduler(static_cast<int>(threads));

  server::JobManager::Options job_options;
  job_options.max_finished_jobs =
      max_finished_jobs < 0 ? 0 : static_cast<size_t>(max_finished_jobs);
  server::JobManager jobs(&session, &scheduler, job_options);

  server::Server::Options server_options;
  server_options.host = host;
  server_options.port = static_cast<int>(port);
  server_options.unix_socket = socket_path;
  server_options.max_body_bytes =
      static_cast<size_t>(max_body_mb < 1 ? 1 : max_body_mb) * 1024 * 1024;
  server::Server server(&jobs, &session, server_options);

  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  if (socket_path.empty()) {
    std::printf("evocatd %s listening on http://%s:%d (%d workers)\n",
                kVersion, host.c_str(), server.port(),
                scheduler.num_workers());
  } else {
    std::printf("evocatd %s listening on unix socket %s (%d workers)\n",
                kVersion, socket_path.c_str(), scheduler.num_workers());
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  // send() already passes MSG_NOSIGNAL; this covers any other fd the
  // process writes while a peer disconnects.
  std::signal(SIGPIPE, SIG_IGN);
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  // Graceful shutdown: stop accepting first, then JobManager's destructor
  // cancels queued/running jobs and drains the scheduler.
  std::printf("evocatd shutting down (draining jobs)\n");
  std::fflush(stdout);
  server.Stop();
  return 0;
}
