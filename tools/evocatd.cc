// evocatd — long-running JobSpec server.
//
// Accepts the evocat::api JobSpec JSON over a minimal HTTP/1.1 front-end
// (TCP or Unix-domain socket) and executes jobs asynchronously on the
// work-stealing scheduler: submit returns a job id immediately, status is
// polled, results come back as RunArtifacts JSON. With `--wal` every
// submission is durably logged before it is admitted, and unfinished jobs
// are re-queued (and re-run, bit-identically — specs embed their seeds) on
// the next boot. Protocol reference and deployment notes: docs/server.md.
//
// Examples:
//   evocatd --port=8080
//   evocatd --port=0                       # ephemeral port, printed on start
//   evocatd --socket=/run/evocat.sock      # Unix-domain socket instead
//   evocatd --threads=8 --cache-capacity=32 --max-finished-jobs=256
//   evocatd --wal=/var/lib/evocat/jobs.wal # crash-safe job queue
//   evocatd --auth-token-file=/etc/evocat/token --max-pending-jobs=64
//
//   curl -s localhost:8080/healthz
//   curl -s -X POST localhost:8080/v1/jobs --data-binary @job.json
//   curl -s localhost:8080/v1/jobs/job-000001
//   curl -s localhost:8080/v1/jobs/job-000001/result?best_csv=0
//   curl -s -X POST localhost:8080/v1/jobs/job-000001/cancel

#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "common/flags.h"
#include "common/logging.h"
#include "common/string_utils.h"
#include "common/version.h"
#include "obs/trace.h"
#include "server/server.h"
#include "server/wal.h"

using namespace evocat;

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

Result<std::string> ReadTokenFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot read auth token file '", path, "'");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  std::string token = Trim(contents.str());
  if (token.empty()) {
    return Status::Invalid("auth token file '", path, "' is empty");
  }
  return token;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string socket_path;
  std::string wal_path;
  std::string auth_token_file;
  int64_t port = 8080;
  int64_t threads = 0;
  int64_t cache_capacity = 8;
  int64_t max_finished_jobs = 64;
  int64_t max_pending_jobs = 256;
  int64_t max_retained_mb = 256;
  int64_t max_body_mb = 8;
  int64_t max_header_kb = 64;
  int64_t idle_timeout_ms = 30000;
  int64_t header_timeout_ms = 10000;
  int64_t body_timeout_ms = 30000;
  int64_t retry_after_seconds = 2;
  bool no_wal_sync = false;
  bool verbose = false;
  bool log_json = false;
  std::string trace_dir;

  FlagParser parser("evocatd",
                    "long-running JobSpec server (protocol: docs/server.md)");
  parser.AddString("host", "TCP bind address", &host);
  parser.AddInt("port", "TCP port (0 = ephemeral, printed on start)", &port);
  parser.AddString("socket",
                   "serve on this Unix-domain socket path instead of TCP",
                   &socket_path);
  parser.AddString("wal",
                   "write-ahead log path; submissions are durable and "
                   "unfinished jobs re-run after a crash",
                   &wal_path);
  parser.AddBool("no-wal-sync",
                 "skip fsync on WAL appends (faster, loses the last records "
                 "on power failure)",
                 &no_wal_sync);
  parser.AddString("auth-token-file",
                   "file holding the bearer token; when set, all routes but "
                   "/healthz require 'Authorization: Bearer <token>'",
                   &auth_token_file);
  parser.AddInt("threads",
                "scheduler worker threads (0 = hardware concurrency)",
                &threads);
  parser.AddInt("cache-capacity",
                "max CSV originals kept in the session's LRU cache",
                &cache_capacity);
  parser.AddInt("max-finished-jobs",
                "finished jobs retained for result fetches", &max_finished_jobs);
  parser.AddInt("max-pending-jobs",
                "queued-job admission bound; submissions beyond it get 429 "
                "(0 = unbounded)",
                &max_pending_jobs);
  parser.AddInt("max-retained-mb",
                "retention budget for finished-job artifacts in MiB, evicted "
                "oldest-first beyond it (0 = unbounded)",
                &max_retained_mb);
  parser.AddInt("max-body-mb", "request body limit in MiB", &max_body_mb);
  parser.AddInt("max-header-kb",
                "request-line + header limit in KiB (431 beyond it)",
                &max_header_kb);
  parser.AddInt("idle-timeout-ms",
                "keep-alive idle window before the connection closes",
                &idle_timeout_ms);
  parser.AddInt("header-timeout-ms",
                "slow-loris guard: max ms for a request's header block",
                &header_timeout_ms);
  parser.AddInt("body-timeout-ms",
                "slow-loris guard: max ms for a request's body",
                &body_timeout_ms);
  parser.AddInt("retry-after-seconds",
                "Retry-After advertised on 429 responses",
                &retry_after_seconds);
  parser.AddBool("verbose", "log at INFO instead of WARNING", &verbose);
  parser.AddBool("log-json",
                 "emit one JSON object per log line (ts, level, component, "
                 "msg, job_id) instead of text",
                 &log_json);
  parser.AddString("trace-dir",
                   "enable trace spans and export each finished job's trace "
                   "to <dir>/<job-id>.trace.json (Chrome trace_event format)",
                   &trace_dir);

  Status parsed = parser.Parse(argc, argv);
  if (!parsed.ok()) {
    EVOCAT_LOG(ERROR) << parsed.ToString();
    return 2;
  }
  if (parser.help_requested()) return 0;
  SetLogLevel(verbose ? LogLevel::kInfo : LogLevel::kWarning);
  if (log_json) SetLogFormat(LogFormat::kJson);
  if (!trace_dir.empty()) obs::EnableTracing();

  std::string auth_token;
  if (!auth_token_file.empty()) {
    Result<std::string> token = ReadTokenFile(auth_token_file);
    if (!token.ok()) {
      EVOCAT_LOG(ERROR) << token.status().ToString();
      return 2;
    }
    auth_token = std::move(token).ValueOrDie();
  }

  std::unique_ptr<server::Wal> wal;
  if (!wal_path.empty()) {
    server::Wal::Options wal_options;
    wal_options.sync = !no_wal_sync;
    Result<std::unique_ptr<server::Wal>> opened =
        server::Wal::Open(wal_path, wal_options);
    if (!opened.ok()) {
      EVOCAT_LOG(ERROR) << opened.status().ToString();
      return 1;
    }
    wal = std::move(opened).ValueOrDie();
    const server::Wal::Stats& stats = wal->stats();
    std::printf("evocatd wal %s: %lld records replayed, %lld jobs to recover",
                wal_path.c_str(),
                static_cast<long long>(stats.replayed_records),
                static_cast<long long>(stats.recovered_jobs));
    if (stats.quarantined_bytes > 0) {
      std::printf(", %lld damaged tail bytes quarantined to %s",
                  static_cast<long long>(stats.quarantined_bytes),
                  stats.quarantine_path.c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  api::Session::Options session_options;
  session_options.max_cached_sources =
      cache_capacity < 0 ? 0 : static_cast<size_t>(cache_capacity);
  api::Session session(session_options);

  TaskScheduler scheduler(static_cast<int>(threads));

  server::JobManager::Options job_options;
  job_options.max_finished_jobs =
      max_finished_jobs < 0 ? 0 : static_cast<size_t>(max_finished_jobs);
  job_options.max_pending_jobs =
      max_pending_jobs < 0 ? 0 : static_cast<size_t>(max_pending_jobs);
  job_options.max_retained_bytes =
      static_cast<size_t>(max_retained_mb < 0 ? 0 : max_retained_mb) * 1024 *
      1024;
  job_options.wal = wal.get();
  job_options.trace_dir = trace_dir;
  server::JobManager jobs(&session, &scheduler, job_options);

  server::Server::Options server_options;
  server_options.host = host;
  server_options.port = static_cast<int>(port);
  server_options.unix_socket = socket_path;
  server_options.max_body_bytes =
      static_cast<size_t>(max_body_mb < 1 ? 1 : max_body_mb) * 1024 * 1024;
  server_options.max_header_bytes =
      static_cast<size_t>(max_header_kb < 1 ? 1 : max_header_kb) * 1024;
  server_options.idle_timeout_ms = static_cast<int>(idle_timeout_ms);
  server_options.header_timeout_ms = static_cast<int>(header_timeout_ms);
  server_options.body_timeout_ms = static_cast<int>(body_timeout_ms);
  server_options.retry_after_seconds = static_cast<int>(retry_after_seconds);
  server_options.auth_token = auth_token;
  server::Server server(&jobs, &session, server_options);

  Status started = server.Start();
  if (!started.ok()) {
    EVOCAT_LOG(ERROR) << started.ToString();
    return 1;
  }
  if (socket_path.empty()) {
    std::printf("evocatd %s listening on http://%s:%d (%d workers%s%s)\n",
                kVersion, host.c_str(), server.port(),
                scheduler.num_workers(), wal ? ", wal" : "",
                auth_token.empty() ? "" : ", auth");
  } else {
    std::printf("evocatd %s listening on unix socket %s (%d workers%s%s)\n",
                kVersion, socket_path.c_str(), scheduler.num_workers(),
                wal ? ", wal" : "", auth_token.empty() ? "" : ", auth");
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  // send() already passes MSG_NOSIGNAL; this covers any other fd the
  // process writes while a peer disconnects.
  std::signal(SIGPIPE, SIG_IGN);
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  // Graceful shutdown: stop accepting first, then JobManager's destructor
  // cancels queued/running jobs and drains the scheduler. With a WAL the
  // drained-but-unfinished jobs re-run on the next boot.
  std::printf("evocatd shutting down (draining jobs)\n");
  std::fflush(stdout);
  server.Stop();
  return 0;
}
