// Flag-override helpers shared by the evocat CLI adapters.
//
// Both tools assemble one api::JobSpec from an optional --job file plus
// legacy flags; the overrides that exist in both tools live here so their
// semantics cannot drift apart.

#ifndef EVOCAT_TOOLS_SPEC_FLAGS_H_
#define EVOCAT_TOOLS_SPEC_FLAGS_H_

#include <string>

#include "api/jobspec.h"
#include "common/string_utils.h"

namespace evocat {
namespace tools {

/// \brief `--input`/`--original` override: replace the spec's source with a
/// fresh CSV source (dropping any spec-side source configuration).
inline void OverrideCsvSource(api::JobSpec* spec, const std::string& path) {
  if (path.empty()) return;
  spec->source = api::SourceSpec();
  spec->source.kind = api::SourceSpec::Kind::kCsv;
  spec->source.path = path;
}

/// \brief `--attrs` / `--ordinal` overrides (comma-separated name lists).
///
/// `--ordinal` only applies to csv sources (synthetic profiles declare
/// attribute kinds themselves); as in the legacy CLI it is ignored for
/// synthetic runs.
inline void OverrideAttributeFlags(api::JobSpec* spec,
                                   const std::string& attrs_flag,
                                   const std::string& ordinal_flag) {
  if (!attrs_flag.empty()) {
    spec->protected_attributes = SplitSkipEmpty(attrs_flag, ',');
  }
  if (!ordinal_flag.empty() &&
      spec->source.kind == api::SourceSpec::Kind::kCsv) {
    spec->source.ordinal_attributes = SplitSkipEmpty(ordinal_flag, ',');
  }
}

}  // namespace tools
}  // namespace evocat

#endif  // EVOCAT_TOOLS_SPEC_FLAGS_H_
