// evocat_protect — end-to-end protection of a categorical CSV file.
//
// The tool is a thin adapter over the evocat::api façade: it assembles one
// JobSpec — from --job <spec.json>, from flags, or both (flags override the
// spec) — and hands it to api::Session. See docs/api.md for the spec schema.
//
// Examples:
//   evocat_protect --job=job.json
//   evocat_protect --synthetic=adult --generations=500 --out=protected.csv
//   evocat_protect --input=census.csv --attrs=EDUCATION,MARITAL,OCCUPATION \
//       --ordinal=EDUCATION --score=max --out=protected.csv --report
//   evocat_protect --synthetic=flare --dump-job=- # print the resolved spec

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>

#include "api/session.h"
#include "common/flags.h"
#include "common/logging.h"
#include "obs/trace.h"
#include "spec_flags.h"

using namespace evocat;

namespace {

int Fail(const Status& status) {
  EVOCAT_LOG(ERROR) << status.ToString();
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);

  std::string job_path, input, synthetic, attrs_flag, ordinal_flag, score_name;
  std::string strategy_name, output, save_original, dump_job;
  int64_t generations = -1;
  int64_t seed = -1;
  double il_weight = std::numeric_limits<double>::quiet_NaN();
  bool report = false;

  FlagParser parser("evocat_protect",
                    "evolutionary optimization of categorical data protection");
  parser.AddString("job", "JSON JobSpec driving the run (see docs/api.md); "
                   "other flags override its fields", &job_path);
  parser.AddString("input", "CSV file to protect (all attributes categorical)",
                   &input);
  parser.AddString("synthetic",
                   "generate a paper dataset instead: adult|housing|german|flare",
                   &synthetic);
  parser.AddString("attrs",
                   "comma-separated quasi-identifier attribute names "
                   "(required with --input)",
                   &attrs_flag);
  parser.AddString("ordinal", "comma-separated ordinal attribute names",
                   &ordinal_flag);
  parser.AddString("score", "fitness aggregation: mean|max|euclidean|weighted",
                   &score_name);
  parser.AddString("strategy",
                   "evolution strategy: generational|steady_state|islands; "
                   "switching away from the spec's strategy resets its "
                   "params to defaults (see docs/strategies.md)",
                   &strategy_name);
  parser.AddDouble("il-weight", "information-loss weight for --score=weighted",
                   &il_weight);
  parser.AddInt("generations", "GA generation budget", &generations);
  parser.AddInt("seed", "master random seed (data + masking + evolution)",
                &seed);
  parser.AddString("out", "output CSV path for the best protection", &output);
  parser.AddString("save-original",
                   "also write the (generated) original CSV here — pairs with "
                   "evocat_evaluate",
                   &save_original);
  parser.AddString("dump-job",
                   "write the resolved JobSpec JSON here ('-' = stdout) "
                   "instead of running",
                   &dump_job);
  parser.AddBool("report", "print the per-generation evolution CSV", &report);
  std::string trace_out;
  parser.AddString("trace-out",
                   "record trace spans and write Chrome trace_event JSON "
                   "here on exit",
                   &trace_out);

  Status parse_status = parser.Parse(argc, argv);
  if (!parse_status.ok()) return Fail(parse_status);
  if (parser.help_requested()) {
    std::cout << parser.Usage();
    return 0;
  }
  if (!trace_out.empty()) obs::EnableTracing();
  // Numeric flags use -1 as the "unset" sentinel; any other negative is a
  // user error, not an absent flag.
  if (generations < -1) {
    return Fail(Status::Invalid("--generations must be non-negative, got ",
                                generations));
  }
  if (seed < -1) {
    return Fail(Status::Invalid("--seed must be non-negative, got ", seed));
  }
  if (!std::isnan(il_weight) && (il_weight < 0.0 || il_weight > 1.0)) {
    return Fail(Status::Invalid("--il-weight must be in [0, 1], got ",
                                il_weight));
  }

  if (!input.empty() && !synthetic.empty()) {
    return Fail(Status::Invalid("--input and --synthetic are mutually "
                                "exclusive"));
  }

  // --- Assemble the JobSpec: file first, then flag overrides --------------
  api::JobSpec spec;
  if (!job_path.empty()) {
    auto loaded = api::JobSpec::FromJsonFile(job_path);
    if (!loaded.ok()) return Fail(loaded.status());
    spec = std::move(loaded).ValueOrDie();
  } else {
    if (input.empty() && synthetic.empty()) {
      return Fail(Status::Invalid(
          "pass exactly one of --input or --synthetic (or a --job spec)"));
    }
    // Legacy CLI defaults (JobSpec defaults differ: 400 generations, mean).
    spec.ga.generations = 1000;
    spec.measures.aggregation = metrics::ScoreAggregation::kMax;
    spec.outputs.best_csv_path = "protected.csv";
  }

  if (!input.empty()) {
    tools::OverrideCsvSource(&spec, input);
  } else if (!synthetic.empty()) {
    spec.source = api::SourceSpec();
    spec.source.kind = api::SourceSpec::Kind::kSynthetic;
    spec.source.case_name = synthetic;
  }
  tools::OverrideAttributeFlags(&spec, attrs_flag, ordinal_flag);
  if (!score_name.empty()) {
    auto aggregation = metrics::ScoreAggregationFromString(score_name);
    if (!aggregation.ok()) return Fail(aggregation.status());
    spec.measures.aggregation = aggregation.ValueOrDie();
  }
  if (!strategy_name.empty()) {
    // Keep the spec's parameters only when the name is unchanged — another
    // strategy's parameters would fail validation as unknown keys.
    if (strategy_name != spec.strategy.name) spec.strategy.params.clear();
    spec.strategy.name = strategy_name;
  }
  if (!std::isnan(il_weight)) spec.measures.il_weight = il_weight;
  if (generations >= 0) spec.ga.generations = static_cast<int>(generations);
  if (seed >= 0) {
    spec.seeds = api::SeedSpec();
    spec.seeds.master = static_cast<uint64_t>(seed);
  }
  if (!output.empty()) spec.outputs.best_csv_path = output;
  if (!save_original.empty()) spec.outputs.original_csv_path = save_original;
  if (report) spec.outputs.history = true;  // --report needs the trajectory

  if (!dump_job.empty()) {
    Status valid = spec.Validate();
    if (!valid.ok()) return Fail(valid);
    std::string text = spec.ToJsonText();
    if (dump_job == "-") {
      std::cout << text;
    } else {
      std::ofstream out(dump_job);
      out << text;
      out.close();
      if (!out) {
        return Fail(Status::IOError("error writing job spec to '", dump_job,
                                    "'"));
      }
      std::printf("wrote job spec to %s\n", dump_job.c_str());
    }
    return 0;
  }

  // --- Run through the façade --------------------------------------------
  api::Session session;
  auto run = session.Run(spec);
  if (!run.ok()) return Fail(run.status());
  const api::RunArtifacts& artifacts = run.ValueOrDie();

  std::printf("original: %lld records; protecting %zu attributes (%s)\n",
              static_cast<long long>(artifacts.num_rows),
              artifacts.protected_attrs.size(), artifacts.dataset.c_str());
  std::printf("seeded %lld protections; evolved %lld generations (score=%s, "
              "%lld evaluations)\n",
              static_cast<long long>(artifacts.population_size),
              static_cast<long long>(artifacts.stats.mutation_generations +
                                     artifacts.stats.crossover_generations),
              metrics::ScoreAggregationToString(
                  artifacts.spec.measures.aggregation),
              static_cast<long long>(artifacts.evaluations));

  if (report) {
    std::printf("generation,min_score,mean_score,max_score\n");
    for (const auto& record : artifacts.history) {
      std::printf("%d,%.3f,%.3f,%.3f\n", record.generation, record.min_score,
                  record.mean_score, record.max_score);
    }
  }

  std::printf("best: score=%.2f IL=%.2f DR=%.2f origin=%s\n",
              artifacts.best.fitness.score, artifacts.best.fitness.il,
              artifacts.best.fitness.dr, artifacts.best.origin.c_str());
  if (!artifacts.spec.outputs.original_csv_path.empty()) {
    std::printf("wrote original to %s\n",
                artifacts.spec.outputs.original_csv_path.c_str());
  }
  if (!artifacts.spec.outputs.best_csv_path.empty()) {
    std::printf("wrote %s\n", artifacts.spec.outputs.best_csv_path.c_str());
  }
  if (!trace_out.empty()) {
    std::string error;
    if (!obs::WriteChromeTrace(trace_out, obs::SnapshotTrace(), &error)) {
      return Fail(Status::IOError("trace export failed: ", error));
    }
    std::printf("wrote trace to %s\n", trace_out.c_str());
  }
  return 0;
}
