// evocat_protect — end-to-end protection of a categorical CSV file.
//
// Reads a microdata CSV (or generates one of the paper's synthetic
// datasets), seeds a population of classical maskings, evolves it under the
// configured fitness, and writes the best protected file plus an optional
// evolution report.
//
// Examples:
//   evocat_protect --synthetic=adult --generations=500 --out=protected.csv
//   evocat_protect --input=census.csv --attrs=EDUCATION,MARITAL,OCCUPATION \
//       --ordinal=EDUCATION --score=max --out=protected.csv --report

#include <cstdio>
#include <iostream>
#include <set>

#include "common/flags.h"
#include "common/logging.h"
#include "common/string_utils.h"
#include "core/engine.h"
#include "data/csv.h"
#include "datagen/generator.h"
#include "experiments/dataset_case.h"
#include "metrics/fitness.h"
#include "protection/population_builder.h"

using namespace evocat;

namespace {

Result<metrics::ScoreAggregation> ParseScore(const std::string& name) {
  if (name == "mean") return metrics::ScoreAggregation::kMean;
  if (name == "max") return metrics::ScoreAggregation::kMax;
  if (name == "euclidean") return metrics::ScoreAggregation::kEuclidean;
  if (name == "weighted") return metrics::ScoreAggregation::kWeighted;
  return Status::Invalid("unknown score '", name,
                         "'; expected mean|max|euclidean|weighted");
}

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);

  std::string input, synthetic, attrs_flag, ordinal_flag, score_name = "max";
  std::string output = "protected.csv";
  int64_t generations = 1000;
  int64_t seed = 42;
  double il_weight = 0.5;
  bool report = false;

  FlagParser parser("evocat_protect",
                    "evolutionary optimization of categorical data protection");
  parser.AddString("input", "CSV file to protect (all attributes categorical)",
                   &input);
  parser.AddString("synthetic",
                   "generate a paper dataset instead: adult|housing|german|flare",
                   &synthetic);
  parser.AddString("attrs",
                   "comma-separated quasi-identifier attribute names "
                   "(required with --input)",
                   &attrs_flag);
  parser.AddString("ordinal", "comma-separated ordinal attribute names",
                   &ordinal_flag);
  parser.AddString("score", "fitness aggregation: mean|max|euclidean|weighted",
                   &score_name);
  parser.AddDouble("il-weight", "information-loss weight for --score=weighted",
                   &il_weight);
  parser.AddInt("generations", "GA generation budget", &generations);
  parser.AddInt("seed", "random seed for masking + evolution", &seed);
  parser.AddString("out", "output CSV path for the best protection", &output);
  std::string save_original;
  parser.AddString("save-original",
                   "also write the (generated) original CSV here — pairs with "
                   "evocat_evaluate",
                   &save_original);
  parser.AddBool("report", "print the per-generation evolution CSV", &report);

  Status parse_status = parser.Parse(argc, argv);
  if (!parse_status.ok()) return Fail(parse_status);
  if (parser.help_requested()) {
    std::cout << parser.Usage();
    return 0;
  }
  if (input.empty() == synthetic.empty()) {
    return Fail(Status::Invalid("pass exactly one of --input or --synthetic"));
  }

  // --- Load or generate the original file -------------------------------
  Dataset original;
  std::vector<int> attrs;
  protection::PopulationSpec spec;
  if (!synthetic.empty()) {
    auto dataset_case = experiments::CaseByName(synthetic);
    if (!dataset_case.ok()) return Fail(dataset_case.status());
    auto generated = datagen::Generate(dataset_case.ValueOrDie().profile,
                                       static_cast<uint64_t>(seed));
    if (!generated.ok()) return Fail(generated.status());
    original = std::move(generated).ValueOrDie();
    auto indices = datagen::ProtectedAttributeIndices(
        dataset_case.ValueOrDie().profile, original);
    if (!indices.ok()) return Fail(indices.status());
    attrs = indices.ValueOrDie();
    spec = dataset_case.ValueOrDie().population_spec;
  } else {
    CsvReadOptions csv_options;
    for (const auto& name : Split(ordinal_flag, ',')) {
      if (!name.empty()) csv_options.ordinal_attributes.insert(name);
    }
    auto loaded = ReadCsvFile(input, csv_options);
    if (!loaded.ok()) return Fail(loaded.status());
    original = std::move(loaded).ValueOrDie();
    if (attrs_flag.empty()) {
      return Fail(Status::Invalid("--attrs is required with --input"));
    }
    std::vector<std::string> names;
    for (const auto& name : Split(attrs_flag, ',')) {
      if (!name.empty()) names.push_back(name);
    }
    auto indices = original.schema().IndicesOf(names);
    if (!indices.ok()) return Fail(indices.status());
    attrs = indices.ValueOrDie();
    spec = protection::AdultPopulationSpec();  // generic default mix
  }

  std::printf("original: %lld records x %d attributes; protecting %zu\n",
              static_cast<long long>(original.num_rows()),
              original.num_attributes(), attrs.size());
  if (!save_original.empty()) {
    Status save_status = WriteCsvFile(original, save_original);
    if (!save_status.ok()) return Fail(save_status);
    std::printf("wrote original to %s\n", save_original.c_str());
  }

  // --- Fitness -----------------------------------------------------------
  auto aggregation = ParseScore(score_name);
  if (!aggregation.ok()) return Fail(aggregation.status());
  metrics::FitnessEvaluator::Options fitness_options;
  fitness_options.aggregation = aggregation.ValueOrDie();
  fitness_options.il_weight = il_weight;
  auto evaluator =
      metrics::FitnessEvaluator::Create(original, attrs, fitness_options);
  if (!evaluator.ok()) return Fail(evaluator.status());

  // --- Seed population ----------------------------------------------------
  auto protections = protection::BuildProtections(original, attrs, spec,
                                                  static_cast<uint64_t>(seed));
  if (!protections.ok()) return Fail(protections.status());
  std::vector<core::Individual> seeds;
  for (auto& file : protections.ValueOrDie()) {
    core::Individual individual;
    individual.data = std::move(file.data);
    individual.origin = std::move(file.method_label);
    seeds.push_back(std::move(individual));
  }
  std::printf("seeded %zu protections; evolving %lld generations (score=%s)\n",
              seeds.size(), static_cast<long long>(generations),
              score_name.c_str());

  // --- Evolve -------------------------------------------------------------
  core::GaConfig config;
  config.generations = static_cast<int>(generations);
  config.seed = static_cast<uint64_t>(seed);
  core::EvolutionEngine engine(evaluator.ValueOrDie().get(), config);
  auto run = engine.Run(std::move(seeds));
  if (!run.ok()) return Fail(run.status());
  const auto& evolution = run.ValueOrDie();

  if (report) {
    std::printf("generation,min_score,mean_score,max_score\n");
    for (const auto& record : evolution.history) {
      std::printf("%d,%.3f,%.3f,%.3f\n", record.generation, record.min_score,
                  record.mean_score, record.max_score);
    }
  }

  const auto& best = evolution.population.best();
  std::printf("best: score=%.2f IL=%.2f DR=%.2f origin=%s\n",
              best.fitness.score, best.fitness.il, best.fitness.dr,
              best.origin.c_str());

  Status write_status = WriteCsvFile(best.data, output);
  if (!write_status.ok()) return Fail(write_status);
  std::printf("wrote %s\n", output.c_str());
  return 0;
}
