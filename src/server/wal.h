/// \file wal.h
/// \brief Write-ahead log making evocatd's job queue durable across crashes.
///
/// The log is an append-only file of framed records: a `submit` record
/// carries a job id plus its serialized JobSpec, a `term` record marks the
/// id's terminal state (done/failed/canceled). Every append is fsync'd, so
/// an acknowledged submission survives `SIGKILL`. On `Open` the existing
/// file is replayed: submits without a matching terminal record become
/// `recovered()` jobs the JobManager re-queues under their original ids —
/// specs embed their seeds, so a recovered job re-runs to bit-identical
/// artifacts. A truncated or corrupt tail (torn write, disk hiccup) is
/// *quarantined*: the bad suffix is copied to `<path>.quarantine`, the log
/// is truncated back to the last whole record, and the daemon boots with
/// everything before the tear. When terminal records dominate the file it
/// is compacted in place (live submits rewritten to a temp file, atomic
/// rename), so an always-on daemon holds a bounded log.
///
/// Record framing (text header, binary-safe length-prefixed payload):
///
///   evocat-wal-v1\n                                    file header
///   R <type> <id> <state> <payload_len> <crc32hex>\n   record header
///   <payload bytes>\n
///
/// where `type` is `submit` (state `-`, payload = compact JobSpec JSON) or
/// `term` (state done|failed|canceled, empty payload). The CRC covers
/// type, id, state and payload, so replay detects both torn tails and
/// bit rot inside a record.

#ifndef EVOCAT_SERVER_WAL_H_
#define EVOCAT_SERVER_WAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/jobspec.h"
#include "common/result.h"

namespace evocat {
namespace server {

/// \brief Durable submit/terminal log with crash recovery.
class Wal {
 public:
  struct Options {
    /// fsync after every append (and after compaction). Turning this off
    /// trades the durability guarantee for append latency — tests only.
    bool sync = true;
    /// Compaction trigger: once the file exceeds this many bytes *and*
    /// live submits are under half the replayed+appended records, the log
    /// is rewritten with live submits only. 0 disables compaction.
    size_t compact_min_bytes = 1 * 1024 * 1024;
  };

  /// \brief One unfinished job found during replay, in log order.
  struct RecoveredJob {
    std::string id;
    api::JobSpec spec;
  };

  struct Stats {
    /// Whole records accepted during boot replay.
    int64_t replayed_records = 0;
    /// Submits without a terminal record (re-queued by the JobManager).
    int64_t recovered_jobs = 0;
    /// Submit payloads that no longer parse as a JobSpec (schema drift);
    /// skipped, not recovered.
    int64_t invalid_specs = 0;
    /// Bytes moved to `<path>.quarantine` at boot (0 = clean log).
    int64_t quarantined_bytes = 0;
    /// Where the bad suffix went (empty = clean log).
    std::string quarantine_path;
    /// Compactions performed since Open.
    int64_t compactions = 0;
  };

  /// \brief Opens (creating if absent) and replays the log at `path`.
  /// IOError only for unreadable/unwritable files — a damaged tail is
  /// quarantined, never fatal.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           Options options);
  static Result<std::unique_ptr<Wal>> Open(const std::string& path) {
    return Open(path, Options());
  }

  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// \brief Durably records an accepted submission. The job is only
  /// admitted once this returns OK.
  Status AppendSubmit(const std::string& id, const api::JobSpec& spec);

  /// \brief Durably records a terminal transition; `state` is one of
  /// "done", "failed", "canceled". May trigger compaction.
  Status AppendTerminal(const std::string& id, const std::string& state);

  /// \brief Unfinished jobs from replay, oldest first. The JobManager
  /// takes these exactly once; subsequent calls return an empty vector.
  std::vector<RecoveredJob> TakeRecovered();

  /// \brief 1 + the highest numeric suffix among replayed job ids, so the
  /// JobManager's id sequence resumes without collisions (1 on a fresh log).
  uint64_t next_sequence() const;

  /// \brief Replay/compaction counters (thread-safe snapshot).
  Stats stats() const;

  const std::string& path() const { return path_; }

 private:
  Wal(std::string path, Options options);

  Status ReplayLocked();
  Status QuarantineTailLocked(size_t good_prefix, const std::string& reason);
  Status AppendRecordLocked(const std::string& type, const std::string& id,
                            const std::string& state,
                            const std::string& payload);
  Status MaybeCompactLocked();

  const std::string path_;
  const Options options_;

  mutable std::mutex mutex_;
  int fd_ = -1;
  size_t file_bytes_ = 0;
  /// Records in the file right now (live submits + their terminals).
  int64_t file_records_ = 0;
  /// id -> serialized spec for submits without a terminal record yet
  /// (compaction rewrites exactly these).
  std::map<std::string, std::string> live_;
  std::vector<RecoveredJob> recovered_;
  uint64_t next_sequence_ = 1;
  Stats stats_;
};

}  // namespace server
}  // namespace evocat

#endif  // EVOCAT_SERVER_WAL_H_
