/// \file http.h
/// \brief Minimal HTTP/1.1 message layer for evocatd.
///
/// Exactly the subset the JobSpec protocol needs: request line + headers +
/// Content-Length body, one request per connection (`Connection: close`).
/// No chunked transfer, no TLS, no compression. The parser is pure
/// (string -> struct, unit-testable without sockets); `ReadHttpRequest` /
/// `WriteHttpResponse` do the fd plumbing for TCP and Unix-domain sockets
/// alike. A matching response parser plus `HttpFetch` form the tiny client
/// the integration tests (and quick scripting) use.

#ifndef EVOCAT_SERVER_HTTP_H_
#define EVOCAT_SERVER_HTTP_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace evocat {
namespace server {

/// \brief One parsed request.
struct HttpRequest {
  std::string method;   ///< uppercase, e.g. "GET"
  std::string target;   ///< raw request target, e.g. "/v1/jobs/job-1?x=1"
  std::string version;  ///< e.g. "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// \brief Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(const std::string& name) const;
  /// \brief The target's path without the query string.
  std::string Path() const;
  /// \brief Query parameters in order ("k=v" pairs; flag params get "").
  std::vector<std::pair<std::string, std::string>> QueryParams() const;
};

/// \brief One response to serialize.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Parsed client side only.
  std::vector<std::pair<std::string, std::string>> headers;

  const std::string* FindHeader(const std::string& name) const;
};

/// \brief Standard reason phrase for a status code ("OK", "Not Found", ...).
const char* HttpReasonPhrase(int status);

/// \brief Parses a complete request (headers already terminated by CRLFCRLF,
/// body matching Content-Length). Malformed input is InvalidArgument.
Result<HttpRequest> ParseHttpRequest(const std::string& raw);

/// \brief Parses a complete response (status line, headers, body to end).
Result<HttpResponse> ParseHttpResponse(const std::string& raw);

/// \brief Serializes with Content-Length and `Connection: close`.
std::string SerializeHttpResponse(const HttpResponse& response);

/// \brief Serializes a client request the same way.
std::string SerializeHttpRequest(const HttpRequest& request);

/// \brief Reads one request from a connected socket.
///
/// OutOfRange when headers exceed 64 KiB or the body exceeds
/// `max_body_bytes` (the server answers 413); IOError when the peer closes
/// before a full request arrived.
Result<HttpRequest> ReadHttpRequest(int fd, size_t max_body_bytes);

/// \brief Writes the serialized response; IOError on a broken connection.
Status WriteHttpResponse(int fd, const HttpResponse& response);

/// \brief One-shot client round trip over TCP: connect, send, read to EOF.
Result<HttpResponse> HttpFetch(const std::string& host, int port,
                               const HttpRequest& request);

/// \brief Same over a Unix-domain socket path.
Result<HttpResponse> HttpFetchUnix(const std::string& socket_path,
                                   const HttpRequest& request);

}  // namespace server
}  // namespace evocat

#endif  // EVOCAT_SERVER_HTTP_H_
