/// \file http.h
/// \brief Minimal HTTP/1.1 message layer for evocatd.
///
/// Exactly the subset the JobSpec protocol needs: request line + headers +
/// Content-Length body, with HTTP/1.1 keep-alive (multiple requests per
/// connection; `Connection: close` — or HTTP/1.0 — opts out). No chunked
/// transfer, no TLS, no compression. The parser is pure (string -> struct,
/// unit-testable without sockets); `ReadHttpRequest` / `WriteHttpResponse`
/// do the fd plumbing for TCP and Unix-domain sockets alike, with byte
/// bounds and deadlines so slow-loris clients cannot pin a server thread.
/// `HttpConnection` + `HttpFetch`/`HttpFetchRetry` form the tiny client the
/// integration tests (and quick scripting) use; the retry variant backs off
/// exponentially with jitter on connect errors, 5xx and 429.

#ifndef EVOCAT_SERVER_HTTP_H_
#define EVOCAT_SERVER_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace evocat {
namespace server {

/// \brief One parsed request.
struct HttpRequest {
  std::string method;   ///< uppercase, e.g. "GET"
  std::string target;   ///< raw request target, e.g. "/v1/jobs/job-1?x=1"
  std::string version = "HTTP/1.1";  ///< e.g. "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Client-side serialization only: ask the server to keep the
  /// connection open (`Connection: keep-alive` instead of `close`).
  bool keep_alive = false;

  /// \brief Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(const std::string& name) const;
  /// \brief The target's path without the query string.
  std::string Path() const;
  /// \brief Query parameters in order ("k=v" pairs; flag params get "").
  std::vector<std::pair<std::string, std::string>> QueryParams() const;
};

/// \brief True when the peer may send another request on this connection:
/// HTTP/1.1 without `Connection: close` (HTTP/1.0 is one-shot).
bool WantsKeepAlive(const HttpRequest& request);

/// \brief One response to serialize.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra headers to emit (e.g. `Retry-After`); also holds the parsed
  /// headers on the client side. Content-Type/Length and Connection are
  /// always synthesized from the fields above.
  std::vector<std::pair<std::string, std::string>> headers;
  /// Serialize `Connection: keep-alive` instead of `close`.
  bool keep_alive = false;

  const std::string* FindHeader(const std::string& name) const;
};

/// \brief Standard reason phrase for a status code ("OK", "Not Found", ...).
const char* HttpReasonPhrase(int status);

/// \brief Parses a complete request (headers already terminated by CRLFCRLF,
/// body matching Content-Length). Malformed input is InvalidArgument.
Result<HttpRequest> ParseHttpRequest(const std::string& raw);

/// \brief Parses a complete response (status line, headers, body to end).
Result<HttpResponse> ParseHttpResponse(const std::string& raw);

/// \brief Serializes with Content-Length, extra headers and the Connection
/// header matching `keep_alive`.
std::string SerializeHttpResponse(const HttpResponse& response);

/// \brief Serializes a client request the same way.
std::string SerializeHttpRequest(const HttpRequest& request);

/// \brief Byte bounds and deadlines for reading one request off a socket.
///
/// The idle timeout is the keep-alive window (time until the first byte of
/// the next request); the header/body timeouts bound how long a *started*
/// request may dribble in — the slow-loris guard.
struct HttpReadLimits {
  /// 431 beyond this many request-line + header bytes.
  size_t max_header_bytes = 64 * 1024;
  /// 413 beyond this many body bytes.
  size_t max_body_bytes = 8 * 1024 * 1024;
  /// Close (silently) when no first byte arrives within this window.
  int idle_timeout_ms = 30000;
  /// 408 when the header block takes longer than this to arrive.
  int header_timeout_ms = 10000;
  /// 408 when the body takes longer than this to arrive.
  int body_timeout_ms = 30000;
};

/// \brief Reads one request from a connected socket.
///
/// On failure `*http_status` (when non-null) receives the status the server
/// should answer before closing — 431/413 for the byte bounds, 408 for a
/// started-but-stalled request, 400 for a malformed one — or 0 when the
/// connection is already dead / idle-timed-out and nothing can be answered.
Result<HttpRequest> ReadHttpRequest(int fd, const HttpReadLimits& limits,
                                    int* http_status);

/// \brief Compatibility overload: default limits with `max_body_bytes`.
Result<HttpRequest> ReadHttpRequest(int fd, size_t max_body_bytes);

/// \brief Writes the serialized response; IOError on a broken connection.
Status WriteHttpResponse(int fd, const HttpResponse& response);

/// \brief A client connection that can carry several round trips
/// (keep-alive). Move-only; closes on destruction.
class HttpConnection {
 public:
  /// \brief Connects over TCP (IPv4 dotted quad) / a Unix-domain socket.
  static Result<HttpConnection> ConnectTcp(const std::string& host, int port);
  static Result<HttpConnection> ConnectUnix(const std::string& socket_path);

  HttpConnection() = default;
  ~HttpConnection();
  HttpConnection(HttpConnection&& other) noexcept;
  HttpConnection& operator=(HttpConnection&& other) noexcept;
  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  /// \brief Sends the request (keep-alive unless the request says close)
  /// and reads the Content-Length-framed response. IOError ends the
  /// connection's usefulness (`connected()` turns false).
  Result<HttpResponse> RoundTrip(const HttpRequest& request);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit HttpConnection(int fd) : fd_(fd) {}
  int fd_ = -1;
};

/// \brief One-shot client round trip over TCP: connect, send, read.
Result<HttpResponse> HttpFetch(const std::string& host, int port,
                               const HttpRequest& request);

/// \brief Same over a Unix-domain socket path.
Result<HttpResponse> HttpFetchUnix(const std::string& socket_path,
                                   const HttpRequest& request);

/// \brief Retry policy for `HttpFetchRetry`.
struct HttpRetryOptions {
  /// Total attempts (first try included).
  int max_attempts = 4;
  /// Backoff before attempt k (0-based retries): base * 2^k, capped below,
  /// plus jitter in [0, backoff/2] so a herd of clients desynchronizes.
  int base_backoff_ms = 100;
  int max_backoff_ms = 2000;
  /// Jitter stream seed (deterministic per client; vary per caller).
  uint64_t jitter_seed = 0x9E3779B97F4A7C15ull;
};

/// \brief `HttpFetch` with retries on connect/transport errors, 5xx and
/// 429 (a parseable `Retry-After` wins over the computed backoff, capped at
/// `max_backoff_ms`). Returns the last response or transport error.
Result<HttpResponse> HttpFetchRetry(const std::string& host, int port,
                                    const HttpRequest& request,
                                    const HttpRetryOptions& options);

}  // namespace server
}  // namespace evocat

#endif  // EVOCAT_SERVER_HTTP_H_
