/// \file job_manager.h
/// \brief Async job table behind the evocatd endpoints.
///
/// `Submit` admits a job into a **bounded pending queue** (ResourceExhausted
/// — HTTP 429 — when full), durably logs it to the write-ahead log when one
/// is attached, and schedules it on the work-stealing task scheduler;
/// callers poll `GetStatus`, fetch `GetResult` once the state is `done`, and
/// `Cancel` queued or running jobs. A job canceled while still queued flips
/// to `canceled` immediately — it never occupies a worker. Finished jobs are
/// retained — artifacts included — up to `Options::max_finished_jobs` *and*
/// `Options::max_retained_bytes`, then evicted oldest-first so an always-on
/// daemon holds bounded memory. On construction the manager re-queues every
/// unfinished job the WAL recovered, under its original id (specs embed
/// their seeds, so recovered jobs re-run to bit-identical artifacts).

#ifndef EVOCAT_SERVER_JOB_MANAGER_H_
#define EVOCAT_SERVER_JOB_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/session.h"
#include "common/result.h"
#include "common/task_scheduler.h"
#include "common/timer.h"

namespace evocat {
namespace server {

class Wal;

/// \brief Lifecycle of one submitted job.
enum class JobState { kQueued, kRunning, kDone, kFailed, kCanceled };

const char* JobStateToString(JobState state);

/// \brief Owns submitted jobs from queue to retained result.
class JobManager {
 public:
  struct Options {
    /// Finished jobs (done/failed/canceled) retained for result fetches;
    /// beyond this the oldest-finished entry is evicted.
    size_t max_finished_jobs = 64;
    /// Admission bound: submissions beyond this many queued jobs are
    /// answered ResourceExhausted (the server maps it to 429 +
    /// Retry-After). 0 = unbounded.
    size_t max_pending_jobs = 256;
    /// Global retention budget over the *estimated* bytes of retained
    /// artifacts; the oldest finished jobs are evicted beyond it (at least
    /// one finished job is always kept). 0 = unbounded.
    size_t max_retained_bytes = 256 * 1024 * 1024;
    /// Durable submit/terminal log; optional (nullptr = volatile queue).
    /// Must outlive the manager. Recovered jobs are re-queued by the
    /// constructor.
    Wal* wal = nullptr;
    /// When non-empty (and tracing is enabled), each finished job's trace
    /// window is exported to `<trace_dir>/<job-id>.trace.json` in Chrome
    /// trace_event format.
    std::string trace_dir;
  };

  /// \param session executes the jobs (and owns the source cache).
  /// \param scheduler runs them; both must outlive the manager.
  JobManager(api::Session* session, TaskScheduler* scheduler, Options options);
  JobManager(api::Session* session, TaskScheduler* scheduler)
      : JobManager(session, scheduler, Options()) {}
  /// \brief Cancels everything still pending and waits for in-flight jobs.
  /// Shutdown cancellations are *not* logged as terminal, so a WAL-backed
  /// daemon re-runs them on the next boot.
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// \brief Admits a (pre-validated) spec; returns the job id, or
  /// ResourceExhausted when the pending queue is full / IOError when the
  /// WAL append failed (nothing was admitted).
  Result<std::string> Submit(api::JobSpec spec);

  /// \brief Point-in-time view of one job.
  struct JobSnapshot {
    std::string id;
    std::string name;
    JobState state = JobState::kQueued;
    /// Error detail for failed/canceled jobs.
    Status error;
    /// Seconds from submit to execution start (so far, when still queued).
    double queued_seconds = 0.0;
    /// Seconds executing (so far, when still running).
    double run_seconds = 0.0;
    /// True for jobs re-queued from the WAL after a restart.
    bool recovered = false;
  };

  /// \brief NotFound for unknown (or evicted) ids.
  Result<JobSnapshot> GetStatus(const std::string& id) const;

  /// \brief The artifacts of a `done` job; Invalid while queued/running,
  /// the job's own error for failed/canceled, NotFound otherwise.
  Result<std::shared_ptr<const api::RunArtifacts>> GetResult(
      const std::string& id) const;

  /// \brief Cancels a queued or running job. A queued job flips to
  /// `canceled` before this returns (it will never run); a running job
  /// stops cooperatively at the next generation. Invalid once finished.
  Status Cancel(const std::string& id);

  /// \brief Every known job, newest first.
  std::vector<JobSnapshot> List() const;

  struct Counts {
    int64_t queued = 0;
    int64_t running = 0;
    /// Per-state counts over the *retained* job table (bounded by
    /// `max_finished_jobs`, so these cap out on long-running daemons).
    int64_t done = 0;
    int64_t failed = 0;
    int64_t canceled = 0;
    /// Monotonic lifetime count of jobs that reached a terminal state —
    /// unaffected by eviction, so progress watchers can rely on it.
    int64_t finished = 0;
  };
  Counts counts() const;

  /// \brief Load/degradation snapshot for /healthz and admission tests.
  struct Admission {
    int64_t pending = 0;            ///< queued jobs right now
    int64_t pending_capacity = 0;   ///< 0 = unbounded
    int64_t retained_bytes = 0;     ///< estimated retained artifact bytes
    int64_t retained_capacity = 0;  ///< 0 = unbounded
    int64_t rejected_submits = 0;   ///< lifetime 429s
    /// Queue at capacity or retention budget exceeded: a load balancer
    /// should drain this instance.
    bool degraded = false;
  };
  Admission admission() const;

  /// \brief Worker threads of the scheduler executing the jobs.
  int workers() const { return scheduler_->num_workers(); }

  /// \brief The attached WAL (nullptr when running volatile).
  const Wal* wal() const { return options_.wal; }

 private:
  struct Job {
    std::string id;
    api::JobSpec spec;
    JobState state = JobState::kQueued;
    api::RunControl control;
    std::shared_ptr<const api::RunArtifacts> artifacts;
    Status error;
    Timer submitted;
    double queued_seconds = 0.0;
    double run_seconds = 0.0;
    Timer started;  ///< reset when execution begins
    bool recovered = false;
    /// Estimated artifact bytes counted against `max_retained_bytes`.
    size_t retained_bytes = 0;
  };

  /// Admits one job (id already assigned) and schedules the queue drain.
  void EnqueueLocked(const std::shared_ptr<Job>& job);
  /// Scheduler task: pops and executes the oldest still-queued job.
  void RunNextPending();
  void FinishLocked(const std::shared_ptr<Job>& job, JobState state);
  /// Logs a terminal record unless the manager is shutting down (shutdown
  /// cancels must be re-run on the next boot).
  void AppendTerminalToWal(const std::string& id, JobState state);
  JobSnapshot SnapshotLocked(const Job& job) const;
  void EvictFinishedLocked();

  api::Session* session_;
  TaskScheduler* scheduler_;
  Options options_;
  TaskScheduler::Group inflight_;
  std::atomic<bool> shutting_down_{false};

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;
  /// Admission order; entries may already be terminal (canceled while
  /// queued) and are skipped at dequeue.
  std::deque<std::shared_ptr<Job>> pending_;
  /// Finished ids in completion order (eviction queue).
  std::deque<std::string> finished_order_;
  /// Lifetime terminal transitions (never decremented by eviction).
  int64_t lifetime_finished_ = 0;
  int64_t rejected_submits_ = 0;
  /// Estimated bytes of retained artifacts across finished jobs.
  size_t retained_bytes_ = 0;
  uint64_t next_id_ = 1;
};

}  // namespace server
}  // namespace evocat

#endif  // EVOCAT_SERVER_JOB_MANAGER_H_
