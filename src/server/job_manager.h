/// \file job_manager.h
/// \brief Async job table behind the evocatd endpoints.
///
/// `Submit` assigns an id and queues the job on the work-stealing task
/// scheduler; callers poll `GetStatus`, fetch `GetResult` once the state is
/// `done`, and `Cancel` queued or running jobs (running jobs stop
/// cooperatively at the next GA generation). Finished jobs are retained —
/// artifacts included — up to `Options::max_finished_jobs`, then evicted
/// oldest-first so an always-on daemon holds bounded memory.

#ifndef EVOCAT_SERVER_JOB_MANAGER_H_
#define EVOCAT_SERVER_JOB_MANAGER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/session.h"
#include "common/result.h"
#include "common/task_scheduler.h"
#include "common/timer.h"

namespace evocat {
namespace server {

/// \brief Lifecycle of one submitted job.
enum class JobState { kQueued, kRunning, kDone, kFailed, kCanceled };

const char* JobStateToString(JobState state);

/// \brief Owns submitted jobs from queue to retained result.
class JobManager {
 public:
  struct Options {
    /// Finished jobs (done/failed/canceled) retained for result fetches;
    /// beyond this the oldest-finished entry is evicted.
    size_t max_finished_jobs = 64;
  };

  /// \param session executes the jobs (and owns the source cache).
  /// \param scheduler runs them; both must outlive the manager.
  JobManager(api::Session* session, TaskScheduler* scheduler, Options options);
  JobManager(api::Session* session, TaskScheduler* scheduler)
      : JobManager(session, scheduler, Options()) {}
  /// \brief Cancels everything still pending and waits for in-flight jobs.
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// \brief Queues a (pre-validated) spec; returns the job id.
  std::string Submit(api::JobSpec spec);

  /// \brief Point-in-time view of one job.
  struct JobSnapshot {
    std::string id;
    std::string name;
    JobState state = JobState::kQueued;
    /// Error detail for failed/canceled jobs.
    Status error;
    /// Seconds from submit to execution start (so far, when still queued).
    double queued_seconds = 0.0;
    /// Seconds executing (so far, when still running).
    double run_seconds = 0.0;
  };

  /// \brief NotFound for unknown (or evicted) ids.
  Result<JobSnapshot> GetStatus(const std::string& id) const;

  /// \brief The artifacts of a `done` job; Invalid while queued/running,
  /// the job's own error for failed/canceled, NotFound otherwise.
  Result<std::shared_ptr<const api::RunArtifacts>> GetResult(
      const std::string& id) const;

  /// \brief Cancels a queued or running job (flips its cancel flag; a
  /// running job stops at the next generation). Invalid once finished.
  Status Cancel(const std::string& id);

  /// \brief Every known job, newest first.
  std::vector<JobSnapshot> List() const;

  struct Counts {
    int64_t queued = 0;
    int64_t running = 0;
    /// Per-state counts over the *retained* job table (bounded by
    /// `max_finished_jobs`, so these cap out on long-running daemons).
    int64_t done = 0;
    int64_t failed = 0;
    int64_t canceled = 0;
    /// Monotonic lifetime count of jobs that reached a terminal state —
    /// unaffected by eviction, so progress watchers can rely on it.
    int64_t finished = 0;
  };
  Counts counts() const;

  /// \brief Worker threads of the scheduler executing the jobs.
  int workers() const { return scheduler_->num_workers(); }

 private:
  struct Job {
    std::string id;
    api::JobSpec spec;
    JobState state = JobState::kQueued;
    api::RunControl control;
    std::shared_ptr<const api::RunArtifacts> artifacts;
    Status error;
    Timer submitted;
    double queued_seconds = 0.0;
    double run_seconds = 0.0;
    Timer started;  ///< reset when execution begins
  };

  void Execute(const std::shared_ptr<Job>& job);
  JobSnapshot SnapshotLocked(const Job& job) const;
  void EvictFinishedLocked();

  api::Session* session_;
  TaskScheduler* scheduler_;
  Options options_;
  TaskScheduler::Group inflight_;

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;
  /// Finished ids in completion order (eviction queue).
  std::deque<std::string> finished_order_;
  /// Lifetime terminal transitions (never decremented by eviction).
  int64_t lifetime_finished_ = 0;
  uint64_t next_id_ = 1;
};

}  // namespace server
}  // namespace evocat

#endif  // EVOCAT_SERVER_JOB_MANAGER_H_
