#include "server/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "common/params.h"
#include "common/string_utils.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace evocat {
namespace server {

namespace {

obs::Histogram* AppendSecondsHistogram() {
  static obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "evocat_wal_append_seconds",
      "WAL record append latency: serialize + write, excluding fsync.");
  return histogram;
}

obs::Histogram* FsyncSecondsHistogram() {
  static obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "evocat_wal_fsync_seconds",
      "WAL fsync latency on durable appends (Options::sync on).");
  return histogram;
}

constexpr char kFileHeader[] = "evocat-wal-v1\n";
constexpr char kTypeSubmit[] = "submit";
constexpr char kTypeTerminal[] = "term";

/// Standard CRC-32 (IEEE 802.3, reflected), table built on first use.
uint32_t Crc32(const std::string& data) {
  static const uint32_t* table = [] {
    static uint32_t entries[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
      }
      entries[i] = crc;
    }
    return entries;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string CrcHex(uint32_t crc) {
  char out[16];
  std::snprintf(out, sizeof(out), "%08x", crc);
  return out;
}

/// The bytes the record CRC covers: every field a replay decision uses.
std::string CrcInput(const std::string& type, const std::string& id,
                     const std::string& state, const std::string& payload) {
  return type + ' ' + id + ' ' + state + ' ' + payload;
}

Status WriteAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("WAL write failed: ", std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// fsync the directory holding `path` so a rename/create survives a crash.
void SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

Result<std::string> ReadWholeFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::string();
    return Status::IOError("open '", path, "' failed: ", std::strerror(errno));
  }
  std::string out;
  char buffer[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("read '", path, "' failed: ",
                             std::strerror(errno));
    }
    if (n == 0) break;
    out.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

/// Trailing decimal run of a job id ("job-000017" -> 17); 0 when none.
uint64_t IdSequence(const std::string& id) {
  size_t end = id.size();
  size_t begin = end;
  while (begin > 0 && std::isdigit(static_cast<unsigned char>(id[begin - 1]))) {
    --begin;
  }
  if (begin == end) return 0;
  uint64_t value = 0;
  for (size_t i = begin; i < end; ++i) {
    value = value * 10 + static_cast<uint64_t>(id[i] - '0');
    if (value > (uint64_t{1} << 62)) return 0;  // absurd; treat as opaque
  }
  return value;
}

}  // namespace

Wal::Wal(std::string path, Options options)
    : path_(std::move(path)), options_(options) {}

Wal::~Wal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       Options options) {
  std::unique_ptr<Wal> wal(new Wal(path, options));
  std::lock_guard<std::mutex> lock(wal->mutex_);
  EVOCAT_RETURN_NOT_OK(wal->ReplayLocked());
  return wal;
}

Status Wal::ReplayLocked() {
  EVOCAT_ASSIGN_OR_RETURN(std::string raw, ReadWholeFile(path_));

  size_t pos = 0;
  std::string damage_reason;
  if (!raw.empty()) {
    if (raw.rfind(kFileHeader, 0) != 0) {
      // Unrecognized header: quarantine the whole file rather than guess.
      damage_reason = "unrecognized WAL header";
    } else {
      pos = std::strlen(kFileHeader);
    }
  }

  size_t good_prefix = pos;
  while (damage_reason.empty() && pos < raw.size()) {
    size_t header_end = raw.find('\n', pos);
    if (header_end == std::string::npos) {
      damage_reason = "truncated record header";
      break;
    }
    std::vector<std::string> fields =
        Split(raw.substr(pos, header_end - pos), ' ');
    if (fields.size() != 6 || fields[0] != "R") {
      damage_reason = "malformed record header";
      break;
    }
    const std::string& type = fields[1];
    const std::string& id = fields[2];
    const std::string& state = fields[3];
    int64_t payload_len = 0;
    if (!ParseInt64(fields[4], &payload_len).ok() || payload_len < 0) {
      damage_reason = "bad payload length";
      break;
    }
    size_t payload_begin = header_end + 1;
    size_t record_end = payload_begin + static_cast<size_t>(payload_len) + 1;
    if (record_end > raw.size() ||
        raw[record_end - 1] != '\n') {
      damage_reason = "truncated record payload";
      break;
    }
    std::string payload =
        raw.substr(payload_begin, static_cast<size_t>(payload_len));
    if (CrcHex(Crc32(CrcInput(type, id, state, payload))) != fields[5]) {
      damage_reason = "record CRC mismatch";
      break;
    }

    if (type == kTypeSubmit) {
      live_[id] = payload;
    } else if (type == kTypeTerminal) {
      live_.erase(id);
    } else {
      damage_reason = "unknown record type '" + type + "'";
      break;
    }
    if (uint64_t seq = IdSequence(id); seq >= next_sequence_) {
      next_sequence_ = seq + 1;
    }
    ++stats_.replayed_records;
    ++file_records_;
    pos = record_end;
    good_prefix = pos;
  }

  if (!damage_reason.empty()) {
    EVOCAT_RETURN_NOT_OK(QuarantineTailLocked(good_prefix, damage_reason));
  }

  // Live submits, in log order (the log is the order; live_ is keyed by id,
  // so re-scan the accepted prefix for ordering).
  std::map<std::string, bool> taken;
  size_t scan = raw.empty() ? 0 : std::strlen(kFileHeader);
  while (scan < good_prefix) {
    size_t header_end = raw.find('\n', scan);
    std::vector<std::string> fields =
        Split(raw.substr(scan, header_end - scan), ' ');
    int64_t payload_len = 0;
    (void)ParseInt64(fields[4], &payload_len);
    size_t payload_begin = header_end + 1;
    if (fields[1] == kTypeSubmit && live_.count(fields[2]) &&
        !taken[fields[2]]) {
      taken[fields[2]] = true;
      Result<api::JobSpec> spec = api::JobSpec::FromJsonText(
          raw.substr(payload_begin, static_cast<size_t>(payload_len)));
      if (spec.ok()) {
        recovered_.push_back({fields[2], std::move(spec).ValueOrDie()});
      } else {
        ++stats_.invalid_specs;
        EVOCAT_LOG(WARNING) << "WAL submit '" << fields[2]
                            << "' no longer parses, skipping: "
                            << spec.status().ToString();
      }
    }
    scan = payload_begin + static_cast<size_t>(payload_len) + 1;
  }
  stats_.recovered_jobs = static_cast<int64_t>(recovered_.size());

  // Open for appends; write the header on a fresh file.
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::IOError("open '", path_, "' for append failed: ",
                           std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError("fstat '", path_, "' failed: ",
                           std::strerror(errno));
  }
  file_bytes_ = static_cast<size_t>(st.st_size);
  if (file_bytes_ == 0) {
    EVOCAT_RETURN_NOT_OK(WriteAll(fd_, kFileHeader));
    file_bytes_ = std::strlen(kFileHeader);
    if (options_.sync) ::fsync(fd_);
    SyncParentDir(path_);
  }
  return Status::OK();
}

Status Wal::QuarantineTailLocked(size_t good_prefix,
                                 const std::string& reason) {
  EVOCAT_ASSIGN_OR_RETURN(std::string raw, ReadWholeFile(path_));
  if (good_prefix >= raw.size()) return Status::OK();  // nothing to cut

  const std::string quarantine_path = path_ + ".quarantine";
  int qfd = ::open(quarantine_path.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                   0644);
  if (qfd < 0) {
    return Status::IOError("open '", quarantine_path, "' failed: ",
                           std::strerror(errno));
  }
  Status wrote = WriteAll(qfd, raw.substr(good_prefix));
  ::fsync(qfd);
  ::close(qfd);
  EVOCAT_RETURN_NOT_OK(wrote);

  if (::truncate(path_.c_str(), static_cast<off_t>(good_prefix)) != 0) {
    return Status::IOError("truncate '", path_, "' failed: ",
                           std::strerror(errno));
  }
  SyncParentDir(path_);
  stats_.quarantined_bytes = static_cast<int64_t>(raw.size() - good_prefix);
  stats_.quarantine_path = quarantine_path;
  EVOCAT_LOG(WARNING) << "WAL '" << path_ << "': " << reason << " at byte "
                      << good_prefix << "; quarantined "
                      << stats_.quarantined_bytes << " bytes to "
                      << quarantine_path;
  return Status::OK();
}

Status Wal::AppendRecordLocked(const std::string& type, const std::string& id,
                               const std::string& state,
                               const std::string& payload) {
  if (fd_ < 0) return Status::IOError("WAL '", path_, "' is not open");
  const bool timed = obs::MetricsEnabled();
  Timer append_timer;
  std::string record = "R " + type + ' ' + id + ' ' + state + ' ' +
                       std::to_string(payload.size()) + ' ' +
                       CrcHex(Crc32(CrcInput(type, id, state, payload))) +
                       '\n' + payload + '\n';
  EVOCAT_RETURN_NOT_OK(WriteAll(fd_, record));
  if (timed) AppendSecondsHistogram()->Observe(append_timer.ElapsedSeconds());
  if (options_.sync) {
    Timer fsync_timer;
    if (::fsync(fd_) != 0) {
      return Status::IOError("fsync '", path_, "' failed: ",
                             std::strerror(errno));
    }
    if (timed) FsyncSecondsHistogram()->Observe(fsync_timer.ElapsedSeconds());
  }
  file_bytes_ += record.size();
  ++file_records_;
  return Status::OK();
}

Status Wal::AppendSubmit(const std::string& id, const api::JobSpec& spec) {
  std::string payload = spec.ToJson().Dump(0);
  std::lock_guard<std::mutex> lock(mutex_);
  EVOCAT_RETURN_NOT_OK(AppendRecordLocked(kTypeSubmit, id, "-", payload));
  live_[id] = std::move(payload);
  if (uint64_t seq = IdSequence(id); seq >= next_sequence_) {
    next_sequence_ = seq + 1;
  }
  return Status::OK();
}

Status Wal::AppendTerminal(const std::string& id, const std::string& state) {
  std::lock_guard<std::mutex> lock(mutex_);
  EVOCAT_RETURN_NOT_OK(AppendRecordLocked(kTypeTerminal, id, state, ""));
  live_.erase(id);
  return MaybeCompactLocked();
}

Status Wal::MaybeCompactLocked() {
  if (options_.compact_min_bytes == 0) return Status::OK();
  if (file_bytes_ < options_.compact_min_bytes) return Status::OK();
  if (static_cast<int64_t>(live_.size()) * 2 >= file_records_) {
    return Status::OK();  // mostly live: rewriting would not shrink much
  }

  // Rewrite live submits to a temp file, fsync, atomically swap it in.
  const std::string tmp_path = path_ + ".compact";
  int tmp = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp < 0) {
    return Status::IOError("open '", tmp_path, "' failed: ",
                           std::strerror(errno));
  }
  std::string contents = kFileHeader;
  for (const auto& [id, payload] : live_) {
    contents += "R " + std::string(kTypeSubmit) + ' ' + id + " - " +
                std::to_string(payload.size()) + ' ' +
                CrcHex(Crc32(CrcInput(kTypeSubmit, id, "-", payload))) + '\n' +
                payload + '\n';
  }
  Status wrote = WriteAll(tmp, contents);
  if (wrote.ok() && options_.sync && ::fsync(tmp) != 0) {
    wrote = Status::IOError("fsync '", tmp_path, "' failed: ",
                            std::strerror(errno));
  }
  ::close(tmp);
  EVOCAT_RETURN_NOT_OK(wrote);
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    return Status::IOError("rename '", tmp_path, "' over '", path_,
                           "' failed: ", std::strerror(errno));
  }
  SyncParentDir(path_);

  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    return Status::IOError("reopen '", path_, "' failed: ",
                           std::strerror(errno));
  }
  file_bytes_ = contents.size();
  file_records_ = static_cast<int64_t>(live_.size());
  ++stats_.compactions;
  EVOCAT_LOG(INFO) << "WAL '" << path_ << "' compacted to " << live_.size()
                   << " live jobs (" << file_bytes_ << " bytes)";
  return Status::OK();
}

std::vector<Wal::RecoveredJob> Wal::TakeRecovered() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RecoveredJob> out;
  out.swap(recovered_);
  return out;
}

uint64_t Wal::next_sequence() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_sequence_;
}

Wal::Stats Wal::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace server
}  // namespace evocat
