#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "api/artifacts_json.h"
#include "api/jobspec.h"
#include "common/logging.h"
#include "common/version.h"

namespace evocat {
namespace server {

namespace {

/// HTTP status for a façade error (submit validation, lookups).
int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kAlreadyExists: return 409;
    case StatusCode::kCancelled: return 409;
    case StatusCode::kOutOfRange: return 413;
    case StatusCode::kNotImplemented: return 501;
    default: return 500;
  }
}

api::JsonValue ErrorJson(const Status& status) {
  api::JsonValue error = api::JsonValue::MakeObject();
  error.Set("code", api::JsonValue::MakeString(StatusCodeToString(status.code())));
  error.Set("message", api::JsonValue::MakeString(status.message()));
  api::JsonValue json = api::JsonValue::MakeObject();
  json.Set("error", std::move(error));
  return json;
}

HttpResponse JsonResponse(int status, const api::JsonValue& json) {
  HttpResponse response;
  response.status = status;
  response.body = json.Dump(2) + "\n";
  return response;
}

HttpResponse ErrorResponse(const Status& status) {
  return JsonResponse(HttpStatusFor(status), ErrorJson(status));
}

HttpResponse ErrorResponse(int http_status, const Status& status) {
  return JsonResponse(http_status, ErrorJson(status));
}

api::JsonValue SnapshotJson(const JobManager::JobSnapshot& snapshot) {
  api::JsonValue json = api::JsonValue::MakeObject();
  json.Set("id", api::JsonValue::MakeString(snapshot.id));
  json.Set("name", api::JsonValue::MakeString(snapshot.name));
  json.Set("state",
           api::JsonValue::MakeString(JobStateToString(snapshot.state)));
  json.Set("queued_seconds", api::JsonValue::MakeNumber(snapshot.queued_seconds));
  json.Set("run_seconds", api::JsonValue::MakeNumber(snapshot.run_seconds));
  if (!snapshot.error.ok()) {
    api::JsonValue error = api::JsonValue::MakeObject();
    error.Set("code", api::JsonValue::MakeString(
                          StatusCodeToString(snapshot.error.code())));
    error.Set("message", api::JsonValue::MakeString(snapshot.error.message()));
    json.Set("error", std::move(error));
  }
  return json;
}

}  // namespace

Server::Server(JobManager* jobs, api::Session* session, Options options)
    : jobs_(jobs), session_(session), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (listen_fd_ >= 0) return Status::Invalid("server already started");
  stop_.store(false, std::memory_order_relaxed);

  if (!options_.unix_socket.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IOError("socket failed: ", std::strerror(errno));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket.size() >= sizeof(addr.sun_path)) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::Invalid("unix socket path too long: '",
                             options_.unix_socket, "'");
    }
    std::strncpy(addr.sun_path, options_.unix_socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_socket.c_str());  // stale socket from a past run
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Status status = Status::IOError("bind to '", options_.unix_socket,
                                      "' failed: ", std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
    port_ = -1;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IOError("socket failed: ", std::strerror(errno));
    }
    int reuse = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::Invalid("not an IPv4 address: '", options_.host, "'");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Status status = Status::IOError("bind to ", options_.host, ":",
                                      options_.port,
                                      " failed: ", std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }

  if (::listen(listen_fd_, 64) != 0) {
    Status status = Status::IOError("listen failed: ", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  // Non-blocking accept: several I/O threads poll the same fd, and a thread
  // that loses the race for a lone connection must fall back to its poll
  // loop (where it re-checks stop_) instead of blocking in accept forever.
  ::fcntl(listen_fd_, F_SETFL,
          ::fcntl(listen_fd_, F_GETFL, 0) | O_NONBLOCK);

  int threads = options_.io_threads < 1 ? 1 : options_.io_threads;
  io_threads_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    io_threads_.emplace_back([this] { IoLoop(); });
  }
  return Status::OK();
}

void Server::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  for (auto& thread : io_threads_) thread.join();
  io_threads_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (!options_.unix_socket.empty()) {
    ::unlink(options_.unix_socket.c_str());
  }
}

void Server::IoLoop() {
  // Each I/O thread polls the shared listening socket with a timeout so Stop
  // is observed promptly, then accepts and serves one connection at a time.
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;  // timeout or EINTR
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;  // EAGAIN: a sibling thread won the race

    // A silent or glacial client must not pin this I/O thread (and block
    // Stop) forever: bound every read/write on the connection.
    timeval io_deadline{};
    io_deadline.tv_sec = 10;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &io_deadline,
                 sizeof(io_deadline));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &io_deadline,
                 sizeof(io_deadline));

    Result<HttpRequest> request = ReadHttpRequest(conn, options_.max_body_bytes);
    HttpResponse response;
    if (request.ok()) {
      response = Handle(request.ValueOrDie());
    } else if (request.status().code() == StatusCode::kIOError) {
      // Peer vanished; nothing to answer.
      ::close(conn);
      continue;
    } else {
      response = ErrorResponse(request.status());
    }
    Status written = WriteHttpResponse(conn, response);
    if (!written.ok()) {
      EVOCAT_LOG(DEBUG) << "response write failed: " << written.ToString();
    }
    ::close(conn);
  }
}

HttpResponse Server::Handle(const HttpRequest& request) {
  const std::string path = request.Path();

  if (path == "/healthz") {
    if (request.method != "GET") {
      return ErrorResponse(405, Status::Invalid("use GET ", path));
    }
    return HandleHealth();
  }

  if (path == "/v1/jobs") {
    if (request.method == "POST") return HandleSubmit(request);
    if (request.method == "GET") return HandleList();
    return ErrorResponse(405, Status::Invalid("use GET or POST ", path));
  }

  if (path.rfind("/v1/jobs/", 0) == 0) {
    std::string rest = path.substr(std::strlen("/v1/jobs/"));
    size_t slash = rest.find('/');
    std::string id = rest.substr(0, slash);
    std::string action =
        slash == std::string::npos ? std::string() : rest.substr(slash + 1);
    if (id.empty()) {
      return ErrorResponse(Status::NotFound("missing job id in '", path, "'"));
    }
    if (action.empty()) {
      if (request.method != "GET") {
        return ErrorResponse(405, Status::Invalid("use GET ", path));
      }
      return HandleStatus(id);
    }
    if (action == "result") {
      if (request.method != "GET") {
        return ErrorResponse(405, Status::Invalid("use GET ", path));
      }
      return HandleResult(request, id);
    }
    if (action == "cancel") {
      if (request.method != "POST") {
        return ErrorResponse(405, Status::Invalid("use POST ", path));
      }
      return HandleCancel(id);
    }
    return ErrorResponse(Status::NotFound("unknown job action '", action,
                                          "'; expected result|cancel"));
  }

  return ErrorResponse(Status::NotFound(
      "no route for '", path,
      "'; see docs/server.md (endpoints: /healthz, /v1/jobs)"));
}

HttpResponse Server::HandleSubmit(const HttpRequest& request) {
  // Full façade validation up front: JSON syntax errors carry line/column,
  // spec errors name the offending field. Nothing invalid reaches the queue.
  Result<api::JobSpec> spec = api::JobSpec::FromJsonText(request.body);
  if (!spec.ok()) return ErrorResponse(spec.status());

  std::string id = jobs_->Submit(std::move(spec).ValueOrDie());
  Result<JobManager::JobSnapshot> snapshot = jobs_->GetStatus(id);
  api::JsonValue json = snapshot.ok()
                            ? SnapshotJson(snapshot.ValueOrDie())
                            : api::JsonValue::MakeObject();
  if (!snapshot.ok()) json.Set("id", api::JsonValue::MakeString(id));
  json.Set("poll", api::JsonValue::MakeString("/v1/jobs/" + id));
  json.Set("result", api::JsonValue::MakeString("/v1/jobs/" + id + "/result"));
  return JsonResponse(202, json);
}

HttpResponse Server::HandleList() {
  api::JsonValue array = api::JsonValue::MakeArray();
  for (const JobManager::JobSnapshot& snapshot : jobs_->List()) {
    array.Append(SnapshotJson(snapshot));
  }
  api::JsonValue json = api::JsonValue::MakeObject();
  json.Set("jobs", std::move(array));
  return JsonResponse(200, json);
}

HttpResponse Server::HandleStatus(const std::string& id) {
  Result<JobManager::JobSnapshot> snapshot = jobs_->GetStatus(id);
  if (!snapshot.ok()) return ErrorResponse(snapshot.status());
  return JsonResponse(200, SnapshotJson(snapshot.ValueOrDie()));
}

HttpResponse Server::HandleResult(const HttpRequest& request,
                                  const std::string& id) {
  Result<JobManager::JobSnapshot> snapshot = jobs_->GetStatus(id);
  if (!snapshot.ok()) return ErrorResponse(snapshot.status());
  const JobManager::JobSnapshot& job = snapshot.ValueOrDie();
  switch (job.state) {
    case JobState::kQueued:
    case JobState::kRunning:
      return ErrorResponse(
          409, Status::Invalid("job '", id, "' is still ",
                               JobStateToString(job.state),
                               "; poll /v1/jobs/", id, " until done"));
    case JobState::kFailed:
      return ErrorResponse(500, job.error);
    case JobState::kCanceled:
      return ErrorResponse(409, job.error);
    case JobState::kDone:
      break;
  }

  api::ArtifactsJsonOptions artifact_options;
  for (const auto& [key, value] : request.QueryParams()) {
    if (key == "best_csv" && (value == "0" || value == "false")) {
      artifact_options.include_best_csv = false;
    }
  }
  Result<std::shared_ptr<const api::RunArtifacts>> artifacts =
      jobs_->GetResult(id);
  if (!artifacts.ok()) return ErrorResponse(artifacts.status());
  return JsonResponse(
      200, ArtifactsToJson(*artifacts.ValueOrDie(), artifact_options));
}

HttpResponse Server::HandleCancel(const std::string& id) {
  Status canceled = jobs_->Cancel(id);
  if (!canceled.ok()) return ErrorResponse(canceled);
  Result<JobManager::JobSnapshot> snapshot = jobs_->GetStatus(id);
  if (!snapshot.ok()) return ErrorResponse(snapshot.status());
  api::JsonValue json = SnapshotJson(snapshot.ValueOrDie());
  json.Set("canceling", api::JsonValue::MakeBool(true));
  return JsonResponse(202, json);
}

HttpResponse Server::HandleHealth() {
  api::JsonValue json = api::JsonValue::MakeObject();
  json.Set("status", api::JsonValue::MakeString("ok"));
  json.Set("version", api::JsonValue::MakeString(kVersion));
  json.Set("uptime_seconds", api::JsonValue::MakeNumber(uptime_.ElapsedSeconds()));
  json.Set("workers", api::JsonValue::MakeInt(jobs_->workers()));

  JobManager::Counts counts = jobs_->counts();
  api::JsonValue jobs = api::JsonValue::MakeObject();
  jobs.Set("queued", api::JsonValue::MakeInt(counts.queued));
  jobs.Set("running", api::JsonValue::MakeInt(counts.running));
  jobs.Set("done", api::JsonValue::MakeInt(counts.done));
  jobs.Set("failed", api::JsonValue::MakeInt(counts.failed));
  jobs.Set("canceled", api::JsonValue::MakeInt(counts.canceled));
  // Monotonic lifetime terminal count (done/failed/canceled above only
  // cover the bounded retained table): load balancers drain on queue depth
  // (queued + running) and watch finished for liveness progress.
  jobs.Set("finished", api::JsonValue::MakeInt(counts.finished));
  json.Set("jobs", std::move(jobs));

  api::Session::CacheStats stats = session_->cache_stats();
  api::JsonValue cache = api::JsonValue::MakeObject();
  cache.Set("hits", api::JsonValue::MakeInt(stats.hits));
  cache.Set("misses", api::JsonValue::MakeInt(stats.misses));
  cache.Set("evictions", api::JsonValue::MakeInt(stats.evictions));
  cache.Set("entries", api::JsonValue::MakeInt(stats.entries));
  json.Set("cache", std::move(cache));
  return JsonResponse(200, json);
}

}  // namespace server
}  // namespace evocat
