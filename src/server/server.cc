#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "api/artifacts_json.h"
#include "api/jobspec.h"
#include "common/logging.h"
#include "common/timer.h"
#include "common/version.h"
#include "obs/metrics.h"
#include "server/wal.h"

namespace evocat {
namespace server {

namespace {

/// Route classes for the request metrics: job ids collapse into `{id}` so
/// the label set stays bounded no matter how many jobs a daemon serves.
enum class Route {
  kHealthz = 0,
  kMetrics,
  kJobs,
  kJobById,
  kJobResult,
  kJobCancel,
  kOther,
  kCount,
};

Route ClassifyRoute(const std::string& path) {
  if (path == "/healthz") return Route::kHealthz;
  if (path == "/metrics") return Route::kMetrics;
  if (path == "/v1/jobs") return Route::kJobs;
  if (path.rfind("/v1/jobs/", 0) == 0) {
    std::string rest = path.substr(std::strlen("/v1/jobs/"));
    size_t slash = rest.find('/');
    if (slash == std::string::npos) return Route::kJobById;
    std::string action = rest.substr(slash + 1);
    if (action == "result") return Route::kJobResult;
    if (action == "cancel") return Route::kJobCancel;
  }
  return Route::kOther;
}

const char* RouteLabel(Route route) {
  switch (route) {
    case Route::kHealthz: return "/healthz";
    case Route::kMetrics: return "/metrics";
    case Route::kJobs: return "/v1/jobs";
    case Route::kJobById: return "/v1/jobs/{id}";
    case Route::kJobResult: return "/v1/jobs/{id}/result";
    case Route::kJobCancel: return "/v1/jobs/{id}/cancel";
    default: return "other";
  }
}

obs::Counter* RequestCounter(Route route) {
  static obs::Counter* counters[static_cast<int>(Route::kCount)] = {};
  static const bool init = [] {
    for (int i = 0; i < static_cast<int>(Route::kCount); ++i) {
      counters[i] = obs::MetricsRegistry::Global().GetCounter(
          "evocat_http_requests_total", "HTTP requests served, by route class.",
          {{"route", RouteLabel(static_cast<Route>(i))}});
    }
    return true;
  }();
  (void)init;
  return counters[static_cast<int>(route)];
}

obs::Histogram* RequestSecondsHistogram(Route route) {
  static obs::Histogram* histograms[static_cast<int>(Route::kCount)] = {};
  static const bool init = [] {
    for (int i = 0; i < static_cast<int>(Route::kCount); ++i) {
      histograms[i] = obs::MetricsRegistry::Global().GetHistogram(
          "evocat_http_request_seconds",
          "Request handling latency (routing + handler), by route class.",
          {{"route", RouteLabel(static_cast<Route>(i))}});
    }
    return true;
  }();
  (void)init;
  return histograms[static_cast<int>(route)];
}

obs::Gauge* ConnectionsGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge(
      "evocat_server_connections",
      "Accepted connections currently being served (keep-alive included).");
  return gauge;
}

/// HTTP status for a façade error (submit validation, lookups).
int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kAlreadyExists: return 409;
    case StatusCode::kCancelled: return 409;
    case StatusCode::kOutOfRange: return 413;
    case StatusCode::kResourceExhausted: return 429;
    case StatusCode::kNotImplemented: return 501;
    case StatusCode::kIOError: return 503;
    default: return 500;
  }
}

api::JsonValue ErrorJson(const Status& status) {
  api::JsonValue error = api::JsonValue::MakeObject();
  error.Set("code", api::JsonValue::MakeString(StatusCodeToString(status.code())));
  error.Set("message", api::JsonValue::MakeString(status.message()));
  api::JsonValue json = api::JsonValue::MakeObject();
  json.Set("error", std::move(error));
  return json;
}

HttpResponse JsonResponse(int status, const api::JsonValue& json) {
  HttpResponse response;
  response.status = status;
  response.body = json.Dump(2) + "\n";
  return response;
}

HttpResponse ErrorResponse(const Status& status) {
  return JsonResponse(HttpStatusFor(status), ErrorJson(status));
}

HttpResponse ErrorResponse(int http_status, const Status& status) {
  return JsonResponse(http_status, ErrorJson(status));
}

api::JsonValue SnapshotJson(const JobManager::JobSnapshot& snapshot) {
  api::JsonValue json = api::JsonValue::MakeObject();
  json.Set("id", api::JsonValue::MakeString(snapshot.id));
  json.Set("name", api::JsonValue::MakeString(snapshot.name));
  json.Set("state",
           api::JsonValue::MakeString(JobStateToString(snapshot.state)));
  json.Set("queued_seconds", api::JsonValue::MakeNumber(snapshot.queued_seconds));
  json.Set("run_seconds", api::JsonValue::MakeNumber(snapshot.run_seconds));
  if (snapshot.recovered) {
    json.Set("recovered", api::JsonValue::MakeBool(true));
  }
  if (!snapshot.error.ok()) {
    api::JsonValue error = api::JsonValue::MakeObject();
    error.Set("code", api::JsonValue::MakeString(
                          StatusCodeToString(snapshot.error.code())));
    error.Set("message", api::JsonValue::MakeString(snapshot.error.message()));
    json.Set("error", std::move(error));
  }
  return json;
}

/// Constant-time equality: the comparison's duration depends only on the
/// lengths, never on where the first mismatching byte sits, so response
/// timing leaks nothing about the expected token.
bool ConstantTimeEquals(const std::string& a, const std::string& b) {
  unsigned char acc = a.size() == b.size() ? 0 : 1;
  size_t longest = std::max(a.size(), b.size());
  for (size_t i = 0; i < longest; ++i) {
    unsigned char ca = i < a.size() ? static_cast<unsigned char>(a[i]) : 0;
    unsigned char cb = i < b.size() ? static_cast<unsigned char>(b[i]) : 0;
    acc |= static_cast<unsigned char>(ca ^ cb);
  }
  return acc == 0;
}

}  // namespace

Server::Server(JobManager* jobs, api::Session* session, Options options)
    : jobs_(jobs), session_(session), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (listen_fd_ >= 0) return Status::Invalid("server already started");
  stop_.store(false, std::memory_order_relaxed);

  if (!options_.unix_socket.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IOError("socket failed: ", std::strerror(errno));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket.size() >= sizeof(addr.sun_path)) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::Invalid("unix socket path too long: '",
                             options_.unix_socket, "'");
    }
    std::strncpy(addr.sun_path, options_.unix_socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_socket.c_str());  // stale socket from a past run
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Status status = Status::IOError("bind to '", options_.unix_socket,
                                      "' failed: ", std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
    port_ = -1;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IOError("socket failed: ", std::strerror(errno));
    }
    int reuse = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::Invalid("not an IPv4 address: '", options_.host, "'");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Status status = Status::IOError("bind to ", options_.host, ":",
                                      options_.port,
                                      " failed: ", std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }

  if (::listen(listen_fd_, 64) != 0) {
    Status status = Status::IOError("listen failed: ", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  // Non-blocking accept: several I/O threads poll the same fd, and a thread
  // that loses the race for a lone connection must fall back to its poll
  // loop (where it re-checks stop_) instead of blocking in accept forever.
  ::fcntl(listen_fd_, F_SETFL,
          ::fcntl(listen_fd_, F_GETFL, 0) | O_NONBLOCK);

  int threads = options_.io_threads < 1 ? 1 : options_.io_threads;
  io_threads_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    io_threads_.emplace_back([this] { IoLoop(); });
  }
  return Status::OK();
}

void Server::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  for (auto& thread : io_threads_) thread.join();
  io_threads_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (!options_.unix_socket.empty()) {
    ::unlink(options_.unix_socket.c_str());
  }
}

void Server::IoLoop() {
  // Each I/O thread polls the shared listening socket with a timeout so Stop
  // is observed promptly, then accepts and serves one connection at a time
  // (keep-alive: possibly many requests).
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;  // timeout or EINTR
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;  // EAGAIN: a sibling thread won the race
    ServeConnection(conn);
    ::close(conn);
  }
}

void Server::ServeConnection(int conn) {
  ConnectionsGauge()->Increment();
  struct ConnectionDone {
    ~ConnectionDone() { ConnectionsGauge()->Decrement(); }
  } connection_done;

  // A silent peer must not pin this I/O thread on writes either.
  timeval write_deadline{};
  write_deadline.tv_sec = 10;
  ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &write_deadline,
               sizeof(write_deadline));

  HttpReadLimits limits;
  limits.max_header_bytes = options_.max_header_bytes;
  limits.max_body_bytes = options_.max_body_bytes;
  limits.idle_timeout_ms = options_.idle_timeout_ms;
  limits.header_timeout_ms = options_.header_timeout_ms;
  limits.body_timeout_ms = options_.body_timeout_ms;

  int served = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    int error_status = 0;
    Result<HttpRequest> request = ReadHttpRequest(conn, limits, &error_status);
    if (!request.ok()) {
      // 400/408/413/431/501: tell the client what went wrong, then close.
      // 0 means the peer is gone or idled out — nothing to answer.
      if (error_status != 0) {
        HttpResponse response = ErrorResponse(error_status, request.status());
        response.keep_alive = false;
        (void)WriteHttpResponse(conn, response);
      }
      return;
    }

    ++served;
    bool keep = WantsKeepAlive(request.ValueOrDie()) &&
                served < options_.max_requests_per_connection &&
                !stop_.load(std::memory_order_relaxed);
    const Route route = ClassifyRoute(request.ValueOrDie().Path());
    Timer handle_timer;
    HttpResponse response = Handle(request.ValueOrDie());
    RequestCounter(route)->Increment();
    RequestSecondsHistogram(route)->Observe(handle_timer.ElapsedSeconds());
    response.keep_alive = keep;
    Status written = WriteHttpResponse(conn, response);
    if (!written.ok()) {
      EVOCAT_LOG(DEBUG) << "response write failed: " << written.ToString();
      return;
    }
    if (!keep) return;
  }
}

bool Server::Authorized(const HttpRequest& request) const {
  if (options_.auth_token.empty()) return true;
  const std::string* header = request.FindHeader("Authorization");
  if (header == nullptr) return false;
  constexpr char kScheme[] = "Bearer ";
  if (header->rfind(kScheme, 0) != 0) return false;
  return ConstantTimeEquals(header->substr(sizeof(kScheme) - 1),
                            options_.auth_token);
}

HttpResponse Server::Handle(const HttpRequest& request) {
  const std::string path = request.Path();

  if (path == "/healthz") {
    if (request.method != "GET") {
      return ErrorResponse(405, Status::Invalid("use GET ", path));
    }
    // Exempt from auth: load balancers and probes need it unauthenticated.
    return HandleHealth();
  }

  if (path == "/metrics") {
    if (request.method != "GET") {
      return ErrorResponse(405, Status::Invalid("use GET ", path));
    }
    // Exempt from auth like /healthz: Prometheus scrapers are typically
    // configured without credentials, and the exposition carries no job data.
    HttpResponse response;
    response.status = 200;
    response.content_type = "text/plain; version=0.0.4";
    response.body = obs::MetricsRegistry::Global().ToPrometheusText();
    return response;
  }

  if (!Authorized(request)) {
    HttpResponse response = ErrorResponse(
        401, Status::Invalid("missing or wrong bearer token; send "
                             "'Authorization: Bearer <token>'"));
    response.headers.emplace_back("WWW-Authenticate", "Bearer");
    return response;
  }

  if (path == "/v1/jobs") {
    if (request.method == "POST") return HandleSubmit(request);
    if (request.method == "GET") return HandleList();
    return ErrorResponse(405, Status::Invalid("use GET or POST ", path));
  }

  if (path.rfind("/v1/jobs/", 0) == 0) {
    std::string rest = path.substr(std::strlen("/v1/jobs/"));
    size_t slash = rest.find('/');
    std::string id = rest.substr(0, slash);
    std::string action =
        slash == std::string::npos ? std::string() : rest.substr(slash + 1);
    if (id.empty()) {
      return ErrorResponse(Status::NotFound("missing job id in '", path, "'"));
    }
    if (action.empty()) {
      if (request.method != "GET") {
        return ErrorResponse(405, Status::Invalid("use GET ", path));
      }
      return HandleStatus(id);
    }
    if (action == "result") {
      if (request.method != "GET") {
        return ErrorResponse(405, Status::Invalid("use GET ", path));
      }
      return HandleResult(request, id);
    }
    if (action == "cancel") {
      if (request.method != "POST") {
        return ErrorResponse(405, Status::Invalid("use POST ", path));
      }
      return HandleCancel(id);
    }
    return ErrorResponse(Status::NotFound("unknown job action '", action,
                                          "'; expected result|cancel"));
  }

  return ErrorResponse(Status::NotFound(
      "no route for '", path,
      "'; see docs/server.md (endpoints: /healthz, /v1/jobs)"));
}

HttpResponse Server::HandleSubmit(const HttpRequest& request) {
  // Full façade validation up front: JSON syntax errors carry line/column,
  // spec errors name the offending field. Nothing invalid reaches the queue.
  Result<api::JobSpec> spec = api::JobSpec::FromJsonText(request.body);
  if (!spec.ok()) return ErrorResponse(spec.status());

  Result<std::string> submitted = jobs_->Submit(std::move(spec).ValueOrDie());
  if (!submitted.ok()) {
    HttpResponse response = ErrorResponse(submitted.status());
    if (response.status == 429) {
      // Backpressure contract: a full queue is transient — tell clients
      // when to come back instead of letting them hammer the endpoint.
      response.headers.emplace_back(
          "Retry-After", std::to_string(options_.retry_after_seconds));
    }
    return response;
  }
  const std::string& id = submitted.ValueOrDie();
  Result<JobManager::JobSnapshot> snapshot = jobs_->GetStatus(id);
  api::JsonValue json = snapshot.ok()
                            ? SnapshotJson(snapshot.ValueOrDie())
                            : api::JsonValue::MakeObject();
  if (!snapshot.ok()) json.Set("id", api::JsonValue::MakeString(id));
  json.Set("poll", api::JsonValue::MakeString("/v1/jobs/" + id));
  json.Set("result", api::JsonValue::MakeString("/v1/jobs/" + id + "/result"));
  return JsonResponse(202, json);
}

HttpResponse Server::HandleList() {
  api::JsonValue array = api::JsonValue::MakeArray();
  for (const JobManager::JobSnapshot& snapshot : jobs_->List()) {
    array.Append(SnapshotJson(snapshot));
  }
  api::JsonValue json = api::JsonValue::MakeObject();
  json.Set("jobs", std::move(array));
  return JsonResponse(200, json);
}

HttpResponse Server::HandleStatus(const std::string& id) {
  Result<JobManager::JobSnapshot> snapshot = jobs_->GetStatus(id);
  if (!snapshot.ok()) return ErrorResponse(snapshot.status());
  return JsonResponse(200, SnapshotJson(snapshot.ValueOrDie()));
}

HttpResponse Server::HandleResult(const HttpRequest& request,
                                  const std::string& id) {
  Result<JobManager::JobSnapshot> snapshot = jobs_->GetStatus(id);
  if (!snapshot.ok()) return ErrorResponse(snapshot.status());
  const JobManager::JobSnapshot& job = snapshot.ValueOrDie();
  switch (job.state) {
    case JobState::kQueued:
    case JobState::kRunning:
      return ErrorResponse(
          409, Status::Invalid("job '", id, "' is still ",
                               JobStateToString(job.state),
                               "; poll /v1/jobs/", id, " until done"));
    case JobState::kFailed:
      return ErrorResponse(500, job.error);
    case JobState::kCanceled:
      return ErrorResponse(409, job.error);
    case JobState::kDone:
      break;
  }

  api::ArtifactsJsonOptions artifact_options;
  for (const auto& [key, value] : request.QueryParams()) {
    if (key == "best_csv" && (value == "0" || value == "false")) {
      artifact_options.include_best_csv = false;
    }
  }
  Result<std::shared_ptr<const api::RunArtifacts>> artifacts =
      jobs_->GetResult(id);
  if (!artifacts.ok()) return ErrorResponse(artifacts.status());
  return JsonResponse(
      200, ArtifactsToJson(*artifacts.ValueOrDie(), artifact_options));
}

HttpResponse Server::HandleCancel(const std::string& id) {
  Status canceled = jobs_->Cancel(id);
  if (!canceled.ok()) return ErrorResponse(canceled);
  Result<JobManager::JobSnapshot> snapshot = jobs_->GetStatus(id);
  if (!snapshot.ok()) return ErrorResponse(snapshot.status());
  api::JsonValue json = SnapshotJson(snapshot.ValueOrDie());
  json.Set("canceling", api::JsonValue::MakeBool(true));
  return JsonResponse(202, json);
}

HttpResponse Server::HandleHealth() {
  JobManager::Admission admission = jobs_->admission();

  api::JsonValue json = api::JsonValue::MakeObject();
  // `degraded` is the drain signal: the instance still answers, but load
  // balancers should stop routing new submissions to it.
  json.Set("status", api::JsonValue::MakeString(
                         admission.degraded ? "degraded" : "ok"));
  json.Set("degraded", api::JsonValue::MakeBool(admission.degraded));
  json.Set("version", api::JsonValue::MakeString(kVersion));
  json.Set("uptime_seconds", api::JsonValue::MakeNumber(uptime_.ElapsedSeconds()));
  json.Set("workers", api::JsonValue::MakeInt(jobs_->workers()));

  // Scheduler load, sourced from the metrics registry (the same series
  // /metrics exports) so probes see the numbers without a Prometheus stack.
  const obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  api::JsonValue scheduler = api::JsonValue::MakeObject();
  scheduler.Set("workers", api::JsonValue::MakeInt(
                               registry.GaugeValue("evocat_scheduler_workers")));
  scheduler.Set("steals",
                api::JsonValue::MakeInt(
                    registry.CounterValue("evocat_scheduler_steals_total")));
  scheduler.Set("queue_depth",
                api::JsonValue::MakeInt(
                    registry.GaugeValue("evocat_scheduler_queue_depth")));
  json.Set("scheduler", std::move(scheduler));

  JobManager::Counts counts = jobs_->counts();
  api::JsonValue jobs = api::JsonValue::MakeObject();
  jobs.Set("queued", api::JsonValue::MakeInt(counts.queued));
  jobs.Set("running", api::JsonValue::MakeInt(counts.running));
  jobs.Set("done", api::JsonValue::MakeInt(counts.done));
  jobs.Set("failed", api::JsonValue::MakeInt(counts.failed));
  jobs.Set("canceled", api::JsonValue::MakeInt(counts.canceled));
  // Monotonic lifetime terminal count (done/failed/canceled above only
  // cover the bounded retained table): load balancers drain on queue depth
  // (queued + running) and watch finished for liveness progress.
  jobs.Set("finished", api::JsonValue::MakeInt(counts.finished));
  json.Set("jobs", std::move(jobs));

  api::JsonValue queue = api::JsonValue::MakeObject();
  queue.Set("pending", api::JsonValue::MakeInt(admission.pending));
  queue.Set("capacity", api::JsonValue::MakeInt(admission.pending_capacity));
  queue.Set("rejected_submits",
            api::JsonValue::MakeInt(admission.rejected_submits));
  queue.Set("retained_bytes",
            api::JsonValue::MakeInt(admission.retained_bytes));
  queue.Set("retained_capacity",
            api::JsonValue::MakeInt(admission.retained_capacity));
  json.Set("queue", std::move(queue));

  if (const Wal* wal = jobs_->wal()) {
    Wal::Stats stats = wal->stats();
    api::JsonValue wal_json = api::JsonValue::MakeObject();
    wal_json.Set("path", api::JsonValue::MakeString(wal->path()));
    wal_json.Set("replayed_records",
                 api::JsonValue::MakeInt(stats.replayed_records));
    wal_json.Set("recovered_jobs",
                 api::JsonValue::MakeInt(stats.recovered_jobs));
    wal_json.Set("invalid_specs",
                 api::JsonValue::MakeInt(stats.invalid_specs));
    wal_json.Set("quarantined_bytes",
                 api::JsonValue::MakeInt(stats.quarantined_bytes));
    if (!stats.quarantine_path.empty()) {
      wal_json.Set("quarantine_path",
                   api::JsonValue::MakeString(stats.quarantine_path));
    }
    wal_json.Set("compactions", api::JsonValue::MakeInt(stats.compactions));
    json.Set("wal", std::move(wal_json));
  }

  api::Session::CacheStats stats = session_->cache_stats();
  api::JsonValue cache = api::JsonValue::MakeObject();
  cache.Set("hits", api::JsonValue::MakeInt(stats.hits));
  cache.Set("misses", api::JsonValue::MakeInt(stats.misses));
  cache.Set("evictions", api::JsonValue::MakeInt(stats.evictions));
  cache.Set("entries", api::JsonValue::MakeInt(stats.entries));
  json.Set("cache", std::move(cache));
  return JsonResponse(200, json);
}

}  // namespace server
}  // namespace evocat
