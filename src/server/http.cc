#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "common/params.h"
#include "common/string_utils.h"

namespace evocat {
namespace server {

namespace {

constexpr size_t kMaxHeaderBytes = 64 * 1024;

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

const std::string* FindHeaderIn(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& name) {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

/// Parses "Name: value" lines between `begin` and the blank line; returns
/// the error on malformed lines.
Status ParseHeaderLines(const std::string& raw, size_t begin, size_t end,
                        std::vector<std::pair<std::string, std::string>>* out) {
  size_t pos = begin;
  while (pos < end) {
    size_t eol = raw.find("\r\n", pos);
    if (eol == std::string::npos || eol > end) eol = end;
    std::string line = raw.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::Invalid("malformed header line '", line, "'");
    }
    out->emplace_back(Trim(line.substr(0, colon)),
                      Trim(line.substr(colon + 1)));
  }
  return Status::OK();
}

Result<int64_t> ContentLengthOf(
    const std::vector<std::pair<std::string, std::string>>& headers) {
  const std::string* value = FindHeaderIn(headers, "Content-Length");
  if (value == nullptr) return int64_t{0};
  int64_t length = 0;
  EVOCAT_RETURN_NOT_OK(ParseInt64(*value, &length));
  if (length < 0) return Status::Invalid("negative Content-Length");
  return length;
}

Status SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a peer that disconnected mid-response must surface as
    // EPIPE here, not as a process-killing SIGPIPE.
    ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("send failed: ", std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<HttpResponse> FetchOverFd(int fd, const HttpRequest& request) {
  Status sent = SendAll(fd, SerializeHttpRequest(request));
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }
  ::shutdown(fd, SHUT_WR);
  std::string raw;
  char buffer[4096];
  while (true) {
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("recv failed: ", std::strerror(errno));
    }
    if (n == 0) break;
    raw.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return ParseHttpResponse(raw);
}

}  // namespace

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  return FindHeaderIn(headers, name);
}

const std::string* HttpResponse::FindHeader(const std::string& name) const {
  return FindHeaderIn(headers, name);
}

std::string HttpRequest::Path() const {
  size_t question = target.find('?');
  return question == std::string::npos ? target : target.substr(0, question);
}

std::vector<std::pair<std::string, std::string>> HttpRequest::QueryParams()
    const {
  std::vector<std::pair<std::string, std::string>> params;
  size_t question = target.find('?');
  if (question == std::string::npos) return params;
  std::string query = target.substr(question + 1);
  for (const std::string& piece : Split(query, '&')) {
    if (piece.empty()) continue;
    size_t equals = piece.find('=');
    if (equals == std::string::npos) {
      params.emplace_back(piece, "");
    } else {
      params.emplace_back(piece.substr(0, equals), piece.substr(equals + 1));
    }
  }
  return params;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

namespace {

/// Parses the request line + header block `raw[0, headers_end)` (body not
/// attached); shared by the pure parser and the incremental fd reader.
Result<HttpRequest> ParseRequestHead(const std::string& raw,
                                     size_t headers_end) {
  size_t line_end = raw.find("\r\n");
  std::string request_line = raw.substr(0, line_end);
  std::vector<std::string> parts = Split(request_line, ' ');
  if (parts.size() != 3) {
    return Status::Invalid("malformed request line '", request_line, "'");
  }
  HttpRequest request;
  request.method = parts[0];
  request.target = parts[1];
  request.version = parts[2];
  if (request.version.rfind("HTTP/1.", 0) != 0) {
    return Status::Invalid("unsupported protocol version '", request.version,
                           "'");
  }
  EVOCAT_RETURN_NOT_OK(ParseHeaderLines(raw, line_end + 2, headers_end,
                                        &request.headers));
  if (request.FindHeader("Transfer-Encoding") != nullptr) {
    return Status::NotImplemented(
        "Transfer-Encoding is not supported; use Content-Length");
  }
  return request;
}

}  // namespace

Result<HttpRequest> ParseHttpRequest(const std::string& raw) {
  if (raw.find("\r\n") == std::string::npos) {
    return Status::Invalid("missing request line terminator");
  }
  size_t headers_end = raw.find("\r\n\r\n");
  if (headers_end == std::string::npos) {
    return Status::Invalid("missing header terminator");
  }
  EVOCAT_ASSIGN_OR_RETURN(HttpRequest request,
                          ParseRequestHead(raw, headers_end));
  EVOCAT_ASSIGN_OR_RETURN(int64_t length, ContentLengthOf(request.headers));
  size_t body_begin = headers_end + 4;
  if (raw.size() - body_begin < static_cast<size_t>(length)) {
    return Status::Invalid("body shorter than Content-Length");
  }
  request.body = raw.substr(body_begin, static_cast<size_t>(length));
  return request;
}

Result<HttpResponse> ParseHttpResponse(const std::string& raw) {
  size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) {
    return Status::Invalid("missing status line terminator");
  }
  std::string status_line = raw.substr(0, line_end);
  std::vector<std::string> parts = Split(status_line, ' ');
  if (parts.size() < 2 || parts[0].rfind("HTTP/1.", 0) != 0) {
    return Status::Invalid("malformed status line '", status_line, "'");
  }
  HttpResponse response;
  int64_t status = 0;
  EVOCAT_RETURN_NOT_OK(ParseInt64(parts[1], &status));
  response.status = static_cast<int>(status);

  size_t headers_end = raw.find("\r\n\r\n", line_end);
  if (headers_end == std::string::npos) {
    return Status::Invalid("missing header terminator");
  }
  EVOCAT_RETURN_NOT_OK(ParseHeaderLines(raw, line_end + 2, headers_end,
                                        &response.headers));
  if (const std::string* type = response.FindHeader("Content-Type")) {
    response.content_type = *type;
  }
  response.body = raw.substr(headers_end + 4);
  EVOCAT_ASSIGN_OR_RETURN(int64_t length, ContentLengthOf(response.headers));
  if (response.FindHeader("Content-Length") != nullptr &&
      static_cast<size_t>(length) <= response.body.size()) {
    response.body.resize(static_cast<size_t>(length));
  }
  return response;
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

std::string SerializeHttpRequest(const HttpRequest& request) {
  std::string out = request.method + " " +
                    (request.target.empty() ? "/" : request.target) +
                    " HTTP/1.1\r\n";
  out += "Host: evocatd\r\n";
  if (!request.body.empty()) {
    out += "Content-Type: application/json\r\n";
  }
  out += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += request.body;
  return out;
}

Result<HttpRequest> ReadHttpRequest(int fd, size_t max_body_bytes) {
  std::string raw;
  char buffer[4096];
  size_t headers_end = std::string::npos;
  // Phase 1: read until the blank line separating headers from body.
  while (headers_end == std::string::npos) {
    if (raw.size() > kMaxHeaderBytes) {
      return Status::OutOfRange("request headers exceed ", kMaxHeaderBytes,
                                " bytes");
    }
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("recv failed: ", std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("connection closed before a complete request");
    }
    size_t scan_from = raw.size() < 3 ? 0 : raw.size() - 3;
    raw.append(buffer, static_cast<size_t>(n));
    headers_end = raw.find("\r\n\r\n", scan_from);
  }
  // Phase 2: the headers announce the body size; read exactly that much.
  EVOCAT_ASSIGN_OR_RETURN(HttpRequest request,
                          ParseRequestHead(raw, headers_end));
  EVOCAT_ASSIGN_OR_RETURN(int64_t length, ContentLengthOf(request.headers));
  if (static_cast<size_t>(length) > max_body_bytes) {
    return Status::OutOfRange("request body of ", length, " bytes exceeds ",
                              max_body_bytes);
  }
  size_t total = headers_end + 4 + static_cast<size_t>(length);
  while (raw.size() < total) {
    ssize_t n = ::recv(fd, buffer,
                       std::min(sizeof(buffer), total - raw.size()), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("recv failed: ", std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("connection closed mid-body");
    }
    raw.append(buffer, static_cast<size_t>(n));
  }
  request.body = raw.substr(headers_end + 4, static_cast<size_t>(length));
  return request;
}

Status WriteHttpResponse(int fd, const HttpResponse& response) {
  return SendAll(fd, SerializeHttpResponse(response));
}

Result<HttpResponse> HttpFetch(const std::string& host, int port,
                               const HttpRequest& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket failed: ", std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::Invalid("not an IPv4 address: '", host, "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError("connect to ", host, ":", port,
                           " failed: ", std::strerror(errno));
  }
  return FetchOverFd(fd, request);
}

Result<HttpResponse> HttpFetchUnix(const std::string& socket_path,
                                   const HttpRequest& request) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket failed: ", std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status::Invalid("unix socket path too long: '", socket_path, "'");
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError("connect to ", socket_path,
                           " failed: ", std::strerror(errno));
  }
  return FetchOverFd(fd, request);
}

}  // namespace server
}  // namespace evocat
