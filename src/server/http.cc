#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/params.h"
#include "common/string_utils.h"
#include "common/timer.h"

namespace evocat {
namespace server {

namespace {

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

const std::string* FindHeaderIn(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& name) {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

/// Parses "Name: value" lines between `begin` and the blank line; returns
/// the error on malformed lines.
Status ParseHeaderLines(const std::string& raw, size_t begin, size_t end,
                        std::vector<std::pair<std::string, std::string>>* out) {
  size_t pos = begin;
  while (pos < end) {
    size_t eol = raw.find("\r\n", pos);
    if (eol == std::string::npos || eol > end) eol = end;
    std::string line = raw.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::Invalid("malformed header line '", line, "'");
    }
    out->emplace_back(Trim(line.substr(0, colon)),
                      Trim(line.substr(colon + 1)));
  }
  return Status::OK();
}

Result<int64_t> ContentLengthOf(
    const std::vector<std::pair<std::string, std::string>>& headers) {
  const std::string* value = FindHeaderIn(headers, "Content-Length");
  if (value == nullptr) return int64_t{0};
  int64_t length = 0;
  EVOCAT_RETURN_NOT_OK(ParseInt64(*value, &length));
  if (length < 0) return Status::Invalid("negative Content-Length");
  return length;
}

Status SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a peer that disconnected mid-response must surface as
    // EPIPE here, not as a process-killing SIGPIPE.
    ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("send failed: ", std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

enum class RecvOutcome { kData, kEof, kTimeout, kError };

/// One bounded recv: waits up to `timeout_ms` for readability (negative or
/// zero budget counts as already expired), then reads what is there.
RecvOutcome RecvWithTimeout(int fd, char* buffer, size_t capacity,
                            int timeout_ms, ssize_t* n_out) {
  while (true) {
    if (timeout_ms <= 0) return RecvOutcome::kTimeout;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return RecvOutcome::kError;
    }
    if (ready == 0) return RecvOutcome::kTimeout;
    ssize_t n = ::recv(fd, buffer, capacity, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return RecvOutcome::kError;
    }
    if (n == 0) return RecvOutcome::kEof;
    *n_out = n;
    return RecvOutcome::kData;
  }
}

}  // namespace

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  return FindHeaderIn(headers, name);
}

const std::string* HttpResponse::FindHeader(const std::string& name) const {
  return FindHeaderIn(headers, name);
}

std::string HttpRequest::Path() const {
  size_t question = target.find('?');
  return question == std::string::npos ? target : target.substr(0, question);
}

std::vector<std::pair<std::string, std::string>> HttpRequest::QueryParams()
    const {
  std::vector<std::pair<std::string, std::string>> params;
  size_t question = target.find('?');
  if (question == std::string::npos) return params;
  std::string query = target.substr(question + 1);
  for (const std::string& piece : Split(query, '&')) {
    if (piece.empty()) continue;
    size_t equals = piece.find('=');
    if (equals == std::string::npos) {
      params.emplace_back(piece, "");
    } else {
      params.emplace_back(piece.substr(0, equals), piece.substr(equals + 1));
    }
  }
  return params;
}

bool WantsKeepAlive(const HttpRequest& request) {
  if (request.version == "HTTP/1.0") return false;
  const std::string* connection = request.FindHeader("Connection");
  return connection == nullptr || !EqualsIgnoreCase(*connection, "close");
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

namespace {

/// Parses the request line + header block `raw[0, headers_end)` (body not
/// attached); shared by the pure parser and the incremental fd reader.
Result<HttpRequest> ParseRequestHead(const std::string& raw,
                                     size_t headers_end) {
  size_t line_end = raw.find("\r\n");
  std::string request_line = raw.substr(0, line_end);
  std::vector<std::string> parts = Split(request_line, ' ');
  if (parts.size() != 3) {
    return Status::Invalid("malformed request line '", request_line, "'");
  }
  HttpRequest request;
  request.method = parts[0];
  request.target = parts[1];
  request.version = parts[2];
  if (request.version.rfind("HTTP/1.", 0) != 0) {
    return Status::Invalid("unsupported protocol version '", request.version,
                           "'");
  }
  EVOCAT_RETURN_NOT_OK(ParseHeaderLines(raw, line_end + 2, headers_end,
                                        &request.headers));
  if (request.FindHeader("Transfer-Encoding") != nullptr) {
    return Status::NotImplemented(
        "Transfer-Encoding is not supported; use Content-Length");
  }
  return request;
}

/// The HTTP status a server should answer for a head/body parse failure.
int StatusForParseError(const Status& status) {
  return status.code() == StatusCode::kNotImplemented ? 501 : 400;
}

}  // namespace

Result<HttpRequest> ParseHttpRequest(const std::string& raw) {
  if (raw.find("\r\n") == std::string::npos) {
    return Status::Invalid("missing request line terminator");
  }
  size_t headers_end = raw.find("\r\n\r\n");
  if (headers_end == std::string::npos) {
    return Status::Invalid("missing header terminator");
  }
  EVOCAT_ASSIGN_OR_RETURN(HttpRequest request,
                          ParseRequestHead(raw, headers_end));
  EVOCAT_ASSIGN_OR_RETURN(int64_t length, ContentLengthOf(request.headers));
  size_t body_begin = headers_end + 4;
  if (raw.size() - body_begin < static_cast<size_t>(length)) {
    return Status::Invalid("body shorter than Content-Length");
  }
  request.body = raw.substr(body_begin, static_cast<size_t>(length));
  return request;
}

Result<HttpResponse> ParseHttpResponse(const std::string& raw) {
  size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) {
    return Status::Invalid("missing status line terminator");
  }
  std::string status_line = raw.substr(0, line_end);
  std::vector<std::string> parts = Split(status_line, ' ');
  if (parts.size() < 2 || parts[0].rfind("HTTP/1.", 0) != 0) {
    return Status::Invalid("malformed status line '", status_line, "'");
  }
  HttpResponse response;
  int64_t status = 0;
  EVOCAT_RETURN_NOT_OK(ParseInt64(parts[1], &status));
  response.status = static_cast<int>(status);

  size_t headers_end = raw.find("\r\n\r\n", line_end);
  if (headers_end == std::string::npos) {
    return Status::Invalid("missing header terminator");
  }
  EVOCAT_RETURN_NOT_OK(ParseHeaderLines(raw, line_end + 2, headers_end,
                                        &response.headers));
  if (const std::string* type = response.FindHeader("Content-Type")) {
    response.content_type = *type;
  }
  if (const std::string* connection = response.FindHeader("Connection")) {
    response.keep_alive = EqualsIgnoreCase(*connection, "keep-alive");
  }
  response.body = raw.substr(headers_end + 4);
  EVOCAT_ASSIGN_OR_RETURN(int64_t length, ContentLengthOf(response.headers));
  if (response.FindHeader("Content-Length") != nullptr &&
      static_cast<size_t>(length) <= response.body.size()) {
    response.body.resize(static_cast<size_t>(length));
  }
  return response;
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [key, value] : response.headers) {
    // The synthesized framing headers always win over custom entries.
    if (EqualsIgnoreCase(key, "Content-Type") ||
        EqualsIgnoreCase(key, "Content-Length") ||
        EqualsIgnoreCase(key, "Connection")) {
      continue;
    }
    out += key + ": " + value + "\r\n";
  }
  out += response.keep_alive ? "Connection: keep-alive\r\n\r\n"
                             : "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

std::string SerializeHttpRequest(const HttpRequest& request) {
  std::string out = request.method + " " +
                    (request.target.empty() ? "/" : request.target) +
                    " HTTP/1.1\r\n";
  out += "Host: evocatd\r\n";
  if (!request.body.empty()) {
    out += "Content-Type: application/json\r\n";
  }
  for (const auto& [key, value] : request.headers) {
    if (EqualsIgnoreCase(key, "Host") ||
        EqualsIgnoreCase(key, "Content-Type") ||
        EqualsIgnoreCase(key, "Content-Length") ||
        EqualsIgnoreCase(key, "Connection")) {
      continue;
    }
    out += key + ": " + value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
  out += request.keep_alive ? "Connection: keep-alive\r\n\r\n"
                            : "Connection: close\r\n\r\n";
  out += request.body;
  return out;
}

Result<HttpRequest> ReadHttpRequest(int fd, const HttpReadLimits& limits,
                                    int* http_status) {
  auto answer = [http_status](int status) {
    if (http_status != nullptr) *http_status = status;
  };
  answer(0);

  std::string raw;
  char buffer[4096];
  size_t headers_end = std::string::npos;
  Timer phase;  // idle first, restarted when the head starts/completes

  // Phase 1: read until the blank line separating headers from body. The
  // idle window applies until the first byte; from then on the whole head
  // must arrive within `header_timeout_ms` (slow-loris guard).
  while (headers_end == std::string::npos) {
    if (raw.size() > limits.max_header_bytes) {
      answer(431);
      return Status::OutOfRange("request line and headers exceed ",
                                limits.max_header_bytes, " bytes");
    }
    bool started = !raw.empty();
    int budget = (started ? limits.header_timeout_ms : limits.idle_timeout_ms) -
                 static_cast<int>(phase.ElapsedMillis());
    ssize_t n = 0;
    switch (RecvWithTimeout(fd, buffer, sizeof(buffer), budget, &n)) {
      case RecvOutcome::kTimeout:
        if (started) {
          answer(408);
          return Status::IOError("request head stalled beyond ",
                                 limits.header_timeout_ms, " ms");
        }
        return Status::IOError("connection idle beyond ",
                               limits.idle_timeout_ms, " ms");
      case RecvOutcome::kEof:
        return Status::IOError(started
                                   ? "connection closed mid-request"
                                   : "connection closed between requests");
      case RecvOutcome::kError:
        return Status::IOError("recv failed: ", std::strerror(errno));
      case RecvOutcome::kData:
        break;
    }
    if (!started) phase.Reset();  // head timing starts at the first byte
    size_t scan_from = raw.size() < 3 ? 0 : raw.size() - 3;
    raw.append(buffer, static_cast<size_t>(n));
    headers_end = raw.find("\r\n\r\n", scan_from);
  }
  if (headers_end > limits.max_header_bytes) {
    // The whole block can land in one recv, so the in-loop guard (which
    // only sees unterminated floods) is not enough on its own.
    answer(431);
    return Status::OutOfRange("request line and headers exceed ",
                              limits.max_header_bytes, " bytes");
  }

  // Phase 2: the headers announce the body size; read exactly that much
  // within the body deadline.
  Result<HttpRequest> head = ParseRequestHead(raw, headers_end);
  if (!head.ok()) {
    answer(StatusForParseError(head.status()));
    return head.status();
  }
  HttpRequest request = std::move(head).ValueOrDie();
  Result<int64_t> length_or = ContentLengthOf(request.headers);
  if (!length_or.ok()) {
    answer(400);
    return length_or.status();
  }
  int64_t length = length_or.ValueOrDie();
  if (static_cast<size_t>(length) > limits.max_body_bytes) {
    answer(413);
    return Status::OutOfRange("request body of ", length, " bytes exceeds ",
                              limits.max_body_bytes);
  }
  size_t total = headers_end + 4 + static_cast<size_t>(length);
  phase.Reset();
  while (raw.size() < total) {
    int budget =
        limits.body_timeout_ms - static_cast<int>(phase.ElapsedMillis());
    ssize_t n = 0;
    switch (RecvWithTimeout(fd, buffer,
                            std::min(sizeof(buffer), total - raw.size()),
                            budget, &n)) {
      case RecvOutcome::kTimeout:
        answer(408);
        return Status::IOError("request body stalled beyond ",
                               limits.body_timeout_ms, " ms");
      case RecvOutcome::kEof:
        return Status::IOError("connection closed mid-body");
      case RecvOutcome::kError:
        return Status::IOError("recv failed: ", std::strerror(errno));
      case RecvOutcome::kData:
        break;
    }
    raw.append(buffer, static_cast<size_t>(n));
  }
  request.body = raw.substr(headers_end + 4, static_cast<size_t>(length));
  return request;
}

Result<HttpRequest> ReadHttpRequest(int fd, size_t max_body_bytes) {
  HttpReadLimits limits;
  limits.max_body_bytes = max_body_bytes;
  return ReadHttpRequest(fd, limits, nullptr);
}

Status WriteHttpResponse(int fd, const HttpResponse& response) {
  return SendAll(fd, SerializeHttpResponse(response));
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

namespace {

Result<int> ConnectTcpFd(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket failed: ", std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::Invalid("not an IPv4 address: '", host, "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError("connect to ", host, ":", port,
                           " failed: ", std::strerror(errno));
  }
  return fd;
}

Result<int> ConnectUnixFd(const std::string& socket_path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket failed: ", std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status::Invalid("unix socket path too long: '", socket_path, "'");
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError("connect to ", socket_path,
                           " failed: ", std::strerror(errno));
  }
  return fd;
}

/// Reads one Content-Length-framed response (works on keep-alive
/// connections, where EOF never comes).
Result<HttpResponse> ReadFramedResponse(int fd) {
  std::string raw;
  char buffer[4096];
  size_t headers_end = std::string::npos;
  while (headers_end == std::string::npos) {
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("recv failed: ", std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("connection closed before a complete response");
    }
    size_t scan_from = raw.size() < 3 ? 0 : raw.size() - 3;
    raw.append(buffer, static_cast<size_t>(n));
    headers_end = raw.find("\r\n\r\n", scan_from);
  }
  std::vector<std::pair<std::string, std::string>> headers;
  size_t line_end = raw.find("\r\n");
  EVOCAT_RETURN_NOT_OK(
      ParseHeaderLines(raw, line_end + 2, headers_end, &headers));
  EVOCAT_ASSIGN_OR_RETURN(int64_t length, ContentLengthOf(headers));
  size_t total = headers_end + 4 + static_cast<size_t>(length);
  while (raw.size() < total) {
    ssize_t n = ::recv(fd, buffer,
                       std::min(sizeof(buffer), total - raw.size()), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("recv failed: ", std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("connection closed mid-response");
    }
    raw.append(buffer, static_cast<size_t>(n));
  }
  return ParseHttpResponse(raw.substr(0, total));
}

Result<HttpResponse> FetchOverFd(int fd, const HttpRequest& request) {
  Status sent = SendAll(fd, SerializeHttpRequest(request));
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }
  Result<HttpResponse> response = ReadFramedResponse(fd);
  ::close(fd);
  return response;
}

/// xorshift64* jitter stream — cheap, seedable, no global RNG state.
uint64_t NextJitter(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1Dull;
}

}  // namespace

Result<HttpConnection> HttpConnection::ConnectTcp(const std::string& host,
                                                  int port) {
  EVOCAT_ASSIGN_OR_RETURN(int fd, ConnectTcpFd(host, port));
  return HttpConnection(fd);
}

Result<HttpConnection> HttpConnection::ConnectUnix(
    const std::string& socket_path) {
  EVOCAT_ASSIGN_OR_RETURN(int fd, ConnectUnixFd(socket_path));
  return HttpConnection(fd);
}

HttpConnection::~HttpConnection() { Close(); }

HttpConnection::HttpConnection(HttpConnection&& other) noexcept
    : fd_(other.fd_) {
  other.fd_ = -1;
}

HttpConnection& HttpConnection::operator=(HttpConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void HttpConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<HttpResponse> HttpConnection::RoundTrip(const HttpRequest& request) {
  if (fd_ < 0) return Status::IOError("connection is closed");
  HttpRequest persistent = request;
  persistent.keep_alive = true;
  Status sent = SendAll(fd_, SerializeHttpRequest(persistent));
  if (!sent.ok()) {
    Close();
    return sent;
  }
  Result<HttpResponse> response = ReadFramedResponse(fd_);
  if (!response.ok() ||
      (response.ok() && !response.ValueOrDie().keep_alive)) {
    Close();  // transport error, or the server said Connection: close
  }
  return response;
}

Result<HttpResponse> HttpFetch(const std::string& host, int port,
                               const HttpRequest& request) {
  EVOCAT_ASSIGN_OR_RETURN(int fd, ConnectTcpFd(host, port));
  return FetchOverFd(fd, request);
}

Result<HttpResponse> HttpFetchUnix(const std::string& socket_path,
                                   const HttpRequest& request) {
  EVOCAT_ASSIGN_OR_RETURN(int fd, ConnectUnixFd(socket_path));
  return FetchOverFd(fd, request);
}

Result<HttpResponse> HttpFetchRetry(const std::string& host, int port,
                                    const HttpRequest& request,
                                    const HttpRetryOptions& options) {
  uint64_t jitter_state =
      options.jitter_seed == 0 ? 0x9E3779B97F4A7C15ull : options.jitter_seed;
  int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  Result<HttpResponse> last = Status::IOError("no attempt made");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      int64_t backoff = options.base_backoff_ms;
      for (int k = 1; k < attempt; ++k) backoff *= 2;
      backoff = std::min<int64_t>(backoff, options.max_backoff_ms);
      // A parseable Retry-After hint (seconds) takes precedence, capped so
      // a hostile server cannot park the client.
      if (last.ok()) {
        if (const std::string* hint =
                last.ValueOrDie().FindHeader("Retry-After")) {
          int64_t seconds = 0;
          if (ParseInt64(*hint, &seconds).ok() && seconds >= 0) {
            backoff = std::min<int64_t>(seconds * 1000,
                                        options.max_backoff_ms);
          }
        }
      }
      if (backoff > 0) {
        backoff += static_cast<int64_t>(NextJitter(&jitter_state) %
                                        (static_cast<uint64_t>(backoff) / 2 +
                                         1));
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      }
    }
    last = HttpFetch(host, port, request);
    if (!last.ok()) continue;  // connect/transport error: retry
    int status = last.ValueOrDie().status;
    if (status != 429 && status < 500) return last;
  }
  return last;
}

}  // namespace server
}  // namespace evocat
