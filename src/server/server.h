/// \file server.h
/// \brief evocatd: the long-running JobSpec front-end.
///
/// Serves the protocol documented in docs/server.md over HTTP/1.1 on TCP or
/// a Unix-domain socket:
///
///   POST /v1/jobs              submit a JobSpec, returns 202 + job id
///                              (429 + Retry-After when the queue is full)
///   GET  /v1/jobs              list jobs (newest first)
///   GET  /v1/jobs/{id}         job status
///   GET  /v1/jobs/{id}/result  RunArtifacts JSON (?best_csv=0 to omit CSV)
///   POST /v1/jobs/{id}/cancel  cooperative cancel
///   GET  /healthz              liveness + degradation + job/cache counters
///   GET  /metrics              Prometheus text exposition (version 0.0.4)
///
/// Connections are HTTP/1.1 keep-alive with idle/header/body deadlines and
/// request-line+header byte bounds (431), so slow or hostile clients cannot
/// pin the I/O threads. With `Options::auth_token` set, every route except
/// `/healthz` and `/metrics` requires `Authorization: Bearer <token>`
/// (constant-time compare; 401 otherwise). Requests are validated with the façade's
/// field-naming JSON errors; execution is asynchronous on the work-stealing
/// scheduler via JobManager. `Handle` is a pure request->response function,
/// so every route is testable without sockets; `Start` adds the socket
/// front-end (a small pool of accept+handle I/O threads).

#ifndef EVOCAT_SERVER_SERVER_H_
#define EVOCAT_SERVER_SERVER_H_

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "server/http.h"
#include "server/job_manager.h"

namespace evocat {
namespace server {

class Server {
 public:
  struct Options {
    /// TCP bind address; loopback by default (put a reverse proxy or a
    /// service mesh in front for anything else).
    std::string host = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (see `port()` after Start).
    int port = 8080;
    /// When non-empty, serve on this Unix-domain socket instead of TCP.
    std::string unix_socket;
    /// 413 for request bodies beyond this.
    size_t max_body_bytes = 8 * 1024 * 1024;
    /// 431 for request-line + header blocks beyond this.
    size_t max_header_bytes = 64 * 1024;
    /// Keep-alive idle window: the connection closes when no new request
    /// starts within this many milliseconds.
    int idle_timeout_ms = 30000;
    /// Slow-loris guard: a started request's head/body must arrive within
    /// these windows or the connection is answered 408 and closed.
    int header_timeout_ms = 10000;
    int body_timeout_ms = 30000;
    /// Requests served per connection before an orderly close (bounds how
    /// long one client can monopolize an I/O thread).
    int max_requests_per_connection = 1000;
    /// `Retry-After` seconds advertised on 429 responses.
    int retry_after_seconds = 2;
    /// When non-empty, require `Authorization: Bearer <token>` on every
    /// route except /healthz and /metrics (compared in constant time).
    std::string auth_token;
    /// Accept+handle I/O threads. Endpoint handlers never block on job
    /// execution, so a few threads absorb a deep submit/poll stream.
    int io_threads = 4;
  };

  /// \param jobs job table; \param session only consulted for /healthz cache
  /// stats (the same session the manager executes on). Both must outlive
  /// the server.
  Server(JobManager* jobs, api::Session* session, Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// \brief Binds, listens and spawns the I/O threads.
  Status Start();

  /// \brief Graceful stop: stop accepting, drain in-flight handlers.
  /// Queued/running jobs are JobManager's concern (its destructor cancels
  /// and drains them).
  void Stop();

  /// \brief Routes one request (no sockets involved).
  HttpResponse Handle(const HttpRequest& request);

  /// \brief Bound TCP port (after Start); -1 when serving a Unix socket.
  int port() const { return port_; }

 private:
  void IoLoop();
  /// Serves requests on one accepted connection until close/timeout/limit.
  void ServeConnection(int conn);
  bool Authorized(const HttpRequest& request) const;
  HttpResponse HandleSubmit(const HttpRequest& request);
  HttpResponse HandleList();
  HttpResponse HandleStatus(const std::string& id);
  HttpResponse HandleResult(const HttpRequest& request, const std::string& id);
  HttpResponse HandleCancel(const std::string& id);
  HttpResponse HandleHealth();

  JobManager* jobs_;
  api::Session* session_;
  Options options_;
  Timer uptime_;

  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> io_threads_;
};

}  // namespace server
}  // namespace evocat

#endif  // EVOCAT_SERVER_SERVER_H_
