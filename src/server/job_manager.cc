#include "server/job_manager.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "obs/trace.h"
#include "server/wal.h"

namespace evocat {
namespace server {

namespace {

/// Estimated resident bytes of a finished job's artifacts — the retention
/// budget's unit. An estimate (dictionary-encoded columns, small-string
/// optimization and allocator overhead are invisible from here), but it
/// scales with the real drivers: the protected dataset, the populations and
/// the history.
size_t ApproxArtifactBytes(const api::RunArtifacts& artifacts) {
  size_t bytes = sizeof(api::RunArtifacts);
  bytes += static_cast<size_t>(artifacts.best_data.num_cells()) *
           sizeof(int32_t);
  bytes += artifacts.history.size() * sizeof(core::GenerationRecord);
  bytes += (artifacts.initial.size() + artifacts.final_population.size() + 1) *
           (sizeof(api::MemberSummary) + 64);
  bytes += artifacts.job_name.size() + artifacts.dataset.size();
  return bytes;
}

}  // namespace

const char* JobStateToString(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCanceled: return "canceled";
  }
  return "?";
}

JobManager::JobManager(api::Session* session, TaskScheduler* scheduler,
                       Options options)
    : session_(session), scheduler_(scheduler), options_(options) {
  if (options_.wal == nullptr) return;
  // Crash recovery: everything the WAL saw submitted but not finished is
  // re-queued under its original id. Ids resume past the highest replayed
  // sequence so new submissions never collide with recovered ones.
  std::vector<Wal::RecoveredJob> recovered = options_.wal->TakeRecovered();
  std::lock_guard<std::mutex> lock(mutex_);
  next_id_ = options_.wal->next_sequence();
  for (Wal::RecoveredJob& entry : recovered) {
    std::shared_ptr<Job> job = std::make_shared<Job>();
    job->id = std::move(entry.id);
    job->spec = std::move(entry.spec);
    job->recovered = true;
    jobs_[job->id] = job;
    EnqueueLocked(job);
  }
  if (!recovered.empty()) {
    EVOCAT_LOG(INFO) << "re-queued " << recovered.size()
                     << " unfinished job(s) from WAL '"
                     << options_.wal->path() << "'";
  }
}

JobManager::~JobManager() {
  shutting_down_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, job] : jobs_) {
      (void)id;
      if (job->state == JobState::kQueued || job->state == JobState::kRunning) {
        job->control.cancel.store(true, std::memory_order_relaxed);
      }
    }
  }
  // Queued tasks observe their cancel flag and return immediately; running
  // jobs stop at the next generation. Either way the group drains. No
  // terminal WAL records are written for these, so a durable daemon re-runs
  // them after restart.
  scheduler_->Wait(&inflight_);
}

void JobManager::EnqueueLocked(const std::shared_ptr<Job>& job) {
  pending_.push_back(job);
  scheduler_->Submit(&inflight_, [this] { RunNextPending(); });
}

Result<std::string> JobManager::Submit(api::JobSpec spec) {
  std::shared_ptr<Job> job = std::make_shared<Job>();
  job->spec = std::move(spec);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t queued = 0;
    for (const auto& pending : pending_) {
      if (pending->state == JobState::kQueued) ++queued;
    }
    if (options_.max_pending_jobs > 0 && queued >= options_.max_pending_jobs) {
      ++rejected_submits_;
      return Status::ResourceExhausted(
          "pending queue is full (", queued, " of ", options_.max_pending_jobs,
          " jobs); retry with backoff");
    }
    char id[32];
    std::snprintf(id, sizeof(id), "job-%06llu",
                  static_cast<unsigned long long>(next_id_++));
    job->id = id;
  }

  // Durability first: the job is only admitted once its submit record is on
  // disk. The id was reserved above, so a concurrent submit cannot reuse it
  // even if this append fails.
  if (options_.wal != nullptr) {
    Status logged = options_.wal->AppendSubmit(job->id, job->spec);
    if (!logged.ok()) {
      return Status::IOError("job not admitted (WAL append failed): ",
                             logged.message());
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_[job->id] = job;
    EnqueueLocked(job);
  }
  return job->id;
}

void JobManager::RunNextPending() {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    while (!pending_.empty()) {
      std::shared_ptr<Job> candidate = std::move(pending_.front());
      pending_.pop_front();
      if (candidate->state != JobState::kQueued) continue;  // canceled early
      if (candidate->control.cancel.load(std::memory_order_relaxed)) {
        // Canceled (e.g. at shutdown) without the immediate-cancel path:
        // never ran.
        candidate->error = Status::Cancelled("job canceled while queued");
        FinishLocked(candidate, JobState::kCanceled);
        continue;
      }
      job = std::move(candidate);
      break;
    }
    if (job == nullptr) return;  // every entry was already terminal
    job->state = JobState::kRunning;
    job->queued_seconds = job->submitted.ElapsedSeconds();
    job->started.Reset();
  }

  Result<api::RunArtifacts> result = Status::Internal("job did not run");
  {
    // Log lines from the job's execution carry its id, and the job's span
    // window brackets a per-job Chrome trace export below.
    ScopedLogJobId log_job_id(job->id);
    const int64_t window_begin = obs::TraceNowNs();
    {
      obs::TraceSpan job_span("job:" + job->id, "evocat");
      result = session_->Run(job->spec, &job->control);
    }
    if (!options_.trace_dir.empty() && obs::TracingEnabled()) {
      const int64_t window_end = obs::TraceNowNs();
      const std::string path =
          options_.trace_dir + "/" + job->id + ".trace.json";
      std::string error;
      if (!obs::WriteChromeTrace(
              path, obs::SnapshotTraceWindow(window_begin, window_end),
              &error)) {
        EVOCAT_LOG(WARNING) << "trace export for '" << job->id
                            << "' failed: " << error;
      }
    }
  }

  JobState terminal;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->run_seconds = job->started.ElapsedSeconds();
    if (result.ok()) {
      terminal = JobState::kDone;
      job->artifacts = std::make_shared<const api::RunArtifacts>(
          std::move(result).ValueOrDie());
      job->retained_bytes = ApproxArtifactBytes(*job->artifacts);
      retained_bytes_ += job->retained_bytes;
    } else if (result.status().code() == StatusCode::kCancelled) {
      terminal = JobState::kCanceled;
      job->error = result.status();
    } else {
      terminal = JobState::kFailed;
      job->error = result.status();
    }
    FinishLocked(job, terminal);
  }
  AppendTerminalToWal(job->id, terminal);
}

void JobManager::FinishLocked(const std::shared_ptr<Job>& job,
                              JobState state) {
  job->state = state;
  finished_order_.push_back(job->id);
  ++lifetime_finished_;
  EvictFinishedLocked();
}

void JobManager::AppendTerminalToWal(const std::string& id, JobState state) {
  if (options_.wal == nullptr) return;
  if (shutting_down_.load(std::memory_order_relaxed) &&
      state == JobState::kCanceled) {
    return;  // shutdown cancel: keep the job live so the next boot re-runs it
  }
  Status logged = options_.wal->AppendTerminal(id, JobStateToString(state));
  if (!logged.ok()) {
    // Worst case the job is re-run after a restart — deterministic specs
    // make that harmless, so a terminal-append failure only costs work.
    EVOCAT_LOG(WARNING) << "WAL terminal append for '" << id
                        << "' failed: " << logged.ToString();
  }
}

JobManager::JobSnapshot JobManager::SnapshotLocked(const Job& job) const {
  JobSnapshot snapshot;
  snapshot.id = job.id;
  snapshot.name = job.spec.name;
  snapshot.state = job.state;
  snapshot.error = job.error;
  snapshot.recovered = job.recovered;
  switch (job.state) {
    case JobState::kQueued:
      snapshot.queued_seconds = job.submitted.ElapsedSeconds();
      break;
    case JobState::kRunning:
      snapshot.queued_seconds = job.queued_seconds;
      snapshot.run_seconds = job.started.ElapsedSeconds();
      break;
    default:
      snapshot.queued_seconds = job.queued_seconds;
      snapshot.run_seconds = job.run_seconds;
      break;
  }
  return snapshot;
}

Result<JobManager::JobSnapshot> JobManager::GetStatus(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown job id '", id, "'");
  }
  return SnapshotLocked(*it->second);
}

Result<std::shared_ptr<const api::RunArtifacts>> JobManager::GetResult(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown job id '", id, "'");
  }
  const Job& job = *it->second;
  switch (job.state) {
    case JobState::kQueued:
    case JobState::kRunning:
      return Status::Invalid("job '", id, "' is still ",
                             JobStateToString(job.state));
    case JobState::kDone:
      return job.artifacts;
    default:
      return job.error;
  }
}

Status JobManager::Cancel(const std::string& id) {
  JobState terminal = JobState::kRunning;  // sentinel: nothing to log yet
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return Status::NotFound("unknown job id '", id, "'");
    }
    Job& job = *it->second;
    switch (job.state) {
      case JobState::kQueued:
        // Still queued: cancel takes effect *now* — the job flips to
        // canceled before this returns and never occupies a worker (the
        // dequeue loop skips non-queued entries). Without this, a canceled
        // job sits "queued" behind the backlog, holds an admission slot,
        // and only transitions when a worker finally dequeues it.
        job.control.cancel.store(true, std::memory_order_relaxed);
        job.error = Status::Cancelled("job canceled while queued");
        job.queued_seconds = job.submitted.ElapsedSeconds();
        FinishLocked(it->second, JobState::kCanceled);
        terminal = JobState::kCanceled;
        break;
      case JobState::kRunning:
        // Cooperative: the engine polls the flag at the next generation.
        job.control.cancel.store(true, std::memory_order_relaxed);
        break;
      default:
        return Status::Invalid("job '", id, "' already finished (",
                               JobStateToString(job.state), ")");
    }
  }
  if (terminal == JobState::kCanceled) {
    AppendTerminalToWal(id, terminal);
  }
  return Status::OK();
}

std::vector<JobManager::JobSnapshot> JobManager::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobSnapshot> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {
    (void)id;
    out.push_back(SnapshotLocked(*job));
  }
  // Ids are zero-padded sequence numbers, so lexicographic descending is
  // newest first.
  std::sort(out.begin(), out.end(),
            [](const JobSnapshot& a, const JobSnapshot& b) { return a.id > b.id; });
  return out;
}

JobManager::Counts JobManager::counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Counts counts;
  for (const auto& [id, job] : jobs_) {
    (void)id;
    switch (job->state) {
      case JobState::kQueued: ++counts.queued; break;
      case JobState::kRunning: ++counts.running; break;
      case JobState::kDone: ++counts.done; break;
      case JobState::kFailed: ++counts.failed; break;
      case JobState::kCanceled: ++counts.canceled; break;
    }
  }
  counts.finished = lifetime_finished_;
  return counts;
}

JobManager::Admission JobManager::admission() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Admission admission;
  for (const auto& pending : pending_) {
    if (pending->state == JobState::kQueued) ++admission.pending;
  }
  admission.pending_capacity =
      static_cast<int64_t>(options_.max_pending_jobs);
  admission.retained_bytes = static_cast<int64_t>(retained_bytes_);
  admission.retained_capacity =
      static_cast<int64_t>(options_.max_retained_bytes);
  admission.rejected_submits = rejected_submits_;
  admission.degraded =
      (admission.pending_capacity > 0 &&
       admission.pending >= admission.pending_capacity) ||
      (admission.retained_capacity > 0 &&
       admission.retained_bytes > admission.retained_capacity);
  return admission;
}

void JobManager::EvictFinishedLocked() {
  auto evict_oldest = [this] {
    auto it = jobs_.find(finished_order_.front());
    if (it != jobs_.end()) {
      retained_bytes_ -= std::min(retained_bytes_,
                                  it->second->retained_bytes);
      jobs_.erase(it);
    }
    finished_order_.pop_front();
  };
  while (finished_order_.size() > options_.max_finished_jobs) {
    evict_oldest();
  }
  // Retention budget: evict oldest-first beyond the byte cap, but always
  // keep the newest finished job so its submitter can fetch it.
  while (options_.max_retained_bytes > 0 &&
         retained_bytes_ > options_.max_retained_bytes &&
         finished_order_.size() > 1) {
    evict_oldest();
  }
}

}  // namespace server
}  // namespace evocat
