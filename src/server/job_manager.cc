#include "server/job_manager.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace evocat {
namespace server {

const char* JobStateToString(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCanceled: return "canceled";
  }
  return "?";
}

JobManager::JobManager(api::Session* session, TaskScheduler* scheduler,
                       Options options)
    : session_(session), scheduler_(scheduler), options_(options) {}

JobManager::~JobManager() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, job] : jobs_) {
      (void)id;
      if (job->state == JobState::kQueued || job->state == JobState::kRunning) {
        job->control.cancel.store(true, std::memory_order_relaxed);
      }
    }
  }
  // Queued tasks observe their cancel flag and return immediately; running
  // jobs stop at the next generation. Either way the group drains.
  scheduler_->Wait(&inflight_);
}

std::string JobManager::Submit(api::JobSpec spec) {
  std::shared_ptr<Job> job = std::make_shared<Job>();
  job->spec = std::move(spec);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    char id[32];
    std::snprintf(id, sizeof(id), "job-%06llu",
                  static_cast<unsigned long long>(next_id_++));
    job->id = id;
    jobs_[job->id] = job;
  }
  scheduler_->Submit(&inflight_, [this, job] { Execute(job); });
  return job->id;
}

void JobManager::Execute(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job->control.cancel.load(std::memory_order_relaxed)) {
      // Canceled while queued: never ran.
      job->state = JobState::kCanceled;
      job->error = Status::Cancelled("job canceled while queued");
      job->queued_seconds = job->submitted.ElapsedSeconds();
      finished_order_.push_back(job->id);
      ++lifetime_finished_;
      EvictFinishedLocked();
      return;
    }
    job->state = JobState::kRunning;
    job->queued_seconds = job->submitted.ElapsedSeconds();
    job->started.Reset();
  }

  Result<api::RunArtifacts> result = session_->Run(job->spec, &job->control);

  std::lock_guard<std::mutex> lock(mutex_);
  job->run_seconds = job->started.ElapsedSeconds();
  if (result.ok()) {
    job->state = JobState::kDone;
    job->artifacts = std::make_shared<const api::RunArtifacts>(
        std::move(result).ValueOrDie());
  } else if (result.status().code() == StatusCode::kCancelled) {
    job->state = JobState::kCanceled;
    job->error = result.status();
  } else {
    job->state = JobState::kFailed;
    job->error = result.status();
  }
  finished_order_.push_back(job->id);
  ++lifetime_finished_;
  EvictFinishedLocked();
}

JobManager::JobSnapshot JobManager::SnapshotLocked(const Job& job) const {
  JobSnapshot snapshot;
  snapshot.id = job.id;
  snapshot.name = job.spec.name;
  snapshot.state = job.state;
  snapshot.error = job.error;
  switch (job.state) {
    case JobState::kQueued:
      snapshot.queued_seconds = job.submitted.ElapsedSeconds();
      break;
    case JobState::kRunning:
      snapshot.queued_seconds = job.queued_seconds;
      snapshot.run_seconds = job.started.ElapsedSeconds();
      break;
    default:
      snapshot.queued_seconds = job.queued_seconds;
      snapshot.run_seconds = job.run_seconds;
      break;
  }
  return snapshot;
}

Result<JobManager::JobSnapshot> JobManager::GetStatus(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown job id '", id, "'");
  }
  return SnapshotLocked(*it->second);
}

Result<std::shared_ptr<const api::RunArtifacts>> JobManager::GetResult(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown job id '", id, "'");
  }
  const Job& job = *it->second;
  switch (job.state) {
    case JobState::kQueued:
    case JobState::kRunning:
      return Status::Invalid("job '", id, "' is still ",
                             JobStateToString(job.state));
    case JobState::kDone:
      return job.artifacts;
    default:
      return job.error;
  }
}

Status JobManager::Cancel(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown job id '", id, "'");
  }
  Job& job = *it->second;
  if (job.state != JobState::kQueued && job.state != JobState::kRunning) {
    return Status::Invalid("job '", id, "' already finished (",
                           JobStateToString(job.state), ")");
  }
  job.control.cancel.store(true, std::memory_order_relaxed);
  return Status::OK();
}

std::vector<JobManager::JobSnapshot> JobManager::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobSnapshot> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {
    (void)id;
    out.push_back(SnapshotLocked(*job));
  }
  // Ids are zero-padded sequence numbers, so lexicographic descending is
  // newest first.
  std::sort(out.begin(), out.end(),
            [](const JobSnapshot& a, const JobSnapshot& b) { return a.id > b.id; });
  return out;
}

JobManager::Counts JobManager::counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Counts counts;
  for (const auto& [id, job] : jobs_) {
    (void)id;
    switch (job->state) {
      case JobState::kQueued: ++counts.queued; break;
      case JobState::kRunning: ++counts.running; break;
      case JobState::kDone: ++counts.done; break;
      case JobState::kFailed: ++counts.failed; break;
      case JobState::kCanceled: ++counts.canceled; break;
    }
  }
  counts.finished = lifetime_finished_;
  return counts;
}

void JobManager::EvictFinishedLocked() {
  while (finished_order_.size() > options_.max_finished_jobs) {
    jobs_.erase(finished_order_.front());
    finished_order_.pop_front();
  }
}

}  // namespace server
}  // namespace evocat
