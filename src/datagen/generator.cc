#include "datagen/generator.h"

#include <cmath>
#include <memory>

#include "common/math_utils.h"
#include "common/rng.h"
#include "common/string_utils.h"

namespace evocat {
namespace datagen {

namespace {

/// Builds the per-attribute category label, e.g. "BUILT_07".
std::string CategoryLabel(const std::string& attr_name, int index) {
  return StrFormat("%s_%02d", attr_name.c_str(), index);
}

int32_t SampleOrdinal(const SyntheticAttribute& spec, double latent, Rng* rng) {
  int card = spec.cardinality;
  if (rng->Bernoulli(spec.latent_weight)) {
    // Noisy position along the category order, tied to the latent factor.
    double pos = latent * (card - 1) + rng->Gaussian() * 0.12 * card;
    return static_cast<int32_t>(Clamp(std::lround(pos), 0, card - 1));
  }
  return static_cast<int32_t>(rng->Zipf(static_cast<size_t>(card), spec.zipf_s));
}

int32_t SampleNominal(const SyntheticAttribute& spec, double latent,
                      const std::vector<int32_t>& permutation, Rng* rng) {
  int card = spec.cardinality;
  if (rng->Bernoulli(spec.latent_weight)) {
    auto slot = static_cast<size_t>(Clamp(std::floor(latent * card), 0, card - 1));
    return permutation[slot];
  }
  return static_cast<int32_t>(rng->Zipf(static_cast<size_t>(card), spec.zipf_s));
}

}  // namespace

Result<Dataset> Generate(const SyntheticProfile& profile, uint64_t seed) {
  if (profile.num_records <= 0) {
    return Status::Invalid("profile '", profile.name, "' has no records");
  }
  if (profile.attributes.empty()) {
    return Status::Invalid("profile '", profile.name, "' has no attributes");
  }
  for (const auto& spec : profile.attributes) {
    if (spec.cardinality < 2) {
      return Status::Invalid("attribute '", spec.name,
                             "' needs cardinality >= 2, got ", spec.cardinality);
    }
    if (spec.latent_weight < 0.0 || spec.latent_weight > 1.0) {
      return Status::Invalid("attribute '", spec.name,
                             "' latent_weight outside [0,1]");
    }
  }

  auto schema = std::make_shared<Schema>();
  for (const auto& spec : profile.attributes) {
    Attribute attr(spec.name, spec.kind);
    // Pre-register the full domain in natural order (rank == code for
    // ordinals), independent of what gets sampled.
    for (int c = 0; c < spec.cardinality; ++c) {
      attr.dictionary().GetOrAdd(CategoryLabel(spec.name, c));
    }
    schema->AddAttribute(std::move(attr));
  }

  Rng rng(seed);
  // Fixed per-attribute permutations for nominal latent slots.
  std::vector<std::vector<int32_t>> permutations(profile.attributes.size());
  for (size_t a = 0; a < profile.attributes.size(); ++a) {
    const auto& spec = profile.attributes[a];
    permutations[a].resize(static_cast<size_t>(spec.cardinality));
    for (int c = 0; c < spec.cardinality; ++c) {
      permutations[a][static_cast<size_t>(c)] = c;
    }
    if (spec.kind == AttrKind::kNominal) rng.Shuffle(&permutations[a]);
  }

  // Streaming generation: the columns are pre-sized once and filled by
  // direct writes (samples are in-range by construction, so the per-row
  // append validation would only re-prove what Clamp/Zipf guarantee). The
  // sampling order is unchanged — one latent draw per record, then one
  // sample per attribute — so any seed produces the exact file the
  // row-append path did, at any record count.
  Dataset dataset(schema);
  auto n = static_cast<size_t>(profile.num_records);
  std::vector<int32_t*> cells(profile.attributes.size());
  for (size_t a = 0; a < profile.attributes.size(); ++a) {
    auto& col = dataset.mutable_column(static_cast<int>(a));
    col.resize(n);
    cells[a] = col.data();
  }
  for (size_t r = 0; r < n; ++r) {
    double latent = rng.UniformDouble();
    for (size_t a = 0; a < profile.attributes.size(); ++a) {
      const auto& spec = profile.attributes[a];
      cells[a][r] = spec.kind == AttrKind::kOrdinal
                        ? SampleOrdinal(spec, latent, &rng)
                        : SampleNominal(spec, latent, permutations[a], &rng);
    }
  }
  return dataset;
}

Result<std::vector<int>> ProtectedAttributeIndices(const SyntheticProfile& profile,
                                                   const Dataset& dataset) {
  return dataset.schema().IndicesOf(profile.protected_attributes);
}

}  // namespace datagen
}  // namespace evocat
