/// \file generator.h
/// \brief Sampler turning a `SyntheticProfile` into a concrete `Dataset`.

#ifndef EVOCAT_DATAGEN_GENERATOR_H_
#define EVOCAT_DATAGEN_GENERATOR_H_

#include <cstdint>

#include "common/result.h"
#include "data/dataset.h"
#include "datagen/profile.h"

namespace evocat {
namespace datagen {

/// \brief Generates a dataset from `profile` deterministically from `seed`.
///
/// Model: each record draws a latent factor u ~ U(0,1). Each attribute value
/// is, with probability `latent_weight`, derived from u (ordinal: a noisy
/// position along the category order; nominal: a latent-driven category passed
/// through a fixed per-attribute permutation so that label identities are
/// scrambled while the correlation structure survives), and otherwise drawn
/// from a Zipf(s) marginal. All categories of every attribute are registered
/// in the dictionaries before sampling, so the full domain is available to
/// downstream components even if a category is never sampled.
Result<Dataset> Generate(const SyntheticProfile& profile, uint64_t seed);

/// \brief Resolves the profile's protected attribute names to schema indices.
Result<std::vector<int>> ProtectedAttributeIndices(const SyntheticProfile& profile,
                                                   const Dataset& dataset);

}  // namespace datagen
}  // namespace evocat

#endif  // EVOCAT_DATAGEN_GENERATOR_H_
