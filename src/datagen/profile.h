/// \file profile.h
/// \brief Declarative specification of a synthetic categorical dataset.
///
/// The paper evaluates on four UCI files (U.S. Housing Survey '93, German
/// Credit, Solar Flare, Adult). Those files are not shipped here; instead we
/// generate synthetic datasets with the same shape: identical record counts,
/// attribute counts and per-attribute category cardinalities (which the paper
/// itself identifies as the property governing optimization difficulty),
/// skewed marginals, and latent-factor correlation between attributes so that
/// record-linkage attacks and joint-distribution measures behave
/// realistically.

#ifndef EVOCAT_DATAGEN_PROFILE_H_
#define EVOCAT_DATAGEN_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/schema.h"

namespace evocat {
namespace datagen {

/// \brief Specification of one synthetic attribute.
struct SyntheticAttribute {
  /// Attribute name (becomes the schema attribute name).
  std::string name;
  /// Nominal or ordinal; governs distances and coding methods downstream.
  AttrKind kind = AttrKind::kNominal;
  /// Number of categories in the domain (all pre-registered, even if a
  /// category ends up unsampled, so the GA mutation domain is complete).
  int cardinality = 2;
  /// Zipf exponent of the skewed marginal component (0 = uniform).
  double zipf_s = 0.8;
  /// Mixing weight in [0,1] of the record's latent factor: higher values make
  /// the attribute more predictable from the other attributes of the record.
  double latent_weight = 0.5;
};

/// \brief Specification of a whole synthetic dataset.
struct SyntheticProfile {
  std::string name;
  int64_t num_records = 0;
  std::vector<SyntheticAttribute> attributes;
  /// Names of the attributes the paper protects (the GA quasi-identifiers).
  std::vector<std::string> protected_attributes;
};

/// \brief U.S. Housing Survey 1993 stand-in: 1000 records x 11 attributes;
/// protected BUILT(25, ordinal), DEGREE(8, ordinal), GRADE1(21, nominal).
SyntheticProfile HousingProfile();

/// \brief German Credit stand-in: 1000 x 13; protected EXISTACC(5),
/// SAVINGS(6), PRESEMPLOY(6), all ordinal.
SyntheticProfile GermanCreditProfile();

/// \brief Solar Flare stand-in: 1066 x 13; protected CLASS(8, ordinal),
/// LARGSPOT(7, ordinal), SPOTDIST(5, nominal).
SyntheticProfile SolarFlareProfile();

/// \brief Adult stand-in: 1000 x 8; protected EDUCATION(16, ordinal),
/// MARITAL_STATUS(7, nominal), OCCUPATION(14, nominal).
SyntheticProfile AdultProfile();

/// \brief Uniform, uncorrelated profile for tests: `cards[i]` categories per
/// attribute, attribute names a0, a1, ...
SyntheticProfile UniformTestProfile(const std::string& name, int64_t num_records,
                                    const std::vector<int>& cards);

/// \brief Named-profile lookup ("housing" | "german" | "flare" | "adult"),
/// the spelling a JobSpec's synthetic source uses.
Result<SyntheticProfile> ProfileByName(const std::string& name);

}  // namespace datagen
}  // namespace evocat

#endif  // EVOCAT_DATAGEN_PROFILE_H_
