#include "datagen/profile.h"

namespace evocat {
namespace datagen {

namespace {
constexpr AttrKind kNom = AttrKind::kNominal;
constexpr AttrKind kOrd = AttrKind::kOrdinal;

SyntheticAttribute Attr(std::string name, AttrKind kind, int card, double zipf,
                        double latent) {
  SyntheticAttribute a;
  a.name = std::move(name);
  a.kind = kind;
  a.cardinality = card;
  a.zipf_s = zipf;
  a.latent_weight = latent;
  return a;
}
}  // namespace

SyntheticProfile HousingProfile() {
  SyntheticProfile p;
  p.name = "housing";
  p.num_records = 1000;
  p.attributes = {
      Attr("BUILT", kOrd, 25, 0.60, 0.65),      // year-built bucket (protected)
      Attr("DEGREE", kOrd, 8, 0.80, 0.55),      // comfort rating (protected)
      Attr("GRADE1", kNom, 21, 0.90, 0.60),     // building grade (protected)
      Attr("REGION", kNom, 4, 0.40, 0.30),
      Attr("METRO", kNom, 5, 0.70, 0.40),
      Attr("TENURE", kNom, 3, 0.80, 0.35),
      Attr("ROOMS", kOrd, 9, 0.50, 0.55),
      Attr("UNITS", kOrd, 6, 0.90, 0.45),
      Attr("PLUMBING", kNom, 3, 1.40, 0.20),
      Attr("HEAT", kNom, 7, 0.85, 0.35),
      Attr("OWNRENT", kNom, 2, 0.50, 0.30),
  };
  p.protected_attributes = {"BUILT", "DEGREE", "GRADE1"};
  return p;
}

SyntheticProfile GermanCreditProfile() {
  SyntheticProfile p;
  p.name = "german";
  p.num_records = 1000;
  p.attributes = {
      Attr("EXISTACC", kOrd, 5, 0.55, 0.60),     // checking status (protected)
      Attr("SAVINGS", kOrd, 6, 0.75, 0.60),      // savings bucket (protected)
      Attr("PRESEMPLOY", kOrd, 6, 0.60, 0.55),   // employment length (protected)
      Attr("PURPOSE", kNom, 10, 0.85, 0.35),
      Attr("CREDITHIST", kNom, 5, 0.70, 0.45),
      Attr("PERSONAL", kNom, 4, 0.60, 0.30),
      Attr("GUARANTORS", kNom, 3, 1.30, 0.25),
      Attr("PROPERTY", kNom, 4, 0.55, 0.45),
      Attr("INSTALLPLANS", kNom, 3, 1.10, 0.25),
      Attr("HOUSING", kNom, 3, 0.90, 0.35),
      Attr("JOB", kOrd, 4, 0.65, 0.50),
      Attr("TELEPHONE", kNom, 2, 0.45, 0.20),
      Attr("FOREIGN", kNom, 2, 1.60, 0.15),
  };
  p.protected_attributes = {"EXISTACC", "SAVINGS", "PRESEMPLOY"};
  return p;
}

SyntheticProfile SolarFlareProfile() {
  SyntheticProfile p;
  p.name = "flare";
  p.num_records = 1066;
  p.attributes = {
      Attr("CLASS", kOrd, 8, 0.70, 0.65),        // Zurich class (protected)
      Attr("LARGSPOT", kOrd, 7, 0.65, 0.60),     // largest spot size (protected)
      Attr("SPOTDIST", kNom, 5, 0.75, 0.60),     // spot distribution (protected)
      Attr("ACTIVITY", kNom, 2, 0.90, 0.30),
      Attr("EVOLUTION", kOrd, 3, 0.50, 0.45),
      Attr("PREVACT", kNom, 3, 1.10, 0.35),
      Attr("HISTCOMPLEX", kNom, 2, 0.80, 0.30),
      Attr("BECOMEHIST", kNom, 2, 1.40, 0.25),
      Attr("AREA", kNom, 2, 1.20, 0.35),
      Attr("AREALARG", kNom, 2, 1.50, 0.25),
      Attr("CFLARE", kOrd, 6, 1.30, 0.40),
      Attr("MFLARE", kOrd, 4, 1.60, 0.35),
      Attr("XFLARE", kOrd, 3, 1.80, 0.30),
  };
  p.protected_attributes = {"CLASS", "LARGSPOT", "SPOTDIST"};
  return p;
}

SyntheticProfile AdultProfile() {
  SyntheticProfile p;
  p.name = "adult";
  p.num_records = 1000;
  p.attributes = {
      Attr("EDUCATION", kOrd, 16, 0.55, 0.65),       // protected
      Attr("MARITAL_STATUS", kNom, 7, 0.70, 0.55),   // protected
      Attr("OCCUPATION", kNom, 14, 0.50, 0.60),      // protected
      Attr("WORKCLASS", kNom, 8, 1.10, 0.40),
      Attr("RELATIONSHIP", kNom, 6, 0.60, 0.50),
      Attr("RACE", kNom, 5, 1.50, 0.20),
      Attr("SEX", kNom, 2, 0.30, 0.25),
      Attr("INCOME", kNom, 2, 0.75, 0.45),
  };
  p.protected_attributes = {"EDUCATION", "MARITAL_STATUS", "OCCUPATION"};
  return p;
}

SyntheticProfile UniformTestProfile(const std::string& name, int64_t num_records,
                                    const std::vector<int>& cards) {
  SyntheticProfile p;
  p.name = name;
  p.num_records = num_records;
  for (size_t i = 0; i < cards.size(); ++i) {
    p.attributes.push_back(Attr("a" + std::to_string(i), kNom,
                                cards[i], /*zipf=*/0.0, /*latent=*/0.0));
    p.protected_attributes.push_back("a" + std::to_string(i));
  }
  return p;
}

Result<SyntheticProfile> ProfileByName(const std::string& name) {
  if (name == "housing") return HousingProfile();
  if (name == "german") return GermanCreditProfile();
  if (name == "flare") return SolarFlareProfile();
  if (name == "adult") return AdultProfile();
  return Status::NotFound("unknown synthetic profile '", name,
                          "'; expected housing|german|flare|adult");
}

}  // namespace datagen
}  // namespace evocat
