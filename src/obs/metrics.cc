#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

namespace evocat {
namespace obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

/// Stripe index for the calling thread: cheap thread hash, fixed per thread
/// so a thread keeps hitting the same cache line.
int ThreadStripe() {
  static std::atomic<int> next{0};
  thread_local int stripe =
      next.fetch_add(1, std::memory_order_relaxed) & (Counter::kStripes - 1);
  return stripe;
}

/// Renders `{k="v",k2="v2"}` with Prometheus label-value escaping
/// (backslash, double quote, newline); empty labels render as "".
std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return std::string();
  std::string out = "{";
  bool first = true;
  for (const auto& kv : labels) {
    if (!first) out += ",";
    first = false;
    out += kv.first;
    out += "=\"";
    for (char c : kv.second) {
      if (c == '\\') {
        out += "\\\\";
      } else if (c == '"') {
        out += "\\\"";
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += "\"";
  }
  out += "}";
  return out;
}

std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Bucket bound text: trim to the shortest representation that round-trips
/// the typical 0.0001/0.25/2.5 bounds ("%g" keeps them short and exact).
std::string FormatBound(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

Labels SortedLabels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

enum class MetricType { kCounter, kGauge, kHistogram };

struct Series {
  std::string label_text;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct Family {
  MetricType type = MetricType::kCounter;
  std::string help;
  // Keyed by rendered label text: registration-order independent, and the
  // exposition iterates it already sorted.
  std::map<std::string, std::unique_ptr<Series>> series;
};

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Counter / Gauge / Histogram
// ---------------------------------------------------------------------------

void Counter::Add(int64_t delta) {
  if (!MetricsEnabled()) return;
  stripes_[ThreadStripe()].value.fetch_add(delta, std::memory_order_relaxed);
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::Set(int64_t value) {
  if (!MetricsEnabled()) return;
  value_.store(value, std::memory_order_relaxed);
}

void Gauge::Add(int64_t delta) {
  if (!MetricsEnabled()) return;
  value_.fetch_add(delta, std::memory_order_relaxed);
}

int64_t Gauge::Value() const {
  return value_.load(std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  if (!MetricsEnabled()) return;
  // Buckets are few (~16): linear scan beats binary search in practice and
  // never mispredicts on the common small-latency values.
  size_t bucket = bounds_.size();
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

int64_t Histogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

const std::vector<double>& DefaultLatencyBuckets() {
  static const std::vector<double>* buckets = new std::vector<double>{
      0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
      0.05,   0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0};
  return *buckets;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, Family> families;
  // Type-mismatch guard: metrics handed out for a name already registered as
  // a different type. Never exported, never freed — misuse stays safe.
  std::vector<std::unique_ptr<Counter>> detached_counters;
  std::vector<std::unique_ptr<Gauge>> detached_gauges;
  std::vector<std::unique_ptr<Histogram>> detached_histograms;
};

MetricsRegistry::Impl* MetricsRegistry::impl() const {
  // Leaked deliberately: instrumented statics may fire during other statics'
  // destruction at process exit.
  static Impl* impl = new Impl();
  return impl;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const Labels& labels) {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mutex);
  Family& family = state->families[name];
  if (!family.series.empty() && family.type != MetricType::kCounter) {
    state->detached_counters.emplace_back(new Counter());
    return state->detached_counters.back().get();
  }
  family.type = MetricType::kCounter;
  if (family.help.empty()) family.help = help;
  std::unique_ptr<Series>& series = family.series[RenderLabels(SortedLabels(labels))];
  if (series == nullptr) {
    series.reset(new Series());
    series->counter.reset(new Counter());
  }
  return series->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const Labels& labels) {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mutex);
  Family& family = state->families[name];
  if (!family.series.empty() && family.type != MetricType::kGauge) {
    state->detached_gauges.emplace_back(new Gauge());
    return state->detached_gauges.back().get();
  }
  family.type = MetricType::kGauge;
  if (family.help.empty()) family.help = help;
  std::unique_ptr<Series>& series = family.series[RenderLabels(SortedLabels(labels))];
  if (series == nullptr) {
    series.reset(new Series());
    series->gauge.reset(new Gauge());
  }
  return series->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const Labels& labels,
                                         const std::vector<double>& bounds) {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mutex);
  Family& family = state->families[name];
  if (!family.series.empty() && family.type != MetricType::kHistogram) {
    state->detached_histograms.emplace_back(
        new Histogram(bounds.empty() ? DefaultLatencyBuckets() : bounds));
    return state->detached_histograms.back().get();
  }
  family.type = MetricType::kHistogram;
  if (family.help.empty()) family.help = help;
  std::unique_ptr<Series>& series = family.series[RenderLabels(SortedLabels(labels))];
  if (series == nullptr) {
    series.reset(new Series());
    series->histogram.reset(
        new Histogram(bounds.empty() ? DefaultLatencyBuckets() : bounds));
  }
  return series->histogram.get();
}

int64_t MetricsRegistry::CounterValue(const std::string& name,
                                      const Labels& labels) const {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mutex);
  auto family = state->families.find(name);
  if (family == state->families.end() ||
      family->second.type != MetricType::kCounter) {
    return 0;
  }
  auto series = family->second.series.find(RenderLabels(SortedLabels(labels)));
  if (series == family->second.series.end()) return 0;
  return series->second->counter->Value();
}

int64_t MetricsRegistry::GaugeValue(const std::string& name,
                                    const Labels& labels) const {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mutex);
  auto family = state->families.find(name);
  if (family == state->families.end() ||
      family->second.type != MetricType::kGauge) {
    return 0;
  }
  auto series = family->second.series.find(RenderLabels(SortedLabels(labels)));
  if (series == family->second.series.end()) return 0;
  return series->second->gauge->Value();
}

std::vector<CounterSample> MetricsRegistry::CounterTotals() const {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mutex);
  std::vector<CounterSample> out;
  for (const auto& family : state->families) {
    if (family.second.type != MetricType::kCounter) continue;
    for (const auto& series : family.second.series) {
      out.push_back(
          {family.first + series.first, series.second->counter->Value()});
    }
  }
  return out;
}

std::string MetricsRegistry::ToPrometheusText() const {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mutex);
  std::string out;
  for (const auto& entry : state->families) {
    const std::string& name = entry.first;
    const Family& family = entry.second;
    if (family.series.empty()) continue;
    out += "# HELP " + name + " " + EscapeHelp(family.help) + "\n";
    out += "# TYPE " + name + " ";
    out += TypeName(family.type);
    out += "\n";
    for (const auto& series : family.series) {
      const std::string& label_text = series.first;
      switch (family.type) {
        case MetricType::kCounter:
          out += name + label_text + " " +
                 std::to_string(series.second->counter->Value()) + "\n";
          break;
        case MetricType::kGauge:
          out += name + label_text + " " +
                 std::to_string(series.second->gauge->Value()) + "\n";
          break;
        case MetricType::kHistogram: {
          const Histogram& histogram = *series.second->histogram;
          // The `le` label is appended to the series' own labels; bucket
          // counts are cumulative per the exposition format.
          std::string prefix = label_text.empty()
                                   ? "{le=\""
                                   : label_text.substr(0, label_text.size() - 1) +
                                         ",le=\"";
          std::vector<int64_t> counts = histogram.BucketCounts();
          int64_t cumulative = 0;
          for (size_t i = 0; i < histogram.bounds().size(); ++i) {
            cumulative += counts[i];
            out += name + "_bucket" + prefix + FormatBound(histogram.bounds()[i]) +
                   "\"} " + std::to_string(cumulative) + "\n";
          }
          cumulative += counts.back();
          out += name + "_bucket" + prefix + "+Inf\"} " +
                 std::to_string(cumulative) + "\n";
          out += name + "_sum" + label_text + " " +
                 FormatDouble(histogram.Sum()) + "\n";
          out += name + "_count" + label_text + " " +
                 std::to_string(cumulative) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace evocat
