#include "obs/trace.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <utility>

namespace evocat {
namespace obs {

namespace {

std::atomic<bool> g_tracing_enabled{false};

/// Ring storage. A mutex is fine here: spans are coarse (a generation, a
/// session stage, an HTTP request), so appends are thousands per second at
/// the very most — nowhere near contention territory. Keeping it simple
/// keeps it TSan-clean.
struct Ring {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  size_t capacity = 0;
  uint64_t total = 0;  // appends ever; total - size = dropped
};

Ring* GlobalRing() {
  // Leaked deliberately: spans may fire from static destructors.
  static Ring* ring = new Ring();
  return ring;
}

int ThreadId() {
  static std::atomic<int> next{1};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Append(TraceEvent event) {
  Ring* ring = GlobalRing();
  std::lock_guard<std::mutex> lock(ring->mutex);
  if (ring->capacity == 0) return;
  if (ring->events.size() < ring->capacity) {
    ring->events.push_back(std::move(event));
  } else {
    ring->events[ring->total % ring->capacity] = std::move(event);
  }
  ++ring->total;
}

void AppendJsonEscaped(std::string* out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    char c = *p;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

void EnableTracing(size_t capacity) {
  Ring* ring = GlobalRing();
  {
    std::lock_guard<std::mutex> lock(ring->mutex);
    ring->events.clear();
    ring->events.reserve(capacity);
    ring->capacity = capacity;
    ring->total = 0;
  }
  g_tracing_enabled.store(true, std::memory_order_relaxed);
}

void DisableTracing() {
  g_tracing_enabled.store(false, std::memory_order_relaxed);
}

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

int64_t TraceNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<TraceEvent> SnapshotTrace() {
  Ring* ring = GlobalRing();
  std::lock_guard<std::mutex> lock(ring->mutex);
  if (ring->total <= ring->events.size()) return ring->events;
  // Wrapped: unroll oldest-first starting at the overwrite cursor.
  std::vector<TraceEvent> out;
  out.reserve(ring->events.size());
  size_t cursor = ring->total % ring->capacity;
  for (size_t i = 0; i < ring->events.size(); ++i) {
    out.push_back(ring->events[(cursor + i) % ring->capacity]);
  }
  return out;
}

std::vector<TraceEvent> SnapshotTraceWindow(int64_t begin_ns, int64_t end_ns) {
  std::vector<TraceEvent> all = SnapshotTrace();
  std::vector<TraceEvent> out;
  for (auto& event : all) {
    if (event.start_ns >= begin_ns && event.start_ns <= end_ns) {
      out.push_back(std::move(event));
    }
  }
  return out;
}

int64_t DroppedTraceEvents() {
  Ring* ring = GlobalRing();
  std::lock_guard<std::mutex> lock(ring->mutex);
  return static_cast<int64_t>(ring->total - ring->events.size());
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  char buf[128];
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, event.name.c_str());
    out += "\",\"cat\":\"";
    AppendJsonEscaped(&out, event.category);
    // Complete events ("ph":"X"); Chrome expects microsecond timestamps.
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%d}",
                  static_cast<double>(event.start_ns) / 1000.0,
                  static_cast<double>(event.duration_ns) / 1000.0, event.tid);
    out += buf;
  }
  out += "]}";
  return out;
}

bool WriteChromeTrace(const std::string& path,
                      const std::vector<TraceEvent>& events,
                      std::string* error) {
  std::string json = ChromeTraceJson(events);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + path + ": " + std::strerror(errno);
    }
    return false;
  }
  bool ok = std::fwrite(json.data(), 1, json.size(), file) == json.size();
  ok = std::fclose(file) == 0 && ok;
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

TraceSpan::TraceSpan(const char* name, const char* category)
    : category_(category) {
  if (!TracingEnabled()) return;
  name_ = name;
  start_ns_ = TraceNowNs();
  active_ = true;
}

TraceSpan::TraceSpan(std::string name, const char* category)
    : category_(category) {
  if (!TracingEnabled()) return;
  name_ = std::move(name);
  start_ns_ = TraceNowNs();
  active_ = true;
}

TraceSpan::~TraceSpan() {
  if (!active_ || !TracingEnabled()) return;
  TraceEvent event;
  event.name = std::move(name_);
  event.category = category_;
  event.start_ns = start_ns_;
  event.duration_ns = TraceNowNs() - start_ns_;
  event.tid = ThreadId();
  Append(std::move(event));
}

}  // namespace obs
}  // namespace evocat
