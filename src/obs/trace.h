/// \file trace.h
/// \brief RAII trace spans with a bounded ring buffer and Chrome
/// `trace_event` JSON export.
///
/// Tracing is off by default: a `TraceSpan` constructed while tracing is
/// disabled costs one relaxed atomic load and records nothing. When enabled
/// (CLI `--trace-out`, evocatd `--trace-dir`), spans capture name, thread,
/// start and duration on a steady clock and append to a process-wide ring
/// buffer; once the ring wraps, the oldest events are overwritten and
/// counted in `DroppedTraceEvents()`, so memory stays bounded no matter how
/// long the process runs.
///
/// Spans never branch on data values and never touch RNG state — tracing on
/// vs off is bit-identical by construction and proven by the oracle tests.
/// The exported JSON loads in any Chrome-trace viewer (chrome://tracing,
/// https://ui.perfetto.dev).

#ifndef EVOCAT_OBS_TRACE_H_
#define EVOCAT_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace evocat {
namespace obs {

/// \brief One completed span. Times are steady-clock nanoseconds (same
/// epoch as `TraceNowNs`), thread ids are small integers assigned in
/// first-span order.
struct TraceEvent {
  std::string name;
  const char* category = "evocat";
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  int tid = 0;
};

/// \brief Starts recording into a fresh ring of `capacity` events.
void EnableTracing(size_t capacity = 1 << 16);
/// \brief Stops recording; already-captured events stay snapshot-able until
/// the next `EnableTracing`.
void DisableTracing();
bool TracingEnabled();

/// \brief Steady-clock now, comparable with `TraceEvent::start_ns`. Used to
/// bracket per-job export windows on evocatd.
int64_t TraceNowNs();

/// \brief Events recorded so far, oldest first.
std::vector<TraceEvent> SnapshotTrace();
/// \brief Events whose start falls in `[begin_ns, end_ns]` — the per-job
/// export window on a daemon running many jobs.
std::vector<TraceEvent> SnapshotTraceWindow(int64_t begin_ns, int64_t end_ns);
/// \brief Events overwritten after the ring wrapped (0 when sized right).
int64_t DroppedTraceEvents();

/// \brief Renders events as Chrome trace JSON
/// (`{"traceEvents":[{"ph":"X",...}]}`, timestamps in microseconds).
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

/// \brief Writes `ChromeTraceJson` to `path`. Returns false and fills
/// `error` (when non-null) on I/O failure.
bool WriteChromeTrace(const std::string& path,
                      const std::vector<TraceEvent>& events,
                      std::string* error = nullptr);

/// \brief RAII span: records [construction, destruction) when tracing is
/// enabled at both ends. The string overload is for per-job names
/// ("job:<id>"); hot paths should pass a literal.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "evocat");
  TraceSpan(std::string name, const char* category);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  const char* category_ = "evocat";
  int64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace obs
}  // namespace evocat

#endif  // EVOCAT_OBS_TRACE_H_
