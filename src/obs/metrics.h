/// \file metrics.h
/// \brief Process-wide metrics registry: counters, gauges, histograms.
///
/// Design goals, in order:
///  1. Telemetry never changes results. No RNG, no allocation on hot paths,
///     and a process-wide kill switch (`SetMetricsEnabled`) that reduces
///     every write to one relaxed atomic load. The oracle tests prove runs
///     are bit-identical with the switch on and off.
///  2. Writers never block each other. Counters are striped across cache
///     lines and written with relaxed `fetch_add`; the registry mutex is
///     taken only on registration and snapshot.
///  3. Readers never stop writers. `ToPrometheusText` and the snapshot
///     helpers just sum the stripes — concurrent writers keep going, and a
///     snapshot taken after a quiescent point sums exactly.
///
/// Metrics are registered by family name + label set and live for the
/// process (pointers returned by `GetCounter` et al. are stable forever), so
/// hot call sites cache them in function-local statics.
///
/// This layer sits *below* `common/` (the TaskScheduler is instrumented), so
/// it depends on nothing but the standard library.

#ifndef EVOCAT_OBS_METRICS_H_
#define EVOCAT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace evocat {
namespace obs {

/// \brief Kill switch: when false (default is true) every metric write is a
/// no-op after one relaxed load. Flipped by the overhead bench and the
/// off-vs-on oracle tests; registration still works while disabled.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

/// \brief Label set attached to one series, e.g. {{"op", "mutation"}}.
/// Order-insensitive: the registry sorts by key before keying the series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonic counter, striped across cache lines so concurrent
/// writers on different cores do not bounce one line.
class Counter {
 public:
  void Add(int64_t delta);
  void Increment() { Add(1); }
  /// \brief Sums the stripes; exact once writers are quiescent.
  int64_t Value() const;

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  static constexpr int kStripes = 16;

 private:
  friend class MetricsRegistry;
  Counter() = default;

  struct alignas(64) Stripe {
    std::atomic<int64_t> value{0};
  };
  Stripe stripes_[kStripes];
};

/// \brief Up/down gauge. A single atomic: gauge writes (connection open,
/// queue push) are orders of magnitude rarer than counter bumps.
class Gauge {
 public:
  void Set(int64_t value);
  void Add(int64_t delta);
  void Increment() { Add(1); }
  void Decrement() { Add(-1); }
  int64_t Value() const;

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket histogram for latencies in seconds. Buckets are
/// per-bucket (non-cumulative) atomics internally and cumulative (`le`) in
/// the Prometheus exposition.
class Histogram {
 public:
  void Observe(double value);
  int64_t Count() const;
  double Sum() const;
  /// \brief Per-bucket counts, one extra slot for +Inf.
  std::vector<int64_t> BucketCounts() const;
  const std::vector<double>& bounds() const { return bounds_; }

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;  // strictly increasing upper bounds
  std::vector<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1 (+Inf)
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};  // CAS loop; fetch_add(double) is C++20
};

/// \brief Default latency buckets: 100µs .. 10s, roughly log-spaced —
/// covers a WAL fsync on one end and a heavy GA generation on the other.
const std::vector<double>& DefaultLatencyBuckets();

/// \brief One exported counter series: rendered name (`name{k="v"}` or bare
/// `name`) plus its current value. Used by healthz and the RunArtifacts
/// telemetry section.
struct CounterSample {
  std::string series;
  int64_t value = 0;
};

/// \brief Process-wide registry. All methods are thread-safe.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// \brief Finds or creates a series; the pointer stays valid for the
  /// process lifetime. `help` is recorded on first registration of the
  /// family. A family re-registered as a different metric type returns a
  /// detached instance that is never exported (internal misuse guard).
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  /// \brief `bounds` empty selects `DefaultLatencyBuckets()`. Bounds are
  /// fixed at first registration of the series.
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const Labels& labels = {},
                          const std::vector<double>& bounds = {});

  /// \brief Current value of one series, 0 when absent (never registers).
  int64_t CounterValue(const std::string& name, const Labels& labels = {}) const;
  int64_t GaugeValue(const std::string& name, const Labels& labels = {}) const;

  /// \brief Every counter series (sorted by rendered name) with its value.
  std::vector<CounterSample> CounterTotals() const;

  /// \brief Prometheus text exposition (version 0.0.4): `# HELP` / `# TYPE`
  /// per family, series sorted, histograms as cumulative `_bucket`/`_sum`/
  /// `_count`.
  std::string ToPrometheusText() const;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl* impl() const;
};

}  // namespace obs
}  // namespace evocat

#endif  // EVOCAT_OBS_METRICS_H_
