/// \file generational.cc
/// \brief The paper-faithful default strategy.
///
/// Delegates to `core::EvolutionEngine::Run` verbatim, so a JobSpec with
/// `strategy: {"name": "generational"}` (or no strategy at all) is
/// bit-identical to the pre-strategy engine — the property the strategy
/// determinism tests pin down.

#include "core/engine.h"
#include "evolve/registry.h"
#include "evolve/strategy.h"

namespace evocat {
namespace evolve {

namespace {

class GenerationalStrategy : public EvolutionStrategy {
 public:
  std::string name() const override { return "generational"; }

  Result<core::EvolutionResult> Run(
      const metrics::FitnessEvaluator* evaluator,
      const core::GaConfig& config, std::vector<core::Individual> initial,
      const std::atomic<bool>* cancel) const override {
    core::EvolutionEngine engine(evaluator, config);
    return engine.Run(std::move(initial), nullptr, cancel);
  }
};

}  // namespace

void RegisterGenerationalStrategy(StrategyRegistry* registry) {
  Status status = registry->Register(
      "generational",
      [](const ParamMap& params)
          -> Result<std::unique_ptr<EvolutionStrategy>> {
        ParamReader reader("generational", params);
        EVOCAT_RETURN_NOT_OK(reader.Finish());  // no parameters accepted
        return std::unique_ptr<EvolutionStrategy>(new GenerationalStrategy());
      });
  (void)status;
}

}  // namespace evolve
}  // namespace evocat
