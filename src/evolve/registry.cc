#include "evolve/registry.h"

#include <algorithm>

#include "common/string_utils.h"

namespace evocat {
namespace evolve {

StrategyRegistry& StrategyRegistry::Global() {
  static StrategyRegistry* registry = [] {
    auto* r = new StrategyRegistry();
    RegisterGenerationalStrategy(r);
    RegisterSteadyStateStrategy(r);
    RegisterIslandsStrategy(r);
    return r;
  }();
  return *registry;
}

Status StrategyRegistry::Register(const std::string& name,
                                  StrategyFactory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key = ToLower(name);
  if (entries_.count(key)) {
    return Status::AlreadyExists("evolution strategy '", name,
                                 "' is already registered");
  }
  entries_[key] = Entry{name, std::move(factory)};
  return Status::OK();
}

Result<std::unique_ptr<EvolutionStrategy>> StrategyRegistry::Create(
    const std::string& name, const ParamMap& params) const {
  StrategyFactory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(ToLower(name));
    if (it == entries_.end()) {
      std::vector<std::string> names;
      for (const auto& [key, entry] : entries_) {
        (void)key;
        names.push_back(entry.canonical_name);
      }
      return Status::NotFound("unknown evolution strategy '", name,
                              "'; known: ", Join(names, ','));
    }
    factory = it->second.factory;
  }
  return factory(params);
}

bool StrategyRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(ToLower(name)) > 0;
}

std::vector<std::string> StrategyRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    (void)key;
    names.push_back(entry.canonical_name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace evolve
}  // namespace evocat
