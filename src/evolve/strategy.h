/// \file strategy.h
/// \brief Pluggable evolution strategies over the paper's GA step.
///
/// A strategy decides *how* the per-generation step (core::GenerationStepper)
/// is scheduled over a population: the paper's one-offspring-at-a-time
/// generational loop, a steady-state loop evaluating lambda offspring
/// concurrently, or an island model evolving N subpopulations in parallel
/// with ring migration. Strategies are constructed by name + parameter map
/// through `StrategyRegistry` (evolve/registry.h), which is how a JobSpec's
/// `strategy` object selects one declaratively.
///
/// Contract (every strategy):
///   - deterministic given `config.seed`: the same seed produces bit-identical
///     results on 1 or N threads, under any scheduling of the parallel parts;
///   - `cancel` is polled at least once per generation/step and through
///     island barriers; a canceled run returns `Status::Cancelled`;
///   - the returned population carries no incremental-evaluation states.

#ifndef EVOCAT_EVOLVE_STRATEGY_H_
#define EVOCAT_EVOLVE_STRATEGY_H_

#include <atomic>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "core/individual.h"
#include "metrics/fitness.h"

namespace evocat {
namespace evolve {

/// \brief One way of evolving a population under the paper's operators.
class EvolutionStrategy {
 public:
  virtual ~EvolutionStrategy() = default;

  /// \brief Canonical registry name ("generational", "steady_state", ...).
  virtual std::string name() const = 0;

  /// \brief Evolves `initial` (fitness fields may be unset) under `config`.
  ///
  /// `cancel` (optional) is flipped from another thread for cooperative
  /// cancellation. `config.generations` is the per-population generation
  /// budget (each island runs that many generations under the islands
  /// strategy; a steady-state step counts as one generation).
  virtual Result<core::EvolutionResult> Run(
      const metrics::FitnessEvaluator* evaluator,
      const core::GaConfig& config, std::vector<core::Individual> initial,
      const std::atomic<bool>* cancel) const = 0;
};

/// \brief Merges island/step substats into one run-level aggregate
/// (sums counters and per-phase seconds; `total_seconds` is the caller's
/// wall clock, not a sum, so it is left untouched).
void MergeStats(const core::EvolutionStats& from, core::EvolutionStats* into);

}  // namespace evolve
}  // namespace evocat

#endif  // EVOCAT_EVOLVE_STRATEGY_H_
