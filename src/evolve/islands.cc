/// \file islands.cc
/// \brief Island-model strategy: N subpopulations, ring migration.
///
/// The sorted initial population is dealt round-robin onto N islands (so
/// every island starts with a comparable quality spread). Each island runs
/// the identical per-generation step (`core::GenerationStepper`) over its own
/// subpopulation with its own RNG stream, forked deterministically from the
/// run seed — islands never share mutable state, so evolving them on the
/// work-stealing pool is bit-identical to evolving them one after another.
/// Every `migration_interval` generations the islands synchronize at a
/// barrier and migrate along a ring: island i's best `migrants` members are
/// copied to island (i+1) mod N, replacing its worst members (the source
/// keeps its copies, so the global best can only improve). Cancellation is
/// polled inside every island's generation loop and re-checked at each
/// barrier, so a cancel lands within one generation even mid-epoch.
/// `no_improvement_window` has two semantics (the `stop_mode` parameter):
/// per_island (default) stops a stalled island alone; global watches the
/// cross-island best at epoch barriers and stops the whole run once it has
/// not improved for the window.

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/timer.h"
#include "core/stepper.h"
#include "evolve/registry.h"
#include "evolve/strategy.h"

namespace evocat {
namespace evolve {

namespace {

/// Id stride between islands: each island's offspring ids live in a disjoint
/// range, so ids stay unique without a shared (order-sensitive) counter.
constexpr uint64_t kIslandIdStride = uint64_t{1} << 40;

class IslandsStrategy : public EvolutionStrategy {
 public:
  IslandsStrategy(int islands, int migration_interval, int migrants,
                  bool parallel, bool global_stop)
      : islands_(islands),
        migration_interval_(migration_interval),
        migrants_(migrants),
        parallel_(parallel),
        global_stop_(global_stop) {}

  std::string name() const override { return "islands"; }

  Result<core::EvolutionResult> Run(
      const metrics::FitnessEvaluator* evaluator,
      const core::GaConfig& config, std::vector<core::Individual> initial,
      const std::atomic<bool>* cancel) const override;

 private:
  int islands_;
  int migration_interval_;
  int migrants_;
  bool parallel_;
  /// `no_improvement_window` semantics: false = per island (an island that
  /// stalls for the window stops alone), true = global (the run stops once
  /// the cross-island best has not improved for the window, evaluated at
  /// migration-epoch barriers).
  bool global_stop_;
};

/// Everything one island owns; no two islands share any of it.
struct Island {
  core::Population population;
  core::EvolutionStats stats;
  std::vector<core::GenerationRecord> history;
  Rng rng{0};
  uint64_t next_id = 0;
  double best_score = 0.0;
  int stale_generations = 0;
  bool stopped = false;  ///< per-island no_improvement_window early stop
};

Result<core::EvolutionResult> IslandsStrategy::Run(
    const metrics::FitnessEvaluator* evaluator, const core::GaConfig& config,
    std::vector<core::Individual> initial,
    const std::atomic<bool>* cancel) const {
  const size_t n_islands = static_cast<size_t>(islands_);
  EVOCAT_RETURN_NOT_OK(
      core::ValidateRunInputs(evaluator, config, initial, 2 * n_islands));
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled("run canceled before the first generation");
  }

  Timer run_timer;
  core::EvolutionResult result;

  EVOCAT_RETURN_NOT_OK(core::EvaluateInitialPopulation(
      evaluator, config.incremental_eval, &initial,
      &result.stats.initial_eval_seconds, cancel));

  uint64_t next_id = 0;
  for (auto& individual : initial) individual.id = next_id++;

  // Deal the sorted seeds round-robin: island k receives members k, k+N,
  // k+2N, ... so each island starts with a top-to-bottom quality spread and
  // the split is independent of island count parity.
  std::stable_sort(initial.begin(), initial.end(),
                   [](const core::Individual& a, const core::Individual& b) {
                     return a.score() < b.score();
                   });
  std::vector<Island> islands(n_islands);
  for (size_t j = 0; j < initial.size(); ++j) {
    islands[j % n_islands].population.members().push_back(
        std::move(initial[j]));
  }

  // Per-island RNG streams forked from the run seed in island order: the
  // fork sequence (and therefore every island's stream) is a pure function
  // of the seed, never of thread timing.
  Rng master(config.seed);
  for (size_t k = 0; k < n_islands; ++k) {
    Island& island = islands[k];
    island.rng = master.Fork();
    island.next_id = next_id + kIslandIdStride * static_cast<uint64_t>(k);
    island.best_score = island.population.MinScore();
    island.history.reserve(static_cast<size_t>(config.generations));
  }

  std::vector<std::unique_ptr<core::GenerationStepper>> steppers;
  steppers.reserve(n_islands);
  for (size_t k = 0; k < n_islands; ++k) {
    steppers.push_back(std::make_unique<core::GenerationStepper>(
        evaluator, config, &islands[k].population, &islands[k].rng,
        &islands[k].stats, &islands[k].next_id, cancel));
  }

  // Global stop mode: the stagnation window watches the cross-island best
  // at epoch barriers instead of each island privately.
  double run_best = 1e100;
  for (const Island& island : islands) {
    run_best = std::min(run_best, island.best_score);
  }
  int global_stale = 0;

  int completed = 0;
  while (completed < config.generations) {
    const int chunk = std::min(migration_interval_,
                               config.generations - completed);

    // --- Epoch: every island advances `chunk` generations. -----------------
    auto run_island = [&](int64_t idx) {
      Island& island = islands[static_cast<size_t>(idx)];
      if (island.stopped) return;
      for (int g = 0; g < chunk; ++g) {
        if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
          return;
        }
        core::GenerationRecord record =
            steppers[static_cast<size_t>(idx)]->Step(completed + g + 1);
        record.island = static_cast<int>(idx);
        island.history.push_back(record);
        if (record.min_score < island.best_score - 1e-12) {
          island.best_score = record.min_score;
          island.stale_generations = 0;
        } else {
          ++island.stale_generations;
        }
        if (!global_stop_ && config.no_improvement_window > 0 &&
            island.stale_generations >= config.no_improvement_window) {
          island.stopped = true;
          return;
        }
      }
    };
    if (parallel_) {
      ParallelFor(0, static_cast<int64_t>(n_islands), run_island);
    } else {
      for (size_t k = 0; k < n_islands; ++k) {
        run_island(static_cast<int64_t>(k));
      }
    }

    // --- Barrier: cancellation observed by any island stops the run. -------
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return Status::Cancelled("run canceled at generation ", completed + 1,
                               " of ", config.generations, " (", n_islands,
                               " islands)");
    }
    completed += chunk;

    if (global_stop_ && config.no_improvement_window > 0) {
      double current = 1e100;
      for (const Island& island : islands) {
        current = std::min(current, island.population.MinScore());
      }
      if (current < run_best - 1e-12) {
        run_best = current;
        global_stale = 0;
      } else {
        global_stale += chunk;
      }
      if (global_stale >= config.no_improvement_window) break;
    }

    bool all_stopped = true;
    for (const Island& island : islands) all_stopped &= island.stopped;
    if (all_stopped) break;

    // --- Ring migration (serial, snapshot-based, deterministic). -----------
    if (completed < config.generations && migrants_ > 0 && n_islands > 1) {
      std::vector<std::vector<core::Individual>> outgoing(n_islands);
      for (size_t k = 0; k < n_islands; ++k) {
        const core::Population& population = islands[k].population;
        size_t count = std::min<size_t>(static_cast<size_t>(migrants_),
                                        population.size() - 1);
        for (size_t j = 0; j < count; ++j) {
          core::Individual migrant;
          migrant.data = population[j].data.Clone();
          migrant.fitness = population[j].fitness;
          migrant.origin = population[j].origin;
          migrant.id = population[j].id;
          // Bind the migrant's delta state now (one evaluation-equivalent):
          // a state-less member would otherwise push every future operator
          // that touches it onto the ~250x full-evaluation path.
          if (config.incremental_eval) {
            migrant.eval_state = evaluator->BindState(migrant.data);
          }
          outgoing[k].push_back(std::move(migrant));
        }
      }
      for (size_t k = 0; k < n_islands; ++k) {
        size_t target = (k + 1) % n_islands;
        core::Population& population = islands[target].population;
        size_t count = std::min(outgoing[k].size(), population.size() - 1);
        for (size_t j = 0; j < count; ++j) {
          // Replace the target's worst members (population stays sorted
          // ascending between steps).
          population[population.size() - 1 - j] = std::move(outgoing[k][j]);
        }
        population.SortByScore();
      }
    }
  }

  // --- Merge: one run-level result over every island. ----------------------
  for (size_t k = 0; k < n_islands; ++k) {
    Island& island = islands[k];
    MergeStats(island.stats, &result.stats);
    result.history.insert(result.history.end(), island.history.begin(),
                          island.history.end());
    for (auto& member : island.population.members()) {
      member.eval_state.reset();
      result.population.members().push_back(std::move(member));
    }
  }
  result.population.SortByScore();
  result.stats.total_seconds = run_timer.ElapsedSeconds();
  return result;
}

}  // namespace

void RegisterIslandsStrategy(StrategyRegistry* registry) {
  Status status = registry->Register(
      "islands",
      [](const ParamMap& params)
          -> Result<std::unique_ptr<EvolutionStrategy>> {
        ParamReader reader("islands", params);
        int64_t islands = reader.GetInt("islands", 4);
        int64_t interval = reader.GetInt("migration_interval", 25);
        int64_t migrants = reader.GetInt("migrants", 1);
        std::string parallel = reader.GetString("parallel", "true");
        std::string stop_mode = reader.GetString("stop_mode", "per_island");
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        if (islands < 1 || islands > 256) {
          return Status::Invalid("islands.islands must be in [1, 256], got ",
                                 islands);
        }
        if (interval < 1) {
          return Status::Invalid(
              "islands.migration_interval must be >= 1, got ", interval);
        }
        if (migrants < 0) {
          return Status::Invalid("islands.migrants must be >= 0, got ",
                                 migrants);
        }
        if (parallel != "true" && parallel != "false") {
          return Status::Invalid(
              "islands.parallel must be true or false, got '", parallel, "'");
        }
        if (stop_mode != "per_island" && stop_mode != "global") {
          return Status::Invalid(
              "islands.stop_mode must be per_island or global, got '",
              stop_mode, "'");
        }
        return std::unique_ptr<EvolutionStrategy>(new IslandsStrategy(
            static_cast<int>(islands), static_cast<int>(interval),
            static_cast<int>(migrants), parallel == "true",
            stop_mode == "global"));
      });
  (void)status;
}

}  // namespace evolve
}  // namespace evocat
