/// \file registry.h
/// \brief String-keyed factory registry for evolution strategies.
///
/// Mirrors `protection::MethodRegistry` and `metrics::MeasureRegistry`: each
/// strategy implementation file registers its own factory — including the
/// parameter schema it accepts — through the hook it defines at the bottom of
/// its .cc, and `StrategyRegistry::Global()` runs every hook once on first
/// use. A JobSpec's `strategy` object ({"name": ..., "params": {...}}) is
/// resolved here, so new strategies plug in without touching the Session.

#ifndef EVOCAT_EVOLVE_REGISTRY_H_
#define EVOCAT_EVOLVE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/params.h"
#include "common/result.h"
#include "evolve/strategy.h"

namespace evocat {
namespace evolve {

/// \brief Builds one configured strategy from a parameter map.
///
/// Factories reject unknown or malformed parameters with a Status naming the
/// offending field (use `ParamReader`).
using StrategyFactory =
    std::function<Result<std::unique_ptr<EvolutionStrategy>>(const ParamMap&)>;

/// \brief Name -> factory registry for `EvolutionStrategy` implementations.
///
/// Lookup is case-insensitive ("Islands" == "islands"); `Names()` reports
/// canonical spellings. Thread-safe.
class StrategyRegistry {
 public:
  /// \brief The process-wide registry, with all built-ins registered.
  static StrategyRegistry& Global();

  /// \brief Registers `factory` under `name`; duplicate names are an error.
  Status Register(const std::string& name, StrategyFactory factory);

  /// \brief Constructs the strategy registered under `name`.
  Result<std::unique_ptr<EvolutionStrategy>> Create(
      const std::string& name, const ParamMap& params = {}) const;

  bool Contains(const std::string& name) const;

  /// \brief Canonical registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    std::string canonical_name;
    StrategyFactory factory;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  // keyed by lower-cased name
};

/// \brief Built-in registration hooks, each implemented alongside the
/// strategy it registers (self-registration; called once by `Global()`).
void RegisterGenerationalStrategy(StrategyRegistry* registry);
void RegisterSteadyStateStrategy(StrategyRegistry* registry);
void RegisterIslandsStrategy(StrategyRegistry* registry);

}  // namespace evolve
}  // namespace evocat

#endif  // EVOCAT_EVOLVE_REGISTRY_H_
