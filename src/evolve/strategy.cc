#include "evolve/strategy.h"

namespace evocat {
namespace evolve {

void MergeStats(const core::EvolutionStats& from, core::EvolutionStats* into) {
  into->mutation_generations += from.mutation_generations;
  into->crossover_generations += from.crossover_generations;
  into->accepted_mutations += from.accepted_mutations;
  into->accepted_crossovers += from.accepted_crossovers;
  into->offspring_evaluated += from.offspring_evaluated;
  into->mutation_eval_seconds += from.mutation_eval_seconds;
  into->crossover_eval_seconds += from.crossover_eval_seconds;
  into->mutation_total_seconds += from.mutation_total_seconds;
  into->crossover_total_seconds += from.crossover_total_seconds;
  into->initial_eval_seconds += from.initial_eval_seconds;
}

}  // namespace evolve
}  // namespace evocat
