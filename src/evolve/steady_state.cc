/// \file steady_state.cc
/// \brief Steady-state strategy: lambda offspring per step, evaluated
/// concurrently through the incremental delta path.
///
/// Each step generalizes one generation of paper Algorithm 1: a single
/// uniform draw picks the operator, which is then instantiated `lambda`
/// times against the step-start population (lambda proportionally selected
/// mutation parents, or lambda leader/mate crossover pairs). All offspring
/// plans are drawn *serially* from the run RNG — the plan never depends on
/// thread timing — and only the fitness evaluations fan out: offspring are
/// grouped by parent slot and the groups evaluate in parallel, each group
/// replaying ApplyDelta/Revert against its own parent's FitnessState.
/// Replacement is serial in plan order (elitist for mutation, deterministic
/// crowding for crossover, always against the slot's *current* occupant), so
/// results are bit-identical on 1 or N threads.

#include <algorithm>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/timer.h"
#include "core/stepper.h"
#include "evolve/registry.h"
#include "evolve/strategy.h"

namespace evocat {
namespace evolve {

namespace {

/// One planned offspring: the child itself plus how it was derived.
struct PlannedChild {
  core::Individual individual;
  /// Parent slot the child competes with (and whose FitnessState serves the
  /// delta evaluation).
  size_t slot = 0;
  /// Segment batch changed relative to the parent at `slot`.
  metrics::SegmentDelta deltas;
};

class SteadyStateStrategy : public EvolutionStrategy {
 public:
  explicit SteadyStateStrategy(int lambda) : lambda_(lambda) {}

  std::string name() const override { return "steady_state"; }

  Result<core::EvolutionResult> Run(
      const metrics::FitnessEvaluator* evaluator,
      const core::GaConfig& config, std::vector<core::Individual> initial,
      const std::atomic<bool>* cancel) const override;

 private:
  int lambda_;
};

Result<core::EvolutionResult> SteadyStateStrategy::Run(
    const metrics::FitnessEvaluator* evaluator, const core::GaConfig& config,
    std::vector<core::Individual> initial,
    const std::atomic<bool>* cancel) const {
  EVOCAT_RETURN_NOT_OK(core::ValidateRunInputs(evaluator, config, initial, 2));
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled("run canceled before the first step");
  }

  Timer run_timer;
  core::EvolutionResult result;
  result.history.reserve(static_cast<size_t>(config.generations));
  const bool incremental = config.incremental_eval;

  EVOCAT_RETURN_NOT_OK(core::EvaluateInitialPopulation(
      evaluator, incremental, &initial, &result.stats.initial_eval_seconds,
      cancel));

  uint64_t next_id = 0;
  for (auto& individual : initial) individual.id = next_id++;

  core::Population population(std::move(initial));
  population.SortByScore();

  Rng rng(config.seed);
  core::SelectionPolicy selection(config.selection);
  core::GenomeLayout layout(evaluator->attrs(),
                            evaluator->original().num_rows());
  core::MutationOperator mutate(layout, config.mutation_excludes_current);
  core::CrossoverOperator cross(layout);

  double best_score = population.MinScore();
  int stale_steps = 0;

  for (int step = 1; step <= config.generations; ++step) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return Status::Cancelled("run canceled at step ", step, " of ",
                               config.generations);
    }
    Timer step_timer;
    core::GenerationRecord record;
    record.generation = step;

    // --- Plan phase (serial): one operator draw, lambda instantiations. ---
    bool do_mutation = rng.UniformDouble() < config.mutation_rate;
    std::vector<double> scores = population.Scores();
    std::vector<PlannedChild> plan;
    plan.reserve(static_cast<size_t>(do_mutation ? lambda_ : 2 * lambda_));

    if (do_mutation) {
      record.op = core::OperatorKind::kMutation;
      for (int k = 0; k < lambda_; ++k) {
        PlannedChild child;
        child.slot = selection.Select(scores, &rng);
        child.individual.data = population[child.slot].data.Clone();
        auto mutation = mutate.Apply(&child.individual.data, &rng);
        if (mutation.new_code != mutation.old_code) {
          child.deltas.Append(mutation.row, mutation.attr, mutation.old_code,
                              mutation.new_code);
        }
        child.individual.origin =
            "mutation<" + core::BaseOrigin(population[child.slot].origin) + ">";
        child.individual.id = next_id++;
        plan.push_back(std::move(child));
      }
    } else {
      record.op = core::OperatorKind::kCrossover;
      size_t leaders = std::min<size_t>(
          static_cast<size_t>(config.leader_group_size), population.size());
      for (int k = 0; k < lambda_; ++k) {
        size_t i1 = rng.UniformIndex(leaders);
        size_t i2 = selection.Select(scores, &rng);
        PlannedChild child1, child2;
        auto segment =
            cross.Apply(population[i1].data, population[i2].data,
                        &child1.individual.data, &child2.individual.data, &rng);
        child1.slot = i1;
        child2.slot = i2;
        child1.deltas = std::move(segment.deltas1);
        child2.deltas = std::move(segment.deltas2);
        child1.individual.origin =
            "cross<" + core::BaseOrigin(population[i1].origin) + ">";
        child2.individual.origin =
            "cross<" + core::BaseOrigin(population[i2].origin) + ">";
        child1.individual.id = next_id++;
        child2.individual.id = next_id++;
        plan.push_back(std::move(child1));
        plan.push_back(std::move(child2));
      }
    }

    // --- Evaluation phase (parallel over parent slots). ---
    // Children of the same slot share that parent's FitnessState, so each
    // slot's children evaluate serially (ApplyDelta -> breakdown -> Revert
    // hands the state back untouched); distinct slots touch disjoint states
    // and fan out across the pool. Grouping preserves plan order within a
    // slot, which keeps the evaluation schedule deterministic.
    std::vector<size_t> slot_of_group;          // group index -> slot
    std::vector<std::vector<size_t>> groups;    // group index -> plan indices
    {
      std::vector<int> group_of_slot(population.size(), -1);
      for (size_t p = 0; p < plan.size(); ++p) {
        size_t slot = plan[p].slot;
        if (group_of_slot[slot] < 0) {
          group_of_slot[slot] = static_cast<int>(groups.size());
          slot_of_group.push_back(slot);
          groups.emplace_back();
        }
        groups[static_cast<size_t>(group_of_slot[slot])].push_back(p);
      }
    }
    Timer eval_timer;
    auto eval_group = [&](int64_t g) {
      // Cancel is polled per group so a flipped flag stops a big step within
      // one slot's worth of evaluations.
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) return;
      size_t slot = slot_of_group[static_cast<size_t>(g)];
      auto& state = population[slot].eval_state;
      for (size_t p : groups[static_cast<size_t>(g)]) {
        PlannedChild& child = plan[p];
        if (incremental && state) {
          state->ApplyDelta(child.individual.data, child.deltas, cancel);
          child.individual.fitness = state->breakdown();
          state->Revert();
        } else {
          child.individual.fitness = evaluator->Evaluate(child.individual.data);
        }
      }
    };
    // Same knob as the generational loop. Groups always overlap when
    // requested: a heavy group's inner loops (full evaluations, rebuild-sized
    // segments) fan out through nested work stealing instead of serializing,
    // so there is no pool-heavy special case anymore.
    if (config.parallel_offspring_eval) {
      ParallelFor(0, static_cast<int64_t>(groups.size()), eval_group);
    } else {
      for (int64_t g = 0; g < static_cast<int64_t>(groups.size()); ++g) {
        eval_group(g);
      }
    }
    record.eval_seconds = eval_timer.ElapsedSeconds();
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return Status::Cancelled("run canceled at step ", step, " of ",
                               config.generations);
    }
    record.evaluations = static_cast<int>(plan.size());

    // --- Replacement phase (serial, plan order). ---
    // Each child competes with its slot's *current* occupant: the elitist /
    // deterministic-crowding rule of the generational loop, applied in the
    // order the plan was drawn. Once a slot has been replaced this step its
    // parent state is gone, so a second accepted child binds fresh.
    std::vector<char> replaced(population.size(), 0);
    for (auto& child : plan) {
      size_t slot = child.slot;
      if (child.individual.score() >= population[slot].score()) continue;
      if (incremental) {
        if (!replaced[slot] && population[slot].eval_state) {
          auto& state = population[slot].eval_state;
          state->ApplyDelta(child.individual.data, child.deltas);
          child.individual.eval_state = std::move(state);
        } else {
          child.individual.eval_state =
              evaluator->BindState(child.individual.data);
        }
      }
      population[slot] = std::move(child.individual);
      replaced[slot] = 1;
      record.accepted = true;
      if (record.op == core::OperatorKind::kMutation) {
        ++result.stats.accepted_mutations;
      } else {
        ++result.stats.accepted_crossovers;
      }
    }

    population.SortByScore();

    record.min_score = population.MinScore();
    record.mean_score = population.MeanScore();
    record.max_score = population.MaxScore();
    record.total_seconds = step_timer.ElapsedSeconds();
    result.stats.offspring_evaluated += record.evaluations;
    if (record.op == core::OperatorKind::kMutation) {
      ++result.stats.mutation_generations;
      result.stats.mutation_eval_seconds += record.eval_seconds;
      result.stats.mutation_total_seconds += record.total_seconds;
    } else {
      ++result.stats.crossover_generations;
      result.stats.crossover_eval_seconds += record.eval_seconds;
      result.stats.crossover_total_seconds += record.total_seconds;
    }
    result.history.push_back(record);

    if (record.min_score < best_score - 1e-12) {
      best_score = record.min_score;
      stale_steps = 0;
    } else {
      ++stale_steps;
    }
    if (config.no_improvement_window > 0 &&
        stale_steps >= config.no_improvement_window) {
      break;
    }
  }

  result.stats.total_seconds = run_timer.ElapsedSeconds();
  for (auto& member : population.members()) member.eval_state.reset();
  result.population = std::move(population);
  return result;
}

}  // namespace

void RegisterSteadyStateStrategy(StrategyRegistry* registry) {
  Status status = registry->Register(
      "steady_state",
      [](const ParamMap& params)
          -> Result<std::unique_ptr<EvolutionStrategy>> {
        ParamReader reader("steady_state", params);
        int64_t lambda = reader.GetInt("lambda", 8);
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        if (lambda < 1 || lambda > 4096) {
          return Status::Invalid("steady_state.lambda must be in [1, 4096], "
                                 "got ", lambda);
        }
        return std::unique_ptr<EvolutionStrategy>(
            new SteadyStateStrategy(static_cast<int>(lambda)));
      });
  (void)status;
}

}  // namespace evolve
}  // namespace evocat
