#include "protection/hierarchical_recoding.h"

#include <algorithm>

#include "common/string_utils.h"
#include "protection/registry.h"

namespace evocat {
namespace protection {

std::string HierarchicalRecoding::Params() const {
  return StrFormat("level=%d,fanout=%d", level_, fanout_);
}

Result<Dataset> HierarchicalRecoding::Protect(const Dataset& original,
                                              const std::vector<int>& attrs,
                                              Rng* /*rng*/) const {
  EVOCAT_RETURN_NOT_OK(ValidateAttrs(original, attrs));
  if (level_ < 1) {
    return Status::Invalid("hierarchical recoding level must be >= 1, got ",
                           level_);
  }
  if (fanout_ < 2) {
    return Status::Invalid("hierarchical recoding fanout must be >= 2, got ",
                           fanout_);
  }

  Dataset masked = original.Clone();
  for (int attr : attrs) {
    int cardinality = original.schema().attribute(attr).cardinality();
    EVOCAT_ASSIGN_OR_RETURN(ValueHierarchy hierarchy,
                            ValueHierarchy::BuildBalanced(cardinality, fanout_));
    int level = std::min(level_, hierarchy.num_levels() - 1);
    auto& column = masked.mutable_column(attr);
    for (auto& code : column) {
      code = hierarchy.RepresentativeOf(code, level);
    }
  }
  return masked;
}

void RegisterHierarchicalRecodingMethod(MethodRegistry* registry) {
  registry->Register(
      "hierarchicalrecoding",
      [](const ParamMap& params) -> Result<std::unique_ptr<ProtectionMethod>> {
        ParamReader reader("hierarchicalrecoding", params);
        int64_t level = reader.GetInt("level", 1);
        int64_t fanout = reader.GetInt("fanout", 2);
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        return std::unique_ptr<ProtectionMethod>(new HierarchicalRecoding(
            static_cast<int>(level), static_cast<int>(fanout)));
      });
}

}  // namespace protection
}  // namespace evocat
