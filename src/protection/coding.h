/// \file coding.h
/// \brief Top coding and bottom coding (non-perturbative masking).
///
/// Coding collapses the extreme categories of an (order-interpretable)
/// attribute into the boundary category: bottom coding maps everything below
/// a threshold rank up to it; top coding maps everything above a threshold
/// rank down to it. For nominal attributes the canonical dictionary order is
/// used; measures treat categories abstractly so this is well-defined.
/// The collapsed fraction of the domain is the method parameter.

#ifndef EVOCAT_PROTECTION_CODING_H_
#define EVOCAT_PROTECTION_CODING_H_

#include <string>
#include <vector>

#include "protection/method.h"

namespace evocat {
namespace protection {

/// \brief Bottom coding with domain fraction `fraction` collapsed.
class BottomCoding : public ProtectionMethod {
 public:
  explicit BottomCoding(double fraction) : fraction_(fraction) {}

  std::string Name() const override { return "bottomcoding"; }
  std::string Params() const override;

  Result<Dataset> Protect(const Dataset& original, const std::vector<int>& attrs,
                          Rng* rng) const override;

  /// \brief Threshold code for a domain of `cardinality` categories: codes
  /// strictly below it are replaced by it. Always in [1, cardinality-1].
  int32_t ThresholdCode(int cardinality) const;

 private:
  double fraction_;
};

/// \brief Top coding with domain fraction `fraction` collapsed.
class TopCoding : public ProtectionMethod {
 public:
  explicit TopCoding(double fraction) : fraction_(fraction) {}

  std::string Name() const override { return "topcoding"; }
  std::string Params() const override;

  Result<Dataset> Protect(const Dataset& original, const std::vector<int>& attrs,
                          Rng* rng) const override;

  /// \brief Threshold code: codes strictly above it are replaced by it.
  /// Always in [0, cardinality-2].
  int32_t ThresholdCode(int cardinality) const;

 private:
  double fraction_;
};

}  // namespace protection
}  // namespace evocat

#endif  // EVOCAT_PROTECTION_CODING_H_
