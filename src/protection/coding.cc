#include "protection/coding.h"

#include <cmath>

#include "common/math_utils.h"
#include "common/string_utils.h"
#include "protection/registry.h"

namespace evocat {
namespace protection {

namespace {
Status ValidateFraction(double fraction) {
  if (fraction <= 0.0 || fraction >= 1.0) {
    return Status::Invalid("coding fraction must be in (0, 1), got ", fraction);
  }
  return Status::OK();
}
}  // namespace

std::string BottomCoding::Params() const {
  return StrFormat("frac=%.2f", fraction_);
}

int32_t BottomCoding::ThresholdCode(int cardinality) const {
  auto t = static_cast<int32_t>(std::lround(fraction_ * (cardinality - 1)));
  return static_cast<int32_t>(Clamp(t, 1, cardinality - 1));
}

Result<Dataset> BottomCoding::Protect(const Dataset& original,
                                      const std::vector<int>& attrs,
                                      Rng* /*rng*/) const {
  EVOCAT_RETURN_NOT_OK(ValidateAttrs(original, attrs));
  EVOCAT_RETURN_NOT_OK(ValidateFraction(fraction_));
  Dataset masked = original.Clone();
  for (int attr : attrs) {
    int32_t threshold =
        ThresholdCode(original.schema().attribute(attr).cardinality());
    auto& col = masked.mutable_column(attr);
    for (auto& code : col) {
      if (code < threshold) code = threshold;
    }
  }
  return masked;
}

std::string TopCoding::Params() const { return StrFormat("frac=%.2f", fraction_); }

int32_t TopCoding::ThresholdCode(int cardinality) const {
  auto offset = static_cast<int32_t>(std::lround(fraction_ * (cardinality - 1)));
  offset = static_cast<int32_t>(Clamp(offset, 1, cardinality - 1));
  return static_cast<int32_t>(cardinality - 1 - offset);
}

Result<Dataset> TopCoding::Protect(const Dataset& original,
                                   const std::vector<int>& attrs,
                                   Rng* /*rng*/) const {
  EVOCAT_RETURN_NOT_OK(ValidateAttrs(original, attrs));
  EVOCAT_RETURN_NOT_OK(ValidateFraction(fraction_));
  Dataset masked = original.Clone();
  for (int attr : attrs) {
    int32_t threshold =
        ThresholdCode(original.schema().attribute(attr).cardinality());
    auto& col = masked.mutable_column(attr);
    for (auto& code : col) {
      if (code > threshold) code = threshold;
    }
  }
  return masked;
}

void RegisterCodingMethods(MethodRegistry* registry) {
  registry->Register(
      "bottomcoding",
      [](const ParamMap& params) -> Result<std::unique_ptr<ProtectionMethod>> {
        ParamReader reader("bottomcoding", params);
        double fraction = reader.GetDouble("fraction", 0.2);
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        return std::unique_ptr<ProtectionMethod>(new BottomCoding(fraction));
      });
  registry->Register(
      "topcoding",
      [](const ParamMap& params) -> Result<std::unique_ptr<ProtectionMethod>> {
        ParamReader reader("topcoding", params);
        double fraction = reader.GetDouble("fraction", 0.2);
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        return std::unique_ptr<ProtectionMethod>(new TopCoding(fraction));
      });
}

}  // namespace protection
}  // namespace evocat
