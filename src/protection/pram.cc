#include "protection/pram.h"

#include "common/string_utils.h"
#include "protection/registry.h"
#include "data/stats.h"

namespace evocat {
namespace protection {

std::string Pram::Params() const { return StrFormat("retain=%.2f", retain_); }

Result<Dataset> Pram::Protect(const Dataset& original,
                              const std::vector<int>& attrs, Rng* rng) const {
  EVOCAT_RETURN_NOT_OK(ValidateAttrs(original, attrs));
  if (retain_ < 0.0 || retain_ > 1.0) {
    return Status::Invalid("pram retain probability must be in [0, 1], got ",
                           retain_);
  }
  Dataset masked = original.Clone();
  for (int attr : attrs) {
    auto freqs = CategoryFrequencies(original, attr);
    auto& col = masked.mutable_column(attr);
    for (auto& code : col) {
      if (!rng->Bernoulli(retain_)) {
        code = static_cast<int32_t>(rng->WeightedIndex(freqs));
      }
    }
  }
  return masked;
}

void RegisterPramMethod(MethodRegistry* registry) {
  registry->Register(
      "pram",
      [](const ParamMap& params) -> Result<std::unique_ptr<ProtectionMethod>> {
        ParamReader reader("pram", params);
        double retain = reader.GetDouble("retain", 0.8);
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        return std::unique_ptr<ProtectionMethod>(new Pram(retain));
      });
}

}  // namespace protection
}  // namespace evocat
