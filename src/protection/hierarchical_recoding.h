/// \file hierarchical_recoding.h
/// \brief Global recoding driven by a value generalization hierarchy.
///
/// Generalizes every value of each protected attribute to the representative
/// of its ancestor group at the configured hierarchy level — the tree-based
/// formulation of global recoding (Argus / k-anonymity style), strictly
/// coarser than the flat adjacent-group recoding in global_recoding.h. A
/// balanced hierarchy with the given fanout is built per attribute; deeper
/// levels yield stronger generalization. Domain-closed like every evocat
/// method: representatives are original categories.

#ifndef EVOCAT_PROTECTION_HIERARCHICAL_RECODING_H_
#define EVOCAT_PROTECTION_HIERARCHICAL_RECODING_H_

#include <string>
#include <vector>

#include "data/hierarchy.h"
#include "protection/method.h"

namespace evocat {
namespace protection {

/// \brief VGH-based global recoding to the `level`-th hierarchy level.
class HierarchicalRecoding : public ProtectionMethod {
 public:
  /// \param level generalization level (>= 1; clamped per attribute to its
  ///        hierarchy height, so small domains just saturate at the top).
  /// \param fanout balanced-hierarchy branching factor (>= 2).
  HierarchicalRecoding(int level, int fanout) : level_(level), fanout_(fanout) {}

  std::string Name() const override { return "hierarchicalrecoding"; }
  std::string Params() const override;

  Result<Dataset> Protect(const Dataset& original, const std::vector<int>& attrs,
                          Rng* rng) const override;

  int level() const { return level_; }
  int fanout() const { return fanout_; }

 private:
  int level_;
  int fanout_;
};

}  // namespace protection
}  // namespace evocat

#endif  // EVOCAT_PROTECTION_HIERARCHICAL_RECODING_H_
