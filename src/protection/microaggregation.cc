#include "protection/microaggregation.h"

#include <algorithm>
#include <numeric>

#include "common/string_utils.h"
#include "protection/registry.h"

namespace evocat {
namespace protection {

namespace {

/// Median code of the group's values for an ordinal attribute.
int32_t GroupMedian(std::vector<int32_t> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

/// Plurality code of the group's values (ties -> smallest code).
int32_t GroupMode(const std::vector<int32_t>& values, int cardinality) {
  std::vector<int32_t> counts(static_cast<size_t>(cardinality), 0);
  for (int32_t v : values) counts[static_cast<size_t>(v)] += 1;
  int32_t best = 0;
  for (int32_t c = 1; c < cardinality; ++c) {
    if (counts[static_cast<size_t>(c)] > counts[static_cast<size_t>(best)]) best = c;
  }
  return best;
}

/// Cuts `n` records into consecutive groups of size >= k: all groups have
/// exactly k records except the last, which absorbs the remainder (classic
/// fixed-size heuristic). Returns group boundaries as (start, end] offsets.
std::vector<std::pair<int64_t, int64_t>> CutGroups(int64_t n, int k) {
  std::vector<std::pair<int64_t, int64_t>> groups;
  int64_t num_full = n / k;
  if (num_full == 0) {
    groups.emplace_back(0, n);
    return groups;
  }
  for (int64_t g = 0; g < num_full; ++g) {
    int64_t start = g * k;
    int64_t end = (g == num_full - 1) ? n : start + k;
    groups.emplace_back(start, end);
  }
  return groups;
}

/// Replaces the values of `attr` within each group (of sorted record order)
/// by the group centroid.
void AggregateAttr(const Dataset& original, Dataset* masked, int attr,
                   const std::vector<int64_t>& order,
                   const std::vector<std::pair<int64_t, int64_t>>& groups) {
  const Attribute& spec = original.schema().attribute(attr);
  std::vector<int32_t> values;
  for (const auto& [start, end] : groups) {
    values.clear();
    for (int64_t i = start; i < end; ++i) {
      values.push_back(original.Code(order[static_cast<size_t>(i)], attr));
    }
    int32_t centroid = spec.kind() == AttrKind::kOrdinal
                           ? GroupMedian(values)
                           : GroupMode(values, spec.cardinality());
    for (int64_t i = start; i < end; ++i) {
      masked->SetCode(order[static_cast<size_t>(i)], attr, centroid);
    }
  }
}

/// Record order sorted by the lexicographic key over `key_attrs` (stable by
/// record index for determinism).
std::vector<int64_t> LexicographicOrder(const Dataset& dataset,
                                        const std::vector<int>& key_attrs) {
  std::vector<int64_t> order(static_cast<size_t>(dataset.num_rows()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    for (int attr : key_attrs) {
      int32_t ca = dataset.Code(a, attr);
      int32_t cb = dataset.Code(b, attr);
      if (ca != cb) return ca < cb;
    }
    return a < b;
  });
  return order;
}

/// Record order sorted by a weighted sum of normalized codes.
std::vector<int64_t> ProjectionOrder(const Dataset& dataset,
                                     const std::vector<int>& attrs,
                                     const std::vector<double>& weights) {
  std::vector<double> keys(static_cast<size_t>(dataset.num_rows()), 0.0);
  for (size_t ai = 0; ai < attrs.size(); ++ai) {
    int attr = attrs[ai];
    double denom =
        std::max(1, dataset.schema().attribute(attr).cardinality() - 1);
    for (int64_t r = 0; r < dataset.num_rows(); ++r) {
      keys[static_cast<size_t>(r)] +=
          weights[ai] * static_cast<double>(dataset.Code(r, attr)) / denom;
    }
  }
  std::vector<int64_t> order(static_cast<size_t>(dataset.num_rows()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    double ka = keys[static_cast<size_t>(a)];
    double kb = keys[static_cast<size_t>(b)];
    if (ka != kb) return ka < kb;
    return a < b;
  });
  return order;
}

/// Rotates `attrs` so that index `first` leads the lexicographic key.
std::vector<int> RotatedAttrs(const std::vector<int>& attrs, size_t first) {
  std::vector<int> key;
  for (size_t i = 0; i < attrs.size(); ++i) {
    key.push_back(attrs[(first + i) % attrs.size()]);
  }
  return key;
}

}  // namespace

const char* MicroOrderingToString(MicroOrdering ordering) {
  switch (ordering) {
    case MicroOrdering::kUnivariate:
      return "univariate";
    case MicroOrdering::kSortByAttr0:
      return "sort0";
    case MicroOrdering::kSortByAttr1:
      return "sort1";
    case MicroOrdering::kSortByAttr2:
      return "sort2";
    case MicroOrdering::kSortBySum:
      return "sum";
    case MicroOrdering::kRandomProjection:
      return "randproj";
  }
  return "?";
}

std::string Microaggregation::Params() const {
  return StrFormat("k=%d,order=%s", k_, MicroOrderingToString(ordering_));
}

Result<Dataset> Microaggregation::Protect(const Dataset& original,
                                          const std::vector<int>& attrs,
                                          Rng* rng) const {
  EVOCAT_RETURN_NOT_OK(ValidateAttrs(original, attrs));
  if (k_ < 2) {
    return Status::Invalid("microaggregation requires k >= 2, got ", k_);
  }

  Dataset masked = original.Clone();
  auto groups = CutGroups(original.num_rows(), k_);

  if (ordering_ == MicroOrdering::kUnivariate) {
    // Each attribute gets its own ordering and grouping.
    for (int attr : attrs) {
      auto order = LexicographicOrder(original, {attr});
      AggregateAttr(original, &masked, attr, order, groups);
    }
    return masked;
  }

  std::vector<int64_t> order;
  switch (ordering_) {
    case MicroOrdering::kSortByAttr0:
      order = LexicographicOrder(original, RotatedAttrs(attrs, 0));
      break;
    case MicroOrdering::kSortByAttr1:
      order = LexicographicOrder(original,
                                 RotatedAttrs(attrs, attrs.size() > 1 ? 1 : 0));
      break;
    case MicroOrdering::kSortByAttr2:
      order = LexicographicOrder(original,
                                 RotatedAttrs(attrs, attrs.size() > 2 ? 2 : 0));
      break;
    case MicroOrdering::kSortBySum: {
      std::vector<double> weights(attrs.size(), 1.0);
      order = ProjectionOrder(original, attrs, weights);
      break;
    }
    case MicroOrdering::kRandomProjection: {
      std::vector<double> weights(attrs.size());
      for (double& w : weights) w = rng->UniformDouble(0.25, 1.0);
      order = ProjectionOrder(original, attrs, weights);
      break;
    }
    case MicroOrdering::kUnivariate:
      break;  // handled above
  }

  for (int attr : attrs) {
    AggregateAttr(original, &masked, attr, order, groups);
  }
  return masked;
}

Result<MicroOrdering> MicroOrderingFromString(const std::string& name) {
  for (MicroOrdering ordering :
       {MicroOrdering::kUnivariate, MicroOrdering::kSortByAttr0,
        MicroOrdering::kSortByAttr1, MicroOrdering::kSortByAttr2,
        MicroOrdering::kSortBySum, MicroOrdering::kRandomProjection}) {
    if (name == MicroOrderingToString(ordering)) return ordering;
  }
  return Status::Invalid("unknown microaggregation ordering '", name,
                         "'; expected univariate|sort0|sort1|sort2|sum|"
                         "randproj");
}

void RegisterMicroaggregationMethod(MethodRegistry* registry) {
  registry->Register(
      "microaggregation",
      [](const ParamMap& params) -> Result<std::unique_ptr<ProtectionMethod>> {
        ParamReader reader("microaggregation", params);
        int64_t k = reader.GetInt("k", 3);
        std::string ordering_name = reader.GetString("ordering", "univariate");
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        EVOCAT_ASSIGN_OR_RETURN(MicroOrdering ordering,
                                MicroOrderingFromString(ordering_name));
        return std::unique_ptr<ProtectionMethod>(
            new Microaggregation(static_cast<int>(k), ordering));
      });
}

}  // namespace protection
}  // namespace evocat
