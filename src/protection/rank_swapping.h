/// \file rank_swapping.h
/// \brief Rank swapping (Moore 1996) adapted to categorical attributes.
///
/// For each protected attribute, records are sorted by category (ties broken
/// randomly), and each not-yet-swapped record is exchanged with a random
/// not-yet-swapped partner at rank distance at most `p`% of the file size.
/// Swapping preserves the attribute's marginal distribution exactly while
/// breaking the record-level joint, which is why record-linkage risk drops
/// as `p` grows and why the rank-swapping-aware attack (RSRL, Nin et al.
/// 2008) can exploit the bounded rank displacement.

#ifndef EVOCAT_PROTECTION_RANK_SWAPPING_H_
#define EVOCAT_PROTECTION_RANK_SWAPPING_H_

#include <string>
#include <vector>

#include "protection/method.h"

namespace evocat {
namespace protection {

/// \brief Rank swapping with maximum rank displacement `p` percent.
class RankSwapping : public ProtectionMethod {
 public:
  explicit RankSwapping(double p_percent) : p_percent_(p_percent) {}

  std::string Name() const override { return "rankswapping"; }
  std::string Params() const override;

  Result<Dataset> Protect(const Dataset& original, const std::vector<int>& attrs,
                          Rng* rng) const override;

  double p_percent() const { return p_percent_; }

 private:
  double p_percent_;
};

}  // namespace protection
}  // namespace evocat

#endif  // EVOCAT_PROTECTION_RANK_SWAPPING_H_
