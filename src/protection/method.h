/// \file method.h
/// \brief Interface implemented by every masking (protection) method.
///
/// A protection method turns an original dataset into a masked copy by
/// rewriting the values of the protected attributes. All methods in evocat
/// are *domain-closed*: every masked value is one of the attribute's original
/// categories (generalizations are represented by an existing representative
/// category rather than a fresh label). This matches the GA's definition of
/// "valid values" for mutation and keeps every measure well-defined on the
/// shared dictionaries.

#ifndef EVOCAT_PROTECTION_METHOD_H_
#define EVOCAT_PROTECTION_METHOD_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace evocat {
namespace protection {

/// \brief Abstract masking method.
class ProtectionMethod {
 public:
  virtual ~ProtectionMethod() = default;

  /// \brief Method family name, e.g. "microaggregation".
  virtual std::string Name() const = 0;

  /// \brief Human-readable parameterization, e.g. "k=5,order=sort0".
  virtual std::string Params() const = 0;

  /// \brief "name(params)" label used in population provenance.
  std::string Label() const { return Name() + "(" + Params() + ")"; }

  /// \brief Produces a masked copy of `original`, rewriting only `attrs`.
  ///
  /// Deterministic given `rng`'s state; methods that are conceptually
  /// deterministic (coding, recoding) ignore `rng`.
  virtual Result<Dataset> Protect(const Dataset& original,
                                  const std::vector<int>& attrs,
                                  Rng* rng) const = 0;

 protected:
  /// \brief Validates that `attrs` are distinct, in-range indices.
  static Status ValidateAttrs(const Dataset& dataset,
                              const std::vector<int>& attrs);
};

}  // namespace protection
}  // namespace evocat

#endif  // EVOCAT_PROTECTION_METHOD_H_
