#include "protection/registry.h"

#include <algorithm>

#include "common/string_utils.h"

namespace evocat {
namespace protection {

MethodRegistry& MethodRegistry::Global() {
  static MethodRegistry* registry = [] {
    auto* r = new MethodRegistry();
    RegisterMicroaggregationMethod(r);
    RegisterCodingMethods(r);
    RegisterGlobalRecodingMethod(r);
    RegisterHierarchicalRecodingMethod(r);
    RegisterRankSwappingMethod(r);
    RegisterPramMethod(r);
    return r;
  }();
  return *registry;
}

Status MethodRegistry::Register(const std::string& name,
                                MethodFactory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key = ToLower(name);
  if (entries_.count(key)) {
    return Status::AlreadyExists("protection method '", name,
                                 "' is already registered");
  }
  entries_[key] = Entry{name, std::move(factory)};
  return Status::OK();
}

Result<std::unique_ptr<ProtectionMethod>> MethodRegistry::Create(
    const std::string& name, const ParamMap& params) const {
  MethodFactory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(ToLower(name));
    if (it == entries_.end()) {
      std::vector<std::string> names;
      for (const auto& [key, entry] : entries_) {
        (void)key;
        names.push_back(entry.canonical_name);
      }
      return Status::NotFound("unknown protection method '", name,
                              "'; known: ", Join(names, ','));
    }
    factory = it->second.factory;
  }
  return factory(params);
}

bool MethodRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(ToLower(name)) > 0;
}

std::vector<std::string> MethodRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    (void)key;
    names.push_back(entry.canonical_name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace protection
}  // namespace evocat
