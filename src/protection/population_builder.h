/// \file population_builder.h
/// \brief Builds the paper's initial populations of protected files.
///
/// Section 3 of the paper seeds the GA with 110 (Housing), 104 (German),
/// 104 (Flare) and 86 (Adult) protections produced by six masking methods.
/// `PopulationSpec` encodes the per-method parameter grids; the factory
/// functions below reproduce the paper's counts exactly:
///
///   Housing: 72 microaggregation + 6 bottom + 6 top + 6 recoding
///            + 11 rank swapping + 9 PRAM               = 110
///   German/Flare: 72 + 4 + 4 + 4 + 11 + 9              = 104
///   Adult:   48 + 6 + 6 + 6 + 11 + 9                   = 86

#ifndef EVOCAT_PROTECTION_POPULATION_BUILDER_H_
#define EVOCAT_PROTECTION_POPULATION_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "protection/coding.h"
#include "protection/global_recoding.h"
#include "protection/method.h"
#include "protection/microaggregation.h"
#include "protection/pram.h"
#include "protection/rank_swapping.h"

namespace evocat {
namespace protection {

/// \brief Parameter grids defining one initial population of protections.
struct PopulationSpec {
  /// Microaggregation: the cross product of these two grids.
  std::vector<int> microagg_ks;
  std::vector<MicroOrdering> microagg_orderings;
  /// Coding: collapsed domain fractions.
  std::vector<double> bottom_fractions;
  std::vector<double> top_fractions;
  /// Global recoding: category group sizes.
  std::vector<int> recoding_group_sizes;
  /// Rank swapping: maximum rank displacement (percent of records).
  std::vector<double> rankswap_percents;
  /// PRAM: retention probabilities.
  std::vector<double> pram_retains;

  /// \brief Total number of protections the spec will produce.
  int TotalCount() const;
};

/// \brief Paper §3 population for the Housing dataset (110 protections).
PopulationSpec HousingPopulationSpec();
/// \brief Paper §3 population for German Credit and Solar Flare (104 each).
PopulationSpec GermanFlarePopulationSpec();
/// \brief Paper §3 population for the Adult dataset (86 protections).
PopulationSpec AdultPopulationSpec();

/// \brief A masked file plus the provenance label of the method producing it.
struct ProtectedFile {
  Dataset data;
  std::string method_label;
};

/// \brief Instantiates every method in `spec` (grid order, deterministic).
std::vector<std::unique_ptr<ProtectionMethod>> InstantiateMethods(
    const PopulationSpec& spec);

/// \brief Applies every method in `spec` to `original` over `attrs`.
///
/// Each method gets an independent RNG stream forked deterministically from
/// `seed`, so adding/removing grid entries does not perturb other files.
Result<std::vector<ProtectedFile>> BuildProtections(const Dataset& original,
                                                    const std::vector<int>& attrs,
                                                    const PopulationSpec& spec,
                                                    uint64_t seed);

/// \brief Applies an explicit method roster (e.g. registry-built from a
/// JobSpec) to `original` over `attrs`, same RNG forking discipline as
/// `BuildProtections`: file i depends only on `seed` and position i.
Result<std::vector<ProtectedFile>> BuildProtectionsWith(
    const Dataset& original, const std::vector<int>& attrs,
    const std::vector<std::unique_ptr<ProtectionMethod>>& methods,
    uint64_t seed);

}  // namespace protection
}  // namespace evocat

#endif  // EVOCAT_PROTECTION_POPULATION_BUILDER_H_
