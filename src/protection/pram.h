/// \file pram.h
/// \brief Post Randomization Method (Gouweleeuw et al. 1998).
///
/// Each value is retained with probability `retain` and otherwise replaced by
/// a category drawn from the attribute's empirical marginal distribution
/// (marginal-preserving in expectation). The implied Markov transition matrix
/// is `P = retain * I + (1 - retain) * 1 f^T` with `f` the marginal; its
/// off-diagonal mass is what the entropy-based information loss (EBIL)
/// measures.

#ifndef EVOCAT_PROTECTION_PRAM_H_
#define EVOCAT_PROTECTION_PRAM_H_

#include <string>
#include <vector>

#include "protection/method.h"

namespace evocat {
namespace protection {

/// \brief PRAM with per-value retention probability `retain`.
class Pram : public ProtectionMethod {
 public:
  explicit Pram(double retain) : retain_(retain) {}

  std::string Name() const override { return "pram"; }
  std::string Params() const override;

  Result<Dataset> Protect(const Dataset& original, const std::vector<int>& attrs,
                          Rng* rng) const override;

  double retain() const { return retain_; }

 private:
  double retain_;
};

}  // namespace protection
}  // namespace evocat

#endif  // EVOCAT_PROTECTION_PRAM_H_
