#include "protection/method.h"

#include <set>

namespace evocat {
namespace protection {

Status ProtectionMethod::ValidateAttrs(const Dataset& dataset,
                                       const std::vector<int>& attrs) {
  if (attrs.empty()) {
    return Status::Invalid("no attributes to protect");
  }
  std::set<int> seen;
  for (int a : attrs) {
    if (a < 0 || a >= dataset.num_attributes()) {
      return Status::OutOfRange("attribute index ", a, " out of range [0, ",
                                dataset.num_attributes(), ")");
    }
    if (!seen.insert(a).second) {
      return Status::Invalid("duplicate attribute index ", a);
    }
  }
  if (dataset.num_rows() == 0) {
    return Status::Invalid("cannot protect an empty dataset");
  }
  return Status::OK();
}

}  // namespace protection
}  // namespace evocat
