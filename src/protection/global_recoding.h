/// \file global_recoding.h
/// \brief Global recoding: merge adjacent categories into coarser groups.
///
/// The domain of each protected attribute is partitioned into consecutive
/// groups of `group_size` categories (the last group absorbs the remainder);
/// every value is replaced by its group's central category, which acts as the
/// representative of the generalized class. Applied globally — every record
/// is recoded with the same partition — as in the Argus-style generalization
/// the paper references (Hundepool & Willenborg 1998).

#ifndef EVOCAT_PROTECTION_GLOBAL_RECODING_H_
#define EVOCAT_PROTECTION_GLOBAL_RECODING_H_

#include <string>
#include <vector>

#include "protection/method.h"

namespace evocat {
namespace protection {

/// \brief Global recoding with groups of `group_size` adjacent categories.
class GlobalRecoding : public ProtectionMethod {
 public:
  explicit GlobalRecoding(int group_size) : group_size_(group_size) {}

  std::string Name() const override { return "globalrecoding"; }
  std::string Params() const override;

  Result<Dataset> Protect(const Dataset& original, const std::vector<int>& attrs,
                          Rng* rng) const override;

  /// \brief Representative code for `code` in a domain of `cardinality`.
  int32_t Representative(int32_t code, int cardinality) const;

 private:
  int group_size_;
};

}  // namespace protection
}  // namespace evocat

#endif  // EVOCAT_PROTECTION_GLOBAL_RECODING_H_
