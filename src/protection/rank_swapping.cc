#include "protection/rank_swapping.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_utils.h"
#include "protection/registry.h"

namespace evocat {
namespace protection {

namespace {

/// Fenwick order-statistics set over positions [1, n]: membership count over
/// a range and k-th member selection in O(log n). Tracks the not-yet-swapped
/// positions so partner selection needs no O(window) candidate scan — the
/// uniform draw over "unswapped positions in (i, i+window]" consumes the
/// same RNG stream and picks the same partner as the materialized list did,
/// so masked outputs are bit-identical at any window size.
class UnswappedSet {
 public:
  explicit UnswappedSet(int64_t n) : n_(n), tree_(static_cast<size_t>(n) + 1, 0) {
    for (int64_t i = 1; i <= n_; ++i) {
      tree_[static_cast<size_t>(i)] += 1;
      int64_t parent = i + (i & -i);
      if (parent <= n_) tree_[static_cast<size_t>(parent)] += tree_[static_cast<size_t>(i)];
    }
    log_floor_ = 1;
    while ((log_floor_ << 1) <= n_) log_floor_ <<= 1;
  }

  /// Number of members in [1, pos].
  int64_t PrefixCount(int64_t pos) const {
    int64_t sum = 0;
    for (; pos > 0; pos -= pos & -pos) sum += tree_[static_cast<size_t>(pos)];
    return sum;
  }

  void Remove(int64_t pos) {
    for (; pos <= n_; pos += pos & -pos) tree_[static_cast<size_t>(pos)] -= 1;
  }

  /// Position of the k-th member (1-based rank over the whole set).
  int64_t SelectKth(int64_t k) const {
    int64_t pos = 0;
    for (int64_t step = log_floor_; step > 0; step >>= 1) {
      int64_t next = pos + step;
      if (next <= n_ && tree_[static_cast<size_t>(next)] < k) {
        pos = next;
        k -= tree_[static_cast<size_t>(next)];
      }
    }
    return pos + 1;
  }

 private:
  int64_t n_;
  int64_t log_floor_ = 1;
  std::vector<int64_t> tree_;
};

}  // namespace

std::string RankSwapping::Params() const {
  return StrFormat("p=%.1f%%", p_percent_);
}

Result<Dataset> RankSwapping::Protect(const Dataset& original,
                                      const std::vector<int>& attrs,
                                      Rng* rng) const {
  EVOCAT_RETURN_NOT_OK(ValidateAttrs(original, attrs));
  if (p_percent_ <= 0.0 || p_percent_ >= 100.0) {
    return Status::Invalid("rank swapping requires p in (0, 100), got ",
                           p_percent_);
  }

  Dataset masked = original.Clone();
  int64_t n = original.num_rows();
  auto window = static_cast<int64_t>(std::llround(p_percent_ / 100.0 *
                                                  static_cast<double>(n)));
  window = std::max<int64_t>(1, window);

  for (int attr : attrs) {
    // Sort record indices by category code; random tie-break so that equal
    // categories do not always pair the same records.
    std::vector<int64_t> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::vector<uint64_t> tiebreak(static_cast<size_t>(n));
    for (auto& t : tiebreak) t = rng->NextU64();
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      int32_t ca = original.Code(a, attr);
      int32_t cb = original.Code(b, attr);
      if (ca != cb) return ca < cb;
      return tiebreak[static_cast<size_t>(a)] < tiebreak[static_cast<size_t>(b)];
    });

    std::vector<bool> swapped(static_cast<size_t>(n), false);
    UnswappedSet unswapped(n);  // 1-based: sorted position i lives at i + 1
    for (int64_t i = 0; i < n; ++i) {
      if (swapped[static_cast<size_t>(i)]) continue;
      int64_t hi = std::min(n - 1, i + window);
      // Unswapped partners in (i, hi] — count and uniform pick in O(log n).
      int64_t below = unswapped.PrefixCount(i + 1);
      int64_t count = unswapped.PrefixCount(hi + 1) - below;
      if (count == 0) {
        swapped[static_cast<size_t>(i)] = true;  // no partner: value stays
        unswapped.Remove(i + 1);
        continue;
      }
      auto k = static_cast<int64_t>(
          rng->UniformIndex(static_cast<size_t>(count)));
      int64_t j = unswapped.SelectKth(below + k + 1) - 1;
      int64_t rec_i = order[static_cast<size_t>(i)];
      int64_t rec_j = order[static_cast<size_t>(j)];
      int32_t vi = masked.Code(rec_i, attr);
      masked.SetCode(rec_i, attr, masked.Code(rec_j, attr));
      masked.SetCode(rec_j, attr, vi);
      swapped[static_cast<size_t>(i)] = true;
      swapped[static_cast<size_t>(j)] = true;
      unswapped.Remove(i + 1);
      unswapped.Remove(j + 1);
    }
  }
  return masked;
}

void RegisterRankSwappingMethod(MethodRegistry* registry) {
  registry->Register(
      "rankswapping",
      [](const ParamMap& params) -> Result<std::unique_ptr<ProtectionMethod>> {
        ParamReader reader("rankswapping", params);
        double p_percent = reader.GetDouble("p_percent", 10.0);
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        return std::unique_ptr<ProtectionMethod>(new RankSwapping(p_percent));
      });
}

}  // namespace protection
}  // namespace evocat
