#include "protection/rank_swapping.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_utils.h"
#include "protection/registry.h"

namespace evocat {
namespace protection {

std::string RankSwapping::Params() const {
  return StrFormat("p=%.1f%%", p_percent_);
}

Result<Dataset> RankSwapping::Protect(const Dataset& original,
                                      const std::vector<int>& attrs,
                                      Rng* rng) const {
  EVOCAT_RETURN_NOT_OK(ValidateAttrs(original, attrs));
  if (p_percent_ <= 0.0 || p_percent_ >= 100.0) {
    return Status::Invalid("rank swapping requires p in (0, 100), got ",
                           p_percent_);
  }

  Dataset masked = original.Clone();
  int64_t n = original.num_rows();
  auto window = static_cast<int64_t>(std::llround(p_percent_ / 100.0 *
                                                  static_cast<double>(n)));
  window = std::max<int64_t>(1, window);

  for (int attr : attrs) {
    // Sort record indices by category code; random tie-break so that equal
    // categories do not always pair the same records.
    std::vector<int64_t> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::vector<uint64_t> tiebreak(static_cast<size_t>(n));
    for (auto& t : tiebreak) t = rng->NextU64();
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      int32_t ca = original.Code(a, attr);
      int32_t cb = original.Code(b, attr);
      if (ca != cb) return ca < cb;
      return tiebreak[static_cast<size_t>(a)] < tiebreak[static_cast<size_t>(b)];
    });

    std::vector<bool> swapped(static_cast<size_t>(n), false);
    for (int64_t i = 0; i < n; ++i) {
      if (swapped[static_cast<size_t>(i)]) continue;
      int64_t hi = std::min(n - 1, i + window);
      // Collect unswapped partners in (i, hi].
      std::vector<int64_t> candidates;
      for (int64_t j = i + 1; j <= hi; ++j) {
        if (!swapped[static_cast<size_t>(j)]) candidates.push_back(j);
      }
      if (candidates.empty()) {
        swapped[static_cast<size_t>(i)] = true;  // no partner: value stays
        continue;
      }
      int64_t j = candidates[rng->UniformIndex(candidates.size())];
      int64_t rec_i = order[static_cast<size_t>(i)];
      int64_t rec_j = order[static_cast<size_t>(j)];
      int32_t vi = masked.Code(rec_i, attr);
      masked.SetCode(rec_i, attr, masked.Code(rec_j, attr));
      masked.SetCode(rec_j, attr, vi);
      swapped[static_cast<size_t>(i)] = true;
      swapped[static_cast<size_t>(j)] = true;
    }
  }
  return masked;
}

void RegisterRankSwappingMethod(MethodRegistry* registry) {
  registry->Register(
      "rankswapping",
      [](const ParamMap& params) -> Result<std::unique_ptr<ProtectionMethod>> {
        ParamReader reader("rankswapping", params);
        double p_percent = reader.GetDouble("p_percent", 10.0);
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        return std::unique_ptr<ProtectionMethod>(new RankSwapping(p_percent));
      });
}

}  // namespace protection
}  // namespace evocat
