/// \file microaggregation.h
/// \brief Median/mode-based microaggregation for categorical attributes
/// (Torra, PSD 2004).
///
/// Records are ordered, partitioned into groups of at least `k` consecutive
/// records, and each group's values are replaced by the group centroid:
/// the median category for ordinal attributes, the plurality category (mode)
/// for nominal attributes. Larger `k` gives stronger protection (each masked
/// combination is shared by >= k records along the grouping) and higher
/// information loss.

#ifndef EVOCAT_PROTECTION_MICROAGGREGATION_H_
#define EVOCAT_PROTECTION_MICROAGGREGATION_H_

#include <string>
#include <vector>

#include "protection/method.h"

namespace evocat {
namespace protection {

/// \brief How records are ordered before being cut into groups of k.
///
/// The paper's 72/48 microaggregation protections per dataset arise from a
/// grid of k values x ordering variants; these are the variants.
enum class MicroOrdering {
  /// Each protected attribute is microaggregated independently, records
  /// sorted by that attribute alone (univariate).
  kUnivariate,
  /// Multivariate: records sorted lexicographically starting at the 1st
  /// protected attribute; all protected attributes share the grouping.
  kSortByAttr0,
  /// Multivariate, sort starting at the 2nd protected attribute.
  kSortByAttr1,
  /// Multivariate, sort starting at the 3rd protected attribute.
  kSortByAttr2,
  /// Multivariate, records sorted by the sum of normalized codes.
  kSortBySum,
  /// Multivariate, records sorted by a random projection of normalized codes
  /// (weights drawn once from the method RNG).
  kRandomProjection,
};

const char* MicroOrderingToString(MicroOrdering ordering);

/// \brief Inverse of MicroOrderingToString; rejects unknown names.
Result<MicroOrdering> MicroOrderingFromString(const std::string& name);

/// \brief Categorical microaggregation with group size `k`.
class Microaggregation : public ProtectionMethod {
 public:
  Microaggregation(int k, MicroOrdering ordering)
      : k_(k), ordering_(ordering) {}

  std::string Name() const override { return "microaggregation"; }
  std::string Params() const override;

  Result<Dataset> Protect(const Dataset& original, const std::vector<int>& attrs,
                          Rng* rng) const override;

  int k() const { return k_; }
  MicroOrdering ordering() const { return ordering_; }

 private:
  int k_;
  MicroOrdering ordering_;
};

}  // namespace protection
}  // namespace evocat

#endif  // EVOCAT_PROTECTION_MICROAGGREGATION_H_
