#include "protection/population_builder.h"

#include "common/parallel.h"

namespace evocat {
namespace protection {

namespace {

const std::vector<int> kTwelveKs = {3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14};

const std::vector<MicroOrdering> kSixOrderings = {
    MicroOrdering::kUnivariate,   MicroOrdering::kSortByAttr0,
    MicroOrdering::kSortByAttr1,  MicroOrdering::kSortByAttr2,
    MicroOrdering::kSortBySum,    MicroOrdering::kRandomProjection,
};

const std::vector<MicroOrdering> kFourOrderings = {
    MicroOrdering::kUnivariate,
    MicroOrdering::kSortByAttr0,
    MicroOrdering::kSortByAttr1,
    MicroOrdering::kSortByAttr2,
};

const std::vector<double> kElevenSwapPercents = {2, 4, 6, 8, 10, 12,
                                                 14, 16, 18, 20, 22};

const std::vector<double> kNineRetains = {0.9, 0.8, 0.7, 0.6, 0.5,
                                          0.4, 0.3, 0.2, 0.1};

}  // namespace

int PopulationSpec::TotalCount() const {
  return static_cast<int>(microagg_ks.size() * microagg_orderings.size() +
                          bottom_fractions.size() + top_fractions.size() +
                          recoding_group_sizes.size() +
                          rankswap_percents.size() + pram_retains.size());
}

PopulationSpec HousingPopulationSpec() {
  PopulationSpec spec;
  spec.microagg_ks = kTwelveKs;                      // 12
  spec.microagg_orderings = kSixOrderings;           // x6 = 72
  spec.bottom_fractions = {0.08, 0.16, 0.24, 0.32, 0.40, 0.48};  // 6
  spec.top_fractions = {0.08, 0.16, 0.24, 0.32, 0.40, 0.48};     // 6
  spec.recoding_group_sizes = {2, 3, 4, 5, 6, 7};                // 6
  spec.rankswap_percents = kElevenSwapPercents;                  // 11
  spec.pram_retains = kNineRetains;                              // 9
  return spec;                                                   // = 110
}

PopulationSpec GermanFlarePopulationSpec() {
  PopulationSpec spec;
  spec.microagg_ks = kTwelveKs;                      // 12
  spec.microagg_orderings = kSixOrderings;           // x6 = 72
  spec.bottom_fractions = {0.12, 0.24, 0.36, 0.48};  // 4
  spec.top_fractions = {0.12, 0.24, 0.36, 0.48};     // 4
  spec.recoding_group_sizes = {2, 3, 4, 5};          // 4
  spec.rankswap_percents = kElevenSwapPercents;      // 11
  spec.pram_retains = kNineRetains;                  // 9
  return spec;                                       // = 104
}

PopulationSpec AdultPopulationSpec() {
  PopulationSpec spec;
  spec.microagg_ks = kTwelveKs;                      // 12
  spec.microagg_orderings = kFourOrderings;          // x4 = 48
  spec.bottom_fractions = {0.08, 0.16, 0.24, 0.32, 0.40, 0.48};  // 6
  spec.top_fractions = {0.08, 0.16, 0.24, 0.32, 0.40, 0.48};     // 6
  spec.recoding_group_sizes = {2, 3, 4, 5, 6, 7};                // 6
  spec.rankswap_percents = kElevenSwapPercents;                  // 11
  spec.pram_retains = kNineRetains;                              // 9
  return spec;                                                   // = 86
}

std::vector<std::unique_ptr<ProtectionMethod>> InstantiateMethods(
    const PopulationSpec& spec) {
  std::vector<std::unique_ptr<ProtectionMethod>> methods;
  for (int k : spec.microagg_ks) {
    for (MicroOrdering ordering : spec.microagg_orderings) {
      methods.push_back(std::make_unique<Microaggregation>(k, ordering));
    }
  }
  for (double f : spec.bottom_fractions) {
    methods.push_back(std::make_unique<BottomCoding>(f));
  }
  for (double f : spec.top_fractions) {
    methods.push_back(std::make_unique<TopCoding>(f));
  }
  for (int g : spec.recoding_group_sizes) {
    methods.push_back(std::make_unique<GlobalRecoding>(g));
  }
  for (double p : spec.rankswap_percents) {
    methods.push_back(std::make_unique<RankSwapping>(p));
  }
  for (double retain : spec.pram_retains) {
    methods.push_back(std::make_unique<Pram>(retain));
  }
  return methods;
}

Result<std::vector<ProtectedFile>> BuildProtections(const Dataset& original,
                                                    const std::vector<int>& attrs,
                                                    const PopulationSpec& spec,
                                                    uint64_t seed) {
  return BuildProtectionsWith(original, attrs, InstantiateMethods(spec), seed);
}

Result<std::vector<ProtectedFile>> BuildProtectionsWith(
    const Dataset& original, const std::vector<int>& attrs,
    const std::vector<std::unique_ptr<ProtectionMethod>>& methods,
    uint64_t seed) {
  // Fork every stream up front (order defines the streams), then protect the
  // grid points in parallel: file i depends only on `seed` and position i, so
  // the schedule cannot change any output. In a batch this loop is a prime
  // work-stealing target — one subtask per grid point.
  std::vector<Rng> streams;
  streams.reserve(methods.size());
  Rng master(seed);
  for (size_t i = 0; i < methods.size(); ++i) streams.push_back(master.Fork());

  std::vector<Result<Dataset>> masked(
      methods.size(), Result<Dataset>(Status::Internal("not built")));
  ParallelFor(0, static_cast<int64_t>(methods.size()), [&](int64_t i) {
    auto index = static_cast<size_t>(i);
    masked[index] =
        methods[index]->Protect(original, attrs, &streams[index]);
  });

  std::vector<ProtectedFile> files;
  files.reserve(methods.size());
  for (size_t i = 0; i < methods.size(); ++i) {
    if (!masked[i].ok()) return masked[i].status();  // first failure by index
    files.push_back(ProtectedFile{std::move(masked[i]).ValueOrDie(),
                                  methods[i]->Label()});
  }
  return files;
}

}  // namespace protection
}  // namespace evocat
