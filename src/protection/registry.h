/// \file registry.h
/// \brief String-keyed factory registry for protection methods.
///
/// The registry is what lets a JobSpec name its masking roster declaratively
/// ("microaggregation", "pram", ...) instead of the caller wiring concrete
/// classes at compile time. Each method implementation file registers its own
/// factory — including the parameter schema it accepts — via the hook it
/// defines at the bottom of its .cc; `MethodRegistry::Global()` invokes every
/// hook exactly once on first use, which keeps registration inside the
/// implementation files while staying immune to static-library dead-stripping
/// of unreferenced translation units.

#ifndef EVOCAT_PROTECTION_REGISTRY_H_
#define EVOCAT_PROTECTION_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/params.h"
#include "common/result.h"
#include "protection/method.h"

namespace evocat {
namespace protection {

/// \brief Builds one configured method instance from a parameter map.
///
/// Factories must reject unknown or malformed parameters with a Status that
/// names the offending field (use `ParamReader`).
using MethodFactory =
    std::function<Result<std::unique_ptr<ProtectionMethod>>(const ParamMap&)>;

/// \brief Name -> factory registry for `ProtectionMethod` implementations.
///
/// Lookup is case-insensitive; `Names()` reports canonical (registered)
/// spellings. Thread-safe.
class MethodRegistry {
 public:
  /// \brief The process-wide registry, with all built-ins registered.
  static MethodRegistry& Global();

  /// \brief Registers `factory` under `name`; duplicate names are an error.
  Status Register(const std::string& name, MethodFactory factory);

  /// \brief Constructs the method registered under `name`.
  Result<std::unique_ptr<ProtectionMethod>> Create(
      const std::string& name, const ParamMap& params = {}) const;

  bool Contains(const std::string& name) const;

  /// \brief Canonical registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    std::string canonical_name;
    MethodFactory factory;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  // keyed by lower-cased name
};

/// \brief Built-in registration hooks, each implemented alongside the method
/// it registers (self-registration; called once by `Global()`).
void RegisterMicroaggregationMethod(MethodRegistry* registry);
void RegisterCodingMethods(MethodRegistry* registry);
void RegisterGlobalRecodingMethod(MethodRegistry* registry);
void RegisterHierarchicalRecodingMethod(MethodRegistry* registry);
void RegisterRankSwappingMethod(MethodRegistry* registry);
void RegisterPramMethod(MethodRegistry* registry);

}  // namespace protection
}  // namespace evocat

#endif  // EVOCAT_PROTECTION_REGISTRY_H_
