#include "protection/global_recoding.h"

#include <algorithm>

#include "common/string_utils.h"
#include "protection/registry.h"

namespace evocat {
namespace protection {

std::string GlobalRecoding::Params() const {
  return StrFormat("group=%d", group_size_);
}

int32_t GlobalRecoding::Representative(int32_t code, int cardinality) const {
  int32_t group = code / group_size_;
  int32_t start = group * group_size_;
  int32_t end = std::min(start + group_size_, cardinality);  // exclusive
  // If the tail group is a singleton remainder, merge it into the previous
  // group so no category escapes generalization.
  if (end - start == 1 && start > 0) {
    start -= group_size_;
  }
  return start + (std::min(end, cardinality) - start - 1) / 2;
}

Result<Dataset> GlobalRecoding::Protect(const Dataset& original,
                                        const std::vector<int>& attrs,
                                        Rng* /*rng*/) const {
  EVOCAT_RETURN_NOT_OK(ValidateAttrs(original, attrs));
  if (group_size_ < 2) {
    return Status::Invalid("global recoding requires group size >= 2, got ",
                           group_size_);
  }
  Dataset masked = original.Clone();
  for (int attr : attrs) {
    int cardinality = original.schema().attribute(attr).cardinality();
    auto& col = masked.mutable_column(attr);
    for (auto& code : col) {
      code = Representative(code, cardinality);
    }
  }
  return masked;
}

void RegisterGlobalRecodingMethod(MethodRegistry* registry) {
  registry->Register(
      "globalrecoding",
      [](const ParamMap& params) -> Result<std::unique_ptr<ProtectionMethod>> {
        ParamReader reader("globalrecoding", params);
        int64_t group_size = reader.GetInt("group_size", 2);
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        return std::unique_ptr<ProtectionMethod>(
            new GlobalRecoding(static_cast<int>(group_size)));
      });
}

}  // namespace protection
}  // namespace evocat
