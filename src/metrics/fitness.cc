#include "metrics/fitness.h"

#include <cmath>
#include <limits>

#include "metrics/ctbil.h"
#include "metrics/dbil.h"
#include "metrics/dbrl.h"
#include "metrics/ebil.h"
#include "metrics/interval_disclosure.h"
#include "metrics/prl.h"
#include "metrics/rsrl.h"

namespace evocat {
namespace metrics {

const char* ScoreAggregationToString(ScoreAggregation aggregation) {
  switch (aggregation) {
    case ScoreAggregation::kMean:
      return "mean";
    case ScoreAggregation::kMax:
      return "max";
    case ScoreAggregation::kEuclidean:
      return "euclidean";
    case ScoreAggregation::kWeighted:
      return "weighted";
  }
  return "?";
}

double AggregateScore(ScoreAggregation aggregation, double il, double dr,
                      double il_weight) {
  switch (aggregation) {
    case ScoreAggregation::kMean:
      return (il + dr) / 2.0;
    case ScoreAggregation::kMax:
      return std::max(il, dr);
    case ScoreAggregation::kEuclidean:
      return std::sqrt((il * il + dr * dr) / 2.0);
    case ScoreAggregation::kWeighted:
      return il_weight * il + (1.0 - il_weight) * dr;
  }
  return (il + dr) / 2.0;
}

Result<std::unique_ptr<FitnessEvaluator>> FitnessEvaluator::Create(
    const Dataset& original, const std::vector<int>& attrs,
    const Options& options) {
  EVOCAT_RETURN_NOT_OK(ValidateComparable(original, original, attrs));
  if (options.il_weight < 0.0 || options.il_weight > 1.0) {
    return Status::Invalid("il_weight must be in [0, 1], got ",
                           options.il_weight);
  }
  if (!options.use_ctbil && !options.use_dbil && !options.use_ebil) {
    return Status::Invalid("at least one information-loss measure is required");
  }
  if (!options.use_id && !options.use_dbrl && !options.use_prl &&
      !options.use_rsrl) {
    return Status::Invalid("at least one disclosure-risk measure is required");
  }

  std::unique_ptr<FitnessEvaluator> evaluator(
      new FitnessEvaluator(original, attrs, options));
  if (options.use_ctbil) {
    EVOCAT_ASSIGN_OR_RETURN(evaluator->ctbil_,
                            CtbIl(options.ctbil_max_dimension).Bind(original, attrs));
  }
  if (options.use_dbil) {
    EVOCAT_ASSIGN_OR_RETURN(evaluator->dbil_, DbIl().Bind(original, attrs));
  }
  if (options.use_ebil) {
    EVOCAT_ASSIGN_OR_RETURN(evaluator->ebil_, EbIl().Bind(original, attrs));
  }
  if (options.use_id) {
    EVOCAT_ASSIGN_OR_RETURN(
        evaluator->id_,
        IntervalDisclosure(options.id_window_percent).Bind(original, attrs));
  }
  if (options.use_dbrl) {
    EVOCAT_ASSIGN_OR_RETURN(evaluator->dbrl_,
                            DistanceBasedRecordLinkage().Bind(original, attrs));
  }
  if (options.use_prl) {
    EVOCAT_ASSIGN_OR_RETURN(
        evaluator->prl_,
        ProbabilisticRecordLinkage(options.prl_em_iterations).Bind(original, attrs));
  }
  if (options.use_rsrl) {
    EVOCAT_ASSIGN_OR_RETURN(
        evaluator->rsrl_,
        RankSwappingRecordLinkage(options.rsrl_assumed_p_percent)
            .Bind(original, attrs));
  }
  return evaluator;
}

namespace {

/// Folds the seven per-measure values (NaN = disabled) into IL/DR means and
/// the aggregate score — shared by the full and incremental paths so both
/// run the identical floating-point sequence.
FitnessBreakdown FoldBreakdown(double ctbil, double dbil, double ebil,
                               double id, double dbrl, double prl, double rsrl,
                               ScoreAggregation aggregation, double il_weight) {
  FitnessBreakdown b;
  b.ctbil = ctbil;
  b.dbil = dbil;
  b.ebil = ebil;
  b.id = id;
  b.dbrl = dbrl;
  b.prl = prl;
  b.rsrl = rsrl;
  double il_sum = 0.0, dr_sum = 0.0;
  int il_count = 0, dr_count = 0;
  for (double v : {b.ctbil, b.dbil, b.ebil}) {
    if (!std::isnan(v)) {
      il_sum += v;
      il_count += 1;
    }
  }
  for (double v : {b.id, b.dbrl, b.prl, b.rsrl}) {
    if (!std::isnan(v)) {
      dr_sum += v;
      dr_count += 1;
    }
  }
  b.il = il_count > 0 ? il_sum / il_count : 0.0;
  b.dr = dr_count > 0 ? dr_sum / dr_count : 0.0;
  b.score = AggregateScore(aggregation, b.il, b.dr, il_weight);
  return b;
}

}  // namespace

FitnessBreakdown FitnessEvaluator::Evaluate(const Dataset& masked) const {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  auto value = [&](const std::unique_ptr<BoundMeasure>& bound) {
    return bound ? bound->Compute(masked) : kNaN;
  };
  FitnessBreakdown b = FoldBreakdown(
      value(ctbil_), value(dbil_), value(ebil_), value(id_), value(dbrl_),
      value(prl_), value(rsrl_), options_.aggregation, options_.il_weight);
  num_evaluations_.fetch_add(1, std::memory_order_relaxed);
  return b;
}

std::unique_ptr<FitnessState> FitnessEvaluator::BindState(
    const Dataset& masked) const {
  std::unique_ptr<FitnessState> state(new FitnessState());
  state->evaluator_ = this;
  int64_t rebuild_cells = static_cast<int64_t>(
      options_.delta_rebuild_fraction *
      static_cast<double>(masked.num_rows()) *
      static_cast<double>(attrs_.size()));
  auto bind = [&](const std::unique_ptr<BoundMeasure>& bound,
                  std::unique_ptr<MeasureState>* slot) {
    if (bound) {
      *slot = bound->BindState(masked);
      (*slot)->set_full_rebuild_threshold(rebuild_cells);
    }
  };
  bind(ctbil_, &state->ctbil_);
  bind(dbil_, &state->dbil_);
  bind(ebil_, &state->ebil_);
  bind(id_, &state->id_);
  bind(dbrl_, &state->dbrl_);
  bind(prl_, &state->prl_);
  bind(rsrl_, &state->rsrl_);
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  auto value = [](const std::unique_ptr<MeasureState>& s) {
    return s ? s->Score() : kNaN;
  };
  state->breakdown_ = FoldBreakdown(
      value(state->ctbil_), value(state->dbil_), value(state->ebil_),
      value(state->id_), value(state->dbrl_), value(state->prl_),
      value(state->rsrl_), options_.aggregation, options_.il_weight);
  state->prev_breakdown_ = state->breakdown_;
  num_evaluations_.fetch_add(1, std::memory_order_relaxed);
  return state;
}

void FitnessState::ApplyDelta(const Dataset& masked_after,
                              const std::vector<CellDelta>& deltas) {
  prev_breakdown_ = breakdown_;
  for (auto* slot : {&ctbil_, &dbil_, &ebil_, &id_, &dbrl_, &prl_, &rsrl_}) {
    if (*slot) (*slot)->ApplyDelta(masked_after, deltas);
  }
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  auto value = [](const std::unique_ptr<MeasureState>& s) {
    return s ? s->Score() : kNaN;
  };
  breakdown_ = FoldBreakdown(value(ctbil_), value(dbil_), value(ebil_),
                             value(id_), value(dbrl_), value(prl_),
                             value(rsrl_), evaluator_->options_.aggregation,
                             evaluator_->options_.il_weight);
  evaluator_->num_evaluations_.fetch_add(1, std::memory_order_relaxed);
}

void FitnessState::Revert() {
  for (auto* slot : {&ctbil_, &dbil_, &ebil_, &id_, &dbrl_, &prl_, &rsrl_}) {
    if (*slot) (*slot)->Revert();
  }
  breakdown_ = prev_breakdown_;
}

}  // namespace metrics
}  // namespace evocat
