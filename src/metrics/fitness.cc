#include "metrics/fitness.h"

#include <cmath>
#include <limits>

#include "metrics/ctbil.h"
#include "metrics/dbil.h"
#include "metrics/dbrl.h"
#include "metrics/ebil.h"
#include "metrics/interval_disclosure.h"
#include "metrics/prl.h"
#include "metrics/rsrl.h"

namespace evocat {
namespace metrics {

const char* ScoreAggregationToString(ScoreAggregation aggregation) {
  switch (aggregation) {
    case ScoreAggregation::kMean:
      return "mean";
    case ScoreAggregation::kMax:
      return "max";
    case ScoreAggregation::kEuclidean:
      return "euclidean";
    case ScoreAggregation::kWeighted:
      return "weighted";
  }
  return "?";
}

double AggregateScore(ScoreAggregation aggregation, double il, double dr,
                      double il_weight) {
  switch (aggregation) {
    case ScoreAggregation::kMean:
      return (il + dr) / 2.0;
    case ScoreAggregation::kMax:
      return std::max(il, dr);
    case ScoreAggregation::kEuclidean:
      return std::sqrt((il * il + dr * dr) / 2.0);
    case ScoreAggregation::kWeighted:
      return il_weight * il + (1.0 - il_weight) * dr;
  }
  return (il + dr) / 2.0;
}

Result<std::unique_ptr<FitnessEvaluator>> FitnessEvaluator::Create(
    const Dataset& original, const std::vector<int>& attrs,
    const Options& options) {
  EVOCAT_RETURN_NOT_OK(ValidateComparable(original, original, attrs));
  if (options.il_weight < 0.0 || options.il_weight > 1.0) {
    return Status::Invalid("il_weight must be in [0, 1], got ",
                           options.il_weight);
  }
  if (!options.use_ctbil && !options.use_dbil && !options.use_ebil) {
    return Status::Invalid("at least one information-loss measure is required");
  }
  if (!options.use_id && !options.use_dbrl && !options.use_prl &&
      !options.use_rsrl) {
    return Status::Invalid("at least one disclosure-risk measure is required");
  }

  std::unique_ptr<FitnessEvaluator> evaluator(
      new FitnessEvaluator(original, attrs, options));
  if (options.use_ctbil) {
    EVOCAT_ASSIGN_OR_RETURN(evaluator->ctbil_,
                            CtbIl(options.ctbil_max_dimension).Bind(original, attrs));
  }
  if (options.use_dbil) {
    EVOCAT_ASSIGN_OR_RETURN(evaluator->dbil_, DbIl().Bind(original, attrs));
  }
  if (options.use_ebil) {
    EVOCAT_ASSIGN_OR_RETURN(evaluator->ebil_, EbIl().Bind(original, attrs));
  }
  if (options.use_id) {
    EVOCAT_ASSIGN_OR_RETURN(
        evaluator->id_,
        IntervalDisclosure(options.id_window_percent).Bind(original, attrs));
  }
  if (options.use_dbrl) {
    EVOCAT_ASSIGN_OR_RETURN(evaluator->dbrl_,
                            DistanceBasedRecordLinkage().Bind(original, attrs));
  }
  if (options.use_prl) {
    EVOCAT_ASSIGN_OR_RETURN(
        evaluator->prl_,
        ProbabilisticRecordLinkage(options.prl_em_iterations).Bind(original, attrs));
  }
  if (options.use_rsrl) {
    EVOCAT_ASSIGN_OR_RETURN(
        evaluator->rsrl_,
        RankSwappingRecordLinkage(options.rsrl_assumed_p_percent)
            .Bind(original, attrs));
  }
  return evaluator;
}

FitnessBreakdown FitnessEvaluator::Evaluate(const Dataset& masked) const {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  FitnessBreakdown b;
  double il_sum = 0.0, dr_sum = 0.0;
  int il_count = 0, dr_count = 0;

  auto apply = [&](const std::unique_ptr<BoundMeasure>& bound, double* slot,
                   double* sum, int* count) {
    if (bound) {
      *slot = bound->Compute(masked);
      *sum += *slot;
      *count += 1;
    } else {
      *slot = kNaN;
    }
  };

  apply(ctbil_, &b.ctbil, &il_sum, &il_count);
  apply(dbil_, &b.dbil, &il_sum, &il_count);
  apply(ebil_, &b.ebil, &il_sum, &il_count);
  apply(id_, &b.id, &dr_sum, &dr_count);
  apply(dbrl_, &b.dbrl, &dr_sum, &dr_count);
  apply(prl_, &b.prl, &dr_sum, &dr_count);
  apply(rsrl_, &b.rsrl, &dr_sum, &dr_count);

  b.il = il_count > 0 ? il_sum / il_count : 0.0;
  b.dr = dr_count > 0 ? dr_sum / dr_count : 0.0;
  b.score = AggregateScore(options_.aggregation, b.il, b.dr, options_.il_weight);
  num_evaluations_.fetch_add(1, std::memory_order_relaxed);
  return b;
}

}  // namespace metrics
}  // namespace evocat
