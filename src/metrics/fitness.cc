#include "metrics/fitness.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.h"
#include "common/string_utils.h"
#include "common/timer.h"
#include "metrics/registry.h"
#include "obs/metrics.h"

namespace evocat {
namespace metrics {

namespace {

/// Slot order mirrors the fixed ctbil..rsrl member order used everywhere in
/// this file; the telemetry label is the measure's JobSpec name.
constexpr const char* kSlotNames[7] = {"ctbil", "dbil",  "ebil", "id",
                                       "dbrl",  "prl",   "rsrl"};

obs::Counter* DeltaAppliesCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "evocat_delta_applies_total",
      "Segment-delta batches folded into fitness states.");
  return counter;
}

obs::Counter* DeltaRevertsCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "evocat_delta_reverts_total",
      "Rejected offspring whose fitness state was rolled back.");
  return counter;
}

obs::Counter* RebuildFallbackCounter(int slot) {
  static obs::Counter* counters[7] = {nullptr};
  static const bool initialized = [] {
    for (int i = 0; i < 7; ++i) {
      counters[i] = obs::MetricsRegistry::Global().GetCounter(
          "evocat_rebuild_fallbacks_total",
          "Segment applies that crossed a measure's full-rebuild threshold "
          "(the incremental path degenerated to a rebuild).",
          {{"measure", kSlotNames[i]}});
    }
    return true;
  }();
  (void)initialized;
  return counters[slot];
}

obs::Gauge* ProbeFractionGauge(int slot) {
  static obs::Gauge* gauges[7] = {nullptr};
  static const bool initialized = [] {
    for (int i = 0; i < 7; ++i) {
      gauges[i] = obs::MetricsRegistry::Global().GetGauge(
          "evocat_delta_plane_probe_fraction_ppm",
          "Rebuild fraction the bind-time probe chose, in parts per million "
          "of the protected cells.",
          {{"measure", kSlotNames[i]}});
    }
    return true;
  }();
  (void)initialized;
  return gauges[slot];
}

/// A no-op segment: `rows` distinct rows, one cell each, old == new (the
/// current code), so applying it exercises the real per-row incremental
/// machinery without changing any state observably — apply + revert leaves
/// the score bitwise where it was.
SegmentDelta NoOpSegment(const Dataset& masked, const std::vector<int>& attrs,
                         int rows) {
  SegmentDelta segment;
  int64_t n = masked.num_rows();
  int64_t stride = std::max<int64_t>(1, n / rows);
  int attr = attrs.front();
  for (int64_t row = 0; row < n && segment.num_cells() < rows; row += stride) {
    int32_t code = masked.Code(row, attr);
    segment.Append(row, attr, code, code);
  }
  return segment;
}

}  // namespace

const char* ScoreAggregationToString(ScoreAggregation aggregation) {
  switch (aggregation) {
    case ScoreAggregation::kMean:
      return "mean";
    case ScoreAggregation::kMax:
      return "max";
    case ScoreAggregation::kEuclidean:
      return "euclidean";
    case ScoreAggregation::kWeighted:
      return "weighted";
  }
  return "?";
}

double AggregateScore(ScoreAggregation aggregation, double il, double dr,
                      double il_weight) {
  switch (aggregation) {
    case ScoreAggregation::kMean:
      return (il + dr) / 2.0;
    case ScoreAggregation::kMax:
      return std::max(il, dr);
    case ScoreAggregation::kEuclidean:
      return std::sqrt((il * il + dr * dr) / 2.0);
    case ScoreAggregation::kWeighted:
      return il_weight * il + (1.0 - il_weight) * dr;
  }
  return (il + dr) / 2.0;
}

Result<ScoreAggregation> ScoreAggregationFromString(const std::string& name) {
  for (ScoreAggregation aggregation :
       {ScoreAggregation::kMean, ScoreAggregation::kMax,
        ScoreAggregation::kEuclidean, ScoreAggregation::kWeighted}) {
    if (name == ScoreAggregationToString(aggregation)) return aggregation;
  }
  return Status::Invalid("unknown score aggregation '", name,
                         "'; expected mean|max|euclidean|weighted");
}

Result<std::unique_ptr<FitnessEvaluator>> FitnessEvaluator::Create(
    const Dataset& original, const std::vector<int>& attrs,
    const Options& options) {
  EVOCAT_RETURN_NOT_OK(ValidateComparable(original, original, attrs));
  if (options.il_weight < 0.0 || options.il_weight > 1.0) {
    return Status::Invalid("il_weight must be in [0, 1], got ",
                           options.il_weight);
  }
  if (options.delta_rebuild_fraction < 0.0 ||
      options.delta_rebuild_fraction > 1.0) {
    return Status::Invalid(
        "delta_rebuild_fraction must be in [0, 1] (0 keeps the per-measure "
        "defaults), got ",
        options.delta_rebuild_fraction);
  }
  for (const auto& [name, fraction] : options.measure_rebuild_fractions) {
    if (!MeasureRegistry::Global().Contains(name)) {
      return Status::Invalid("measure_rebuild_fractions: unknown measure '",
                             name, "'");
    }
    if (fraction <= 0.0 || fraction > 1.0) {
      return Status::Invalid("measure_rebuild_fractions[", name,
                             "] must be in (0, 1], got ", fraction);
    }
  }
  if (!options.use_ctbil && !options.use_dbil && !options.use_ebil) {
    return Status::Invalid("at least one information-loss measure is required");
  }
  if (!options.use_id && !options.use_dbrl && !options.use_prl &&
      !options.use_rsrl) {
    return Status::Invalid("at least one disclosure-risk measure is required");
  }

  // Measures are constructed by name through the registry — the same path a
  // JobSpec takes — so the evaluator never names a concrete measure class.
  std::unique_ptr<FitnessEvaluator> evaluator(
      new FitnessEvaluator(original, attrs, options));
  auto bind = [&](bool enabled, const char* name, ParamMap params,
                  std::unique_ptr<BoundMeasure>* slot) -> Status {
    if (!enabled) return Status::OK();
    EVOCAT_ASSIGN_OR_RETURN(
        std::unique_ptr<Measure> measure,
        MeasureRegistry::Global().Create(name, std::move(params)));
    EVOCAT_ASSIGN_OR_RETURN(*slot, measure->Bind(original, attrs));
    return Status::OK();
  };
  EVOCAT_RETURN_NOT_OK(bind(
      options.use_ctbil, "CTBIL",
      {{"max_dimension", std::to_string(options.ctbil_max_dimension)}},
      &evaluator->ctbil_));
  EVOCAT_RETURN_NOT_OK(bind(options.use_dbil, "DBIL", {}, &evaluator->dbil_));
  EVOCAT_RETURN_NOT_OK(bind(options.use_ebil, "EBIL", {}, &evaluator->ebil_));
  EVOCAT_RETURN_NOT_OK(bind(
      options.use_id, "ID",
      {{"window_percent", FormatDouble(options.id_window_percent)}},
      &evaluator->id_));
  EVOCAT_RETURN_NOT_OK(bind(options.use_dbrl, "DBRL", {}, &evaluator->dbrl_));
  EVOCAT_RETURN_NOT_OK(bind(
      options.use_prl, "PRL",
      {{"em_iterations", std::to_string(options.prl_em_iterations)}},
      &evaluator->prl_));
  EVOCAT_RETURN_NOT_OK(bind(
      options.use_rsrl, "RSRL",
      {{"assumed_p_percent", FormatDouble(options.rsrl_assumed_p_percent)}},
      &evaluator->rsrl_));
  return evaluator;
}

namespace {

/// Folds the seven per-measure values (NaN = disabled) into IL/DR means and
/// the aggregate score — shared by the full and incremental paths so both
/// run the identical floating-point sequence.
FitnessBreakdown FoldBreakdown(double ctbil, double dbil, double ebil,
                               double id, double dbrl, double prl, double rsrl,
                               ScoreAggregation aggregation, double il_weight) {
  FitnessBreakdown b;
  b.ctbil = ctbil;
  b.dbil = dbil;
  b.ebil = ebil;
  b.id = id;
  b.dbrl = dbrl;
  b.prl = prl;
  b.rsrl = rsrl;
  double il_sum = 0.0, dr_sum = 0.0;
  int il_count = 0, dr_count = 0;
  for (double v : {b.ctbil, b.dbil, b.ebil}) {
    if (!std::isnan(v)) {
      il_sum += v;
      il_count += 1;
    }
  }
  for (double v : {b.id, b.dbrl, b.prl, b.rsrl}) {
    if (!std::isnan(v)) {
      dr_sum += v;
      dr_count += 1;
    }
  }
  b.il = il_count > 0 ? il_sum / il_count : 0.0;
  b.dr = dr_count > 0 ? dr_sum / dr_count : 0.0;
  b.score = AggregateScore(aggregation, b.il, b.dr, il_weight);
  return b;
}

}  // namespace

FitnessBreakdown FitnessEvaluator::Evaluate(const Dataset& masked) const {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  auto value = [&](const std::unique_ptr<BoundMeasure>& bound) {
    return bound ? bound->Compute(masked) : kNaN;
  };
  FitnessBreakdown b = FoldBreakdown(
      value(ctbil_), value(dbil_), value(ebil_), value(id_), value(dbrl_),
      value(prl_), value(rsrl_), options_.aggregation, options_.il_weight);
  num_evaluations_.fetch_add(1, std::memory_order_relaxed);
  return b;
}

std::unique_ptr<FitnessState> FitnessEvaluator::BindState(
    const Dataset& masked) const {
  std::unique_ptr<FitnessState> state(new FitnessState());
  state->evaluator_ = this;
  int64_t total_cells =
      masked.num_rows() * static_cast<int64_t>(attrs_.size());
  // Per-measure concurrency pays once a segment is a meaningful share of
  // the file; single-cell mutations stay serial.
  state->parallel_segment_cells_ = std::max<int64_t>(32, total_cells / 256);
  // Per-measure cost model: the state's own default rebuild fraction,
  // unless overridden — per measure first, then globally.
  auto bind = [&](const std::unique_ptr<BoundMeasure>& bound, const char* name,
                  std::unique_ptr<MeasureState>* slot) {
    if (!bound) return;
    *slot = bound->BindState(masked);
    (*slot)->set_total_protected_cells(total_cells);
    double fraction = options_.delta_rebuild_fraction;
    for (const auto& [measure, value] : options_.measure_rebuild_fractions) {
      if (ToLower(measure) == ToLower(name)) fraction = value;
    }
    if (fraction > 0.0) (*slot)->set_rebuild_fraction(fraction);
  };
  bind(ctbil_, "CTBIL", &state->ctbil_);
  bind(dbil_, "DBIL", &state->dbil_);
  bind(ebil_, "EBIL", &state->ebil_);
  bind(id_, "ID", &state->id_);
  bind(dbrl_, "DBRL", &state->dbrl_);
  bind(prl_, "PRL", &state->prl_);
  bind(rsrl_, "RSRL", &state->rsrl_);
  if (options_.probe_rebuild_fractions) {
    ProbeAndApplyFractions(masked, state.get(), total_cells);
  }
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  auto value = [](const std::unique_ptr<MeasureState>& s) {
    return s ? s->Score() : kNaN;
  };
  state->breakdown_ = FoldBreakdown(
      value(state->ctbil_), value(state->dbil_), value(state->ebil_),
      value(state->id_), value(state->dbrl_), value(state->prl_),
      value(state->rsrl_), options_.aggregation, options_.il_weight);
  state->prev_breakdown_ = state->breakdown_;
  num_evaluations_.fetch_add(1, std::memory_order_relaxed);
  return state;
}

void FitnessEvaluator::ProbeAndApplyFractions(const Dataset& masked,
                                              FitnessState* state,
                                              int64_t total_cells) const {
  std::lock_guard<std::mutex> lock(probe_mutex_);
  auto pinned = [&](const char* name) {
    if (options_.delta_rebuild_fraction > 0.0) return true;
    for (const auto& [measure, value] : options_.measure_rebuild_fractions) {
      (void)value;
      if (ToLower(measure) == ToLower(name)) return true;
    }
    return false;
  };
  std::unique_ptr<MeasureState>* slots[7] = {
      &state->ctbil_, &state->dbil_, &state->ebil_, &state->id_,
      &state->dbrl_,  &state->prl_,  &state->rsrl_};
  if (!probed_) {
    // Time the two cost-model legs per measure with no-op segments: a spread
    // batch forced down the incremental path (threshold pinned to infinity)
    // gives the per-cell apply cost, a single cell with threshold 1 gives
    // the full-rebuild cost. Apply + revert pairs leave each state bitwise
    // untouched, and ApplySegment is called directly so the probe never
    // shows up in the delta/revert counters or num_evaluations.
    constexpr int kProbeRows = 48;
    constexpr int kReps = 2;
    SegmentDelta spread = NoOpSegment(masked, attrs_, kProbeRows);
    SegmentDelta single = NoOpSegment(masked, attrs_, 1);
    for (int i = 0; i < 7; ++i) {
      if (!*slots[i] || pinned(kSlotNames[i])) continue;
      MeasureState* s = slots[i]->get();
      double t_inc = std::numeric_limits<double>::infinity();
      s->set_full_rebuild_threshold(std::numeric_limits<int64_t>::max());
      for (int rep = 0; rep < kReps; ++rep) {
        Timer timer;
        s->ApplySegment(masked, spread);
        s->Revert();
        t_inc = std::min(t_inc, timer.ElapsedSeconds());
      }
      double t_rebuild = std::numeric_limits<double>::infinity();
      s->set_full_rebuild_threshold(1);
      for (int rep = 0; rep < kReps; ++rep) {
        Timer timer;
        s->ApplySegment(masked, single);
        s->Revert();
        t_rebuild = std::min(t_rebuild, timer.ElapsedSeconds());
      }
      s->set_full_rebuild_threshold(0);
      // Crossover point: the batch size (as a fraction of the protected
      // cells) where per-cell incremental work equals one rebuild. Timer
      // underflow (either leg below clock resolution) degrades to 1.0 —
      // "rebuilds are free here", the cell-scoped measures' default.
      double per_cell =
          t_inc / static_cast<double>(std::max<int64_t>(1, spread.num_cells()));
      double denom = per_cell * static_cast<double>(total_cells);
      double fraction =
          denom > 0.0 && std::isfinite(t_rebuild) ? t_rebuild / denom : 1.0;
      fraction = std::min(1.0, std::max(0.01, fraction));
      probed_fraction_[i] = fraction;
      ProbeFractionGauge(i)->Set(
          static_cast<int64_t>(std::llround(fraction * 1e6)));
    }
    probed_ = true;
  }
  // Every bind (including the first) adopts the cached probe verdicts;
  // pinned or disabled slots keep whatever BindState already set.
  for (int i = 0; i < 7; ++i) {
    if (*slots[i] && probed_fraction_[i] > 0.0) {
      (*slots[i])->set_rebuild_fraction(probed_fraction_[i]);
    }
  }
}

std::vector<std::pair<std::string, double>>
FitnessEvaluator::probed_rebuild_fractions() const {
  std::lock_guard<std::mutex> lock(probe_mutex_);
  std::vector<std::pair<std::string, double>> out;
  if (!probed_) return out;
  for (int i = 0; i < 7; ++i) {
    if (probed_fraction_[i] > 0.0) out.emplace_back(kSlotNames[i],
                                                    probed_fraction_[i]);
  }
  return out;
}

void FitnessState::ApplyDelta(const Dataset& masked_after,
                              const SegmentDelta& segment,
                              const std::atomic<bool>* cancel) {
  prev_breakdown_ = breakdown_;
  DeltaAppliesCounter()->Increment();
  MeasureState* states[7];
  int slots[7];
  int count = 0;
  int slot_index = 0;
  for (auto* slot : {&ctbil_, &dbil_, &ebil_, &id_, &dbrl_, &prl_, &rsrl_}) {
    if (*slot) {
      states[count] = slot->get();
      slots[count] = slot_index;
      ++count;
    }
    ++slot_index;
  }
  // Heavy segments evaluate the independent measures concurrently (disjoint
  // states, fixed fold order below ⇒ schedule-independent results); small
  // deltas stay serial — the per-measure updates are then cheaper than the
  // fork/join would be.
  bool heavy = segment.num_cells() >= parallel_segment_cells_;
  for (int i = 0; i < count && !heavy; ++i) {
    heavy = segment.num_cells() >= states[i]->full_rebuild_threshold();
  }
  // Telemetry only: which measures will treat this batch as a full rebuild.
  // Same comparison the states make inside ApplySegment, so the counters
  // name the exact cause of a "delta path got slow" regression.
  if (obs::MetricsEnabled()) {
    for (int i = 0; i < count; ++i) {
      if (segment.num_cells() >= states[i]->full_rebuild_threshold()) {
        RebuildFallbackCounter(slots[i])->Increment();
      }
    }
  }
  if (heavy && count > 1) {
    ParallelFor(0, count, [&](int64_t i) {
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) return;
      states[i]->ApplySegment(masked_after, segment);
    });
  } else {
    for (int i = 0; i < count; ++i) {
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) break;
      states[i]->ApplySegment(masked_after, segment);
    }
  }
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  auto value = [](const std::unique_ptr<MeasureState>& s) {
    return s ? s->Score() : kNaN;
  };
  breakdown_ = FoldBreakdown(value(ctbil_), value(dbil_), value(ebil_),
                             value(id_), value(dbrl_), value(prl_),
                             value(rsrl_), evaluator_->options_.aggregation,
                             evaluator_->options_.il_weight);
  evaluator_->num_evaluations_.fetch_add(1, std::memory_order_relaxed);
}

void FitnessState::Revert() {
  DeltaRevertsCounter()->Increment();
  for (auto* slot : {&ctbil_, &dbil_, &ebil_, &id_, &dbrl_, &prl_, &rsrl_}) {
    if (*slot) (*slot)->Revert();
  }
  breakdown_ = prev_breakdown_;
}

}  // namespace metrics
}  // namespace evocat
