/// \file dbrl.h
/// \brief Distance-Based Record Linkage (Domingo-Ferrer & Torra 2002).
///
/// The attacker links every original record to the nearest masked record
/// under the categorical record distance. A record is correctly re-identified
/// when its own masked counterpart is (one of) the nearest; ties share credit
/// 1/|argmin| — the attacker picking uniformly among equally near candidates.
/// DBRL is the expected percentage of correct re-identifications; identity
/// masking of a duplicate-free file gives 100.

#ifndef EVOCAT_METRICS_DBRL_H_
#define EVOCAT_METRICS_DBRL_H_

#include <memory>
#include <string>
#include <vector>

#include "metrics/measure.h"

namespace evocat {
namespace metrics {

/// \brief Nearest-neighbour re-identification risk.
class DistanceBasedRecordLinkage : public Measure {
 public:
  std::string Name() const override { return "DBRL"; }
  MeasureKind Kind() const override { return MeasureKind::kDisclosureRisk; }

  Result<std::unique_ptr<BoundMeasure>> Bind(
      const Dataset& original, const std::vector<int>& attrs) const override;
};

}  // namespace metrics
}  // namespace evocat

#endif  // EVOCAT_METRICS_DBRL_H_
