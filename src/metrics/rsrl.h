/// \file rsrl.h
/// \brief Rank-Swapping Record Linkage (Nin, Herranz & Torra 2008).
///
/// The attack that broke rank swapping's presumed safety: knowing (or
/// assuming) that rank swapping displaces each value at most p% of the file
/// in rank, the attacker restricts each original record's candidate masked
/// records to those whose per-attribute mid-ranks all lie within the p%
/// window, and links to the nearest candidate by record distance. The
/// candidate-set intersection across attributes is what makes this attack
/// sharper than plain distance-based linkage on rank-swapped files. Records
/// with an empty candidate set are unlinkable (no credit).

#ifndef EVOCAT_METRICS_RSRL_H_
#define EVOCAT_METRICS_RSRL_H_

#include <memory>
#include <string>
#include <vector>

#include "metrics/measure.h"

namespace evocat {
namespace metrics {

/// \brief Rank-window constrained linkage with assumed displacement
/// `assumed_p_percent`.
class RankSwappingRecordLinkage : public Measure {
 public:
  explicit RankSwappingRecordLinkage(double assumed_p_percent = 15.0)
      : assumed_p_percent_(assumed_p_percent) {}

  std::string Name() const override { return "RSRL"; }
  MeasureKind Kind() const override { return MeasureKind::kDisclosureRisk; }

  Result<std::unique_ptr<BoundMeasure>> Bind(
      const Dataset& original, const std::vector<int>& attrs) const override;

  double assumed_p_percent() const { return assumed_p_percent_; }

 private:
  double assumed_p_percent_;
};

}  // namespace metrics
}  // namespace evocat

#endif  // EVOCAT_METRICS_RSRL_H_
