/// \file measure.h
/// \brief Interfaces for information-loss and disclosure-risk measures.
///
/// Every measure compares a masked file against the original it was derived
/// from and returns a value on a 0..100 scale (0 = no loss / no risk,
/// 100 = maximal). Because the GA evaluates thousands of masked files against
/// the *same* original, measures follow a bind-then-evaluate protocol:
/// `Measure::Bind(original, attrs)` precomputes all original-side state
/// (contingency tables, rank maps, distance tables) into a `BoundMeasure`
/// whose `Compute(masked)` is the hot path.

#ifndef EVOCAT_METRICS_MEASURE_H_
#define EVOCAT_METRICS_MEASURE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace evocat {
namespace metrics {

/// \brief Which side of the privacy trade-off a measure quantifies.
enum class MeasureKind { kInformationLoss, kDisclosureRisk };

/// \brief A measure bound to one original dataset and attribute set.
class BoundMeasure {
 public:
  virtual ~BoundMeasure() = default;

  /// \brief Evaluates the masked file; returns a value in [0, 100].
  ///
  /// `masked` must share the original's schema and row count (checked by
  /// `Measure::Compute`; callers on the hot path are trusted).
  virtual double Compute(const Dataset& masked) const = 0;
};

/// \brief Factory/descriptor for one measure.
class Measure {
 public:
  virtual ~Measure() = default;

  /// \brief Short identifier, e.g. "CTBIL".
  virtual std::string Name() const = 0;

  /// \brief Information loss or disclosure risk.
  virtual MeasureKind Kind() const = 0;

  /// \brief Precomputes original-side state for repeated evaluation.
  virtual Result<std::unique_ptr<BoundMeasure>> Bind(
      const Dataset& original, const std::vector<int>& attrs) const = 0;

  /// \brief One-shot convenience: validate, bind and evaluate.
  Result<double> Compute(const Dataset& original, const Dataset& masked,
                         const std::vector<int>& attrs) const;
};

/// \brief Validates that `masked` is comparable to `original` over `attrs`.
Status ValidateComparable(const Dataset& original, const Dataset& masked,
                          const std::vector<int>& attrs);

}  // namespace metrics
}  // namespace evocat

#endif  // EVOCAT_METRICS_MEASURE_H_
