/// \file measure.h
/// \brief Interfaces for information-loss and disclosure-risk measures.
///
/// Every measure compares a masked file against the original it was derived
/// from and returns a value on a 0..100 scale (0 = no loss / no risk,
/// 100 = maximal). Because the GA evaluates thousands of masked files against
/// the *same* original, measures follow a bind-then-evaluate protocol:
/// `Measure::Bind(original, attrs)` precomputes all original-side state
/// (contingency tables, rank maps, distance tables) into a `BoundMeasure`
/// whose `Compute(masked)` is the hot path.
///
/// On top of that, the GA's operators change very little per generation — a
/// mutation rewrites exactly one cell, a crossover swaps one gene segment —
/// so `BoundMeasure::BindState(masked)` opens a second, *incremental*
/// protocol: a `MeasureState` carries per-masked-file sufficient statistics
/// (contingency cells, per-row best-match records, agreement-pattern
/// histograms) and re-scores after a batch of `CellDelta`s in time
/// proportional to the delta instead of the file.

#ifndef EVOCAT_METRICS_MEASURE_H_
#define EVOCAT_METRICS_MEASURE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace evocat {
namespace metrics {

/// \brief Which side of the privacy trade-off a measure quantifies.
enum class MeasureKind { kInformationLoss, kDisclosureRisk };

/// \brief One changed cell of a masked file: the GA operators' unit of work.
///
/// `old_code` is the value before the whole delta batch was applied and
/// `new_code` the value after; a batch contains at most one delta per cell.
struct CellDelta {
  int64_t row = 0;
  int attr = 0;  ///< schema attribute index
  int32_t old_code = 0;
  int32_t new_code = 0;
};

/// \brief Incremental evaluation state for one masked file under one measure.
///
/// Obtained from `BoundMeasure::BindState(masked)`. The caller mutates its
/// copy of the masked file, then reports the change:
///
/// ```
/// state->ApplyDelta(masked_after, deltas);   // O(|delta|)-ish update
/// double score = state->Score();             // cached, cheap
/// state->Revert();                           // undo the last ApplyDelta
/// ```
///
/// Contract for `ApplyDelta`:
///  - `masked_after` already reflects every delta (post-image);
///  - each delta's `old_code` is the value before the batch; at most one
///    delta per (row, attr) cell; cells outside the bound attribute set are
///    ignored;
///  - scores agree with a from-scratch `Compute(masked_after)` to within
///    1e-9 (integer-exact for the counting measures);
///  - when the batch exceeds `full_rebuild_threshold()` cells the state
///    falls back to a full recompute automatically (large crossover
///    segments), which is still revertible.
///
/// `Revert` undoes exactly one `ApplyDelta` (one level deep). States never
/// retain a pointer to the masked dataset — every call passes the current
/// file — so they survive the copy-on-write dataset reshuffling the engine
/// performs when offspring replace parents.
class MeasureState {
 public:
  virtual ~MeasureState() = default;

  /// \brief Folds a batch of cell changes into the state (see contract).
  virtual void ApplyDelta(const Dataset& masked_after,
                          const std::vector<CellDelta>& deltas) = 0;

  /// \brief Undoes the most recent ApplyDelta (single level).
  virtual void Revert() = 0;

  /// \brief Current score in [0, 100]; cached, O(1).
  virtual double Score() const = 0;

  /// \brief Delta size (in cells) at which ApplyDelta recomputes in full.
  int64_t full_rebuild_threshold() const { return full_rebuild_threshold_; }
  void set_full_rebuild_threshold(int64_t cells) {
    full_rebuild_threshold_ = cells < 1 ? 1 : cells;
  }

 private:
  int64_t full_rebuild_threshold_ = INT64_MAX;
};

/// \brief A measure bound to one original dataset and attribute set.
class BoundMeasure {
 public:
  virtual ~BoundMeasure() = default;

  /// \brief Evaluates the masked file; returns a value in [0, 100].
  ///
  /// `masked` must share the original's schema and row count (checked by
  /// `Measure::Compute`; callers on the hot path are trusted).
  virtual double Compute(const Dataset& masked) const = 0;

  /// \brief Opens incremental evaluation for `masked`.
  ///
  /// The default implementation returns a correct fallback state that runs a
  /// full `Compute` on every ApplyDelta; measures override it with true
  /// delta updates. The bound measure must outlive the state.
  virtual std::unique_ptr<MeasureState> BindState(const Dataset& masked) const;
};

/// \brief Factory/descriptor for one measure.
class Measure {
 public:
  virtual ~Measure() = default;

  /// \brief Short identifier, e.g. "CTBIL".
  virtual std::string Name() const = 0;

  /// \brief Information loss or disclosure risk.
  virtual MeasureKind Kind() const = 0;

  /// \brief Precomputes original-side state for repeated evaluation.
  virtual Result<std::unique_ptr<BoundMeasure>> Bind(
      const Dataset& original, const std::vector<int>& attrs) const = 0;

  /// \brief One-shot convenience: validate, bind and evaluate.
  Result<double> Compute(const Dataset& original, const Dataset& masked,
                         const std::vector<int>& attrs) const;
};

/// \brief Validates that `masked` is comparable to `original` over `attrs`.
Status ValidateComparable(const Dataset& original, const Dataset& masked,
                          const std::vector<int>& attrs);

}  // namespace metrics
}  // namespace evocat

#endif  // EVOCAT_METRICS_MEASURE_H_
