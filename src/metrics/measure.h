/// \file measure.h
/// \brief Interfaces for information-loss and disclosure-risk measures.
///
/// Every measure compares a masked file against the original it was derived
/// from and returns a value on a 0..100 scale (0 = no loss / no risk,
/// 100 = maximal). Because the GA evaluates thousands of masked files against
/// the *same* original, measures follow a bind-then-evaluate protocol:
/// `Measure::Bind(original, attrs)` precomputes all original-side state
/// (contingency tables, rank maps, distance tables) into a `BoundMeasure`
/// whose `Compute(masked)` is the hot path.
///
/// On top of that, the GA's operators change very little per generation — a
/// mutation rewrites exactly one cell, a crossover swaps one gene segment —
/// so `BoundMeasure::BindState(masked)` opens a second, *incremental*
/// protocol: a `MeasureState` carries per-masked-file sufficient statistics
/// (contingency cells, per-row best-match records, agreement-pattern
/// histograms) and re-scores after a `SegmentDelta` batch in time
/// proportional to the segment instead of the file.

#ifndef EVOCAT_METRICS_MEASURE_H_
#define EVOCAT_METRICS_MEASURE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace evocat {
namespace metrics {

/// \brief Which side of the privacy trade-off a measure quantifies.
enum class MeasureKind { kInformationLoss, kDisclosureRisk };

/// \brief One changed cell of a masked file: the GA operators' unit of work.
///
/// `old_code` is the value before the whole delta batch was applied and
/// `new_code` the value after; a batch contains at most one delta per cell.
struct CellDelta {
  int64_t row = 0;
  int attr = 0;  ///< schema attribute index
  int32_t old_code = 0;
  int32_t new_code = 0;
};

/// \brief Lightweight view over one row's slice of a segment's flat cell
/// array (contiguous, owned by the `SegmentDelta`). Iterates `CellDelta`s,
/// whose `.row` simply repeats the group's row.
struct CellSpan {
  const CellDelta* data = nullptr;
  size_t count = 0;

  const CellDelta* begin() const { return data; }
  const CellDelta* end() const { return data + count; }
  size_t size() const { return count; }
  bool empty() const { return count == 0; }
  const CellDelta& operator[](size_t i) const { return data[i]; }
};

/// \brief All changed cells of one masked record.
///
/// The measures reason about deltas per *masked record*: a crossover segment
/// that swaps several attributes of the same row must be treated as one row
/// transition (old row image -> new row image), otherwise contingency keys
/// and record distances would be computed against half-updated rows.
///
/// A `RowDelta` is a non-owning view into its `SegmentDelta`'s flat cell
/// storage; it stays valid while the segment does and no more cells are
/// appended.
struct RowDelta {
  int64_t row = 0;

  /// Changed cells of this row (a handful at most: one per protected attr).
  CellSpan cells;

  /// \brief The pre-batch code of (row, attr): the recorded old value for a
  /// changed cell, the current value otherwise.
  int32_t OldCode(const Dataset& masked_after, int attr) const {
    for (const CellDelta& cell : cells) {
      if (cell.attr == attr) return cell.old_code;
    }
    return masked_after.Code(row, attr);
  }

  /// \brief Whether `attr` changed in this row.
  bool Touches(int attr) const {
    for (const CellDelta& cell : cells) {
      if (cell.attr == attr) return true;
    }
    return false;
  }
};

/// \brief A segment batch: the flat cell deltas of one operator application
/// together with their by-row grouping, computed once and shared by every
/// measure state (each used to re-group the same batch privately).
///
/// The GA's operators emit cells in flat gene order (row-major), so
/// `Append` extends the current row group in O(1); `FromCells` covers
/// arbitrary batches. Invariants: at most one cell per (row, attr); every
/// cell appears in exactly one row group; `old_code` is the pre-batch value.
///
/// Storage is a single flat `CellDelta` array plus {row, begin, count} group
/// records; the `rows()` view is materialized lazily because appends can
/// reallocate the flat array (one allocation per view rebuild instead of one
/// vector per row — the arena piece of the segment path).
class SegmentDelta {
 public:
  SegmentDelta() = default;

  /// \brief Groups an arbitrary batch by row (first-appearance order). Cells
  /// of one row end up contiguous in `cells()` regardless of input order.
  static SegmentDelta FromCells(const std::vector<CellDelta>& cells);

  /// \brief Appends one cell. Cells of the same row must arrive
  /// consecutively (flat gene order) — a row seen earlier must not reappear.
  void Append(int64_t row, int attr, int32_t old_code, int32_t new_code);

  /// \brief Pre-sizes the flat storage (operators know their segment size).
  void Reserve(size_t num_cells, size_t num_rows) {
    cells_.reserve(num_cells);
    groups_.reserve(num_rows);
    rows_.reserve(num_rows);
  }

  void clear() {
    cells_.clear();
    groups_.clear();
    rows_.clear();
    rows_dirty_ = false;
  }

  bool empty() const { return cells_.empty(); }
  int64_t num_cells() const { return static_cast<int64_t>(cells_.size()); }

  /// \brief Flat per-cell view (cell-scoped measures: DBIL, EBIL, ID).
  const std::vector<CellDelta>& cells() const { return cells_; }

  /// \brief Row-transition view (record-scoped measures: CTBIL, linkage).
  /// Materialized on first use after an append; the returned RowDeltas point
  /// into this segment's flat storage.
  const std::vector<RowDelta>& rows() const;

 private:
  struct Group {
    int64_t row = 0;
    int64_t begin = 0;
    int64_t count = 0;
  };

  std::vector<CellDelta> cells_;
  std::vector<Group> groups_;
  mutable std::vector<RowDelta> rows_;
  mutable bool rows_dirty_ = false;
};

/// \brief Incremental evaluation state for one masked file under one measure.
///
/// Obtained from `BoundMeasure::BindState(masked)`. The caller mutates its
/// copy of the masked file, then reports the change:
///
/// ```
/// state->ApplySegment(masked_after, segment);  // O(segment)-ish update
/// double score = state->Score();               // cached, cheap
/// state->RevertSegment();                      // undo the last apply
/// ```
///
/// Contract for `ApplySegment`:
///  - `masked_after` already reflects every delta (post-image);
///  - each cell's `old_code` is the value before the batch; at most one
///    delta per (row, attr) cell; cells outside the bound attribute set are
///    ignored;
///  - scores agree with a from-scratch `Compute(masked_after)` to within
///    1e-9 (integer-exact for the counting measures);
///  - when the batch reaches `full_rebuild_threshold()` cells the state
///    recomputes from scratch automatically (still revertible). The
///    threshold comes from a per-measure cost model: each state declares the
///    fraction of the protected cells at which a rebuild becomes cheaper
///    than its incremental update (`rebuild_fraction`, overridable per
///    measure through `FitnessEvaluator::Options` / the JobSpec `fitness`
///    block).
///
/// `RevertSegment` undoes exactly one `ApplySegment` (one level deep).
/// States never retain a pointer to the masked dataset — every call passes
/// the current file — so they survive the copy-on-write dataset reshuffling
/// the engine performs when offspring replace parents.
class MeasureState {
 public:
  virtual ~MeasureState() = default;

  /// \brief Folds a segment batch into the state (see contract).
  virtual void ApplySegment(const Dataset& masked_after,
                            const SegmentDelta& segment) = 0;

  /// \brief Undoes the most recent ApplySegment (single level).
  virtual void RevertSegment() = 0;

  /// \brief Current score in [0, 100]; cached, O(1).
  virtual double Score() const = 0;

  /// \brief Convenience wrapper: groups `deltas` and applies them as one
  /// segment. Prefer `ApplySegment` on hot paths — the grouping is then
  /// computed once and shared across measures.
  void ApplyDelta(const Dataset& masked_after,
                  const std::vector<CellDelta>& deltas) {
    ApplySegment(masked_after, SegmentDelta::FromCells(deltas));
  }

  /// \brief Alias of RevertSegment (pairs with ApplyDelta).
  void Revert() { RevertSegment(); }

  /// \brief Fraction of the protected cells at which this state prefers a
  /// full rebuild over its incremental update (the measure's cost model;
  /// ~1.0 for the O(cell) counting measures, ~0.5 for the linkage attacks).
  double rebuild_fraction() const { return rebuild_fraction_; }
  void set_rebuild_fraction(double fraction) {
    rebuild_fraction_ = fraction < 0.0 ? 0.0 : fraction;
  }

  /// \brief Total protected cells of the bound file (rows x bound attrs);
  /// the base the rebuild fraction scales against.
  void set_total_protected_cells(int64_t cells) {
    total_protected_cells_ = cells < 0 ? 0 : cells;
  }

  /// \brief Absolute override of the rebuild threshold in cells (tests and
  /// benches; 0 restores the fraction-derived threshold).
  void set_full_rebuild_threshold(int64_t cells) {
    explicit_threshold_cells_ = cells < 0 ? 0 : cells;
  }

  /// \brief Segment size (in cells) at which ApplySegment recomputes in
  /// full: the explicit override when set, otherwise
  /// `rebuild_fraction * total_protected_cells` (never below 1), or never
  /// when no cell total has been declared.
  int64_t full_rebuild_threshold() const {
    if (explicit_threshold_cells_ > 0) return explicit_threshold_cells_;
    if (total_protected_cells_ <= 0) return INT64_MAX;
    auto cells = static_cast<int64_t>(
        rebuild_fraction_ * static_cast<double>(total_protected_cells_));
    return cells < 1 ? 1 : cells;
  }

 protected:
  /// \param default_rebuild_fraction the measure's own cost-model default.
  explicit MeasureState(double default_rebuild_fraction = 1.0)
      : rebuild_fraction_(default_rebuild_fraction) {}

 private:
  double rebuild_fraction_;
  int64_t total_protected_cells_ = 0;
  int64_t explicit_threshold_cells_ = 0;
};

/// \brief A measure bound to one original dataset and attribute set.
class BoundMeasure {
 public:
  virtual ~BoundMeasure() = default;

  /// \brief Evaluates the masked file; returns a value in [0, 100].
  ///
  /// `masked` must share the original's schema and row count (checked by
  /// `Measure::Compute`; callers on the hot path are trusted).
  virtual double Compute(const Dataset& masked) const = 0;

  /// \brief Opens incremental evaluation for `masked`.
  ///
  /// The default implementation returns a correct fallback state that runs a
  /// full `Compute` on every ApplySegment; measures override it with true
  /// segment-delta updates. The bound measure must outlive the state.
  virtual std::unique_ptr<MeasureState> BindState(const Dataset& masked) const;
};

/// \brief Factory/descriptor for one measure.
class Measure {
 public:
  virtual ~Measure() = default;

  /// \brief Short identifier, e.g. "CTBIL".
  virtual std::string Name() const = 0;

  /// \brief Information loss or disclosure risk.
  virtual MeasureKind Kind() const = 0;

  /// \brief Precomputes original-side state for repeated evaluation.
  virtual Result<std::unique_ptr<BoundMeasure>> Bind(
      const Dataset& original, const std::vector<int>& attrs) const = 0;

  /// \brief One-shot convenience: validate, bind and evaluate.
  Result<double> Compute(const Dataset& original, const Dataset& masked,
                         const std::vector<int>& attrs) const;
};

/// \brief Validates that `masked` is comparable to `original` over `attrs`.
Status ValidateComparable(const Dataset& original, const Dataset& masked,
                          const std::vector<int>& attrs);

}  // namespace metrics
}  // namespace evocat

#endif  // EVOCAT_METRICS_MEASURE_H_
