#include "metrics/ebil.h"

#include "metrics/registry.h"

#include <cmath>

#include "common/math_utils.h"
#include "metrics/delta.h"
#include "metrics/plane.h"

namespace evocat {
namespace metrics {

namespace {

/// Normalized expected conditional entropy H(O|M) of one attribute from its
/// (masked, original) joint count table — the kernel shared by the full and
/// incremental paths so both produce bit-identical values.
double AttrEntropyLoss(const std::vector<double>& joint, int card, int64_t n) {
  double cond_entropy = 0.0;
  std::vector<double> row(static_cast<size_t>(card));
  for (int m = 0; m < card; ++m) {
    double row_total = 0.0;
    for (int o = 0; o < card; ++o) {
      row[static_cast<size_t>(o)] =
          joint[static_cast<size_t>(m) * card + static_cast<size_t>(o)];
      row_total += row[static_cast<size_t>(o)];
    }
    if (row_total <= 0.0) continue;
    cond_entropy += (row_total / static_cast<double>(n)) * Entropy(row);
  }
  double max_entropy = std::log2(static_cast<double>(card));
  return max_entropy > 0 ? cond_entropy / max_entropy : 0.0;
}

class BoundEbIl : public BoundMeasure {
 public:
  BoundEbIl(const Dataset& original, const std::vector<int>& attrs)
      : original_(&original),
        attrs_(attrs),
        shards_(GetDataPlane().sharded ? ResolveShardCount(GetDataPlane())
                                       : 1) {}

  double Compute(const Dataset& masked) const override {
    double sum_attr_loss = 0.0;
    for (size_t i = 0; i < attrs_.size(); ++i) {
      sum_attr_loss += AttrEntropyLoss(BuildJoint(masked, attrs_[i]),
                                       Cardinality(attrs_[i]),
                                       original_->num_rows());
    }
    return attrs_.empty()
               ? 0.0
               : 100.0 * sum_attr_loss / static_cast<double>(attrs_.size());
  }

  std::unique_ptr<MeasureState> BindState(const Dataset& masked) const override;

  /// \brief Joint counts J[m][o] of (masked, original) category pairs.
  ///
  /// Row-sharded into int64 partials merged index-wise; counts stay below
  /// 2^53, so the final copy to double is exact and identical to the serial
  /// += 1.0 accumulation for any shard count.
  std::vector<double> BuildJoint(const Dataset& masked, int attr) const {
    auto card = static_cast<size_t>(Cardinality(attr));
    const auto& orig_col = original_->column(attr);
    const auto& mask_col = masked.column(attr);
    int64_t n = original_->num_rows();
    std::vector<std::vector<int64_t>> partials(
        static_cast<size_t>(shards_), std::vector<int64_t>(card * card, 0));
    ForEachShard(n, shards_, [&](int shard, RowRange range) {
      int64_t* counts = partials[static_cast<size_t>(shard)].data();
      for (int64_t r = range.begin; r < range.end; ++r) {
        auto m = static_cast<size_t>(mask_col[static_cast<size_t>(r)]);
        auto o = static_cast<size_t>(orig_col[static_cast<size_t>(r)]);
        counts[m * card + o] += 1;
      }
    });
    std::vector<int64_t>& counts = partials[0];
    for (int s = 1; s < shards_; ++s) {
      const auto& partial = partials[static_cast<size_t>(s)];
      for (size_t c = 0; c < counts.size(); ++c) counts[c] += partial[c];
    }
    std::vector<double> joint(card * card, 0.0);
    for (size_t c = 0; c < counts.size(); ++c) {
      joint[c] = static_cast<double>(counts[c]);
    }
    return joint;
  }

  int Cardinality(int attr) const {
    return original_->schema().attribute(attr).cardinality();
  }

  const Dataset& original() const { return *original_; }
  const std::vector<int>& attrs() const { return attrs_; }

 private:
  const Dataset* original_;
  std::vector<int> attrs_;
  int shards_;
};

/// EBIL depends on the masked file only through per-attribute joint count
/// tables; a delta moves one unit of mass per changed cell and re-derives
/// the entropy term of just the touched attributes — O(cells + card²) at
/// any segment width, hence rebuild fraction 1.0.
class EbIlState : public MeasureState {
 public:
  EbIlState(const BoundEbIl* bound, const Dataset& masked)
      : MeasureState(/*default_rebuild_fraction=*/1.0),
        bound_(bound),
        attr_pos_(AttrPositions(bound->attrs(), masked.num_attributes())) {
    InitFrom(masked);
    backup_ = core_;
  }

  void ApplySegment(const Dataset& masked_after,
                    const SegmentDelta& segment) override {
    backup_ = core_;
    if (segment.num_cells() >= full_rebuild_threshold()) {
      InitFrom(masked_after);
      return;
    }
    std::vector<uint8_t> dirty(bound_->attrs().size(), 0);
    for (const CellDelta& delta : segment.cells()) {
      int pos = attr_pos_[static_cast<size_t>(delta.attr)];
      if (pos < 0 || delta.old_code == delta.new_code) continue;
      auto i = static_cast<size_t>(pos);
      auto card = static_cast<size_t>(bound_->Cardinality(delta.attr));
      auto o = static_cast<size_t>(bound_->original().Code(delta.row, delta.attr));
      core_.joints[i][static_cast<size_t>(delta.old_code) * card + o] -= 1.0;
      core_.joints[i][static_cast<size_t>(delta.new_code) * card + o] += 1.0;
      dirty[i] = 1;
    }
    for (size_t i = 0; i < dirty.size(); ++i) {
      if (dirty[i]) {
        core_.attr_loss[i] =
            AttrEntropyLoss(core_.joints[i], bound_->Cardinality(bound_->attrs()[i]),
                            bound_->original().num_rows());
      }
    }
    RefreshScore();
  }

  void RevertSegment() override { core_ = backup_; }

  double Score() const override { return core_.score; }

 private:
  struct Core {
    std::vector<std::vector<double>> joints;  ///< per bound attr
    std::vector<double> attr_loss;
    double score = 0.0;
  };

  void InitFrom(const Dataset& masked) {
    const auto& attrs = bound_->attrs();
    core_.joints.resize(attrs.size());
    core_.attr_loss.assign(attrs.size(), 0.0);
    for (size_t i = 0; i < attrs.size(); ++i) {
      core_.joints[i] = bound_->BuildJoint(masked, attrs[i]);
      core_.attr_loss[i] =
          AttrEntropyLoss(core_.joints[i], bound_->Cardinality(attrs[i]),
                          bound_->original().num_rows());
    }
    RefreshScore();
  }

  void RefreshScore() {
    double sum = 0.0;
    for (double loss : core_.attr_loss) sum += loss;
    core_.score = core_.attr_loss.empty()
                      ? 0.0
                      : 100.0 * sum / static_cast<double>(core_.attr_loss.size());
  }

  const BoundEbIl* bound_;
  std::vector<int> attr_pos_;
  Core core_;
  Core backup_;
};

std::unique_ptr<MeasureState> BoundEbIl::BindState(const Dataset& masked) const {
  return std::make_unique<EbIlState>(this, masked);
}

}  // namespace

Result<std::unique_ptr<BoundMeasure>> EbIl::Bind(
    const Dataset& original, const std::vector<int>& attrs) const {
  return std::unique_ptr<BoundMeasure>(new BoundEbIl(original, attrs));
}

void RegisterEbilMeasure(MeasureRegistry* registry) {
  registry->Register(
      "EBIL", [](const ParamMap& params) -> Result<std::unique_ptr<Measure>> {
        ParamReader reader("EBIL", params);
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        return std::unique_ptr<Measure>(new EbIl());
      });
}

}  // namespace metrics
}  // namespace evocat
