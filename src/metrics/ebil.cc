#include "metrics/ebil.h"

#include <cmath>

#include "common/math_utils.h"

namespace evocat {
namespace metrics {

namespace {

class BoundEbIl : public BoundMeasure {
 public:
  BoundEbIl(const Dataset& original, const std::vector<int>& attrs)
      : original_(&original), attrs_(attrs) {}

  double Compute(const Dataset& masked) const override {
    int64_t n = original_->num_rows();
    double sum_attr_loss = 0.0;
    for (int attr : attrs_) {
      int card = original_->schema().attribute(attr).cardinality();
      // Joint counts J[m][o] of (masked, original) pairs.
      std::vector<double> joint(static_cast<size_t>(card) * card, 0.0);
      const auto& orig_col = original_->column(attr);
      const auto& mask_col = masked.column(attr);
      for (int64_t r = 0; r < n; ++r) {
        auto m = static_cast<size_t>(mask_col[static_cast<size_t>(r)]);
        auto o = static_cast<size_t>(orig_col[static_cast<size_t>(r)]);
        joint[m * static_cast<size_t>(card) + o] += 1.0;
      }
      // Expected conditional entropy Σ_m P(m) H(O|M=m), normalized by the
      // attribute's maximum entropy.
      double cond_entropy = 0.0;
      std::vector<double> row(static_cast<size_t>(card));
      for (int m = 0; m < card; ++m) {
        double row_total = 0.0;
        for (int o = 0; o < card; ++o) {
          row[static_cast<size_t>(o)] =
              joint[static_cast<size_t>(m) * card + static_cast<size_t>(o)];
          row_total += row[static_cast<size_t>(o)];
        }
        if (row_total <= 0.0) continue;
        cond_entropy += (row_total / static_cast<double>(n)) * Entropy(row);
      }
      double max_entropy = std::log2(static_cast<double>(card));
      sum_attr_loss += max_entropy > 0 ? cond_entropy / max_entropy : 0.0;
    }
    return attrs_.empty()
               ? 0.0
               : 100.0 * sum_attr_loss / static_cast<double>(attrs_.size());
  }

 private:
  const Dataset* original_;
  std::vector<int> attrs_;
};

}  // namespace

Result<std::unique_ptr<BoundMeasure>> EbIl::Bind(
    const Dataset& original, const std::vector<int>& attrs) const {
  return std::unique_ptr<BoundMeasure>(new BoundEbIl(original, attrs));
}

}  // namespace metrics
}  // namespace evocat
