/// \file plane.h
/// \brief The scale data plane: shard geometry and pattern clustering.
///
/// Two orthogonal switches make the measures production-scale without
/// changing a single score bit:
///
///  - **Sharding** splits row ranges contiguously across the
///    `TaskScheduler` so state (re)builds within *one* individual
///    parallelize. Every shard produces integer partials (counts, joint
///    tables, insertion-ordered pattern tables) merged serially in shard
///    index order, so the merged result is bit-identical to a serial scan
///    for *any* shard count — the invariant the shard-determinism tests
///    pin down.
///  - **Pattern clustering** groups rows with identical code tuples over the
///    bound attributes. Categorical files at 10^5..10^6 rows carry only
///    C << n distinct tuples (the AdultProfile protected attributes admit at
///    most 16*7*14 = 1568), so the linkage measures' O(n) per-row scans and
///    O(n^2) inits collapse to O(C) and O(C*G) — the algorithmic win behind
///    the scale bench gates.
///
/// `DataPlaneConfig` selects the plane per process (states snapshot it at
/// construction); the default is the legacy row-oriented path.

#ifndef EVOCAT_METRICS_PLANE_H_
#define EVOCAT_METRICS_PLANE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"

namespace evocat {
namespace metrics {

/// \brief Process-wide data-plane selection.
struct DataPlaneConfig {
  /// Row-sharded state builds + pattern-clustered linkage states.
  bool sharded = false;
  /// Bit-packed column mirrors on the counting measures (CTBIL).
  bool packed = false;
  /// Shard count; <= 0 resolves to the TaskScheduler's worker count.
  int shards = 0;
};

/// \brief Current configuration (copied — callers snapshot at bind time).
DataPlaneConfig GetDataPlane();

/// \brief Replaces the process-wide configuration. Not thread-safe against
/// concurrent binds; flip it between evaluations (tests, benches, startup).
void SetDataPlane(const DataPlaneConfig& config);

/// \brief Shard count a config resolves to: the explicit value when
/// positive, otherwise the scheduler's worker count (never below 1).
int ResolveShardCount(const DataPlaneConfig& config);

/// \brief A contiguous row range [begin, end).
struct RowRange {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t size() const { return end - begin; }
  bool empty() const { return end <= begin; }
};

/// \brief Shard `shard` of `rows` rows split into `shards` contiguous
/// ascending ranges: [shard*rows/shards, (shard+1)*rows/shards).
RowRange ShardRows(int64_t rows, int shard, int shards);

/// \brief Runs `fn(shard, range)` for every *non-empty* shard range, in
/// parallel over the TaskScheduler. Empty shards (rows < shards) are skipped
/// so they contribute identity to any merge instead of a degenerate partial.
void ForEachShard(int64_t rows, int shards,
                  const std::function<void(int, RowRange)>& fn);

/// \brief Static clustering of a dataset's rows by identical code tuples
/// over a fixed attribute set.
///
/// Cluster ids follow global first-occurrence (row-scan) order regardless of
/// the shard count used to build: per-shard insertion-ordered local tables
/// are merged serially in shard index order, and shard ranges are contiguous
/// ascending — so the merged order equals the serial scan order. Built once
/// per bound measure over the *original* file.
class PatternIndex {
 public:
  PatternIndex() = default;

  static PatternIndex Build(const Dataset& dataset,
                            const std::vector<int>& attrs, int shards);

  int64_t num_clusters() const {
    return static_cast<int64_t>(sizes_.size());
  }
  size_t num_attrs() const { return num_attrs_; }

  int32_t cluster_of(int64_t row) const {
    return row_cluster_[static_cast<size_t>(row)];
  }
  int64_t cluster_size(int64_t cluster) const {
    return sizes_[static_cast<size_t>(cluster)];
  }
  /// \brief The cluster's code tuple (one code per attribute, bound order).
  const int32_t* codes(int64_t cluster) const {
    return codes_.data() + static_cast<size_t>(cluster) * num_attrs_;
  }

 private:
  std::vector<int32_t> row_cluster_;  ///< row -> cluster id
  std::vector<int64_t> sizes_;        ///< cluster -> row count
  std::vector<int32_t> codes_;        ///< flat C x A code tuples
  size_t num_attrs_ = 0;
};

/// \brief Dynamic pattern groups over a *masked* file's code tuples.
///
/// Same deterministic first-occurrence id order as `PatternIndex`, plus
/// find-or-create maintenance under segment deltas: `ApplyRow` moves a row
/// to the group of its new tuple (creating one if unseen) and logs the move;
/// `UndoMoves` replays a log backwards. Groups are never deleted — a group
/// emptied by moves keeps its id at size 0, so the id sequence stays
/// deterministic across apply/revert cycles.
class MaskedGroups {
 public:
  /// One row's group transition, as logged by `ApplyRow`.
  struct Move {
    int64_t row = 0;
    int32_t old_group = 0;
  };

  MaskedGroups() = default;

  static MaskedGroups Build(const Dataset& masked,
                            const std::vector<int>& attrs, int shards);

  int64_t num_groups() const { return static_cast<int64_t>(sizes_.size()); }
  size_t num_attrs() const { return num_attrs_; }

  int32_t group_of(int64_t row) const {
    return row_group_[static_cast<size_t>(row)];
  }
  int64_t group_size(int64_t group) const {
    return sizes_[static_cast<size_t>(group)];
  }
  const int32_t* codes(int64_t group) const {
    return codes_.data() + static_cast<size_t>(group) * num_attrs_;
  }

  /// \brief Moves `row` to the group of `new_codes` (its full post-change
  /// tuple, bound order), creating the group if unseen, and appends the move
  /// to `undo` when the group actually changes. Returns the new group id.
  int32_t ApplyRow(int64_t row, const int32_t* new_codes,
                   std::vector<Move>* undo);

  /// \brief Finds the group of a tuple, creating it (size 0) if unseen.
  int32_t FindOrCreate(const int32_t* codes);

  /// \brief Replays a move log backwards, restoring each row's old group.
  void UndoMoves(const std::vector<Move>& moves);

 private:
  std::vector<int32_t> row_group_;  ///< row -> group id
  std::vector<int64_t> sizes_;      ///< group -> row count
  std::vector<int32_t> codes_;      ///< flat G x A code tuples
  /// hash(tuple) -> candidate group ids (collision-safe via code compare)
  std::unordered_map<uint64_t, std::vector<int32_t>> buckets_;
  size_t num_attrs_ = 0;
};

/// \brief Deterministic 64-bit hash of a code tuple (shared by the pattern
/// tables; quality matters only for bucket spread, equality is by compare).
uint64_t HashCodes(const int32_t* codes, size_t n);

}  // namespace metrics
}  // namespace evocat

#endif  // EVOCAT_METRICS_PLANE_H_
