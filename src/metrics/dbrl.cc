#include "metrics/dbrl.h"

#include "metrics/registry.h"

#include "common/parallel.h"
#include "metrics/delta.h"
#include "metrics/distance.h"
#include "metrics/plane.h"

namespace evocat {
namespace metrics {

namespace {

class BoundDbrl : public BoundMeasure {
 public:
  BoundDbrl(const Dataset& original, const std::vector<int>& attrs)
      : original_(&original), tables_(original, attrs) {
    // Pattern clustering of the original rows: every state build (and the
    // clustered delta state) folds distances per (cluster, group) pair
    // instead of per row pair — O(C*G*A) instead of O(n^2 * A).
    clusters_ = PatternIndex::Build(original, attrs,
                                    ResolveShardCount(GetDataPlane()));
  }

  double Compute(const Dataset& masked) const override {
    int64_t n = original_->num_rows();
    std::vector<LinkageRowBest> rows(static_cast<size_t>(n));
    ParallelFor(0, n, [&](int64_t i) {
      rows[static_cast<size_t>(i)] = ScanRow(masked, i);
    });
    return LinkageCreditScore(rows);
  }

  std::unique_ptr<MeasureState> BindState(const Dataset& masked) const override;

  /// \brief Fresh linkage of original record `i` against every masked record
  /// (the row-oriented kernel shared by Compute and state rescans).
  LinkageRowBest ScanRow(const Dataset& masked, int64_t i) const {
    int64_t n = original_->num_rows();
    LinkageRowBest row;
    for (int64_t j = 0; j < n; ++j) {
      double d = tables_.RecordDistance(*original_, i, masked, j);
      LinkageAdd(&row, d, j == i);
    }
    return row;
  }

  /// \brief Fresh fold of one original cluster against every masked pattern
  /// group (in group id order). Agrees with the per-row scan whenever
  /// distances are exact ties or separated by more than the linkage epsilon.
  LinkageRowBest ScanCluster(int64_t cluster, const MaskedGroups& groups) const {
    LinkageRowBest row;
    const int32_t* cluster_codes = clusters_.codes(cluster);
    int64_t num_groups = groups.num_groups();
    for (int64_t g = 0; g < num_groups; ++g) {
      int64_t size = groups.group_size(g);
      if (size <= 0) continue;
      LinkageAddN(&row,
                  tables_.RecordDistanceCodes(cluster_codes, groups.codes(g)),
                  size);
    }
    return row;
  }

  const Dataset& original() const { return *original_; }
  const DistanceTables& tables() const { return tables_; }
  const PatternIndex& clusters() const { return clusters_; }

 private:
  const Dataset* original_;
  DistanceTables tables_;
  PatternIndex clusters_;
};

/// A changed masked record j only perturbs the distances d(., j), so each
/// original record's linkage updates in O(1) distance evaluations per
/// changed row; only records whose entire best-match support disappears are
/// rescanned in full. Cost model: the row-best group maintenance costs
/// O(n · changed_rows · A) plus rescans whose frequency grows quickly with
/// the touched-row share (every record whose best match sat in the changed
/// set rescans in O(n · A)), so the measured break-even against a rebuild
/// sits near 15% of the protected cells — fraction 0.15.
///
/// Init is pattern-clustered: rows sharing a code tuple share their entire
/// distance profile, so the O(n^2) all-pairs scan collapses to an O(C*G*A)
/// fold over (original cluster, masked group) pairs, then fans out per row.
class DbrlState : public MeasureState {
 public:
  DbrlState(const BoundDbrl* bound, const Dataset& masked)
      : MeasureState(/*default_rebuild_fraction=*/0.15),
        bound_(bound),
        shards_(GetDataPlane().sharded ? ResolveShardCount(GetDataPlane())
                                       : 1) {
    InitFrom(masked);
    backup_ = core_;
  }

  void ApplySegment(const Dataset& masked_after,
                    const SegmentDelta& segment) override {
    backup_ = core_;
    if (segment.num_cells() >= full_rebuild_threshold()) {
      InitFrom(masked_after);
      return;
    }
    const auto& row_deltas = segment.rows();
    if (row_deltas.empty()) return;

    int64_t n = bound_->original().num_rows();
    const auto& attrs = bound_->tables().attrs();
    rescan_.assign(static_cast<size_t>(n), 0);

    ParallelFor(0, n, [&](int64_t i) {
      LinkageRowBest& row = core_.rows[static_cast<size_t>(i)];
      uint8_t* needs_rescan = &rescan_[static_cast<size_t>(i)];
      for (const RowDelta& rd : row_deltas) {
        if (*needs_rescan) break;  // a rescan recomputes the final truth
        int64_t j = rd.row;
        // Distances to the pre/post images of changed record j, summed in
        // bound-attribute order exactly like RecordDistance.
        double sum_old = 0.0, sum_new = 0.0;
        for (size_t k = 0; k < attrs.size(); ++k) {
          int32_t orig_code = bound_->original().Code(i, attrs[k]);
          sum_old += bound_->tables().At(
              k, orig_code, rd.OldCode(masked_after, attrs[k]));
          sum_new += bound_->tables().At(k, orig_code,
                                         masked_after.Code(j, attrs[k]));
        }
        double denom = static_cast<double>(attrs.size());
        LinkageRemove(&row, sum_old / denom, j == i, needs_rescan);
        if (!*needs_rescan) LinkageAdd(&row, sum_new / denom, j == i);
      }
    });

    ParallelFor(0, n, [&](int64_t i) {
      if (rescan_[static_cast<size_t>(i)]) {
        core_.rows[static_cast<size_t>(i)] = bound_->ScanRow(masked_after, i);
      }
    });
    core_.score = LinkageCreditScore(core_.rows);
  }

  void RevertSegment() override { core_ = backup_; }

  double Score() const override { return core_.score; }

 private:
  struct Core {
    std::vector<LinkageRowBest> rows;
    double score = 0.0;
  };

  void InitFrom(const Dataset& masked) {
    int64_t n = bound_->original().num_rows();
    const PatternIndex& clusters = bound_->clusters();
    const DistanceTables& tables = bound_->tables();
    MaskedGroups groups =
        MaskedGroups::Build(masked, tables.attrs(), shards_);
    int64_t num_clusters = clusters.num_clusters();

    std::vector<LinkageRowBest> cluster_best(
        static_cast<size_t>(num_clusters));
    ParallelFor(0, num_clusters, [&](int64_t c) {
      cluster_best[static_cast<size_t>(c)] = bound_->ScanCluster(c, groups);
    });

    core_.rows.assign(static_cast<size_t>(n), LinkageRowBest{});
    ParallelFor(0, n, [&](int64_t i) {
      int32_t c = clusters.cluster_of(i);
      LinkageRowBest row = cluster_best[static_cast<size_t>(c)];
      double d_self = tables.RecordDistanceCodes(
          clusters.codes(c), groups.codes(groups.group_of(i)));
      row.self =
          (row.count > 0 && d_self <= row.best + kLinkageEps) ? 1 : 0;
      core_.rows[static_cast<size_t>(i)] = row;
    });
    core_.score = LinkageCreditScore(core_.rows);
  }

  const BoundDbrl* bound_;
  int shards_;
  Core core_;
  Core backup_;
  std::vector<uint8_t> rescan_;  ///< per-apply scratch, reused
};

/// Cluster-level DBRL state (the sharded data plane): instead of n per-row
/// linkage records it maintains one `LinkageRowBest` per *original cluster*
/// plus each row's self distance, and updates per delta in O(C*A) instead of
/// O(n*A). Rows of a cluster share their whole distance profile, so the
/// cluster record is exactly the per-row record of every member; scoring
/// walks rows serially in the same order (and with the same float ops) as
/// `LinkageCreditScore`.
class ClusteredDbrlState : public MeasureState {
 public:
  ClusteredDbrlState(const BoundDbrl* bound, const Dataset& masked)
      : MeasureState(/*default_rebuild_fraction=*/0.15),
        bound_(bound),
        shards_(ResolveShardCount(GetDataPlane())) {
    InitFrom(masked);
    undo_.cluster_best = cluster_best_;
    undo_.score = score_;
  }

  void ApplySegment(const Dataset& masked_after,
                    const SegmentDelta& segment) override {
    const PatternIndex& clusters = bound_->clusters();
    const DistanceTables& tables = bound_->tables();
    const auto& attrs = tables.attrs();
    size_t num_attrs = attrs.size();
    int64_t num_clusters = clusters.num_clusters();

    undo_.moves.clear();
    undo_.d_self.clear();
    undo_.cluster_best = cluster_best_;
    undo_.score = score_;
    if (segment.num_cells() >= full_rebuild_threshold()) {
      undo_.groups = groups_;
      undo_.d_self_full = d_self_;
      undo_.rebuilt = true;
      InitFrom(masked_after);
      return;
    }
    undo_.rebuilt = false;

    const auto& row_deltas = segment.rows();
    if (row_deltas.empty()) return;

    // Serial pass: record each changed row's old/new code tuples, move it
    // between pattern groups, refresh its self distance. Tuples go into a
    // flat scratch (groups_.codes() may reallocate on group creation, so
    // spans into it must not be retained).
    size_t num_rds = row_deltas.size();
    rd_codes_.assign(2 * num_rds * num_attrs, 0);
    for (size_t r = 0; r < num_rds; ++r) {
      const RowDelta& rd = row_deltas[r];
      int32_t* old_codes = rd_codes_.data() + 2 * r * num_attrs;
      int32_t* new_codes = old_codes + num_attrs;
      for (size_t k = 0; k < num_attrs; ++k) {
        old_codes[k] = rd.OldCode(masked_after, attrs[k]);
        new_codes[k] = masked_after.Code(rd.row, attrs[k]);
      }
      groups_.ApplyRow(rd.row, new_codes, &undo_.moves);
      undo_.d_self.push_back(
          DselfUndo{rd.row, d_self_[static_cast<size_t>(rd.row)]});
      d_self_[static_cast<size_t>(rd.row)] = tables.RecordDistanceCodes(
          clusters.codes(clusters.cluster_of(rd.row)), new_codes);
    }

    // Per-cluster fold, mirroring the row-oriented state's per-row loop
    // (same remove/add sequence, break on rescan).
    rescan_.assign(static_cast<size_t>(num_clusters), 0);
    ParallelFor(0, num_clusters, [&](int64_t c) {
      LinkageRowBest& row = cluster_best_[static_cast<size_t>(c)];
      uint8_t* needs_rescan = &rescan_[static_cast<size_t>(c)];
      const int32_t* cluster_codes = clusters.codes(c);
      for (size_t r = 0; r < num_rds; ++r) {
        if (*needs_rescan) break;
        const int32_t* old_codes = rd_codes_.data() + 2 * r * num_attrs;
        const int32_t* new_codes = old_codes + num_attrs;
        double sum_old = 0.0, sum_new = 0.0;
        for (size_t k = 0; k < num_attrs; ++k) {
          sum_old += tables.At(k, cluster_codes[k], old_codes[k]);
          sum_new += tables.At(k, cluster_codes[k], new_codes[k]);
        }
        double denom = static_cast<double>(num_attrs);
        LinkageRemove(&row, sum_old / denom, false, needs_rescan);
        if (!*needs_rescan) LinkageAdd(&row, sum_new / denom, false);
      }
    });
    ParallelFor(0, num_clusters, [&](int64_t c) {
      if (rescan_[static_cast<size_t>(c)]) {
        cluster_best_[static_cast<size_t>(c)] =
            bound_->ScanCluster(c, groups_);
      }
    });
    RefreshScore();
  }

  void RevertSegment() override {
    if (undo_.rebuilt) {
      groups_ = undo_.groups;
      d_self_ = undo_.d_self_full;
    } else {
      groups_.UndoMoves(undo_.moves);
      for (auto it = undo_.d_self.rbegin(); it != undo_.d_self.rend(); ++it) {
        d_self_[static_cast<size_t>(it->row)] = it->old_value;
      }
    }
    cluster_best_ = undo_.cluster_best;
    score_ = undo_.score;
    undo_.moves.clear();
    undo_.d_self.clear();
    undo_.rebuilt = false;
  }

  double Score() const override { return score_; }

 private:
  struct DselfUndo {
    int64_t row;
    double old_value;
  };

  void InitFrom(const Dataset& masked) {
    const PatternIndex& clusters = bound_->clusters();
    const DistanceTables& tables = bound_->tables();
    int64_t n = bound_->original().num_rows();
    groups_ = MaskedGroups::Build(masked, tables.attrs(), shards_);
    int64_t num_clusters = clusters.num_clusters();
    cluster_best_.assign(static_cast<size_t>(num_clusters), LinkageRowBest{});
    ParallelFor(0, num_clusters, [&](int64_t c) {
      cluster_best_[static_cast<size_t>(c)] = bound_->ScanCluster(c, groups_);
    });
    d_self_.assign(static_cast<size_t>(n), 0.0);
    ParallelFor(0, n, [&](int64_t i) {
      d_self_[static_cast<size_t>(i)] = tables.RecordDistanceCodes(
          clusters.codes(clusters.cluster_of(i)),
          groups_.codes(groups_.group_of(i)));
    });
    RefreshScore();
  }

  /// Serial per-row credit in row order — float-for-float the same sum as
  /// `LinkageCreditScore` over the equivalent per-row records.
  void RefreshScore() {
    const PatternIndex& clusters = bound_->clusters();
    int64_t n = bound_->original().num_rows();
    double credit = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const LinkageRowBest& row =
          cluster_best_[static_cast<size_t>(clusters.cluster_of(i))];
      if (row.count > 0 &&
          d_self_[static_cast<size_t>(i)] <= row.best + kLinkageEps) {
        credit += 1.0 / static_cast<double>(row.count);
      }
    }
    score_ = n == 0 ? 0.0 : 100.0 * credit / static_cast<double>(n);
  }

  struct Undo {
    std::vector<LinkageRowBest> cluster_best;
    std::vector<MaskedGroups::Move> moves;
    std::vector<DselfUndo> d_self;
    double score = 0.0;
    bool rebuilt = false;
    MaskedGroups groups;          ///< full backup (rebuild only)
    std::vector<double> d_self_full;  ///< full backup (rebuild only)
  };

  const BoundDbrl* bound_;
  int shards_;
  MaskedGroups groups_;
  std::vector<LinkageRowBest> cluster_best_;  ///< per original cluster
  std::vector<double> d_self_;                ///< d(cluster(i), group(i))
  double score_ = 0.0;
  Undo undo_;
  // Per-apply scratch, reused across generations.
  std::vector<uint8_t> rescan_;
  std::vector<int32_t> rd_codes_;
};

std::unique_ptr<MeasureState> BoundDbrl::BindState(const Dataset& masked) const {
  if (GetDataPlane().sharded) {
    return std::make_unique<ClusteredDbrlState>(this, masked);
  }
  return std::make_unique<DbrlState>(this, masked);
}

}  // namespace

Result<std::unique_ptr<BoundMeasure>> DistanceBasedRecordLinkage::Bind(
    const Dataset& original, const std::vector<int>& attrs) const {
  return std::unique_ptr<BoundMeasure>(new BoundDbrl(original, attrs));
}

void RegisterDbrlMeasure(MeasureRegistry* registry) {
  registry->Register(
      "DBRL", [](const ParamMap& params) -> Result<std::unique_ptr<Measure>> {
        ParamReader reader("DBRL", params);
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        return std::unique_ptr<Measure>(new DistanceBasedRecordLinkage());
      });
}

}  // namespace metrics
}  // namespace evocat
