#include "metrics/dbrl.h"

#include "common/parallel.h"
#include "metrics/distance.h"

namespace evocat {
namespace metrics {

namespace {

class BoundDbrl : public BoundMeasure {
 public:
  BoundDbrl(const Dataset& original, const std::vector<int>& attrs)
      : original_(&original), tables_(original, attrs) {}

  double Compute(const Dataset& masked) const override {
    int64_t n = original_->num_rows();
    constexpr double kEps = 1e-12;
    // Each original record's linkage is independent: parallelize over i and
    // reduce serially (deterministic).
    std::vector<double> credits(static_cast<size_t>(n), 0.0);
    ParallelFor(0, n, [&](int64_t i) {
      double best = 1e100;
      int64_t best_count = 0;
      bool self_is_best = false;
      for (int64_t j = 0; j < n; ++j) {
        double d = tables_.RecordDistance(*original_, i, masked, j);
        if (d < best - kEps) {
          best = d;
          best_count = 1;
          self_is_best = (j == i);
        } else if (d <= best + kEps) {
          ++best_count;
          if (j == i) self_is_best = true;
        }
      }
      if (self_is_best && best_count > 0) {
        credits[static_cast<size_t>(i)] = 1.0 / static_cast<double>(best_count);
      }
    });
    double credit = 0.0;
    for (double c : credits) credit += c;
    return n > 0 ? 100.0 * credit / static_cast<double>(n) : 0.0;
  }

 private:
  const Dataset* original_;
  DistanceTables tables_;
};

}  // namespace

Result<std::unique_ptr<BoundMeasure>> DistanceBasedRecordLinkage::Bind(
    const Dataset& original, const std::vector<int>& attrs) const {
  return std::unique_ptr<BoundMeasure>(new BoundDbrl(original, attrs));
}

}  // namespace metrics
}  // namespace evocat
