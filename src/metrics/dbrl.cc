#include "metrics/dbrl.h"

#include "metrics/registry.h"

#include "common/parallel.h"
#include "metrics/delta.h"
#include "metrics/distance.h"

namespace evocat {
namespace metrics {

namespace {

class BoundDbrl : public BoundMeasure {
 public:
  BoundDbrl(const Dataset& original, const std::vector<int>& attrs)
      : original_(&original), tables_(original, attrs) {}

  double Compute(const Dataset& masked) const override {
    int64_t n = original_->num_rows();
    std::vector<LinkageRowBest> rows(static_cast<size_t>(n));
    ParallelFor(0, n, [&](int64_t i) {
      rows[static_cast<size_t>(i)] = ScanRow(masked, i);
    });
    return LinkageCreditScore(rows);
  }

  std::unique_ptr<MeasureState> BindState(const Dataset& masked) const override;

  /// \brief Fresh linkage of original record `i` against every masked record
  /// (the kernel shared by Compute, state init and state rescans).
  LinkageRowBest ScanRow(const Dataset& masked, int64_t i) const {
    int64_t n = original_->num_rows();
    LinkageRowBest row;
    for (int64_t j = 0; j < n; ++j) {
      double d = tables_.RecordDistance(*original_, i, masked, j);
      LinkageAdd(&row, d, j == i);
    }
    return row;
  }

  const Dataset& original() const { return *original_; }
  const DistanceTables& tables() const { return tables_; }

 private:
  const Dataset* original_;
  DistanceTables tables_;
};

/// A changed masked record j only perturbs the distances d(., j), so each
/// original record's linkage updates in O(1) distance evaluations per
/// changed row; only records whose entire best-match support disappears are
/// rescanned in full. Cost model: the row-best group maintenance costs
/// O(n · changed_rows · A) plus rescans whose frequency grows quickly with
/// the touched-row share (every record whose best match sat in the changed
/// set rescans in O(n · A)), so the measured break-even against a rebuild
/// sits near 15% of the protected cells — fraction 0.15.
class DbrlState : public MeasureState {
 public:
  DbrlState(const BoundDbrl* bound, const Dataset& masked)
      : MeasureState(/*default_rebuild_fraction=*/0.15), bound_(bound) {
    InitFrom(masked);
    backup_ = core_;
  }

  void ApplySegment(const Dataset& masked_after,
                    const SegmentDelta& segment) override {
    backup_ = core_;
    if (segment.num_cells() >= full_rebuild_threshold()) {
      InitFrom(masked_after);
      return;
    }
    const auto& row_deltas = segment.rows();
    if (row_deltas.empty()) return;

    int64_t n = bound_->original().num_rows();
    const auto& attrs = bound_->tables().attrs();
    std::vector<uint8_t> rescan(static_cast<size_t>(n), 0);

    ParallelFor(0, n, [&](int64_t i) {
      LinkageRowBest& row = core_.rows[static_cast<size_t>(i)];
      uint8_t* needs_rescan = &rescan[static_cast<size_t>(i)];
      for (const RowDelta& rd : row_deltas) {
        if (*needs_rescan) break;  // a rescan recomputes the final truth
        int64_t j = rd.row;
        // Distances to the pre/post images of changed record j, summed in
        // bound-attribute order exactly like RecordDistance.
        double sum_old = 0.0, sum_new = 0.0;
        for (size_t k = 0; k < attrs.size(); ++k) {
          int32_t orig_code = bound_->original().Code(i, attrs[k]);
          sum_old += bound_->tables().At(
              k, orig_code, rd.OldCode(masked_after, attrs[k]));
          sum_new += bound_->tables().At(k, orig_code,
                                         masked_after.Code(j, attrs[k]));
        }
        double denom = static_cast<double>(attrs.size());
        LinkageRemove(&row, sum_old / denom, j == i, needs_rescan);
        if (!*needs_rescan) LinkageAdd(&row, sum_new / denom, j == i);
      }
    });

    ParallelFor(0, n, [&](int64_t i) {
      if (rescan[static_cast<size_t>(i)]) {
        core_.rows[static_cast<size_t>(i)] = bound_->ScanRow(masked_after, i);
      }
    });
    core_.score = LinkageCreditScore(core_.rows);
  }

  void RevertSegment() override { core_ = backup_; }

  double Score() const override { return core_.score; }

 private:
  struct Core {
    std::vector<LinkageRowBest> rows;
    double score = 0.0;
  };

  void InitFrom(const Dataset& masked) {
    int64_t n = bound_->original().num_rows();
    core_.rows.assign(static_cast<size_t>(n), LinkageRowBest{});
    ParallelFor(0, n, [&](int64_t i) {
      core_.rows[static_cast<size_t>(i)] = bound_->ScanRow(masked, i);
    });
    core_.score = LinkageCreditScore(core_.rows);
  }

  const BoundDbrl* bound_;
  Core core_;
  Core backup_;
};

std::unique_ptr<MeasureState> BoundDbrl::BindState(const Dataset& masked) const {
  return std::make_unique<DbrlState>(this, masked);
}

}  // namespace

Result<std::unique_ptr<BoundMeasure>> DistanceBasedRecordLinkage::Bind(
    const Dataset& original, const std::vector<int>& attrs) const {
  return std::unique_ptr<BoundMeasure>(new BoundDbrl(original, attrs));
}

void RegisterDbrlMeasure(MeasureRegistry* registry) {
  registry->Register(
      "DBRL", [](const ParamMap& params) -> Result<std::unique_ptr<Measure>> {
        ParamReader reader("DBRL", params);
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        return std::unique_ptr<Measure>(new DistanceBasedRecordLinkage());
      });
}

}  // namespace metrics
}  // namespace evocat
