#include "metrics/delta.h"

namespace evocat {
namespace metrics {

double LinkageCreditScore(const std::vector<LinkageRowBest>& rows) {
  double credit = 0.0;
  for (const LinkageRowBest& row : rows) {
    if (row.self && row.count > 0) {
      credit += 1.0 / static_cast<double>(row.count);
    }
  }
  return rows.empty()
             ? 0.0
             : 100.0 * credit / static_cast<double>(rows.size());
}

std::vector<int> AttrPositions(const std::vector<int>& attrs,
                               int num_schema_attrs) {
  std::vector<int> positions(static_cast<size_t>(num_schema_attrs), -1);
  for (size_t i = 0; i < attrs.size(); ++i) {
    int attr = attrs[i];
    if (attr >= 0 && attr < num_schema_attrs) {
      positions[static_cast<size_t>(attr)] = static_cast<int>(i);
    }
  }
  return positions;
}

}  // namespace metrics
}  // namespace evocat
