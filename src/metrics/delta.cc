#include "metrics/delta.h"

#include <unordered_map>

namespace evocat {
namespace metrics {

std::vector<RowDelta> GroupDeltasByRow(const std::vector<CellDelta>& deltas) {
  std::vector<RowDelta> rows;
  // Operator batches arrive row-sorted (flat gene order), so the common case
  // is an append to the last group; the map covers arbitrary batches.
  std::unordered_map<int64_t, size_t> index;
  for (const CellDelta& delta : deltas) {
    size_t slot;
    if (!rows.empty() && rows.back().row == delta.row) {
      slot = rows.size() - 1;
    } else {
      auto it = index.find(delta.row);
      if (it == index.end()) {
        slot = rows.size();
        index.emplace(delta.row, slot);
        rows.push_back(RowDelta{delta.row, {}});
      } else {
        slot = it->second;
      }
    }
    rows[slot].cells.push_back(
        RowDelta::Cell{delta.attr, delta.old_code, delta.new_code});
  }
  return rows;
}

double LinkageCreditScore(const std::vector<LinkageRowBest>& rows) {
  double credit = 0.0;
  for (const LinkageRowBest& row : rows) {
    if (row.self && row.count > 0) {
      credit += 1.0 / static_cast<double>(row.count);
    }
  }
  return rows.empty()
             ? 0.0
             : 100.0 * credit / static_cast<double>(rows.size());
}

std::vector<int> AttrPositions(const std::vector<int>& attrs,
                               int num_schema_attrs) {
  std::vector<int> positions(static_cast<size_t>(num_schema_attrs), -1);
  for (size_t i = 0; i < attrs.size(); ++i) {
    int attr = attrs[i];
    if (attr >= 0 && attr < num_schema_attrs) {
      positions[static_cast<size_t>(attr)] = static_cast<int>(i);
    }
  }
  return positions;
}

}  // namespace metrics
}  // namespace evocat
