/// \file registry.h
/// \brief String-keyed factory registry for IL/DR measures.
///
/// Mirrors `protection::MethodRegistry`: every measure implementation file
/// registers its own factory (with its parameter schema) through the hook it
/// defines, and `MeasureRegistry::Global()` runs all hooks once on first use.
/// `FitnessEvaluator` binds its measures through this registry, so a measure
/// is reachable by the name a JobSpec uses ("CTBIL", "DBRL", ...) and new
/// measures plug in without touching the evaluator.

#ifndef EVOCAT_METRICS_REGISTRY_H_
#define EVOCAT_METRICS_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/params.h"
#include "common/result.h"
#include "metrics/measure.h"

namespace evocat {
namespace metrics {

/// \brief Builds one configured measure from a parameter map.
///
/// Factories reject unknown or malformed parameters with a Status naming the
/// offending field (use `ParamReader`).
using MeasureFactory =
    std::function<Result<std::unique_ptr<Measure>>(const ParamMap&)>;

/// \brief Name -> factory registry for `Measure` implementations.
///
/// Lookup is case-insensitive ("ctbil" == "CTBIL"); `Names()` reports
/// canonical spellings. Thread-safe.
class MeasureRegistry {
 public:
  /// \brief The process-wide registry, with all built-ins registered.
  static MeasureRegistry& Global();

  /// \brief Registers `factory` under `name`; duplicate names are an error.
  Status Register(const std::string& name, MeasureFactory factory);

  /// \brief Constructs the measure registered under `name`.
  Result<std::unique_ptr<Measure>> Create(const std::string& name,
                                          const ParamMap& params = {}) const;

  bool Contains(const std::string& name) const;

  /// \brief Canonical registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    std::string canonical_name;
    MeasureFactory factory;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  // keyed by lower-cased name
};

/// \brief Built-in registration hooks, each implemented alongside the measure
/// it registers (self-registration; called once by `Global()`).
void RegisterCtbilMeasure(MeasureRegistry* registry);
void RegisterDbilMeasure(MeasureRegistry* registry);
void RegisterEbilMeasure(MeasureRegistry* registry);
void RegisterIntervalDisclosureMeasure(MeasureRegistry* registry);
void RegisterDbrlMeasure(MeasureRegistry* registry);
void RegisterPrlMeasure(MeasureRegistry* registry);
void RegisterRsrlMeasure(MeasureRegistry* registry);

}  // namespace metrics
}  // namespace evocat

#endif  // EVOCAT_METRICS_REGISTRY_H_
