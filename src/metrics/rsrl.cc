#include "metrics/rsrl.h"

#include "metrics/registry.h"

#include <cmath>
#include <cstdint>

#include "common/parallel.h"
#include "data/stats.h"
#include "metrics/delta.h"
#include "metrics/distance.h"
#include "metrics/plane.h"

namespace evocat {
namespace metrics {

namespace {

class BoundRsrl : public BoundMeasure {
 public:
  BoundRsrl(const Dataset& original, const std::vector<int>& attrs,
            double assumed_p_percent)
      : original_(&original), attrs_(attrs), tables_(original, attrs) {
    window_ = assumed_p_percent / 100.0 *
              static_cast<double>(original.num_rows());
    for (int attr : attrs_) {
      original_midranks_.push_back(CategoryMidranks(original, attr));
    }
    clusters_ = PatternIndex::Build(original, attrs,
                                    ResolveShardCount(GetDataPlane()));
  }

  double Compute(const Dataset& masked) const override {
    int64_t n = original_->num_rows();
    size_t num_attrs = attrs_.size();

    // Masked-side mid-ranks (depend on the masked marginals).
    std::vector<std::vector<double>> masked_midranks;
    masked_midranks.reserve(num_attrs);
    for (int attr : attrs_) {
      masked_midranks.push_back(CategoryMidranks(masked, attr));
    }

    std::vector<LinkageRowBest> rows(static_cast<size_t>(n));
    ParallelFor(0, n, [&](int64_t i) {
      LinkageRowBest row;
      for (int64_t j = 0; j < n; ++j) {
        // Candidate filter: every attribute's masked rank must lie within
        // the assumed displacement window of the original rank.
        bool candidate = true;
        for (size_t k = 0; k < num_attrs; ++k) {
          double rank_orig =
              original_midranks_[k][static_cast<size_t>(original_->Code(i, attrs_[k]))];
          double rank_mask =
              masked_midranks[k][static_cast<size_t>(masked.Code(j, attrs_[k]))];
          if (std::fabs(rank_orig - rank_mask) > window_) {
            candidate = false;
            break;
          }
        }
        if (!candidate) continue;
        double d = tables_.RecordDistance(*original_, i, masked, j);
        LinkageAdd(&row, d, j == i);
      }
      rows[static_cast<size_t>(i)] = row;
    });
    return LinkageCreditScore(rows);
  }

  std::unique_ptr<MeasureState> BindState(const Dataset& masked) const override;

  const Dataset& original() const { return *original_; }
  const std::vector<int>& attrs() const { return attrs_; }
  const DistanceTables& tables() const { return tables_; }
  const std::vector<double>& original_midranks(size_t k) const {
    return original_midranks_[k];
  }
  double window() const { return window_; }
  const PatternIndex& clusters() const { return clusters_; }

 private:
  const Dataset* original_;
  std::vector<int> attrs_;
  DistanceTables tables_;
  std::vector<std::vector<double>> original_midranks_;
  double window_ = 0.0;
  PatternIndex clusters_;
};

/// RSRL's attack state has two masked-side dependencies: record distances
/// (row-scoped, like DBRL) and the per-attribute candidate windows, which
/// hinge on masked mid-ranks and therefore on the masked category counts.
/// A delta (a) perturbs d(., j) for the changed rows j, and (b) may flip the
/// candidate status of whole (original-category, masked-category) blocks
/// when a mid-rank crosses the window boundary. Both effects are applied
/// surgically; records whose best-match support empties are rescanned, and
/// batches whose flip blocks cover too many pairs fall back to a rebuild.
/// Cost model: like DBRL plus the flip-block sweeps and candidate-matrix
/// refreshes, so the rebuild point sits a bit earlier — fraction 0.12 (an
/// n²/8 pair-coverage guard below also rebuilds when the mid-rank flips
/// alone get rebuild-sized).
class RsrlState : public MeasureState {
 public:
  RsrlState(const BoundRsrl* bound, const Dataset& masked)
      : MeasureState(/*default_rebuild_fraction=*/0.12),
        bound_(bound),
        attr_pos_(AttrPositions(bound->attrs(), masked.num_attributes())),
        shards_(ResolveShardCount(GetDataPlane())) {
    const auto& attrs = bound_->attrs();
    const Dataset& original = bound_->original();
    orig_rows_by_code_.resize(attrs.size());
    for (size_t k = 0; k < attrs.size(); ++k) {
      orig_rows_by_code_[k].resize(Cardinality(k));
      const auto& col = original.column(attrs[k]);
      for (int64_t r = 0; r < original.num_rows(); ++r) {
        orig_rows_by_code_[k][static_cast<size_t>(col[static_cast<size_t>(r)])]
            .push_back(r);
      }
    }
    InitFrom(masked);
    undo_.counts = core_.counts;
    undo_.midranks = core_.midranks;
    undo_.cand = core_.cand;
    undo_.rows = core_.rows;
    undo_.score = core_.score;
  }

  void ApplySegment(const Dataset& masked_after,
                    const SegmentDelta& segment) override {
    // One-level undo: the flat structures are snapshotted (cheap memcpys of
    // small tables plus the n-sized row-best array); the allocation-heavy
    // per-code row lists are reverted by replaying their moves backwards.
    undo_.counts = core_.counts;
    undo_.midranks = core_.midranks;
    undo_.cand = core_.cand;
    undo_.rows = core_.rows;
    undo_.score = core_.score;
    undo_.moves.clear();
    undo_.rebuilt = false;
    if (segment.num_cells() >= full_rebuild_threshold()) {
      RebuildWithUndo(masked_after);
      return;
    }
    const auto& row_deltas = segment.rows();
    if (row_deltas.empty()) return;

    const auto& attrs = bound_->attrs();
    int64_t n = bound_->original().num_rows();

    // 1. Fold the deltas into the masked marginals and row lists.
    std::vector<uint8_t> attr_changed(attrs.size(), 0);
    for (const RowDelta& rd : row_deltas) {
      for (const auto& cell : rd.cells) {
        int pos = attr_pos_[static_cast<size_t>(cell.attr)];
        if (pos < 0 || cell.old_code == cell.new_code) continue;
        auto k = static_cast<size_t>(pos);
        core_.counts[k][static_cast<size_t>(cell.old_code)] -= 1;
        core_.counts[k][static_cast<size_t>(cell.new_code)] += 1;
        MoveRow(k, rd.row, cell.old_code, cell.new_code);
        undo_.moves.push_back(Undo::Move{k, rd.row, cell.old_code, cell.new_code});
        attr_changed[k] = 1;
      }
    }

    // 2. Re-derive mid-ranks and candidate matrices for the touched
    //    attributes, recording which (orig cat, masked cat) blocks flipped.
    std::vector<std::vector<uint8_t>> flipped(attrs.size());
    std::vector<std::vector<std::pair<int32_t, int32_t>>> flips(attrs.size());
    int64_t affected_pairs = 0;
    for (size_t k = 0; k < attrs.size(); ++k) {
      if (!attr_changed[k]) continue;
      core_.midranks[k] = MidranksFromCounts(core_.counts[k]);
      auto card = static_cast<size_t>(Cardinality(k));
      flipped[k].assign(card * card, 0);
      const auto& orig_ranks = bound_->original_midranks(k);
      double window = bound_->window();
      for (size_t o = 0; o < card; ++o) {
        for (size_t m = 0; m < card; ++m) {
          uint8_t now =
              std::fabs(orig_ranks[o] - core_.midranks[k][m]) <= window;
          if (now != core_.cand[k][o * card + m]) {
            flipped[k][o * card + m] = 1;
            flips[k].emplace_back(static_cast<int32_t>(o),
                                  static_cast<int32_t>(m));
            affected_pairs +=
                static_cast<int64_t>(orig_rows_by_code_[k][o].size()) *
                static_cast<int64_t>(core_.rows_by_code[k][m].size());
            core_.cand[k][o * card + m] = now;
          }
        }
      }
    }

    // Fallback: flip blocks covering a large share of all pairs cost as much
    // as a rebuild, so rebuild (which also refreshes every distance).
    int64_t touched_estimate =
        affected_pairs + n * static_cast<int64_t>(row_deltas.size());
    if (touched_estimate > n * n / 8) {
      UnwindMoves();  // restore pre-apply row lists before backing them up
      RebuildWithUndo(masked_after);
      return;
    }

    std::vector<uint8_t> changed_row(static_cast<size_t>(n), 0);
    for (const RowDelta& rd : row_deltas) {
      changed_row[static_cast<size_t>(rd.row)] = 1;
    }
    std::vector<uint8_t> rescan(static_cast<size_t>(n), 0);

    // 3. Changed rows: remove each one's old contribution (old codes, old
    //    candidate matrices) and fold in the new one, per original record.
    ParallelFor(0, n, [&](int64_t i) {
      LinkageRowBest& row = core_.rows[static_cast<size_t>(i)];
      for (const RowDelta& rd : row_deltas) {
        if (rescan[static_cast<size_t>(i)]) break;
        int64_t j = rd.row;
        bool cand_old = true, cand_new = true;
        double sum_old = 0.0, sum_new = 0.0;
        for (size_t k = 0; k < attrs.size(); ++k) {
          auto card = static_cast<size_t>(Cardinality(k));
          auto o = static_cast<size_t>(
              bound_->original().Code(i, attrs[k]));
          auto m_old =
              static_cast<size_t>(rd.OldCode(masked_after, attrs[k]));
          auto m_new = static_cast<size_t>(masked_after.Code(j, attrs[k]));
          cand_old = cand_old && undo_.cand[k][o * card + m_old];
          cand_new = cand_new && core_.cand[k][o * card + m_new];
          sum_old += bound_->tables().At(k, static_cast<int32_t>(o),
                                         static_cast<int32_t>(m_old));
          sum_new += bound_->tables().At(k, static_cast<int32_t>(o),
                                         static_cast<int32_t>(m_new));
        }
        double denom = static_cast<double>(attrs.size());
        if (cand_old) {
          LinkageRemove(&row, sum_old / denom, j == i,
                        &rescan[static_cast<size_t>(i)]);
        }
        if (!rescan[static_cast<size_t>(i)] && cand_new) {
          LinkageAdd(&row, sum_new / denom, j == i);
        }
      }
    });

    // 4. Flip blocks: pairs whose candidacy toggled through a mid-rank shift
    //    alone (unchanged rows). Each (i, j) pair is handled once, at its
    //    first flipped attribute.
    for (size_t k = 0; k < attrs.size(); ++k) {
      for (const auto& [o, m] : flips[k]) {
        for (int64_t j : core_.rows_by_code[k][static_cast<size_t>(m)]) {
          if (changed_row[static_cast<size_t>(j)]) continue;
          for (int64_t i : orig_rows_by_code_[k][static_cast<size_t>(o)]) {
            if (rescan[static_cast<size_t>(i)]) continue;
            if (!FirstFlippedAttr(flipped, i, j, masked_after, k)) continue;
            bool cand_old = AllCand(undo_.cand, i, j, masked_after);
            bool cand_new = AllCand(core_.cand, i, j, masked_after);
            if (cand_old == cand_new) continue;
            double d = bound_->tables().RecordDistance(bound_->original(), i,
                                                       masked_after, j);
            LinkageRowBest& row = core_.rows[static_cast<size_t>(i)];
            if (cand_old) {
              LinkageRemove(&row, d, j == i, &rescan[static_cast<size_t>(i)]);
            } else {
              LinkageAdd(&row, d, j == i);
            }
          }
        }
      }
    }

    // 5. Rescan records whose support emptied, against the new world.
    ParallelFor(0, n, [&](int64_t i) {
      if (rescan[static_cast<size_t>(i)]) {
        core_.rows[static_cast<size_t>(i)] = ScanRow(masked_after, i);
      }
    });
    core_.score = LinkageCreditScore(core_.rows);
  }

  void RevertSegment() override {
    if (undo_.rebuilt) {
      core_.rows_by_code = undo_.lists_backup;
      core_.pos_of_row = undo_.pos_backup;
    } else {
      UnwindMoves();
    }
    core_.counts = undo_.counts;
    core_.midranks = undo_.midranks;
    core_.cand = undo_.cand;
    core_.rows = undo_.rows;
    core_.score = undo_.score;
  }

  double Score() const override { return core_.score; }

 private:
  struct Core {
    std::vector<std::vector<int64_t>> counts;    ///< masked marginals per attr
    std::vector<std::vector<double>> midranks;   ///< masked mid-ranks per attr
    std::vector<std::vector<uint8_t>> cand;      ///< [k][o*card+m] in-window
    std::vector<std::vector<std::vector<int64_t>>> rows_by_code;
    std::vector<std::vector<int64_t>> pos_of_row;
    std::vector<LinkageRowBest> rows;
    double score = 0.0;
  };

  struct Undo {
    std::vector<std::vector<int64_t>> counts;
    std::vector<std::vector<double>> midranks;
    std::vector<std::vector<uint8_t>> cand;
    std::vector<LinkageRowBest> rows;
    double score = 0.0;
    struct Move {
      size_t k;
      int64_t row;
      int32_t old_code;
      int32_t new_code;
    };
    std::vector<Move> moves;
    bool rebuilt = false;
    std::vector<std::vector<std::vector<int64_t>>> lists_backup;
    std::vector<std::vector<int64_t>> pos_backup;
  };

  /// Replays this apply's row-list moves backwards (list contents return to
  /// the pre-apply state; bucket order may differ, which only permutes
  /// tie-equivalent event order).
  void UnwindMoves() {
    for (auto it = undo_.moves.rbegin(); it != undo_.moves.rend(); ++it) {
      MoveRow(it->k, it->row, it->new_code, it->old_code);
    }
    undo_.moves.clear();
  }

  /// Full-recompute fallback that stays revertible: the row lists (rebuilt
  /// from scratch by InitFrom) are backed up in full for Revert.
  void RebuildWithUndo(const Dataset& masked_after) {
    undo_.rebuilt = true;
    undo_.lists_backup = core_.rows_by_code;
    undo_.pos_backup = core_.pos_of_row;
    InitFrom(masked_after);
  }

  int Cardinality(size_t k) const {
    return bound_->original().schema().attribute(bound_->attrs()[k]).cardinality();
  }

  void InitFrom(const Dataset& masked) {
    const auto& attrs = bound_->attrs();
    int64_t n = bound_->original().num_rows();
    core_.counts.resize(attrs.size());
    core_.midranks.resize(attrs.size());
    core_.cand.resize(attrs.size());
    core_.rows_by_code.resize(attrs.size());
    core_.pos_of_row.resize(attrs.size());
    for (size_t k = 0; k < attrs.size(); ++k) {
      core_.counts[k] = CategoryCounts(masked, attrs[k]);
      core_.midranks[k] = MidranksFromCounts(core_.counts[k]);
      auto card = static_cast<size_t>(Cardinality(k));
      core_.cand[k].assign(card * card, 0);
      const auto& orig_ranks = bound_->original_midranks(k);
      for (size_t o = 0; o < card; ++o) {
        for (size_t m = 0; m < card; ++m) {
          core_.cand[k][o * card + m] =
              std::fabs(orig_ranks[o] - core_.midranks[k][m]) <=
              bound_->window();
        }
      }
      core_.rows_by_code[k].assign(card, {});
      core_.pos_of_row[k].assign(static_cast<size_t>(n), 0);
      const auto& col = masked.column(attrs[k]);
      for (int64_t r = 0; r < n; ++r) {
        auto code = static_cast<size_t>(col[static_cast<size_t>(r)]);
        core_.pos_of_row[k][static_cast<size_t>(r)] =
            static_cast<int64_t>(core_.rows_by_code[k][code].size());
        core_.rows_by_code[k][code].push_back(r);
      }
    }
    // Clustered best-match build: rows sharing an original code tuple get
    // one candidate-filtered scan over the masked pattern groups (O(C*G*A)
    // instead of the per-row O(n^2*A) scans); the per-row fanout then
    // reconstructs the self flag from the record's own distance. Same
    // support sets as ScanRow whenever distinct distances are separated by
    // more than kLinkageEps (the generic case for table-lookup distances).
    MaskedGroups groups = MaskedGroups::Build(masked, attrs, shards_);
    const PatternIndex& clusters = bound_->clusters();
    int64_t num_clusters = clusters.num_clusters();
    int64_t num_groups = groups.num_groups();
    std::vector<LinkageRowBest> cluster_best(static_cast<size_t>(num_clusters));
    ParallelFor(0, num_clusters, [&](int64_t c) {
      const int32_t* orig_codes = clusters.codes(c);
      LinkageRowBest best;
      for (int64_t g = 0; g < num_groups; ++g) {
        int64_t size = groups.group_size(g);
        if (size <= 0) continue;
        const int32_t* mask_codes = groups.codes(g);
        bool candidate = true;
        for (size_t k = 0; k < attrs.size(); ++k) {
          auto card = static_cast<size_t>(Cardinality(k));
          if (!core_.cand[k][static_cast<size_t>(orig_codes[k]) * card +
                             static_cast<size_t>(mask_codes[k])]) {
            candidate = false;
            break;
          }
        }
        if (!candidate) continue;
        double d = bound_->tables().RecordDistanceCodes(orig_codes, mask_codes);
        LinkageAddN(&best, d, size);
      }
      cluster_best[static_cast<size_t>(c)] = best;
    });
    core_.rows.assign(static_cast<size_t>(n), LinkageRowBest{});
    ParallelFor(0, n, [&](int64_t i) {
      auto c = static_cast<int64_t>(clusters.cluster_of(i));
      LinkageRowBest row = cluster_best[static_cast<size_t>(c)];
      if (row.count > 0 && AllCand(core_.cand, i, i, masked)) {
        double d_self = bound_->tables().RecordDistanceCodes(
            clusters.codes(c), groups.codes(groups.group_of(i)));
        row.self = d_self <= row.best + kLinkageEps;
      }
      core_.rows[static_cast<size_t>(i)] = row;
    });
    core_.score = LinkageCreditScore(core_.rows);
  }

  /// Fresh candidate-filtered scan of original record `i` (final truth).
  LinkageRowBest ScanRow(const Dataset& masked, int64_t i) const {
    int64_t n = bound_->original().num_rows();
    LinkageRowBest row;
    for (int64_t j = 0; j < n; ++j) {
      if (!AllCand(core_.cand, i, j, masked)) continue;
      double d =
          bound_->tables().RecordDistance(bound_->original(), i, masked, j);
      LinkageAdd(&row, d, j == i);
    }
    return row;
  }

  bool AllCand(const std::vector<std::vector<uint8_t>>& cand, int64_t i,
               int64_t j, const Dataset& masked) const {
    const auto& attrs = bound_->attrs();
    for (size_t k = 0; k < attrs.size(); ++k) {
      auto card = static_cast<size_t>(Cardinality(k));
      auto o = static_cast<size_t>(bound_->original().Code(i, attrs[k]));
      auto m = static_cast<size_t>(masked.Code(j, attrs[k]));
      if (!cand[k][o * card + m]) return false;
    }
    return true;
  }

  /// True when `k` is the first attribute whose flip block covers (i, j).
  bool FirstFlippedAttr(const std::vector<std::vector<uint8_t>>& flipped,
                        int64_t i, int64_t j, const Dataset& masked,
                        size_t k) const {
    const auto& attrs = bound_->attrs();
    for (size_t k2 = 0; k2 < k; ++k2) {
      if (flipped[k2].empty()) continue;
      auto card = static_cast<size_t>(Cardinality(k2));
      auto o = static_cast<size_t>(bound_->original().Code(i, attrs[k2]));
      auto m = static_cast<size_t>(masked.Code(j, attrs[k2]));
      if (flipped[k2][o * card + m]) return false;
    }
    return true;
  }

  void MoveRow(size_t k, int64_t row, int32_t old_code, int32_t new_code) {
    auto& old_list = core_.rows_by_code[k][static_cast<size_t>(old_code)];
    auto& pos = core_.pos_of_row[k];
    auto at = static_cast<size_t>(pos[static_cast<size_t>(row)]);
    int64_t moved = old_list.back();
    old_list[at] = moved;
    pos[static_cast<size_t>(moved)] = static_cast<int64_t>(at);
    old_list.pop_back();
    auto& new_list = core_.rows_by_code[k][static_cast<size_t>(new_code)];
    pos[static_cast<size_t>(row)] = static_cast<int64_t>(new_list.size());
    new_list.push_back(row);
  }

  const BoundRsrl* bound_;
  std::vector<int> attr_pos_;
  int shards_;
  std::vector<std::vector<std::vector<int64_t>>> orig_rows_by_code_;
  Core core_;
  Undo undo_;
};

std::unique_ptr<MeasureState> BoundRsrl::BindState(const Dataset& masked) const {
  return std::make_unique<RsrlState>(this, masked);
}

}  // namespace

Result<std::unique_ptr<BoundMeasure>> RankSwappingRecordLinkage::Bind(
    const Dataset& original, const std::vector<int>& attrs) const {
  if (assumed_p_percent_ <= 0.0 || assumed_p_percent_ > 100.0) {
    return Status::Invalid("RSRL assumed p must be in (0, 100], got ",
                           assumed_p_percent_);
  }
  return std::unique_ptr<BoundMeasure>(
      new BoundRsrl(original, attrs, assumed_p_percent_));
}

void RegisterRsrlMeasure(MeasureRegistry* registry) {
  registry->Register(
      "RSRL", [](const ParamMap& params) -> Result<std::unique_ptr<Measure>> {
        ParamReader reader("RSRL", params);
        double assumed_p_percent = reader.GetDouble("assumed_p_percent", 15.0);
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        return std::unique_ptr<Measure>(
            new RankSwappingRecordLinkage(assumed_p_percent));
      });
}

}  // namespace metrics
}  // namespace evocat
