#include "metrics/rsrl.h"

#include "metrics/registry.h"

#include <cmath>
#include <cstdint>

#include "common/parallel.h"
#include "data/stats.h"
#include "metrics/delta.h"
#include "metrics/distance.h"
#include "metrics/plane.h"

namespace evocat {
namespace metrics {

namespace {

class BoundRsrl : public BoundMeasure {
 public:
  BoundRsrl(const Dataset& original, const std::vector<int>& attrs,
            double assumed_p_percent)
      : original_(&original), attrs_(attrs), tables_(original, attrs) {
    window_ = assumed_p_percent / 100.0 *
              static_cast<double>(original.num_rows());
    for (int attr : attrs_) {
      original_midranks_.push_back(CategoryMidranks(original, attr));
    }
    clusters_ = PatternIndex::Build(original, attrs,
                                    ResolveShardCount(GetDataPlane()));
  }

  double Compute(const Dataset& masked) const override {
    int64_t n = original_->num_rows();
    size_t num_attrs = attrs_.size();

    // Masked-side mid-ranks (depend on the masked marginals).
    std::vector<std::vector<double>> masked_midranks;
    masked_midranks.reserve(num_attrs);
    for (int attr : attrs_) {
      masked_midranks.push_back(CategoryMidranks(masked, attr));
    }

    std::vector<LinkageRowBest> rows(static_cast<size_t>(n));
    ParallelFor(0, n, [&](int64_t i) {
      LinkageRowBest row;
      for (int64_t j = 0; j < n; ++j) {
        // Candidate filter: every attribute's masked rank must lie within
        // the assumed displacement window of the original rank.
        bool candidate = true;
        for (size_t k = 0; k < num_attrs; ++k) {
          double rank_orig =
              original_midranks_[k][static_cast<size_t>(original_->Code(i, attrs_[k]))];
          double rank_mask =
              masked_midranks[k][static_cast<size_t>(masked.Code(j, attrs_[k]))];
          if (std::fabs(rank_orig - rank_mask) > window_) {
            candidate = false;
            break;
          }
        }
        if (!candidate) continue;
        double d = tables_.RecordDistance(*original_, i, masked, j);
        LinkageAdd(&row, d, j == i);
      }
      rows[static_cast<size_t>(i)] = row;
    });
    return LinkageCreditScore(rows);
  }

  std::unique_ptr<MeasureState> BindState(const Dataset& masked) const override;

  const Dataset& original() const { return *original_; }
  const std::vector<int>& attrs() const { return attrs_; }
  const DistanceTables& tables() const { return tables_; }
  const std::vector<double>& original_midranks(size_t k) const {
    return original_midranks_[k];
  }
  double window() const { return window_; }
  const PatternIndex& clusters() const { return clusters_; }

 private:
  const Dataset* original_;
  std::vector<int> attrs_;
  DistanceTables tables_;
  std::vector<std::vector<double>> original_midranks_;
  double window_ = 0.0;
  PatternIndex clusters_;
};

/// RSRL's attack state has two masked-side dependencies: record distances
/// (row-scoped, like DBRL) and the per-attribute candidate windows, which
/// hinge on masked mid-ranks and therefore on the masked category counts.
/// A delta (a) perturbs d(., j) for the changed rows j, and (b) may flip the
/// candidate status of whole (original-category, masked-category) blocks
/// when a mid-rank crosses the window boundary. Both effects are applied
/// surgically; records whose best-match support empties are rescanned, and
/// batches whose flip blocks cover too many pairs fall back to a rebuild.
/// Cost model: like DBRL plus the flip-block sweeps and candidate-matrix
/// refreshes, so the rebuild point sits a bit earlier — fraction 0.12 (an
/// n²/8 pair-coverage guard below also rebuilds when the mid-rank flips
/// alone get rebuild-sized).
class RsrlState : public MeasureState {
 public:
  RsrlState(const BoundRsrl* bound, const Dataset& masked)
      : MeasureState(/*default_rebuild_fraction=*/0.12),
        bound_(bound),
        attr_pos_(AttrPositions(bound->attrs(), masked.num_attributes())),
        shards_(ResolveShardCount(GetDataPlane())) {
    const auto& attrs = bound_->attrs();
    const Dataset& original = bound_->original();
    orig_rows_by_code_.resize(attrs.size());
    for (size_t k = 0; k < attrs.size(); ++k) {
      orig_rows_by_code_[k].resize(Cardinality(k));
      const auto& col = original.column(attrs[k]);
      for (int64_t r = 0; r < original.num_rows(); ++r) {
        orig_rows_by_code_[k][static_cast<size_t>(col[static_cast<size_t>(r)])]
            .push_back(r);
      }
    }
    InitFrom(masked);
    undo_.counts = core_.counts;
    undo_.midranks = core_.midranks;
    undo_.cand = core_.cand;
    undo_.rows = core_.rows;
    undo_.score = core_.score;
  }

  void ApplySegment(const Dataset& masked_after,
                    const SegmentDelta& segment) override {
    // One-level undo: the flat structures are snapshotted (cheap memcpys of
    // small tables plus the n-sized row-best array); the allocation-heavy
    // per-code row lists are reverted by replaying their moves backwards.
    undo_.counts = core_.counts;
    undo_.midranks = core_.midranks;
    undo_.cand = core_.cand;
    undo_.rows = core_.rows;
    undo_.score = core_.score;
    undo_.moves.clear();
    undo_.rebuilt = false;
    if (segment.num_cells() >= full_rebuild_threshold()) {
      RebuildWithUndo(masked_after);
      return;
    }
    const auto& row_deltas = segment.rows();
    if (row_deltas.empty()) return;

    const auto& attrs = bound_->attrs();
    int64_t n = bound_->original().num_rows();

    // 1. Fold the deltas into the masked marginals and row lists.
    std::vector<uint8_t> attr_changed(attrs.size(), 0);
    for (const RowDelta& rd : row_deltas) {
      for (const auto& cell : rd.cells) {
        int pos = attr_pos_[static_cast<size_t>(cell.attr)];
        if (pos < 0 || cell.old_code == cell.new_code) continue;
        auto k = static_cast<size_t>(pos);
        core_.counts[k][static_cast<size_t>(cell.old_code)] -= 1;
        core_.counts[k][static_cast<size_t>(cell.new_code)] += 1;
        MoveRow(k, rd.row, cell.old_code, cell.new_code);
        undo_.moves.push_back(Undo::Move{k, rd.row, cell.old_code, cell.new_code});
        attr_changed[k] = 1;
      }
    }

    // 2. Re-derive mid-ranks and candidate matrices for the touched
    //    attributes, recording which (orig cat, masked cat) blocks flipped.
    std::vector<std::vector<uint8_t>> flipped(attrs.size());
    std::vector<std::vector<std::pair<int32_t, int32_t>>> flips(attrs.size());
    int64_t affected_pairs = 0;
    for (size_t k = 0; k < attrs.size(); ++k) {
      if (!attr_changed[k]) continue;
      core_.midranks[k] = MidranksFromCounts(core_.counts[k]);
      auto card = static_cast<size_t>(Cardinality(k));
      flipped[k].assign(card * card, 0);
      const auto& orig_ranks = bound_->original_midranks(k);
      double window = bound_->window();
      for (size_t o = 0; o < card; ++o) {
        for (size_t m = 0; m < card; ++m) {
          uint8_t now =
              std::fabs(orig_ranks[o] - core_.midranks[k][m]) <= window;
          if (now != core_.cand[k][o * card + m]) {
            flipped[k][o * card + m] = 1;
            flips[k].emplace_back(static_cast<int32_t>(o),
                                  static_cast<int32_t>(m));
            affected_pairs +=
                static_cast<int64_t>(orig_rows_by_code_[k][o].size()) *
                static_cast<int64_t>(core_.rows_by_code[k][m].size());
            core_.cand[k][o * card + m] = now;
          }
        }
      }
    }

    // Fallback: flip blocks covering a large share of all pairs cost as much
    // as a rebuild, so rebuild (which also refreshes every distance).
    int64_t touched_estimate =
        affected_pairs + n * static_cast<int64_t>(row_deltas.size());
    if (touched_estimate > n * n / 8) {
      UnwindMoves();  // restore pre-apply row lists before backing them up
      RebuildWithUndo(masked_after);
      return;
    }

    std::vector<uint8_t> changed_row(static_cast<size_t>(n), 0);
    for (const RowDelta& rd : row_deltas) {
      changed_row[static_cast<size_t>(rd.row)] = 1;
    }
    std::vector<uint8_t> rescan(static_cast<size_t>(n), 0);

    // 3. Changed rows: remove each one's old contribution (old codes, old
    //    candidate matrices) and fold in the new one, per original record.
    ParallelFor(0, n, [&](int64_t i) {
      LinkageRowBest& row = core_.rows[static_cast<size_t>(i)];
      for (const RowDelta& rd : row_deltas) {
        if (rescan[static_cast<size_t>(i)]) break;
        int64_t j = rd.row;
        bool cand_old = true, cand_new = true;
        double sum_old = 0.0, sum_new = 0.0;
        for (size_t k = 0; k < attrs.size(); ++k) {
          auto card = static_cast<size_t>(Cardinality(k));
          auto o = static_cast<size_t>(
              bound_->original().Code(i, attrs[k]));
          auto m_old =
              static_cast<size_t>(rd.OldCode(masked_after, attrs[k]));
          auto m_new = static_cast<size_t>(masked_after.Code(j, attrs[k]));
          cand_old = cand_old && undo_.cand[k][o * card + m_old];
          cand_new = cand_new && core_.cand[k][o * card + m_new];
          sum_old += bound_->tables().At(k, static_cast<int32_t>(o),
                                         static_cast<int32_t>(m_old));
          sum_new += bound_->tables().At(k, static_cast<int32_t>(o),
                                         static_cast<int32_t>(m_new));
        }
        double denom = static_cast<double>(attrs.size());
        if (cand_old) {
          LinkageRemove(&row, sum_old / denom, j == i,
                        &rescan[static_cast<size_t>(i)]);
        }
        if (!rescan[static_cast<size_t>(i)] && cand_new) {
          LinkageAdd(&row, sum_new / denom, j == i);
        }
      }
    });

    // 4. Flip blocks: pairs whose candidacy toggled through a mid-rank shift
    //    alone (unchanged rows). Each (i, j) pair is handled once, at its
    //    first flipped attribute.
    for (size_t k = 0; k < attrs.size(); ++k) {
      for (const auto& [o, m] : flips[k]) {
        for (int64_t j : core_.rows_by_code[k][static_cast<size_t>(m)]) {
          if (changed_row[static_cast<size_t>(j)]) continue;
          for (int64_t i : orig_rows_by_code_[k][static_cast<size_t>(o)]) {
            if (rescan[static_cast<size_t>(i)]) continue;
            if (!FirstFlippedAttr(flipped, i, j, masked_after, k)) continue;
            bool cand_old = AllCand(undo_.cand, i, j, masked_after);
            bool cand_new = AllCand(core_.cand, i, j, masked_after);
            if (cand_old == cand_new) continue;
            double d = bound_->tables().RecordDistance(bound_->original(), i,
                                                       masked_after, j);
            LinkageRowBest& row = core_.rows[static_cast<size_t>(i)];
            if (cand_old) {
              LinkageRemove(&row, d, j == i, &rescan[static_cast<size_t>(i)]);
            } else {
              LinkageAdd(&row, d, j == i);
            }
          }
        }
      }
    }

    // 5. Rescan records whose support emptied, against the new world.
    ParallelFor(0, n, [&](int64_t i) {
      if (rescan[static_cast<size_t>(i)]) {
        core_.rows[static_cast<size_t>(i)] = ScanRow(masked_after, i);
      }
    });
    core_.score = LinkageCreditScore(core_.rows);
  }

  void RevertSegment() override {
    if (undo_.rebuilt) {
      core_.rows_by_code = undo_.lists_backup;
      core_.pos_of_row = undo_.pos_backup;
    } else {
      UnwindMoves();
    }
    core_.counts = undo_.counts;
    core_.midranks = undo_.midranks;
    core_.cand = undo_.cand;
    core_.rows = undo_.rows;
    core_.score = undo_.score;
  }

  double Score() const override { return core_.score; }

 private:
  struct Core {
    std::vector<std::vector<int64_t>> counts;    ///< masked marginals per attr
    std::vector<std::vector<double>> midranks;   ///< masked mid-ranks per attr
    std::vector<std::vector<uint8_t>> cand;      ///< [k][o*card+m] in-window
    std::vector<std::vector<std::vector<int64_t>>> rows_by_code;
    std::vector<std::vector<int64_t>> pos_of_row;
    std::vector<LinkageRowBest> rows;
    double score = 0.0;
  };

  struct Undo {
    std::vector<std::vector<int64_t>> counts;
    std::vector<std::vector<double>> midranks;
    std::vector<std::vector<uint8_t>> cand;
    std::vector<LinkageRowBest> rows;
    double score = 0.0;
    struct Move {
      size_t k;
      int64_t row;
      int32_t old_code;
      int32_t new_code;
    };
    std::vector<Move> moves;
    bool rebuilt = false;
    std::vector<std::vector<std::vector<int64_t>>> lists_backup;
    std::vector<std::vector<int64_t>> pos_backup;
  };

  /// Replays this apply's row-list moves backwards (list contents return to
  /// the pre-apply state; bucket order may differ, which only permutes
  /// tie-equivalent event order).
  void UnwindMoves() {
    for (auto it = undo_.moves.rbegin(); it != undo_.moves.rend(); ++it) {
      MoveRow(it->k, it->row, it->new_code, it->old_code);
    }
    undo_.moves.clear();
  }

  /// Full-recompute fallback that stays revertible: the row lists (rebuilt
  /// from scratch by InitFrom) are backed up in full for Revert.
  void RebuildWithUndo(const Dataset& masked_after) {
    undo_.rebuilt = true;
    undo_.lists_backup = core_.rows_by_code;
    undo_.pos_backup = core_.pos_of_row;
    InitFrom(masked_after);
  }

  int Cardinality(size_t k) const {
    return bound_->original().schema().attribute(bound_->attrs()[k]).cardinality();
  }

  void InitFrom(const Dataset& masked) {
    const auto& attrs = bound_->attrs();
    int64_t n = bound_->original().num_rows();
    core_.counts.resize(attrs.size());
    core_.midranks.resize(attrs.size());
    core_.cand.resize(attrs.size());
    core_.rows_by_code.resize(attrs.size());
    core_.pos_of_row.resize(attrs.size());
    for (size_t k = 0; k < attrs.size(); ++k) {
      core_.counts[k] = CategoryCounts(masked, attrs[k]);
      core_.midranks[k] = MidranksFromCounts(core_.counts[k]);
      auto card = static_cast<size_t>(Cardinality(k));
      core_.cand[k].assign(card * card, 0);
      const auto& orig_ranks = bound_->original_midranks(k);
      for (size_t o = 0; o < card; ++o) {
        for (size_t m = 0; m < card; ++m) {
          core_.cand[k][o * card + m] =
              std::fabs(orig_ranks[o] - core_.midranks[k][m]) <=
              bound_->window();
        }
      }
      core_.rows_by_code[k].assign(card, {});
      core_.pos_of_row[k].assign(static_cast<size_t>(n), 0);
      const auto& col = masked.column(attrs[k]);
      for (int64_t r = 0; r < n; ++r) {
        auto code = static_cast<size_t>(col[static_cast<size_t>(r)]);
        core_.pos_of_row[k][static_cast<size_t>(r)] =
            static_cast<int64_t>(core_.rows_by_code[k][code].size());
        core_.rows_by_code[k][code].push_back(r);
      }
    }
    // Clustered best-match build: rows sharing an original code tuple get
    // one candidate-filtered scan over the masked pattern groups (O(C*G*A)
    // instead of the per-row O(n^2*A) scans); the per-row fanout then
    // reconstructs the self flag from the record's own distance. Same
    // support sets as ScanRow whenever distinct distances are separated by
    // more than kLinkageEps (the generic case for table-lookup distances).
    MaskedGroups groups = MaskedGroups::Build(masked, attrs, shards_);
    const PatternIndex& clusters = bound_->clusters();
    int64_t num_clusters = clusters.num_clusters();
    int64_t num_groups = groups.num_groups();
    std::vector<LinkageRowBest> cluster_best(static_cast<size_t>(num_clusters));
    ParallelFor(0, num_clusters, [&](int64_t c) {
      const int32_t* orig_codes = clusters.codes(c);
      LinkageRowBest best;
      for (int64_t g = 0; g < num_groups; ++g) {
        int64_t size = groups.group_size(g);
        if (size <= 0) continue;
        const int32_t* mask_codes = groups.codes(g);
        bool candidate = true;
        for (size_t k = 0; k < attrs.size(); ++k) {
          auto card = static_cast<size_t>(Cardinality(k));
          if (!core_.cand[k][static_cast<size_t>(orig_codes[k]) * card +
                             static_cast<size_t>(mask_codes[k])]) {
            candidate = false;
            break;
          }
        }
        if (!candidate) continue;
        double d = bound_->tables().RecordDistanceCodes(orig_codes, mask_codes);
        LinkageAddN(&best, d, size);
      }
      cluster_best[static_cast<size_t>(c)] = best;
    });
    core_.rows.assign(static_cast<size_t>(n), LinkageRowBest{});
    ParallelFor(0, n, [&](int64_t i) {
      auto c = static_cast<int64_t>(clusters.cluster_of(i));
      LinkageRowBest row = cluster_best[static_cast<size_t>(c)];
      if (row.count > 0 && AllCand(core_.cand, i, i, masked)) {
        double d_self = bound_->tables().RecordDistanceCodes(
            clusters.codes(c), groups.codes(groups.group_of(i)));
        row.self = d_self <= row.best + kLinkageEps;
      }
      core_.rows[static_cast<size_t>(i)] = row;
    });
    core_.score = LinkageCreditScore(core_.rows);
  }

  /// Fresh candidate-filtered scan of original record `i` (final truth).
  LinkageRowBest ScanRow(const Dataset& masked, int64_t i) const {
    int64_t n = bound_->original().num_rows();
    LinkageRowBest row;
    for (int64_t j = 0; j < n; ++j) {
      if (!AllCand(core_.cand, i, j, masked)) continue;
      double d =
          bound_->tables().RecordDistance(bound_->original(), i, masked, j);
      LinkageAdd(&row, d, j == i);
    }
    return row;
  }

  bool AllCand(const std::vector<std::vector<uint8_t>>& cand, int64_t i,
               int64_t j, const Dataset& masked) const {
    const auto& attrs = bound_->attrs();
    for (size_t k = 0; k < attrs.size(); ++k) {
      auto card = static_cast<size_t>(Cardinality(k));
      auto o = static_cast<size_t>(bound_->original().Code(i, attrs[k]));
      auto m = static_cast<size_t>(masked.Code(j, attrs[k]));
      if (!cand[k][o * card + m]) return false;
    }
    return true;
  }

  /// True when `k` is the first attribute whose flip block covers (i, j).
  bool FirstFlippedAttr(const std::vector<std::vector<uint8_t>>& flipped,
                        int64_t i, int64_t j, const Dataset& masked,
                        size_t k) const {
    const auto& attrs = bound_->attrs();
    for (size_t k2 = 0; k2 < k; ++k2) {
      if (flipped[k2].empty()) continue;
      auto card = static_cast<size_t>(Cardinality(k2));
      auto o = static_cast<size_t>(bound_->original().Code(i, attrs[k2]));
      auto m = static_cast<size_t>(masked.Code(j, attrs[k2]));
      if (flipped[k2][o * card + m]) return false;
    }
    return true;
  }

  void MoveRow(size_t k, int64_t row, int32_t old_code, int32_t new_code) {
    auto& old_list = core_.rows_by_code[k][static_cast<size_t>(old_code)];
    auto& pos = core_.pos_of_row[k];
    auto at = static_cast<size_t>(pos[static_cast<size_t>(row)]);
    int64_t moved = old_list.back();
    old_list[at] = moved;
    pos[static_cast<size_t>(moved)] = static_cast<int64_t>(at);
    old_list.pop_back();
    auto& new_list = core_.rows_by_code[k][static_cast<size_t>(new_code)];
    pos[static_cast<size_t>(row)] = static_cast<int64_t>(new_list.size());
    new_list.push_back(row);
  }

  const BoundRsrl* bound_;
  std::vector<int> attr_pos_;
  int shards_;
  std::vector<std::vector<std::vector<int64_t>>> orig_rows_by_code_;
  Core core_;
  Undo undo_;
};

/// Cluster-level RSRL state (the sharded data plane): like ClusteredDbrlState
/// it keeps one `LinkageRowBest` per *original pattern cluster* plus each
/// row's self distance, but adds RSRL's candidate-window maintenance. Both
/// masked-side dependencies collapse to pattern granularity: the changed-row
/// fold removes/adds whole tuples per cluster under the old/new candidate
/// matrices, and a mid-rank flip block (o, m) at attribute k toggles whole
/// masked groups against whole original clusters — folded with multiplicity
/// (group size minus the changed rows already handled row-wise). Per delta
/// the work is O(C·changed + flips·C_o·G_m + n) instead of O(n·changed +
/// flips·n_o·n_m + n·A); the n²/8 pair-coverage guard and the rebuild
/// fraction match the row state, so both planes take the same paths.
class ClusteredRsrlState : public MeasureState {
 public:
  ClusteredRsrlState(const BoundRsrl* bound, const Dataset& masked)
      : MeasureState(/*default_rebuild_fraction=*/0.12),
        bound_(bound),
        attr_pos_(AttrPositions(bound->attrs(), masked.num_attributes())),
        shards_(ResolveShardCount(GetDataPlane())) {
    const auto& attrs = bound_->attrs();
    const PatternIndex& clusters = bound_->clusters();
    orig_counts_.resize(attrs.size());
    clusters_by_code_.resize(attrs.size());
    for (size_t k = 0; k < attrs.size(); ++k) {
      orig_counts_[k] = CategoryCounts(bound_->original(), attrs[k]);
      clusters_by_code_[k].resize(static_cast<size_t>(Cardinality(k)));
    }
    for (int64_t c = 0; c < clusters.num_clusters(); ++c) {
      const int32_t* codes = clusters.codes(c);
      for (size_t k = 0; k < attrs.size(); ++k) {
        clusters_by_code_[k][static_cast<size_t>(codes[k])].push_back(
            static_cast<int32_t>(c));
      }
    }
    InitFrom(masked);
    undo_.counts = core_.counts;
    undo_.midranks = core_.midranks;
    undo_.cand = core_.cand;
    undo_.cluster_best = core_.cluster_best;
    undo_.score = core_.score;
    undo_.self_ok = self_ok_;
  }

  void ApplySegment(const Dataset& masked_after,
                    const SegmentDelta& segment) override {
    undo_.counts = core_.counts;
    undo_.midranks = core_.midranks;
    undo_.cand = core_.cand;
    undo_.cluster_best = core_.cluster_best;
    undo_.score = core_.score;
    undo_.self_ok = self_ok_;
    undo_.moves.clear();
    undo_.d_self.clear();
    undo_.rebuilt = false;
    if (segment.num_cells() >= full_rebuild_threshold()) {
      RebuildWithUndo(masked_after);
      return;
    }
    const auto& row_deltas = segment.rows();
    if (row_deltas.empty()) return;

    const auto& attrs = bound_->attrs();
    size_t num_attrs = attrs.size();
    int64_t n = bound_->original().num_rows();

    // 1. Fold the deltas into the masked marginals. The group moves happen
    //    below, after the pair-coverage guard has committed to the
    //    incremental path (so a guard rebuild backs up untouched groups).
    std::vector<uint8_t> attr_changed(num_attrs, 0);
    for (const RowDelta& rd : row_deltas) {
      for (const auto& cell : rd.cells) {
        int pos = attr_pos_[static_cast<size_t>(cell.attr)];
        if (pos < 0 || cell.old_code == cell.new_code) continue;
        auto k = static_cast<size_t>(pos);
        core_.counts[k][static_cast<size_t>(cell.old_code)] -= 1;
        core_.counts[k][static_cast<size_t>(cell.new_code)] += 1;
        attr_changed[k] = 1;
      }
    }

    // 2. Re-derive mid-ranks and candidate matrices for the touched
    //    attributes, recording flips. The pair estimate reads the marginals
    //    directly (the same numbers the row state keeps as list sizes), so
    //    both planes make the identical rebuild decision.
    std::vector<std::vector<uint8_t>> flipped(num_attrs);
    std::vector<std::vector<std::pair<int32_t, int32_t>>> flips(num_attrs);
    int64_t affected_pairs = 0;
    for (size_t k = 0; k < num_attrs; ++k) {
      if (!attr_changed[k]) continue;
      core_.midranks[k] = MidranksFromCounts(core_.counts[k]);
      auto card = static_cast<size_t>(Cardinality(k));
      flipped[k].assign(card * card, 0);
      const auto& orig_ranks = bound_->original_midranks(k);
      double window = bound_->window();
      for (size_t o = 0; o < card; ++o) {
        for (size_t m = 0; m < card; ++m) {
          uint8_t now =
              std::fabs(orig_ranks[o] - core_.midranks[k][m]) <= window;
          if (now != core_.cand[k][o * card + m]) {
            flipped[k][o * card + m] = 1;
            flips[k].emplace_back(static_cast<int32_t>(o),
                                  static_cast<int32_t>(m));
            affected_pairs += orig_counts_[k][o] *
                              core_.counts[k][static_cast<size_t>(m)];
            core_.cand[k][o * card + m] = now;
          }
        }
      }
    }
    int64_t touched_estimate =
        affected_pairs + n * static_cast<int64_t>(row_deltas.size());
    if (touched_estimate > n * n / 8) {
      RebuildWithUndo(masked_after);
      return;
    }

    // 3. Move changed rows between pattern groups, refresh self distances.
    const PatternIndex& clusters = bound_->clusters();
    const DistanceTables& tables = bound_->tables();
    size_t num_rds = row_deltas.size();
    rd_codes_.assign(2 * num_rds * num_attrs, 0);
    for (size_t r = 0; r < num_rds; ++r) {
      const RowDelta& rd = row_deltas[r];
      int32_t* old_codes = rd_codes_.data() + 2 * r * num_attrs;
      int32_t* new_codes = old_codes + num_attrs;
      for (size_t k = 0; k < num_attrs; ++k) {
        old_codes[k] = rd.OldCode(masked_after, attrs[k]);
        new_codes[k] = masked_after.Code(rd.row, attrs[k]);
      }
      int64_t groups_before = groups_.num_groups();
      groups_.ApplyRow(rd.row, new_codes, &undo_.moves);
      AppendNewGroups(groups_before);
      undo_.d_self.push_back(
          DselfUndo{rd.row, d_self_[static_cast<size_t>(rd.row)]});
      d_self_[static_cast<size_t>(rd.row)] = tables.RecordDistanceCodes(
          clusters.codes(clusters.cluster_of(rd.row)), new_codes);
    }

    // 4. Changed rows, folded per cluster: remove the old tuple under the
    //    old candidate matrices, add the new tuple under the new ones.
    int64_t num_clusters = clusters.num_clusters();
    rescan_.assign(static_cast<size_t>(num_clusters), 0);
    ParallelFor(0, num_clusters, [&](int64_t c) {
      LinkageRowBest& row = core_.cluster_best[static_cast<size_t>(c)];
      uint8_t* needs_rescan = &rescan_[static_cast<size_t>(c)];
      const int32_t* ccodes = clusters.codes(c);
      for (size_t r = 0; r < num_rds; ++r) {
        if (*needs_rescan) break;
        const int32_t* old_codes = rd_codes_.data() + 2 * r * num_attrs;
        const int32_t* new_codes = old_codes + num_attrs;
        bool cand_old = AllCandCodes(undo_.cand, ccodes, old_codes);
        bool cand_new = AllCandCodes(core_.cand, ccodes, new_codes);
        double sum_old = 0.0, sum_new = 0.0;
        for (size_t k = 0; k < num_attrs; ++k) {
          sum_old += tables.At(k, ccodes[k], old_codes[k]);
          sum_new += tables.At(k, ccodes[k], new_codes[k]);
        }
        double denom = static_cast<double>(num_attrs);
        if (cand_old) {
          LinkageRemove(&row, sum_old / denom, false, needs_rescan);
        }
        if (!*needs_rescan && cand_new) {
          LinkageAdd(&row, sum_new / denom, false);
        }
      }
    });

    // 5. Flip blocks: (cluster, group) pairs whose candidacy toggled through
    //    a mid-rank shift alone. Each group's multiplicity excludes the
    //    changed rows already folded above; a pair covered by several
    //    flipped attributes is handled once, at its first one.
    changed_in_group_.assign(static_cast<size_t>(groups_.num_groups()), 0);
    for (const RowDelta& rd : row_deltas) {
      ++changed_in_group_[static_cast<size_t>(groups_.group_of(rd.row))];
    }
    for (size_t k = 0; k < num_attrs; ++k) {
      for (const auto& [o, m] : flips[k]) {
        for (int32_t g : groups_by_code_[k][static_cast<size_t>(m)]) {
          int64_t eff = groups_.group_size(g) -
                        changed_in_group_[static_cast<size_t>(g)];
          if (eff <= 0) continue;
          const int32_t* gcodes = groups_.codes(g);
          for (int32_t c : clusters_by_code_[k][static_cast<size_t>(o)]) {
            if (rescan_[static_cast<size_t>(c)]) continue;
            const int32_t* ccodes = clusters.codes(c);
            if (!FirstFlippedAttr(flipped, ccodes, gcodes, k)) continue;
            bool cand_old = AllCandCodes(undo_.cand, ccodes, gcodes);
            bool cand_new = AllCandCodes(core_.cand, ccodes, gcodes);
            if (cand_old == cand_new) continue;
            double d = tables.RecordDistanceCodes(ccodes, gcodes);
            LinkageRowBest& row = core_.cluster_best[static_cast<size_t>(c)];
            if (cand_old) {
              LinkageRemoveN(&row, d, eff, &rescan_[static_cast<size_t>(c)]);
            } else {
              LinkageAddN(&row, d, eff);
            }
          }
        }
      }
    }

    // 6. Rescan clusters whose support emptied, against the new world.
    ParallelFor(0, num_clusters, [&](int64_t c) {
      if (rescan_[static_cast<size_t>(c)]) {
        core_.cluster_best[static_cast<size_t>(c)] = ScanCluster(c);
      }
    });

    // 7. Refresh the per-row self-candidacy cache that RefreshScore reads:
    //    a candidate-window flip can toggle any row, while without flips
    //    only the moved rows can change.
    bool any_flips = false;
    for (size_t k = 0; k < num_attrs; ++k) {
      if (!flips[k].empty()) any_flips = true;
    }
    if (any_flips) {
      ParallelFor(0, n, [&](int64_t i) {
        self_ok_[static_cast<size_t>(i)] =
            AllCandCodes(core_.cand, clusters.codes(clusters.cluster_of(i)),
                         groups_.codes(groups_.group_of(i)));
      });
    } else {
      for (const RowDelta& rd : row_deltas) {
        self_ok_[static_cast<size_t>(rd.row)] = AllCandCodes(
            core_.cand, clusters.codes(clusters.cluster_of(rd.row)),
            groups_.codes(groups_.group_of(rd.row)));
      }
    }
    RefreshScore();
  }

  void RevertSegment() override {
    if (undo_.rebuilt) {
      groups_ = undo_.groups;
      d_self_ = undo_.d_self_full;
      RebuildGroupsByCode();
    } else {
      groups_.UndoMoves(undo_.moves);
      for (auto it = undo_.d_self.rbegin(); it != undo_.d_self.rend(); ++it) {
        d_self_[static_cast<size_t>(it->row)] = it->old_value;
      }
      // Groups created during the apply stay at size 0 (ids are never
      // reused), so the by-code lists remain valid as-is.
    }
    core_.counts = undo_.counts;
    core_.midranks = undo_.midranks;
    core_.cand = undo_.cand;
    core_.cluster_best = undo_.cluster_best;
    core_.score = undo_.score;
    self_ok_ = undo_.self_ok;
    undo_.moves.clear();
    undo_.d_self.clear();
    undo_.rebuilt = false;
  }

  double Score() const override { return core_.score; }

 private:
  struct Core {
    std::vector<std::vector<int64_t>> counts;    ///< masked marginals per attr
    std::vector<std::vector<double>> midranks;   ///< masked mid-ranks per attr
    std::vector<std::vector<uint8_t>> cand;      ///< [k][o*card+m] in-window
    std::vector<LinkageRowBest> cluster_best;    ///< per original cluster
    double score = 0.0;
  };

  struct DselfUndo {
    int64_t row;
    double old_value;
  };

  struct Undo {
    std::vector<std::vector<int64_t>> counts;
    std::vector<std::vector<double>> midranks;
    std::vector<std::vector<uint8_t>> cand;
    std::vector<LinkageRowBest> cluster_best;
    double score = 0.0;
    std::vector<MaskedGroups::Move> moves;
    std::vector<DselfUndo> d_self;
    std::vector<uint8_t> self_ok;  ///< full snapshot (one byte per row)
    bool rebuilt = false;
    MaskedGroups groups;              ///< full backup (rebuild only)
    std::vector<double> d_self_full;  ///< full backup (rebuild only)
  };

  int Cardinality(size_t k) const {
    return bound_->original().schema().attribute(bound_->attrs()[k]).cardinality();
  }

  /// Full-recompute fallback that stays revertible.
  void RebuildWithUndo(const Dataset& masked_after) {
    undo_.rebuilt = true;
    undo_.groups = groups_;
    undo_.d_self_full = d_self_;
    InitFrom(masked_after);
  }

  void InitFrom(const Dataset& masked) {
    const auto& attrs = bound_->attrs();
    int64_t n = bound_->original().num_rows();
    core_.counts.resize(attrs.size());
    core_.midranks.resize(attrs.size());
    core_.cand.resize(attrs.size());
    for (size_t k = 0; k < attrs.size(); ++k) {
      core_.counts[k] = CategoryCounts(masked, attrs[k]);
      core_.midranks[k] = MidranksFromCounts(core_.counts[k]);
      auto card = static_cast<size_t>(Cardinality(k));
      core_.cand[k].assign(card * card, 0);
      const auto& orig_ranks = bound_->original_midranks(k);
      for (size_t o = 0; o < card; ++o) {
        for (size_t m = 0; m < card; ++m) {
          core_.cand[k][o * card + m] =
              std::fabs(orig_ranks[o] - core_.midranks[k][m]) <=
              bound_->window();
        }
      }
    }
    groups_ = MaskedGroups::Build(masked, attrs, shards_);
    RebuildGroupsByCode();
    const PatternIndex& clusters = bound_->clusters();
    int64_t num_clusters = clusters.num_clusters();
    core_.cluster_best.assign(static_cast<size_t>(num_clusters),
                              LinkageRowBest{});
    ParallelFor(0, num_clusters, [&](int64_t c) {
      core_.cluster_best[static_cast<size_t>(c)] = ScanCluster(c);
    });
    d_self_.assign(static_cast<size_t>(n), 0.0);
    self_ok_.assign(static_cast<size_t>(n), 0);
    ParallelFor(0, n, [&](int64_t i) {
      d_self_[static_cast<size_t>(i)] = bound_->tables().RecordDistanceCodes(
          clusters.codes(clusters.cluster_of(i)),
          groups_.codes(groups_.group_of(i)));
      self_ok_[static_cast<size_t>(i)] =
          AllCandCodes(core_.cand, clusters.codes(clusters.cluster_of(i)),
                       groups_.codes(groups_.group_of(i)));
    });
    RefreshScore();
  }

  /// Fresh candidate-filtered fold of one original cluster against every
  /// masked pattern group, in group id order (cluster-granular ScanRow).
  LinkageRowBest ScanCluster(int64_t c) const {
    const int32_t* ccodes = bound_->clusters().codes(c);
    LinkageRowBest best;
    int64_t num_groups = groups_.num_groups();
    for (int64_t g = 0; g < num_groups; ++g) {
      int64_t size = groups_.group_size(g);
      if (size <= 0) continue;
      const int32_t* gcodes = groups_.codes(g);
      if (!AllCandCodes(core_.cand, ccodes, gcodes)) continue;
      LinkageAddN(&best, bound_->tables().RecordDistanceCodes(ccodes, gcodes),
                  size);
    }
    return best;
  }

  /// Serial per-row credit in row order — float-for-float the same sum as
  /// `LinkageCreditScore` over the equivalent per-row records. The self link
  /// additionally requires the row's own pair to sit inside the candidate
  /// windows (the cached self_ok_ bit), exactly like the row state's
  /// clustered init fanout.
  void RefreshScore() {
    const PatternIndex& clusters = bound_->clusters();
    int64_t n = bound_->original().num_rows();
    double credit = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      auto c = static_cast<size_t>(clusters.cluster_of(i));
      const LinkageRowBest& row = core_.cluster_best[c];
      if (row.count <= 0) continue;
      if (!self_ok_[static_cast<size_t>(i)]) continue;
      if (d_self_[static_cast<size_t>(i)] <= row.best + kLinkageEps) {
        credit += 1.0 / static_cast<double>(row.count);
      }
    }
    core_.score = n == 0 ? 0.0 : 100.0 * credit / static_cast<double>(n);
  }

  bool AllCandCodes(const std::vector<std::vector<uint8_t>>& cand,
                    const int32_t* o_codes, const int32_t* m_codes) const {
    for (size_t k = 0; k < cand.size(); ++k) {
      auto card = static_cast<size_t>(Cardinality(k));
      if (!cand[k][static_cast<size_t>(o_codes[k]) * card +
                   static_cast<size_t>(m_codes[k])]) {
        return false;
      }
    }
    return true;
  }

  /// True when `k` is the first attribute whose flip block covers the
  /// (cluster, group) code pair.
  bool FirstFlippedAttr(const std::vector<std::vector<uint8_t>>& flipped,
                        const int32_t* o_codes, const int32_t* m_codes,
                        size_t k) const {
    for (size_t k2 = 0; k2 < k; ++k2) {
      if (flipped[k2].empty()) continue;
      auto card = static_cast<size_t>(Cardinality(k2));
      if (flipped[k2][static_cast<size_t>(o_codes[k2]) * card +
                      static_cast<size_t>(m_codes[k2])]) {
        return false;
      }
    }
    return true;
  }

  /// Indexes groups created since `from` into the by-code lists (append-only,
  /// mirroring the never-deleted group ids).
  void AppendNewGroups(int64_t from) {
    for (int64_t g = from; g < groups_.num_groups(); ++g) {
      const int32_t* gcodes = groups_.codes(g);
      for (size_t k = 0; k < groups_.num_attrs(); ++k) {
        groups_by_code_[k][static_cast<size_t>(gcodes[k])].push_back(
            static_cast<int32_t>(g));
      }
    }
  }

  void RebuildGroupsByCode() {
    const auto& attrs = bound_->attrs();
    groups_by_code_.assign(attrs.size(), {});
    for (size_t k = 0; k < attrs.size(); ++k) {
      groups_by_code_[k].resize(static_cast<size_t>(Cardinality(k)));
    }
    AppendNewGroups(0);
  }

  const BoundRsrl* bound_;
  std::vector<int> attr_pos_;
  int shards_;
  std::vector<std::vector<int64_t>> orig_counts_;  ///< original marginals
  /// Static: clusters holding original code o at attribute k.
  std::vector<std::vector<std::vector<int32_t>>> clusters_by_code_;
  /// Dynamic, append-only: groups holding masked code m at attribute k.
  std::vector<std::vector<std::vector<int32_t>>> groups_by_code_;
  MaskedGroups groups_;
  std::vector<double> d_self_;  ///< d(cluster(i), group(i))
  /// Cached AllCandCodes(cand, cluster(i), group(i)) per row — the credit
  /// loop's hot read, kept current across applies instead of re-derived.
  std::vector<uint8_t> self_ok_;
  Core core_;
  Undo undo_;
  // Per-apply scratch, reused across generations.
  std::vector<uint8_t> rescan_;
  std::vector<int64_t> changed_in_group_;
  std::vector<int32_t> rd_codes_;
};

std::unique_ptr<MeasureState> BoundRsrl::BindState(const Dataset& masked) const {
  if (GetDataPlane().sharded) {
    return std::make_unique<ClusteredRsrlState>(this, masked);
  }
  return std::make_unique<RsrlState>(this, masked);
}

}  // namespace

Result<std::unique_ptr<BoundMeasure>> RankSwappingRecordLinkage::Bind(
    const Dataset& original, const std::vector<int>& attrs) const {
  if (assumed_p_percent_ <= 0.0 || assumed_p_percent_ > 100.0) {
    return Status::Invalid("RSRL assumed p must be in (0, 100], got ",
                           assumed_p_percent_);
  }
  return std::unique_ptr<BoundMeasure>(
      new BoundRsrl(original, attrs, assumed_p_percent_));
}

void RegisterRsrlMeasure(MeasureRegistry* registry) {
  registry->Register(
      "RSRL", [](const ParamMap& params) -> Result<std::unique_ptr<Measure>> {
        ParamReader reader("RSRL", params);
        double assumed_p_percent = reader.GetDouble("assumed_p_percent", 15.0);
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        return std::unique_ptr<Measure>(
            new RankSwappingRecordLinkage(assumed_p_percent));
      });
}

}  // namespace metrics
}  // namespace evocat
