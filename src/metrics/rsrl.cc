#include "metrics/rsrl.h"

#include <cmath>

#include "common/parallel.h"
#include "data/stats.h"
#include "metrics/distance.h"

namespace evocat {
namespace metrics {

namespace {

class BoundRsrl : public BoundMeasure {
 public:
  BoundRsrl(const Dataset& original, const std::vector<int>& attrs,
            double assumed_p_percent)
      : original_(&original), attrs_(attrs), tables_(original, attrs) {
    window_ = assumed_p_percent / 100.0 *
              static_cast<double>(original.num_rows());
    for (int attr : attrs_) {
      original_midranks_.push_back(CategoryMidranks(original, attr));
    }
  }

  double Compute(const Dataset& masked) const override {
    int64_t n = original_->num_rows();
    size_t num_attrs = attrs_.size();

    // Masked-side mid-ranks (depend on the masked marginals).
    std::vector<std::vector<double>> masked_midranks;
    masked_midranks.reserve(num_attrs);
    for (int attr : attrs_) {
      masked_midranks.push_back(CategoryMidranks(masked, attr));
    }

    constexpr double kEps = 1e-12;
    std::vector<double> credits(static_cast<size_t>(n), 0.0);
    ParallelFor(0, n, [&](int64_t i) {
      double best = 1e100;
      int64_t best_count = 0;
      bool self_is_best = false;
      for (int64_t j = 0; j < n; ++j) {
        // Candidate filter: every attribute's masked rank must lie within
        // the assumed displacement window of the original rank.
        bool candidate = true;
        for (size_t k = 0; k < num_attrs; ++k) {
          double rank_orig =
              original_midranks_[k][static_cast<size_t>(original_->Code(i, attrs_[k]))];
          double rank_mask =
              masked_midranks[k][static_cast<size_t>(masked.Code(j, attrs_[k]))];
          if (std::fabs(rank_orig - rank_mask) > window_) {
            candidate = false;
            break;
          }
        }
        if (!candidate) continue;
        double d = tables_.RecordDistance(*original_, i, masked, j);
        if (d < best - kEps) {
          best = d;
          best_count = 1;
          self_is_best = (j == i);
        } else if (d <= best + kEps) {
          ++best_count;
          if (j == i) self_is_best = true;
        }
      }
      if (self_is_best && best_count > 0) {
        credits[static_cast<size_t>(i)] = 1.0 / static_cast<double>(best_count);
      }
    });
    double credit = 0.0;
    for (double c : credits) credit += c;
    return n > 0 ? 100.0 * credit / static_cast<double>(n) : 0.0;
  }

 private:
  const Dataset* original_;
  std::vector<int> attrs_;
  DistanceTables tables_;
  std::vector<std::vector<double>> original_midranks_;
  double window_ = 0.0;
};

}  // namespace

Result<std::unique_ptr<BoundMeasure>> RankSwappingRecordLinkage::Bind(
    const Dataset& original, const std::vector<int>& attrs) const {
  if (assumed_p_percent_ <= 0.0 || assumed_p_percent_ > 100.0) {
    return Status::Invalid("RSRL assumed p must be in (0, 100], got ",
                           assumed_p_percent_);
  }
  return std::unique_ptr<BoundMeasure>(
      new BoundRsrl(original, attrs, assumed_p_percent_));
}

}  // namespace metrics
}  // namespace evocat
