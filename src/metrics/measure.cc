#include "metrics/measure.h"

#include <unordered_map>

namespace evocat {
namespace metrics {

SegmentDelta SegmentDelta::FromCells(const std::vector<CellDelta>& cells) {
  SegmentDelta segment;
  segment.cells_ = cells;
  // Operator batches arrive row-sorted (flat gene order), so the common case
  // is an append to the last group; the map covers arbitrary batches.
  std::unordered_map<int64_t, size_t> index;
  for (const CellDelta& delta : cells) {
    size_t slot;
    if (!segment.rows_.empty() && segment.rows_.back().row == delta.row) {
      slot = segment.rows_.size() - 1;
    } else {
      auto it = index.find(delta.row);
      if (it == index.end()) {
        slot = segment.rows_.size();
        index.emplace(delta.row, slot);
        segment.rows_.push_back(RowDelta{delta.row, {}});
      } else {
        slot = it->second;
      }
    }
    segment.rows_[slot].cells.push_back(
        RowDelta::Cell{delta.attr, delta.old_code, delta.new_code});
  }
  return segment;
}

void SegmentDelta::Append(int64_t row, int attr, int32_t old_code,
                          int32_t new_code) {
  cells_.push_back(CellDelta{row, attr, old_code, new_code});
  if (rows_.empty() || rows_.back().row != row) {
    rows_.push_back(RowDelta{row, {}});
  }
  rows_.back().cells.push_back(RowDelta::Cell{attr, old_code, new_code});
}

namespace {

/// Correct-by-construction fallback: every ApplySegment is a full Compute of
/// the post-image. Used for measures without a true delta implementation.
class FullRecomputeState : public MeasureState {
 public:
  FullRecomputeState(const BoundMeasure* bound, double initial_score)
      : bound_(bound), score_(initial_score), prev_score_(initial_score) {}

  void ApplySegment(const Dataset& masked_after,
                    const SegmentDelta& segment) override {
    prev_score_ = score_;
    if (!segment.empty()) score_ = bound_->Compute(masked_after);
  }

  void RevertSegment() override { score_ = prev_score_; }

  double Score() const override { return score_; }

 private:
  const BoundMeasure* bound_;
  double score_;
  double prev_score_;
};

}  // namespace

std::unique_ptr<MeasureState> BoundMeasure::BindState(
    const Dataset& masked) const {
  return std::make_unique<FullRecomputeState>(this, Compute(masked));
}

Status ValidateComparable(const Dataset& original, const Dataset& masked,
                          const std::vector<int>& attrs) {
  if (original.num_rows() == 0) {
    return Status::Invalid("original dataset is empty");
  }
  if (original.num_rows() != masked.num_rows()) {
    return Status::Invalid("row count mismatch: original ", original.num_rows(),
                           " vs masked ", masked.num_rows());
  }
  if (original.schema_ptr() != masked.schema_ptr()) {
    return Status::Invalid(
        "masked file must share the original's schema (dictionaries must be "
        "identical for codes to be comparable)");
  }
  if (attrs.empty()) {
    return Status::Invalid("no attributes given");
  }
  for (int a : attrs) {
    if (a < 0 || a >= original.num_attributes()) {
      return Status::OutOfRange("attribute index ", a, " out of range");
    }
  }
  return Status::OK();
}

Result<double> Measure::Compute(const Dataset& original, const Dataset& masked,
                                const std::vector<int>& attrs) const {
  EVOCAT_RETURN_NOT_OK(ValidateComparable(original, masked, attrs));
  EVOCAT_ASSIGN_OR_RETURN(auto bound, Bind(original, attrs));
  return bound->Compute(masked);
}

}  // namespace metrics
}  // namespace evocat
