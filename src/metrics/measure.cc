#include "metrics/measure.h"

namespace evocat {
namespace metrics {

namespace {

/// Correct-by-construction fallback: every ApplyDelta is a full Compute of
/// the post-image. Used for measures without a true delta implementation and
/// for configurations where the incremental structures would be too large
/// (e.g. PRL with a very wide pattern space).
class FullRecomputeState : public MeasureState {
 public:
  FullRecomputeState(const BoundMeasure* bound, double initial_score)
      : bound_(bound), score_(initial_score), prev_score_(initial_score) {}

  void ApplyDelta(const Dataset& masked_after,
                  const std::vector<CellDelta>& deltas) override {
    prev_score_ = score_;
    if (!deltas.empty()) score_ = bound_->Compute(masked_after);
  }

  void Revert() override { score_ = prev_score_; }

  double Score() const override { return score_; }

 private:
  const BoundMeasure* bound_;
  double score_;
  double prev_score_;
};

}  // namespace

std::unique_ptr<MeasureState> BoundMeasure::BindState(
    const Dataset& masked) const {
  return std::make_unique<FullRecomputeState>(this, Compute(masked));
}

Status ValidateComparable(const Dataset& original, const Dataset& masked,
                          const std::vector<int>& attrs) {
  if (original.num_rows() == 0) {
    return Status::Invalid("original dataset is empty");
  }
  if (original.num_rows() != masked.num_rows()) {
    return Status::Invalid("row count mismatch: original ", original.num_rows(),
                           " vs masked ", masked.num_rows());
  }
  if (original.schema_ptr() != masked.schema_ptr()) {
    return Status::Invalid(
        "masked file must share the original's schema (dictionaries must be "
        "identical for codes to be comparable)");
  }
  if (attrs.empty()) {
    return Status::Invalid("no attributes given");
  }
  for (int a : attrs) {
    if (a < 0 || a >= original.num_attributes()) {
      return Status::OutOfRange("attribute index ", a, " out of range");
    }
  }
  return Status::OK();
}

Result<double> Measure::Compute(const Dataset& original, const Dataset& masked,
                                const std::vector<int>& attrs) const {
  EVOCAT_RETURN_NOT_OK(ValidateComparable(original, masked, attrs));
  EVOCAT_ASSIGN_OR_RETURN(auto bound, Bind(original, attrs));
  return bound->Compute(masked);
}

}  // namespace metrics
}  // namespace evocat
