#include "metrics/measure.h"

namespace evocat {
namespace metrics {

Status ValidateComparable(const Dataset& original, const Dataset& masked,
                          const std::vector<int>& attrs) {
  if (original.num_rows() == 0) {
    return Status::Invalid("original dataset is empty");
  }
  if (original.num_rows() != masked.num_rows()) {
    return Status::Invalid("row count mismatch: original ", original.num_rows(),
                           " vs masked ", masked.num_rows());
  }
  if (original.schema_ptr() != masked.schema_ptr()) {
    return Status::Invalid(
        "masked file must share the original's schema (dictionaries must be "
        "identical for codes to be comparable)");
  }
  if (attrs.empty()) {
    return Status::Invalid("no attributes given");
  }
  for (int a : attrs) {
    if (a < 0 || a >= original.num_attributes()) {
      return Status::OutOfRange("attribute index ", a, " out of range");
    }
  }
  return Status::OK();
}

Result<double> Measure::Compute(const Dataset& original, const Dataset& masked,
                                const std::vector<int>& attrs) const {
  EVOCAT_RETURN_NOT_OK(ValidateComparable(original, masked, attrs));
  EVOCAT_ASSIGN_OR_RETURN(auto bound, Bind(original, attrs));
  return bound->Compute(masked);
}

}  // namespace metrics
}  // namespace evocat
