#include "metrics/measure.h"

#include <unordered_map>

namespace evocat {
namespace metrics {

SegmentDelta SegmentDelta::FromCells(const std::vector<CellDelta>& cells) {
  SegmentDelta segment;
  // Operator batches arrive row-sorted (flat gene order), so the common case
  // is an append to the last group; the map covers arbitrary batches. First
  // pass establishes group order and sizes, second scatters the cells so each
  // group is contiguous in the flat array.
  std::unordered_map<int64_t, size_t> index;
  for (const CellDelta& delta : cells) {
    if (!segment.groups_.empty() && segment.groups_.back().row == delta.row) {
      ++segment.groups_.back().count;
      continue;
    }
    auto it = index.find(delta.row);
    if (it == index.end()) {
      index.emplace(delta.row, segment.groups_.size());
      segment.groups_.push_back(Group{delta.row, 0, 1});
    } else {
      ++segment.groups_[it->second].count;
    }
  }
  int64_t offset = 0;
  std::vector<int64_t> cursor(segment.groups_.size(), 0);
  for (size_t s = 0; s < segment.groups_.size(); ++s) {
    segment.groups_[s].begin = offset;
    cursor[s] = offset;
    offset += segment.groups_[s].count;
  }
  segment.cells_.resize(cells.size());
  for (const CellDelta& delta : cells) {
    size_t slot = index[delta.row];
    segment.cells_[static_cast<size_t>(cursor[slot]++)] = delta;
  }
  segment.rows_dirty_ = true;
  return segment;
}

void SegmentDelta::Append(int64_t row, int attr, int32_t old_code,
                          int32_t new_code) {
  cells_.push_back(CellDelta{row, attr, old_code, new_code});
  if (groups_.empty() || groups_.back().row != row) {
    groups_.push_back(Group{row, static_cast<int64_t>(cells_.size()) - 1, 1});
  } else {
    ++groups_.back().count;
  }
  rows_dirty_ = true;
}

const std::vector<RowDelta>& SegmentDelta::rows() const {
  if (rows_dirty_) {
    rows_.clear();
    rows_.reserve(groups_.size());
    const CellDelta* base = cells_.data();
    for (const Group& group : groups_) {
      rows_.push_back(RowDelta{
          group.row,
          CellSpan{base + group.begin, static_cast<size_t>(group.count)}});
    }
    rows_dirty_ = false;
  }
  return rows_;
}

namespace {

/// Correct-by-construction fallback: every ApplySegment is a full Compute of
/// the post-image. Used for measures without a true delta implementation.
class FullRecomputeState : public MeasureState {
 public:
  FullRecomputeState(const BoundMeasure* bound, double initial_score)
      : bound_(bound), score_(initial_score), prev_score_(initial_score) {}

  void ApplySegment(const Dataset& masked_after,
                    const SegmentDelta& segment) override {
    prev_score_ = score_;
    if (!segment.empty()) score_ = bound_->Compute(masked_after);
  }

  void RevertSegment() override { score_ = prev_score_; }

  double Score() const override { return score_; }

 private:
  const BoundMeasure* bound_;
  double score_;
  double prev_score_;
};

}  // namespace

std::unique_ptr<MeasureState> BoundMeasure::BindState(
    const Dataset& masked) const {
  return std::make_unique<FullRecomputeState>(this, Compute(masked));
}

Status ValidateComparable(const Dataset& original, const Dataset& masked,
                          const std::vector<int>& attrs) {
  if (original.num_rows() == 0) {
    return Status::Invalid("original dataset is empty");
  }
  if (original.num_rows() != masked.num_rows()) {
    return Status::Invalid("row count mismatch: original ", original.num_rows(),
                           " vs masked ", masked.num_rows());
  }
  if (original.schema_ptr() != masked.schema_ptr()) {
    return Status::Invalid(
        "masked file must share the original's schema (dictionaries must be "
        "identical for codes to be comparable)");
  }
  if (attrs.empty()) {
    return Status::Invalid("no attributes given");
  }
  for (int a : attrs) {
    if (a < 0 || a >= original.num_attributes()) {
      return Status::OutOfRange("attribute index ", a, " out of range");
    }
  }
  return Status::OK();
}

Result<double> Measure::Compute(const Dataset& original, const Dataset& masked,
                                const std::vector<int>& attrs) const {
  EVOCAT_RETURN_NOT_OK(ValidateComparable(original, masked, attrs));
  EVOCAT_ASSIGN_OR_RETURN(auto bound, Bind(original, attrs));
  return bound->Compute(masked);
}

}  // namespace metrics
}  // namespace evocat
