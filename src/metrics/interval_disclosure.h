/// \file interval_disclosure.h
/// \brief Interval Disclosure (Domingo-Ferrer & Torra 2001), rank variant.
///
/// For each value, an interval of ranks centered on the *masked* value is
/// checked: if the original value's rank falls within `window_percent` of the
/// file size around the masked value's rank, the attacker's interval estimate
/// is considered a disclosure. ID is the percentage of disclosed cells,
/// averaged over attributes. Categories are positioned by their tie-aware
/// mid-rank (see `CategoryMidranks`), so the measure is well-defined for
/// heavily tied categorical columns. Identity masking gives ID = 100.

#ifndef EVOCAT_METRICS_INTERVAL_DISCLOSURE_H_
#define EVOCAT_METRICS_INTERVAL_DISCLOSURE_H_

#include <memory>
#include <string>
#include <vector>

#include "metrics/measure.h"

namespace evocat {
namespace metrics {

/// \brief Rank-interval attribute disclosure with the given window width.
class IntervalDisclosure : public Measure {
 public:
  explicit IntervalDisclosure(double window_percent = 10.0)
      : window_percent_(window_percent) {}

  std::string Name() const override { return "ID"; }
  MeasureKind Kind() const override { return MeasureKind::kDisclosureRisk; }

  Result<std::unique_ptr<BoundMeasure>> Bind(
      const Dataset& original, const std::vector<int>& attrs) const override;

  double window_percent() const { return window_percent_; }

 private:
  double window_percent_;
};

}  // namespace metrics
}  // namespace evocat

#endif  // EVOCAT_METRICS_INTERVAL_DISCLOSURE_H_
