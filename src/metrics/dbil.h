/// \file dbil.h
/// \brief Distance-Based Information Loss (Torra & Domingo-Ferrer 2001).
///
/// The average normalized distance between each original value and its
/// masked counterpart, scaled to 0..100. Nominal attributes contribute 0/1
/// per cell; ordinal attributes contribute the normalized rank displacement.
/// DBIL = 0 iff the masked file is value-identical on the protected
/// attributes.

#ifndef EVOCAT_METRICS_DBIL_H_
#define EVOCAT_METRICS_DBIL_H_

#include <memory>
#include <string>
#include <vector>

#include "metrics/measure.h"

namespace evocat {
namespace metrics {

/// \brief Cell-wise distance information loss.
class DbIl : public Measure {
 public:
  std::string Name() const override { return "DBIL"; }
  MeasureKind Kind() const override { return MeasureKind::kInformationLoss; }

  Result<std::unique_ptr<BoundMeasure>> Bind(
      const Dataset& original, const std::vector<int>& attrs) const override;
};

}  // namespace metrics
}  // namespace evocat

#endif  // EVOCAT_METRICS_DBIL_H_
