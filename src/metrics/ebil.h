/// \file ebil.h
/// \brief Entropy-Based Information Loss (Kooiman, Willenborg & Gouweleeuw
/// 1998).
///
/// Treats the masking as an (empirical) PRAM process: from the paired
/// (original, masked) values the conditional distribution P(O | M = j) is
/// estimated per attribute, and the loss is the expected conditional entropy
/// Σ_j P(M=j) · H(O | M=j) — the number of bits of the original value that
/// the masked value no longer determines. Normalized per attribute by the
/// maximum entropy log2(cardinality) and scaled to 0..100. EBIL = 0 iff the
/// original value is a deterministic function of the masked value (identity
/// masking, but also any injective recoding).

#ifndef EVOCAT_METRICS_EBIL_H_
#define EVOCAT_METRICS_EBIL_H_

#include <memory>
#include <string>
#include <vector>

#include "metrics/measure.h"

namespace evocat {
namespace metrics {

/// \brief PRAM-matrix conditional-entropy information loss.
class EbIl : public Measure {
 public:
  std::string Name() const override { return "EBIL"; }
  MeasureKind Kind() const override { return MeasureKind::kInformationLoss; }

  Result<std::unique_ptr<BoundMeasure>> Bind(
      const Dataset& original, const std::vector<int>& attrs) const override;
};

}  // namespace metrics
}  // namespace evocat

#endif  // EVOCAT_METRICS_EBIL_H_
