#include "metrics/plane.h"

#include <algorithm>
#include <mutex>

#include "common/parallel.h"
#include "common/task_scheduler.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace evocat {
namespace metrics {

namespace {

std::mutex& PlaneMutex() {
  static std::mutex mutex;
  return mutex;
}

DataPlaneConfig& PlaneConfig() {
  static DataPlaneConfig config;
  return config;
}

obs::Histogram* ShardScanSecondsHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "evocat_plane_shard_scan_seconds",
          "Wall time of one ForEachShard fan-out (shard scan + merge fence).");
  return histogram;
}

obs::Counter* ClusterHitsCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "evocat_plane_cluster_hits_total",
      "Masked-group lookups that landed on an existing pattern cluster.");
  return counter;
}

obs::Counter* ClusterMissesCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "evocat_plane_cluster_misses_total",
      "Masked-group lookups that created a new pattern cluster.");
  return counter;
}

}  // namespace

DataPlaneConfig GetDataPlane() {
  std::lock_guard<std::mutex> lock(PlaneMutex());
  return PlaneConfig();
}

void SetDataPlane(const DataPlaneConfig& config) {
  std::lock_guard<std::mutex> lock(PlaneMutex());
  PlaneConfig() = config;
}

int ResolveShardCount(const DataPlaneConfig& config) {
  if (config.shards > 0) return config.shards;
  int workers = TaskScheduler::Shared().num_workers();
  return workers < 1 ? 1 : workers;
}

RowRange ShardRows(int64_t rows, int shard, int shards) {
  RowRange range;
  range.begin = rows * static_cast<int64_t>(shard) / shards;
  range.end = rows * (static_cast<int64_t>(shard) + 1) / shards;
  return range;
}

void ForEachShard(int64_t rows, int shards,
                  const std::function<void(int, RowRange)>& fn) {
  if (shards < 1) shards = 1;
  const bool timed = obs::MetricsEnabled();
  Timer timer;
  ParallelFor(0, shards, [&](int64_t shard) {
    RowRange range = ShardRows(rows, static_cast<int>(shard), shards);
    // A shard with no rows contributes identity to the merge: it is skipped
    // outright instead of producing a degenerate (NaN-prone) partial.
    if (range.empty()) return;
    fn(static_cast<int>(shard), range);
  });
  if (timed) ShardScanSecondsHistogram()->Observe(timer.ElapsedSeconds());
}

uint64_t HashCodes(const int32_t* codes, size_t n) {
  uint64_t h = 0x9E3779B97F4A7C15ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(codes[i])) +
         0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
  }
  return h;
}

namespace {

/// One shard's insertion-ordered pattern table: tuple -> dense local id.
struct LocalPatterns {
  std::unordered_map<uint64_t, std::vector<int32_t>> buckets;
  std::vector<int32_t> codes;  ///< flat local C x A
  std::vector<int64_t> sizes;

  int32_t FindOrCreate(const int32_t* tuple, size_t num_attrs) {
    auto& bucket = buckets[HashCodes(tuple, num_attrs)];
    for (int32_t cand : bucket) {
      if (std::equal(tuple, tuple + num_attrs,
                     codes.begin() +
                         static_cast<size_t>(cand) * num_attrs)) {
        return cand;
      }
    }
    auto id = static_cast<int32_t>(sizes.size());
    codes.insert(codes.end(), tuple, tuple + num_attrs);
    sizes.push_back(0);
    bucket.push_back(id);
    return id;
  }
};

/// Shard-and-merge pattern build shared by PatternIndex and MaskedGroups.
///
/// Per-shard tables record first-occurrence order within their contiguous
/// range; merging them serially in shard index order therefore reproduces
/// the global serial-scan first-occurrence order for any shard count.
/// `row_id` receives temporary local ids during the scan and final global
/// ids after the remap.
void BuildPatterns(const Dataset& dataset, const std::vector<int>& attrs,
                   int shards, std::vector<int32_t>* row_id,
                   std::vector<int64_t>* sizes, std::vector<int32_t>* codes,
                   std::unordered_map<uint64_t, std::vector<int32_t>>* buckets) {
  const int64_t rows = dataset.num_rows();
  const size_t num_attrs = attrs.size();
  row_id->assign(static_cast<size_t>(rows), 0);
  if (rows == 0 || num_attrs == 0) return;
  if (shards < 1) shards = 1;

  std::vector<const Dataset::Column*> columns;
  columns.reserve(num_attrs);
  for (int attr : attrs) columns.push_back(&dataset.column(attr));

  std::vector<LocalPatterns> locals(static_cast<size_t>(shards));
  ForEachShard(rows, shards, [&](int shard, RowRange range) {
    LocalPatterns& local = locals[static_cast<size_t>(shard)];
    std::vector<int32_t> tuple(num_attrs);
    for (int64_t r = range.begin; r < range.end; ++r) {
      for (size_t i = 0; i < num_attrs; ++i) {
        tuple[i] = (*columns[i])[static_cast<size_t>(r)];
      }
      int32_t id = local.FindOrCreate(tuple.data(), num_attrs);
      ++local.sizes[static_cast<size_t>(id)];
      (*row_id)[static_cast<size_t>(r)] = id;
    }
  });

  // Serial merge in shard index order: global ids = first-occurrence order.
  std::unordered_map<uint64_t, std::vector<int32_t>> global_buckets;
  std::vector<std::vector<int32_t>> remap(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    LocalPatterns& local = locals[static_cast<size_t>(s)];
    remap[static_cast<size_t>(s)].resize(local.sizes.size());
    for (size_t c = 0; c < local.sizes.size(); ++c) {
      const int32_t* tuple = local.codes.data() + c * num_attrs;
      auto& bucket = global_buckets[HashCodes(tuple, num_attrs)];
      int32_t id = -1;
      for (int32_t cand : bucket) {
        if (std::equal(tuple, tuple + num_attrs,
                       codes->begin() +
                           static_cast<size_t>(cand) * num_attrs)) {
          id = cand;
          break;
        }
      }
      if (id < 0) {
        id = static_cast<int32_t>(sizes->size());
        codes->insert(codes->end(), tuple, tuple + num_attrs);
        sizes->push_back(0);
        bucket.push_back(id);
      }
      (*sizes)[static_cast<size_t>(id)] += local.sizes[c];
      remap[static_cast<size_t>(s)][c] = id;
    }
  }

  ForEachShard(rows, shards, [&](int shard, RowRange range) {
    const std::vector<int32_t>& map = remap[static_cast<size_t>(shard)];
    for (int64_t r = range.begin; r < range.end; ++r) {
      auto& slot = (*row_id)[static_cast<size_t>(r)];
      slot = map[static_cast<size_t>(slot)];
    }
  });

  if (buckets != nullptr) *buckets = std::move(global_buckets);
}

}  // namespace

PatternIndex PatternIndex::Build(const Dataset& dataset,
                                 const std::vector<int>& attrs, int shards) {
  PatternIndex index;
  index.num_attrs_ = attrs.size();
  BuildPatterns(dataset, attrs, shards, &index.row_cluster_, &index.sizes_,
                &index.codes_, nullptr);
  return index;
}

MaskedGroups MaskedGroups::Build(const Dataset& masked,
                                 const std::vector<int>& attrs, int shards) {
  MaskedGroups groups;
  groups.num_attrs_ = attrs.size();
  BuildPatterns(masked, attrs, shards, &groups.row_group_, &groups.sizes_,
                &groups.codes_, &groups.buckets_);
  return groups;
}

int32_t MaskedGroups::FindOrCreate(const int32_t* codes) {
  auto& bucket = buckets_[HashCodes(codes, num_attrs_)];
  for (int32_t cand : bucket) {
    if (std::equal(codes, codes + num_attrs_,
                   codes_.begin() + static_cast<size_t>(cand) * num_attrs_)) {
      ClusterHitsCounter()->Increment();
      return cand;
    }
  }
  auto id = static_cast<int32_t>(sizes_.size());
  codes_.insert(codes_.end(), codes, codes + num_attrs_);
  sizes_.push_back(0);
  bucket.push_back(id);
  ClusterMissesCounter()->Increment();
  return id;
}

int32_t MaskedGroups::ApplyRow(int64_t row, const int32_t* new_codes,
                               std::vector<Move>* undo) {
  int32_t group = FindOrCreate(new_codes);
  int32_t old_group = row_group_[static_cast<size_t>(row)];
  if (group == old_group) return group;
  --sizes_[static_cast<size_t>(old_group)];
  ++sizes_[static_cast<size_t>(group)];
  row_group_[static_cast<size_t>(row)] = group;
  if (undo != nullptr) undo->push_back(Move{row, old_group});
  return group;
}

void MaskedGroups::UndoMoves(const std::vector<Move>& moves) {
  for (auto it = moves.rbegin(); it != moves.rend(); ++it) {
    int32_t current = row_group_[static_cast<size_t>(it->row)];
    --sizes_[static_cast<size_t>(current)];
    ++sizes_[static_cast<size_t>(it->old_group)];
    row_group_[static_cast<size_t>(it->row)] = it->old_group;
  }
}

}  // namespace metrics
}  // namespace evocat
