#include "metrics/interval_disclosure.h"

#include "metrics/registry.h"

#include <cmath>

#include "data/stats.h"
#include "metrics/delta.h"
#include "metrics/plane.h"

namespace evocat {
namespace metrics {

namespace {

class BoundIntervalDisclosure : public BoundMeasure {
 public:
  BoundIntervalDisclosure(const Dataset& original, const std::vector<int>& attrs,
                          double window_percent)
      : original_(&original), attrs_(attrs) {
    window_ = window_percent / 100.0 * static_cast<double>(original.num_rows());
    for (int attr : attrs_) {
      original_midranks_.push_back(CategoryMidranks(original, attr));
    }
  }

  double Compute(const Dataset& masked) const override {
    int64_t n = original_->num_rows();
    double disclosed = 0.0;
    for (size_t i = 0; i < attrs_.size(); ++i) {
      int attr = attrs_[i];
      auto masked_midranks = CategoryMidranks(masked, attr);
      const auto& orig_col = original_->column(attr);
      const auto& mask_col = masked.column(attr);
      for (int64_t r = 0; r < n; ++r) {
        double rank_orig =
            original_midranks_[i][static_cast<size_t>(orig_col[static_cast<size_t>(r)])];
        double rank_mask =
            masked_midranks[static_cast<size_t>(mask_col[static_cast<size_t>(r)])];
        if (std::fabs(rank_orig - rank_mask) <= window_) disclosed += 1.0;
      }
    }
    double cells = static_cast<double>(n) * static_cast<double>(attrs_.size());
    return cells > 0 ? 100.0 * disclosed / cells : 0.0;
  }

  std::unique_ptr<MeasureState> BindState(const Dataset& masked) const override;

  const Dataset& original() const { return *original_; }
  const std::vector<int>& attrs() const { return attrs_; }
  const std::vector<double>& original_midranks(size_t i) const {
    return original_midranks_[i];
  }
  double window() const { return window_; }

 private:
  const Dataset* original_;
  std::vector<int> attrs_;
  std::vector<std::vector<double>> original_midranks_;
  double window_ = 0.0;
};

/// ID depends on the masked file only through (a) per-attribute category
/// counts (which determine the masked mid-ranks) and (b) per-attribute
/// (original category, masked category) pair counts. Both update in O(1) per
/// changed cell; the per-attribute disclosed total is then re-derived in
/// O(cardinality^2), independent of the number of records — the windowed
/// paircount merge is O(cells) at any segment width, hence fraction 1.0.
class IntervalDisclosureState : public MeasureState {
 public:
  IntervalDisclosureState(const BoundIntervalDisclosure* bound,
                          const Dataset& masked)
      : MeasureState(/*default_rebuild_fraction=*/1.0),
        bound_(bound),
        attr_pos_(AttrPositions(bound->attrs(), masked.num_attributes())),
        shards_(GetDataPlane().sharded ? ResolveShardCount(GetDataPlane())
                                       : 1) {
    InitFrom(masked);
    backup_ = core_;
  }

  void ApplySegment(const Dataset& masked_after,
                    const SegmentDelta& segment) override {
    backup_ = core_;
    if (segment.num_cells() >= full_rebuild_threshold()) {
      InitFrom(masked_after);
      return;
    }
    std::vector<uint8_t> dirty(bound_->attrs().size(), 0);
    for (const CellDelta& delta : segment.cells()) {
      int pos = attr_pos_[static_cast<size_t>(delta.attr)];
      if (pos < 0 || delta.old_code == delta.new_code) continue;
      auto i = static_cast<size_t>(pos);
      auto o = static_cast<size_t>(bound_->original().Code(delta.row, delta.attr));
      size_t card = core_.counts[i].size();
      core_.counts[i][static_cast<size_t>(delta.old_code)] -= 1;
      core_.counts[i][static_cast<size_t>(delta.new_code)] += 1;
      core_.paircounts[i][o * card + static_cast<size_t>(delta.old_code)] -= 1;
      core_.paircounts[i][o * card + static_cast<size_t>(delta.new_code)] += 1;
      dirty[i] = 1;
    }
    for (size_t i = 0; i < dirty.size(); ++i) {
      if (dirty[i]) RefreshAttr(i);
    }
    RefreshScore();
  }

  void RevertSegment() override { core_ = backup_; }

  double Score() const override { return core_.score; }

 private:
  struct Core {
    std::vector<std::vector<int64_t>> counts;      ///< masked marginals
    std::vector<std::vector<int64_t>> paircounts;  ///< [orig][masked] per attr
    std::vector<int64_t> disclosed;
    double score = 0.0;
  };

  /// Row-sharded marginal + paircount build: per-shard int64 partials merged
  /// index-wise, identical to the serial scan for any shard count.
  void InitFrom(const Dataset& masked) {
    const auto& attrs = bound_->attrs();
    int64_t n = bound_->original().num_rows();
    int shards = shards_;
    core_.counts.resize(attrs.size());
    core_.paircounts.resize(attrs.size());
    core_.disclosed.assign(attrs.size(), 0);
    for (size_t i = 0; i < attrs.size(); ++i) {
      int attr = attrs[i];
      auto card = static_cast<size_t>(
          bound_->original().schema().attribute(attr).cardinality());
      const auto& orig_col = bound_->original().column(attr);
      const auto& mask_col = masked.column(attr);
      std::vector<std::vector<int64_t>> count_partials(
          static_cast<size_t>(shards), std::vector<int64_t>(card, 0));
      std::vector<std::vector<int64_t>> pair_partials(
          static_cast<size_t>(shards), std::vector<int64_t>(card * card, 0));
      ForEachShard(n, shards, [&](int shard, RowRange range) {
        int64_t* counts = count_partials[static_cast<size_t>(shard)].data();
        int64_t* pairs = pair_partials[static_cast<size_t>(shard)].data();
        for (int64_t r = range.begin; r < range.end; ++r) {
          auto o = static_cast<size_t>(orig_col[static_cast<size_t>(r)]);
          auto m = static_cast<size_t>(mask_col[static_cast<size_t>(r)]);
          counts[m] += 1;
          pairs[o * card + m] += 1;
        }
      });
      for (int s = 1; s < shards; ++s) {
        const auto& counts = count_partials[static_cast<size_t>(s)];
        const auto& pairs = pair_partials[static_cast<size_t>(s)];
        for (size_t c = 0; c < card; ++c) count_partials[0][c] += counts[c];
        for (size_t c = 0; c < card * card; ++c) {
          pair_partials[0][c] += pairs[c];
        }
      }
      core_.counts[i] = std::move(count_partials[0]);
      core_.paircounts[i] = std::move(pair_partials[0]);
      RefreshAttr(i);
    }
    RefreshScore();
  }

  void RefreshAttr(size_t i) {
    auto masked_midranks = MidranksFromCounts(core_.counts[i]);
    const auto& orig_midranks = bound_->original_midranks(i);
    size_t card = core_.counts[i].size();
    double window = bound_->window();
    int64_t disclosed = 0;
    for (size_t o = 0; o < card; ++o) {
      for (size_t m = 0; m < card; ++m) {
        int64_t count = core_.paircounts[i][o * card + m];
        if (count != 0 &&
            std::fabs(orig_midranks[o] - masked_midranks[m]) <= window) {
          disclosed += count;
        }
      }
    }
    core_.disclosed[i] = disclosed;
  }

  void RefreshScore() {
    double disclosed = 0.0;
    for (int64_t d : core_.disclosed) disclosed += static_cast<double>(d);
    double cells = static_cast<double>(bound_->original().num_rows()) *
                   static_cast<double>(bound_->attrs().size());
    core_.score = cells > 0 ? 100.0 * disclosed / cells : 0.0;
  }

  const BoundIntervalDisclosure* bound_;
  std::vector<int> attr_pos_;
  int shards_;
  Core core_;
  Core backup_;
};

std::unique_ptr<MeasureState> BoundIntervalDisclosure::BindState(
    const Dataset& masked) const {
  return std::make_unique<IntervalDisclosureState>(this, masked);
}

}  // namespace

Result<std::unique_ptr<BoundMeasure>> IntervalDisclosure::Bind(
    const Dataset& original, const std::vector<int>& attrs) const {
  if (window_percent_ <= 0.0 || window_percent_ > 100.0) {
    return Status::Invalid("ID window must be in (0, 100], got ",
                           window_percent_);
  }
  return std::unique_ptr<BoundMeasure>(
      new BoundIntervalDisclosure(original, attrs, window_percent_));
}

void RegisterIntervalDisclosureMeasure(MeasureRegistry* registry) {
  registry->Register(
      "ID", [](const ParamMap& params) -> Result<std::unique_ptr<Measure>> {
        ParamReader reader("ID", params);
        double window_percent = reader.GetDouble("window_percent", 10.0);
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        return std::unique_ptr<Measure>(new IntervalDisclosure(window_percent));
      });
}

}  // namespace metrics
}  // namespace evocat
