#include "metrics/interval_disclosure.h"

#include <cmath>

#include "data/stats.h"

namespace evocat {
namespace metrics {

namespace {

class BoundIntervalDisclosure : public BoundMeasure {
 public:
  BoundIntervalDisclosure(const Dataset& original, const std::vector<int>& attrs,
                          double window_percent)
      : original_(&original), attrs_(attrs) {
    window_ = window_percent / 100.0 * static_cast<double>(original.num_rows());
    for (int attr : attrs_) {
      original_midranks_.push_back(CategoryMidranks(original, attr));
    }
  }

  double Compute(const Dataset& masked) const override {
    int64_t n = original_->num_rows();
    double disclosed = 0.0;
    for (size_t i = 0; i < attrs_.size(); ++i) {
      int attr = attrs_[i];
      auto masked_midranks = CategoryMidranks(masked, attr);
      const auto& orig_col = original_->column(attr);
      const auto& mask_col = masked.column(attr);
      for (int64_t r = 0; r < n; ++r) {
        double rank_orig =
            original_midranks_[i][static_cast<size_t>(orig_col[static_cast<size_t>(r)])];
        double rank_mask =
            masked_midranks[static_cast<size_t>(mask_col[static_cast<size_t>(r)])];
        if (std::fabs(rank_orig - rank_mask) <= window_) disclosed += 1.0;
      }
    }
    double cells = static_cast<double>(n) * static_cast<double>(attrs_.size());
    return cells > 0 ? 100.0 * disclosed / cells : 0.0;
  }

 private:
  const Dataset* original_;
  std::vector<int> attrs_;
  std::vector<std::vector<double>> original_midranks_;
  double window_ = 0.0;
};

}  // namespace

Result<std::unique_ptr<BoundMeasure>> IntervalDisclosure::Bind(
    const Dataset& original, const std::vector<int>& attrs) const {
  if (window_percent_ <= 0.0 || window_percent_ > 100.0) {
    return Status::Invalid("ID window must be in (0, 100], got ",
                           window_percent_);
  }
  return std::unique_ptr<BoundMeasure>(
      new BoundIntervalDisclosure(original, attrs, window_percent_));
}

}  // namespace metrics
}  // namespace evocat
