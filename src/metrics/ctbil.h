/// \file ctbil.h
/// \brief Contingency-Table-Based Information Loss (Torra & Domingo-Ferrer
/// 2001).
///
/// For every subset of the protected attributes up to `max_dimension`, the
/// joint contingency tables of the original and masked files are compared
/// cell-wise; CTBIL is the summed L1 distance normalized by the worst case
/// (2n per table), scaled to 0..100. CTBIL = 0 iff all marginal and joint
/// distributions up to the chosen dimension are preserved exactly.

#ifndef EVOCAT_METRICS_CTBIL_H_
#define EVOCAT_METRICS_CTBIL_H_

#include <memory>
#include <string>
#include <vector>

#include "metrics/measure.h"

namespace evocat {
namespace metrics {

/// \brief CTBIL with contingency tables up to `max_dimension` attributes.
class CtbIl : public Measure {
 public:
  explicit CtbIl(int max_dimension = 2) : max_dimension_(max_dimension) {}

  std::string Name() const override { return "CTBIL"; }
  MeasureKind Kind() const override { return MeasureKind::kInformationLoss; }

  Result<std::unique_ptr<BoundMeasure>> Bind(
      const Dataset& original, const std::vector<int>& attrs) const override;

  int max_dimension() const { return max_dimension_; }

 private:
  int max_dimension_;
};

}  // namespace metrics
}  // namespace evocat

#endif  // EVOCAT_METRICS_CTBIL_H_
