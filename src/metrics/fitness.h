/// \file fitness.h
/// \brief The paper's fitness function: IL/DR aggregation into one score.
///
/// IL is the mean of {CTBIL, DBIL, EBIL}; DR is the mean of {ID, DBRL, PRL,
/// RSRL}; the score is either `(IL + DR) / 2` (paper Eq. 1) or
/// `max(IL, DR)` (paper Eq. 2). Lower scores are better. Individual measures
/// can be disabled for ablation studies; disabled measures are excluded from
/// the averages and reported as NaN in the breakdown.

#ifndef EVOCAT_METRICS_FITNESS_H_
#define EVOCAT_METRICS_FITNESS_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "metrics/measure.h"

namespace evocat {
namespace metrics {

/// \brief How IL and DR combine into the scalar fitness score.
///
/// kMean and kMax are the paper's Eq. 1 and Eq. 2. The paper's conclusion
/// proposes exploring "other ways to aggregate them"; kEuclidean and
/// kWeighted implement that future work: the quadratic mean penalizes
/// imbalance more than the mean but less than the max, and the weighted mean
/// lets a data custodian tilt the trade-off toward utility or privacy.
enum class ScoreAggregation {
  kMean,       ///< Paper Eq. 1: (IL + DR) / 2 — permits perfect trade-off.
  kMax,        ///< Paper Eq. 2: max(IL, DR) — penalizes unbalanced protections.
  kEuclidean,  ///< Quadratic mean sqrt((IL^2 + DR^2) / 2): soft balance.
  kWeighted,   ///< w * IL + (1 - w) * DR with custom weight w.
};

const char* ScoreAggregationToString(ScoreAggregation aggregation);

/// \brief Inverse of ScoreAggregationToString; rejects unknown names.
Result<ScoreAggregation> ScoreAggregationFromString(const std::string& name);

/// \brief Combines IL and DR under the chosen aggregation.
///
/// `il_weight` is only used by kWeighted (must be in [0, 1]).
double AggregateScore(ScoreAggregation aggregation, double il, double dr,
                      double il_weight = 0.5);

/// \brief Per-measure results of one fitness evaluation (0..100 each).
///
/// Disabled measures are NaN and excluded from `il` / `dr`.
struct FitnessBreakdown {
  double ctbil = 0.0;
  double dbil = 0.0;
  double ebil = 0.0;
  double id = 0.0;
  double dbrl = 0.0;
  double prl = 0.0;
  double rsrl = 0.0;
  double il = 0.0;     ///< mean of enabled information-loss measures
  double dr = 0.0;     ///< mean of enabled disclosure-risk measures
  double score = 0.0;  ///< aggregated fitness (lower is better)
};

class FitnessEvaluator;

/// \brief Incremental fitness evaluation state for one masked file.
///
/// Bundles one `MeasureState` per enabled measure. The engine keeps one per
/// population member; a GA operator's segment delta re-scores an offspring
/// in O(segment) instead of re-walking the whole file (and its O(n^2)
/// linkage attacks). `Revert` undoes the last `ApplyDelta`, which is how
/// rejected offspring hand their parent's state back untouched.
class FitnessState {
 public:
  /// \brief Current per-measure breakdown (equals a full `Evaluate` of the
  /// file last passed to ApplyDelta, within 1e-9).
  const FitnessBreakdown& breakdown() const { return breakdown_; }

  /// \brief Folds one segment batch into every measure state and refreshes
  /// the breakdown. Counts as one evaluation.
  ///
  /// For heavy segments (the batch covers a meaningful share of the
  /// protected cells, or reaches at least one enabled measure's rebuild
  /// threshold) the independent measure states evaluate concurrently; each
  /// state's own row loops additionally fan out through nested work
  /// stealing, so a heavy crossover leg saturates the pool instead of
  /// walking seven O(n²) updates serially.
  ///
  /// `cancel` (optional) is polled between (or, concurrently, before) the
  /// per-measure updates, bounding cancel latency on rebuild-sized legs by
  /// one measure's rebuild instead of all seven. After a cancel-truncated
  /// apply the state is only good for discarding — the caller must abort
  /// the run, which every engine/strategy loop does on its next poll.
  void ApplyDelta(const Dataset& masked_after, const SegmentDelta& segment,
                  const std::atomic<bool>* cancel = nullptr);

  /// \brief Convenience overload grouping a flat batch.
  void ApplyDelta(const Dataset& masked_after,
                  const std::vector<CellDelta>& deltas) {
    ApplyDelta(masked_after, SegmentDelta::FromCells(deltas));
  }

  /// \brief Undoes the most recent ApplyDelta (single level).
  void Revert();

 private:
  friend class FitnessEvaluator;
  FitnessState() = default;

  const FitnessEvaluator* evaluator_ = nullptr;
  /// Segment size (cells) from which the per-measure updates run
  /// concurrently; set by BindState from the file's protected-cell count.
  int64_t parallel_segment_cells_ = INT64_MAX;
  std::unique_ptr<MeasureState> ctbil_;
  std::unique_ptr<MeasureState> dbil_;
  std::unique_ptr<MeasureState> ebil_;
  std::unique_ptr<MeasureState> id_;
  std::unique_ptr<MeasureState> dbrl_;
  std::unique_ptr<MeasureState> prl_;
  std::unique_ptr<MeasureState> rsrl_;
  FitnessBreakdown breakdown_;
  FitnessBreakdown prev_breakdown_;
};

/// \brief Evaluates masked files against one original under the paper's
/// fitness; binds all measures once so repeated evaluation is cheap.
class FitnessEvaluator {
 public:
  /// \brief Evaluator configuration (defaults reproduce the paper).
  struct Options {
    ScoreAggregation aggregation = ScoreAggregation::kMean;
    /// Information-loss weight for ScoreAggregation::kWeighted.
    double il_weight = 0.5;
    /// CTBIL contingency-table dimension cap.
    int ctbil_max_dimension = 2;
    /// Interval-disclosure rank window (percent of records).
    double id_window_percent = 10.0;
    /// RSRL attacker's assumed rank-swapping parameter (percent).
    double rsrl_assumed_p_percent = 15.0;
    /// PRL EM sweeps.
    int prl_em_iterations = 50;
    /// Ablation switches — disabled measures leave the averages.
    bool use_ctbil = true;
    bool use_dbil = true;
    bool use_ebil = true;
    bool use_id = true;
    bool use_dbrl = true;
    bool use_prl = true;
    bool use_rsrl = true;
    /// Incremental evaluation cost model. Each measure state owns a rebuild
    /// fraction — the share of the protected cells a segment batch may touch
    /// before that state recomputes from scratch instead of updating
    /// incrementally (the cell-scoped counting measures default to 1.0 =
    /// effectively never; the O(n²) linkage attacks to 0.4–0.6). A positive
    /// value here overrides the default for *every* measure (0 keeps the
    /// per-measure defaults).
    double delta_rebuild_fraction = 0.0;
    /// Per-measure rebuild-fraction overrides by registry name
    /// (case-insensitive, e.g. {"DBRL", 0.3}); they beat the global
    /// override. Values must be in (0, 1]; unknown names are rejected by
    /// `Create`.
    std::vector<std::pair<std::string, double>> measure_rebuild_fractions;
    /// Bind-time rebuild-fraction probe. When true, the first `BindState`
    /// times one full rebuild against a calibrated batch of no-op segment
    /// applies per measure (apply + revert pairs, so the probed state is
    /// left untouched) and replaces each measure's hand-calibrated rebuild
    /// fraction with the measured crossover point. Measures pinned through
    /// `measure_rebuild_fractions` or a positive `delta_rebuild_fraction`
    /// are never probed. The probe only moves *when* a state rebuilds, never
    /// what it computes, so every score still matches a from-scratch
    /// Compute; but wall-clock timing is machine-dependent, so cross-run
    /// bit-reproducibility is traded away — leave it off (the default) or
    /// pin the fractions when runs must replay exactly.
    bool probe_rebuild_fractions = false;
  };

  /// \brief Binds all enabled measures to `original` over `attrs`.
  ///
  /// `original` must outlive the evaluator. At least one IL and one DR
  /// measure must stay enabled.
  static Result<std::unique_ptr<FitnessEvaluator>> Create(
      const Dataset& original, const std::vector<int>& attrs,
      const Options& options);

  /// \brief Binds with the paper-default options.
  static Result<std::unique_ptr<FitnessEvaluator>> Create(
      const Dataset& original, const std::vector<int>& attrs) {
    return Create(original, attrs, Options());
  }

  /// \brief Evaluates one masked file (hot path; `masked` must be comparable
  /// to the original — same schema and row count).
  FitnessBreakdown Evaluate(const Dataset& masked) const;

  /// \brief Opens incremental evaluation for one masked file.
  ///
  /// The returned state's breakdown starts equal to `Evaluate(masked)` and
  /// is re-derived in O(delta) after each `ApplyDelta`. The evaluator must
  /// outlive the state. See `metrics::MeasureState` for the delta contract.
  std::unique_ptr<FitnessState> BindState(const Dataset& masked) const;

  /// \brief Aggregates an (il, dr) pair under this evaluator's options.
  double Score(double il, double dr) const {
    return AggregateScore(options_.aggregation, il, dr, options_.il_weight);
  }

  const Options& options() const { return options_; }
  const std::vector<int>& attrs() const { return attrs_; }

  /// \brief The original dataset the evaluator was bound to.
  const Dataset& original() const { return *original_; }

  /// \brief Number of `Evaluate` calls served (for the timing tables).
  int64_t num_evaluations() const { return num_evaluations_.load(); }

  /// \brief The rebuild fractions the bind-time probe chose, as (registry
  /// slot name, fraction) pairs — empty until the probe has run (it runs on
  /// the first `BindState` when `Options::probe_rebuild_fractions` is on).
  /// Persisted into the RunArtifacts telemetry section so probed runs stay
  /// explainable.
  std::vector<std::pair<std::string, double>> probed_rebuild_fractions() const;

 private:
  friend class FitnessState;

  FitnessEvaluator(const Dataset& original, std::vector<int> attrs,
                   Options options)
      : original_(&original), attrs_(std::move(attrs)), options_(options) {}

  const Dataset* original_;
  std::vector<int> attrs_;
  Options options_;

  std::unique_ptr<BoundMeasure> ctbil_;
  std::unique_ptr<BoundMeasure> dbil_;
  std::unique_ptr<BoundMeasure> ebil_;
  std::unique_ptr<BoundMeasure> id_;
  std::unique_ptr<BoundMeasure> dbrl_;
  std::unique_ptr<BoundMeasure> prl_;
  std::unique_ptr<BoundMeasure> rsrl_;

  /// \brief Runs the bind-time probe once (first caller wins; later binds
  /// reuse the cached fractions) and applies the chosen fractions to
  /// `state`'s unpinned measure slots.
  void ProbeAndApplyFractions(const Dataset& masked, FitnessState* state,
                              int64_t total_cells) const;

  mutable std::atomic<int64_t> num_evaluations_{0};
  mutable std::mutex probe_mutex_;
  mutable bool probed_ = false;
  mutable double probed_fraction_[7] = {0, 0, 0, 0, 0, 0, 0};
};

}  // namespace metrics
}  // namespace evocat

#endif  // EVOCAT_METRICS_FITNESS_H_
