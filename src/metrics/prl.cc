#include "metrics/prl.h"

#include <cmath>

#include "common/math_utils.h"
#include "common/parallel.h"

namespace evocat {
namespace metrics {

namespace {
constexpr double kProbFloor = 1e-6;
constexpr double kProbCeil = 1.0 - 1e-6;
}  // namespace

double FellegiSunterModel::PatternWeight(uint32_t pattern) const {
  double w = 0.0;
  for (size_t k = 0; k < m.size(); ++k) {
    bool agree = (pattern >> k) & 1u;
    w += agree ? std::log(m[k] / u[k])
               : std::log((1.0 - m[k]) / (1.0 - u[k]));
  }
  return w;
}

FellegiSunterModel FitFellegiSunter(const std::vector<double>& pattern_counts,
                                    int num_attrs, int em_iterations) {
  size_t num_patterns = pattern_counts.size();
  double total = 0.0;
  for (double c : pattern_counts) total += c;

  FellegiSunterModel model;
  model.m.assign(static_cast<size_t>(num_attrs), 0.9);
  model.u.assign(static_cast<size_t>(num_attrs), 0.1);
  model.match_prevalence = total > 0 ? 1.0 / std::sqrt(total) : 0.5;

  for (int iter = 0; iter < em_iterations; ++iter) {
    double sum_g = 0.0, sum_1mg = 0.0;
    std::vector<double> m_num(static_cast<size_t>(num_attrs), 0.0);
    std::vector<double> u_num(static_cast<size_t>(num_attrs), 0.0);
    for (uint32_t p = 0; p < num_patterns; ++p) {
      double count = pattern_counts[p];
      if (count <= 0.0) continue;
      // E-step: posterior match probability of this pattern.
      double like_m = model.match_prevalence;
      double like_u = 1.0 - model.match_prevalence;
      for (int k = 0; k < num_attrs; ++k) {
        bool agree = (p >> k) & 1u;
        like_m *= agree ? model.m[static_cast<size_t>(k)]
                        : 1.0 - model.m[static_cast<size_t>(k)];
        like_u *= agree ? model.u[static_cast<size_t>(k)]
                        : 1.0 - model.u[static_cast<size_t>(k)];
      }
      double denom = like_m + like_u;
      double g = denom > 0 ? like_m / denom : 0.5;
      sum_g += g * count;
      sum_1mg += (1.0 - g) * count;
      for (int k = 0; k < num_attrs; ++k) {
        if ((p >> k) & 1u) {
          m_num[static_cast<size_t>(k)] += g * count;
          u_num[static_cast<size_t>(k)] += (1.0 - g) * count;
        }
      }
    }
    // M-step with clamping to keep the weights finite.
    if (sum_g > 0) {
      for (int k = 0; k < num_attrs; ++k) {
        model.m[static_cast<size_t>(k)] =
            Clamp(m_num[static_cast<size_t>(k)] / sum_g, kProbFloor, kProbCeil);
      }
    }
    if (sum_1mg > 0) {
      for (int k = 0; k < num_attrs; ++k) {
        model.u[static_cast<size_t>(k)] =
            Clamp(u_num[static_cast<size_t>(k)] / sum_1mg, kProbFloor, kProbCeil);
      }
    }
    if (total > 0) {
      model.match_prevalence = Clamp(sum_g / total, kProbFloor, kProbCeil);
    }
  }
  return model;
}

namespace {

class BoundPrl : public BoundMeasure {
 public:
  BoundPrl(const Dataset& original, const std::vector<int>& attrs,
           int em_iterations)
      : original_(&original), attrs_(attrs), em_iterations_(em_iterations) {}

  double Compute(const Dataset& masked) const override {
    int64_t n = original_->num_rows();
    int num_attrs = static_cast<int>(attrs_.size());
    size_t num_patterns = static_cast<size_t>(1) << num_attrs;

    // Pass 1: agreement-pattern counts over all pairs, parallel over i with
    // per-row local counters (counts are integers, so the reduction order
    // cannot change the result). For wide pattern spaces the per-row
    // counters would dominate memory, so fall back to a serial sweep.
    std::vector<double> counts(num_patterns, 0.0);
    if (num_patterns <= 1024) {
      std::vector<std::vector<double>> row_counts(
          static_cast<size_t>(n), std::vector<double>(num_patterns, 0.0));
      ParallelFor(0, n, [&](int64_t i) {
        auto& local = row_counts[static_cast<size_t>(i)];
        for (int64_t j = 0; j < n; ++j) {
          local[PatternOf(i, masked, j)] += 1.0;
        }
      });
      for (const auto& local : row_counts) {
        for (size_t p = 0; p < num_patterns; ++p) counts[p] += local[p];
      }
    } else {
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          counts[PatternOf(i, masked, j)] += 1.0;
        }
      }
    }

    FellegiSunterModel model = FitFellegiSunter(counts, num_attrs, em_iterations_);
    std::vector<double> weights(num_patterns);
    for (uint32_t p = 0; p < num_patterns; ++p) {
      weights[p] = model.PatternWeight(p);
    }

    // Pass 2: link each original record to the max-weight masked record.
    constexpr double kEps = 1e-12;
    std::vector<double> credits(static_cast<size_t>(n), 0.0);
    ParallelFor(0, n, [&](int64_t i) {
      double best = -1e100;
      int64_t best_count = 0;
      bool self_is_best = false;
      for (int64_t j = 0; j < n; ++j) {
        double w = weights[PatternOf(i, masked, j)];
        if (w > best + kEps) {
          best = w;
          best_count = 1;
          self_is_best = (j == i);
        } else if (w >= best - kEps) {
          ++best_count;
          if (j == i) self_is_best = true;
        }
      }
      if (self_is_best && best_count > 0) {
        credits[static_cast<size_t>(i)] = 1.0 / static_cast<double>(best_count);
      }
    });
    double credit = 0.0;
    for (double c : credits) credit += c;
    return n > 0 ? 100.0 * credit / static_cast<double>(n) : 0.0;
  }

 private:
  uint32_t PatternOf(int64_t orig_row, const Dataset& masked,
                     int64_t masked_row) const {
    uint32_t pattern = 0;
    for (size_t k = 0; k < attrs_.size(); ++k) {
      if (original_->Code(orig_row, attrs_[k]) ==
          masked.Code(masked_row, attrs_[k])) {
        pattern |= (1u << k);
      }
    }
    return pattern;
  }

  const Dataset* original_;
  std::vector<int> attrs_;
  int em_iterations_;
};

}  // namespace

Result<std::unique_ptr<BoundMeasure>> ProbabilisticRecordLinkage::Bind(
    const Dataset& original, const std::vector<int>& attrs) const {
  if (attrs.size() > 20) {
    return Status::Invalid("PRL agreement patterns limited to 20 attributes");
  }
  if (em_iterations_ < 1) {
    return Status::Invalid("PRL needs at least one EM iteration");
  }
  return std::unique_ptr<BoundMeasure>(
      new BoundPrl(original, attrs, em_iterations_));
}

}  // namespace metrics
}  // namespace evocat
