#include "metrics/prl.h"

#include "metrics/registry.h"

#include <cmath>
#include <cstdint>

#include "common/math_utils.h"
#include "common/parallel.h"
#include "metrics/delta.h"

namespace evocat {
namespace metrics {

namespace {
constexpr double kProbFloor = 1e-6;
constexpr double kProbCeil = 1.0 - 1e-6;
// Weight-tie epsilon; shared with the distance-tie epsilon of the other
// linkage attacks so the tie semantics stay uniform.
constexpr double kEps = kLinkageEps;
}  // namespace

double FellegiSunterModel::PatternWeight(uint32_t pattern) const {
  double w = 0.0;
  for (size_t k = 0; k < m.size(); ++k) {
    bool agree = (pattern >> k) & 1u;
    w += agree ? std::log(m[k] / u[k])
               : std::log((1.0 - m[k]) / (1.0 - u[k]));
  }
  return w;
}

FellegiSunterModel FitFellegiSunter(const std::vector<double>& pattern_counts,
                                    int num_attrs, int em_iterations) {
  size_t num_patterns = pattern_counts.size();
  double total = 0.0;
  for (double c : pattern_counts) total += c;

  FellegiSunterModel model;
  model.m.assign(static_cast<size_t>(num_attrs), 0.9);
  model.u.assign(static_cast<size_t>(num_attrs), 0.1);
  model.match_prevalence = total > 0 ? 1.0 / std::sqrt(total) : 0.5;

  for (int iter = 0; iter < em_iterations; ++iter) {
    double sum_g = 0.0, sum_1mg = 0.0;
    std::vector<double> m_num(static_cast<size_t>(num_attrs), 0.0);
    std::vector<double> u_num(static_cast<size_t>(num_attrs), 0.0);
    for (uint32_t p = 0; p < num_patterns; ++p) {
      double count = pattern_counts[p];
      if (count <= 0.0) continue;
      // E-step: posterior match probability of this pattern.
      double like_m = model.match_prevalence;
      double like_u = 1.0 - model.match_prevalence;
      for (int k = 0; k < num_attrs; ++k) {
        bool agree = (p >> k) & 1u;
        like_m *= agree ? model.m[static_cast<size_t>(k)]
                        : 1.0 - model.m[static_cast<size_t>(k)];
        like_u *= agree ? model.u[static_cast<size_t>(k)]
                        : 1.0 - model.u[static_cast<size_t>(k)];
      }
      double denom = like_m + like_u;
      double g = denom > 0 ? like_m / denom : 0.5;
      sum_g += g * count;
      sum_1mg += (1.0 - g) * count;
      for (int k = 0; k < num_attrs; ++k) {
        if ((p >> k) & 1u) {
          m_num[static_cast<size_t>(k)] += g * count;
          u_num[static_cast<size_t>(k)] += (1.0 - g) * count;
        }
      }
    }
    // M-step with clamping to keep the weights finite.
    if (sum_g > 0) {
      for (int k = 0; k < num_attrs; ++k) {
        model.m[static_cast<size_t>(k)] =
            Clamp(m_num[static_cast<size_t>(k)] / sum_g, kProbFloor, kProbCeil);
      }
    }
    if (sum_1mg > 0) {
      for (int k = 0; k < num_attrs; ++k) {
        model.u[static_cast<size_t>(k)] =
            Clamp(u_num[static_cast<size_t>(k)] / sum_1mg, kProbFloor, kProbCeil);
      }
    }
    if (total > 0) {
      model.match_prevalence = Clamp(sum_g / total, kProbFloor, kProbCeil);
    }
  }
  return model;
}

namespace {

class BoundPrl : public BoundMeasure {
 public:
  BoundPrl(const Dataset& original, const std::vector<int>& attrs,
           int em_iterations)
      : original_(&original), attrs_(attrs), em_iterations_(em_iterations) {}

  double Compute(const Dataset& masked) const override {
    int64_t n = original_->num_rows();
    int num_attrs = static_cast<int>(attrs_.size());
    size_t num_patterns = static_cast<size_t>(1) << num_attrs;

    // Pass 1: agreement-pattern counts over all pairs, parallel over i with
    // per-row local counters (counts are integers, so the reduction order
    // cannot change the result). For wide pattern spaces the per-row
    // counters would dominate memory, so fall back to a serial sweep.
    std::vector<double> counts(num_patterns, 0.0);
    if (num_patterns <= 1024) {
      std::vector<std::vector<double>> row_counts(
          static_cast<size_t>(n), std::vector<double>(num_patterns, 0.0));
      ParallelFor(0, n, [&](int64_t i) {
        auto& local = row_counts[static_cast<size_t>(i)];
        for (int64_t j = 0; j < n; ++j) {
          local[PatternOf(i, masked, j)] += 1.0;
        }
      });
      for (const auto& local : row_counts) {
        for (size_t p = 0; p < num_patterns; ++p) counts[p] += local[p];
      }
    } else {
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          counts[PatternOf(i, masked, j)] += 1.0;
        }
      }
    }

    FellegiSunterModel model = FitFellegiSunter(counts, num_attrs, em_iterations_);
    std::vector<double> weights(num_patterns);
    for (uint32_t p = 0; p < num_patterns; ++p) {
      weights[p] = model.PatternWeight(p);
    }

    // Pass 2: link each original record to the max-weight masked record.
    std::vector<double> credits(static_cast<size_t>(n), 0.0);
    ParallelFor(0, n, [&](int64_t i) {
      double best = -1e100;
      int64_t best_count = 0;
      bool self_is_best = false;
      for (int64_t j = 0; j < n; ++j) {
        double w = weights[PatternOf(i, masked, j)];
        if (w > best + kEps) {
          best = w;
          best_count = 1;
          self_is_best = (j == i);
        } else if (w >= best - kEps) {
          ++best_count;
          if (j == i) self_is_best = true;
        }
      }
      if (self_is_best && best_count > 0) {
        credits[static_cast<size_t>(i)] = 1.0 / static_cast<double>(best_count);
      }
    });
    double credit = 0.0;
    for (double c : credits) credit += c;
    return n > 0 ? 100.0 * credit / static_cast<double>(n) : 0.0;
  }

  std::unique_ptr<MeasureState> BindState(const Dataset& masked) const override;

  uint32_t PatternOf(int64_t orig_row, const Dataset& masked,
                     int64_t masked_row) const {
    uint32_t pattern = 0;
    for (size_t k = 0; k < attrs_.size(); ++k) {
      if (original_->Code(orig_row, attrs_[k]) ==
          masked.Code(masked_row, attrs_[k])) {
        pattern |= (1u << k);
      }
    }
    return pattern;
  }

  const Dataset& original() const { return *original_; }
  const std::vector<int>& attrs() const { return attrs_; }
  int em_iterations() const { return em_iterations_; }

 private:
  const Dataset* original_;
  std::vector<int> attrs_;
  int em_iterations_;
};

/// PRL's sufficient statistic is, per original record, the histogram of
/// agreement patterns against every masked record (plus the global pattern
/// counts feeding the EM fit). A changed masked record j shifts one
/// histogram unit per original record — O(n * |attrs|) per changed row —
/// after which the EM refit and the per-record argmax are O(n * 2^attrs),
/// independent of the O(n^2) pair space.
class PrlState : public MeasureState {
 public:
  PrlState(const BoundPrl* bound, const Dataset& masked) : bound_(bound) {
    InitFrom(masked);
    undo_.counts = core_.counts;
    undo_.score = core_.score;
  }

  void ApplyDelta(const Dataset& masked_after,
                  const std::vector<CellDelta>& deltas) override {
    undo_.counts = core_.counts;
    undo_.score = core_.score;
    undo_.row_logs.clear();
    undo_.rebuilt = false;
    if (static_cast<int64_t>(deltas.size()) >= full_rebuild_threshold()) {
      undo_.rebuilt = true;
      undo_.hist_backup = core_.hist;
      InitFrom(masked_after);
      return;
    }
    auto row_deltas = GroupDeltasByRow(deltas);
    if (row_deltas.empty()) return;

    const auto& attrs = bound_->attrs();
    int64_t n = bound_->original().num_rows();
    size_t num_patterns = static_cast<size_t>(1) << attrs.size();

    for (const RowDelta& rd : row_deltas) {
      bool relevant = false;
      for (const auto& cell : rd.cells) {
        for (int attr : attrs) relevant = relevant || cell.attr == attr;
      }
      if (!relevant) continue;
      // Per original record: shift one histogram unit from the changed
      // row's old pattern to its new one; the per-record (old, new) pair is
      // logged so Revert can replay the shift backwards in O(delta).
      undo_.row_logs.emplace_back(static_cast<size_t>(n), 0);
      auto& log = undo_.row_logs.back();
      ParallelFor(0, n, [&](int64_t i) {
        uint32_t p_old = 0, p_new = 0;
        for (size_t k = 0; k < attrs.size(); ++k) {
          int32_t orig_code = bound_->original().Code(i, attrs[k]);
          if (orig_code == rd.OldCode(masked_after, attrs[k])) {
            p_old |= (1u << k);
          }
          if (orig_code == masked_after.Code(rd.row, attrs[k])) {
            p_new |= (1u << k);
          }
        }
        log[static_cast<size_t>(i)] =
            static_cast<uint16_t>((p_old << 8) | p_new);
        if (p_old != p_new) {
          auto base = static_cast<size_t>(i) * num_patterns;
          core_.hist[base + p_old] -= 1;
          core_.hist[base + p_new] += 1;
        }
      });
    }
    // Global pattern counts are the histograms' column sums (exact integer
    // totals, same values a from-scratch pass 1 produces).
    RefreshCounts();
    RefreshScore(masked_after);
  }

  void Revert() override {
    if (undo_.rebuilt) {
      core_.hist = undo_.hist_backup;
    } else {
      size_t num_patterns =
          static_cast<size_t>(1) << bound_->attrs().size();
      int64_t n = bound_->original().num_rows();
      for (auto it = undo_.row_logs.rbegin(); it != undo_.row_logs.rend();
           ++it) {
        const auto& log = *it;
        ParallelFor(0, n, [&](int64_t i) {
          auto p_old = static_cast<uint32_t>(log[static_cast<size_t>(i)] >> 8);
          auto p_new =
              static_cast<uint32_t>(log[static_cast<size_t>(i)] & 0xFF);
          if (p_old != p_new) {
            auto base = static_cast<size_t>(i) * num_patterns;
            core_.hist[base + p_new] -= 1;
            core_.hist[base + p_old] += 1;
          }
        });
      }
    }
    core_.counts = undo_.counts;
    core_.score = undo_.score;
    undo_.row_logs.clear();
  }

  double Score() const override { return core_.score; }

 private:
  struct Core {
    std::vector<double> counts;   ///< global pattern counts (EM input)
    std::vector<int32_t> hist;    ///< [i * 2^attrs + pattern] counts
    double score = 0.0;
  };

  /// One-level undo: counts/score snapshots are small; histogram changes are
  /// replayed backwards from per-changed-row (old, new) pattern logs instead
  /// of copying the whole O(n * 2^attrs) table per evaluation.
  struct Undo {
    std::vector<double> counts;
    double score = 0.0;
    std::vector<std::vector<uint16_t>> row_logs;
    bool rebuilt = false;
    std::vector<int32_t> hist_backup;
  };

  void InitFrom(const Dataset& masked) {
    const auto& attrs = bound_->attrs();
    int64_t n = bound_->original().num_rows();
    size_t num_patterns = static_cast<size_t>(1) << attrs.size();
    core_.counts.assign(num_patterns, 0.0);
    core_.hist.assign(static_cast<size_t>(n) * num_patterns, 0);
    ParallelFor(0, n, [&](int64_t i) {
      auto base = static_cast<size_t>(i) * num_patterns;
      for (int64_t j = 0; j < n; ++j) {
        core_.hist[base + bound_->PatternOf(i, masked, j)] += 1;
      }
    });
    RefreshCounts();
    RefreshScore(masked);
  }

  void RefreshCounts() {
    int64_t n = bound_->original().num_rows();
    size_t num_patterns = static_cast<size_t>(1) << bound_->attrs().size();
    core_.counts.assign(num_patterns, 0.0);
    for (int64_t i = 0; i < n; ++i) {
      auto base = static_cast<size_t>(i) * num_patterns;
      for (size_t p = 0; p < num_patterns; ++p) {
        core_.counts[p] += static_cast<double>(core_.hist[base + p]);
      }
    }
  }

  void RefreshScore(const Dataset& masked) {
    const auto& attrs = bound_->attrs();
    int64_t n = bound_->original().num_rows();
    size_t num_patterns = static_cast<size_t>(1) << attrs.size();
    FellegiSunterModel model = FitFellegiSunter(
        core_.counts, static_cast<int>(attrs.size()), bound_->em_iterations());
    std::vector<double> weights(num_patterns);
    for (uint32_t p = 0; p < num_patterns; ++p) {
      weights[p] = model.PatternWeight(p);
    }
    std::vector<double> credits(static_cast<size_t>(n), 0.0);
    ParallelFor(0, n, [&](int64_t i) {
      auto base = static_cast<size_t>(i) * num_patterns;
      // Best weight attained by any masked record, support size, and whether
      // the true match is in the support (scan-equivalent, see Compute).
      double best = -1e100;
      for (size_t p = 0; p < num_patterns; ++p) {
        if (core_.hist[base + p] > 0 && weights[p] > best) best = weights[p];
      }
      int64_t best_count = 0;
      for (size_t p = 0; p < num_patterns; ++p) {
        if (core_.hist[base + p] > 0 && weights[p] >= best - kEps) {
          best_count += core_.hist[base + p];
        }
      }
      uint32_t p_self = bound_->PatternOf(i, masked, i);
      bool self_is_best = weights[p_self] >= best - kEps;
      if (self_is_best && best_count > 0) {
        credits[static_cast<size_t>(i)] = 1.0 / static_cast<double>(best_count);
      }
    });
    double credit = 0.0;
    for (double c : credits) credit += c;
    core_.score = n > 0 ? 100.0 * credit / static_cast<double>(n) : 0.0;
  }

  const BoundPrl* bound_;
  Core core_;
  Undo undo_;
};

std::unique_ptr<MeasureState> BoundPrl::BindState(const Dataset& masked) const {
  // The per-record histograms need n * 2^attrs counters; beyond a sane
  // budget (wide pattern spaces or huge files) fall back to full recompute.
  int64_t n = original_->num_rows();
  int64_t hist_bytes =
      n * (static_cast<int64_t>(1) << attrs_.size()) *
      static_cast<int64_t>(sizeof(int32_t));
  if (attrs_.size() > 8 || hist_bytes > (8 << 20)) {
    return BoundMeasure::BindState(masked);
  }
  return std::make_unique<PrlState>(this, masked);
}

}  // namespace

Result<std::unique_ptr<BoundMeasure>> ProbabilisticRecordLinkage::Bind(
    const Dataset& original, const std::vector<int>& attrs) const {
  if (attrs.size() > 20) {
    return Status::Invalid("PRL agreement patterns limited to 20 attributes");
  }
  if (em_iterations_ < 1) {
    return Status::Invalid("PRL needs at least one EM iteration");
  }
  return std::unique_ptr<BoundMeasure>(
      new BoundPrl(original, attrs, em_iterations_));
}

void RegisterPrlMeasure(MeasureRegistry* registry) {
  registry->Register(
      "PRL", [](const ParamMap& params) -> Result<std::unique_ptr<Measure>> {
        ParamReader reader("PRL", params);
        int64_t em_iterations = reader.GetInt("em_iterations", 50);
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        return std::unique_ptr<Measure>(
            new ProbabilisticRecordLinkage(static_cast<int>(em_iterations)));
      });
}

}  // namespace metrics
}  // namespace evocat
