#include "metrics/prl.h"

#include "metrics/registry.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "common/math_utils.h"
#include "common/parallel.h"
#include "metrics/delta.h"
#include "metrics/plane.h"
#include "obs/metrics.h"

namespace evocat {
namespace metrics {

namespace {
constexpr double kProbFloor = 1e-6;
constexpr double kProbCeil = 1.0 - 1e-6;
// Weight-tie epsilon; shared with the distance-tie epsilon of the other
// linkage attacks so the tie semantics stay uniform.
constexpr double kEps = kLinkageEps;
/// Sweep budget of a warm-started refit before falling back to the cold
/// trajectory. EM contracts by roughly 7x per sweep near the solution, but
/// the exit criterion is a *bitwise* fixed point, so closing the last few
/// ulps dominates: small deltas land in ~15 sweeps (measured), well under
/// the cold budget, and the margin here keeps borderline refits warm.
constexpr int kWarmStartSweeps = 24;
/// Warm starts assume the cold budget itself is past convergence (so the
/// warm fixed point is the one the cold trajectory lands on); tiny budgets
/// keep the exact cold arithmetic instead.
constexpr int kMinIterationsForWarmStart = 10;
/// Segment size (cells) above which a delta refit skips the warm attempt
/// and goes straight to the cold fit: a heavy segment (crossover legs)
/// shifts the pattern counts far enough that the warm trajectory rarely
/// freezes within its budget, and a missed attempt costs kWarmStartSweeps
/// wasted sweeps on top of the full cold fit it falls back to. GA mutation
/// legs (1-4 cells) stay warm. The gate depends only on the segment, so
/// both data planes decide identically.
constexpr int64_t kMaxWarmSegmentCells = 8;

obs::Counter* EmWarmHitsCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "evocat_delta_plane_em_warm_hits_total",
      "PRL EM refits warm-started from the previous model that reached an "
      "exact fixed point within the warm sweep budget.");
  return counter;
}

obs::Counter* EmColdStartsCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "evocat_delta_plane_em_cold_starts_total",
      "PRL EM fits that ran the cold trajectory: first fits, rebuilds, and "
      "warm-start fallbacks on large deltas.");
  return counter;
}

/// One EM sweep (E-step over the nonzero pattern counts, clamped M-step)
/// applied in place. Returns true when the sweep left the model bitwise
/// unchanged — an exact fixed point: any further sweep recomputes the
/// identical E- and M-steps from identical inputs, so iteration can stop
/// with provably no effect on the final model.
bool EmSweep(const std::vector<std::pair<uint32_t, double>>& pattern_counts,
             int num_attrs, double total, FellegiSunterModel* model) {
  const FellegiSunterModel before = *model;
  double sum_g = 0.0, sum_1mg = 0.0;
  std::vector<double> m_num(static_cast<size_t>(num_attrs), 0.0);
  std::vector<double> u_num(static_cast<size_t>(num_attrs), 0.0);
  for (const auto& [p, count] : pattern_counts) {
    if (count <= 0.0) continue;
    // E-step: posterior match probability of this pattern.
    double like_m = model->match_prevalence;
    double like_u = 1.0 - model->match_prevalence;
    for (int k = 0; k < num_attrs; ++k) {
      bool agree = (p >> k) & 1u;
      like_m *= agree ? model->m[static_cast<size_t>(k)]
                      : 1.0 - model->m[static_cast<size_t>(k)];
      like_u *= agree ? model->u[static_cast<size_t>(k)]
                      : 1.0 - model->u[static_cast<size_t>(k)];
    }
    double denom = like_m + like_u;
    double g = denom > 0 ? like_m / denom : 0.5;
    sum_g += g * count;
    sum_1mg += (1.0 - g) * count;
    for (int k = 0; k < num_attrs; ++k) {
      if ((p >> k) & 1u) {
        m_num[static_cast<size_t>(k)] += g * count;
        u_num[static_cast<size_t>(k)] += (1.0 - g) * count;
      }
    }
  }
  // M-step with clamping to keep the weights finite.
  if (sum_g > 0) {
    for (int k = 0; k < num_attrs; ++k) {
      model->m[static_cast<size_t>(k)] =
          Clamp(m_num[static_cast<size_t>(k)] / sum_g, kProbFloor, kProbCeil);
    }
  }
  if (sum_1mg > 0) {
    for (int k = 0; k < num_attrs; ++k) {
      model->u[static_cast<size_t>(k)] =
          Clamp(u_num[static_cast<size_t>(k)] / sum_1mg, kProbFloor, kProbCeil);
    }
  }
  if (total > 0) {
    model->match_prevalence = Clamp(sum_g / total, kProbFloor, kProbCeil);
  }
  return model->m == before.m && model->u == before.u &&
         model->match_prevalence == before.match_prevalence;
}
}  // namespace

double FellegiSunterModel::PatternWeight(uint32_t pattern) const {
  double w = 0.0;
  for (size_t k = 0; k < m.size(); ++k) {
    bool agree = (pattern >> k) & 1u;
    w += agree ? std::log(m[k] / u[k])
               : std::log((1.0 - m[k]) / (1.0 - u[k]));
  }
  return w;
}

FellegiSunterModel FitFellegiSunter(
    const std::vector<std::pair<uint32_t, double>>& pattern_counts,
    int num_attrs, int em_iterations) {
  double total = 0.0;
  for (const auto& [pattern, count] : pattern_counts) total += count;

  FellegiSunterModel model;
  model.m.assign(static_cast<size_t>(num_attrs), 0.9);
  model.u.assign(static_cast<size_t>(num_attrs), 0.1);
  model.match_prevalence = total > 0 ? 1.0 / std::sqrt(total) : 0.5;

  for (int iter = 0; iter < em_iterations; ++iter) {
    // A bitwise fixed point makes the remaining sweeps no-ops — stop.
    if (EmSweep(pattern_counts, num_attrs, total, &model)) break;
  }
  return model;
}

FellegiSunterModel FitFellegiSunterWarm(
    const std::vector<std::pair<uint32_t, double>>& pattern_counts,
    int num_attrs, int em_iterations, const FellegiSunterModel& warm_start,
    bool* warm_hit) {
  *warm_hit = false;
  if (em_iterations >= kMinIterationsForWarmStart &&
      static_cast<int>(warm_start.m.size()) == num_attrs &&
      static_cast<int>(warm_start.u.size()) == num_attrs) {
    double total = 0.0;
    for (const auto& [pattern, count] : pattern_counts) total += count;
    FellegiSunterModel model = warm_start;
    for (int iter = 0; iter < kWarmStartSweeps; ++iter) {
      if (EmSweep(pattern_counts, num_attrs, total, &model)) {
        *warm_hit = true;
        return model;
      }
    }
  }
  return FitFellegiSunter(pattern_counts, num_attrs, em_iterations);
}

FellegiSunterModel FitFellegiSunter(const std::vector<double>& pattern_counts,
                                    int num_attrs, int em_iterations) {
  // Ascending-pattern nonzero entries run through the identical arithmetic
  // (the dense E-step skipped count <= 0 patterns anyway).
  std::vector<std::pair<uint32_t, double>> sparse;
  for (uint32_t p = 0; p < pattern_counts.size(); ++p) {
    if (pattern_counts[p] > 0.0) sparse.emplace_back(p, pattern_counts[p]);
  }
  return FitFellegiSunter(sparse, num_attrs, em_iterations);
}

namespace {

class BoundPrl : public BoundMeasure {
 public:
  BoundPrl(const Dataset& original, const std::vector<int>& attrs,
           int em_iterations)
      : original_(&original), attrs_(attrs), em_iterations_(em_iterations) {
    // Pattern clustering of the original rows: agreement patterns depend
    // only on the code tuples, so state builds fold per (cluster, masked
    // group) pair instead of per row pair.
    clusters_ = PatternIndex::Build(original, attrs,
                                    ResolveShardCount(GetDataPlane()));
  }

  double Compute(const Dataset& masked) const override {
    int64_t n = original_->num_rows();
    int num_attrs = static_cast<int>(attrs_.size());
    size_t num_patterns = static_cast<size_t>(1) << num_attrs;

    // Pass 1: agreement-pattern counts over all pairs, parallel over i with
    // per-row local counters (counts are integers, so the reduction order
    // cannot change the result). For wide pattern spaces the per-row
    // counters would dominate memory, so fall back to a serial sweep.
    std::vector<double> counts(num_patterns, 0.0);
    if (num_patterns <= 1024) {
      std::vector<std::vector<double>> row_counts(
          static_cast<size_t>(n), std::vector<double>(num_patterns, 0.0));
      ParallelFor(0, n, [&](int64_t i) {
        auto& local = row_counts[static_cast<size_t>(i)];
        for (int64_t j = 0; j < n; ++j) {
          local[PatternOf(i, masked, j)] += 1.0;
        }
      });
      for (const auto& local : row_counts) {
        for (size_t p = 0; p < num_patterns; ++p) counts[p] += local[p];
      }
    } else {
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          counts[PatternOf(i, masked, j)] += 1.0;
        }
      }
    }

    FellegiSunterModel model = FitFellegiSunter(counts, num_attrs, em_iterations_);
    std::vector<double> weights(num_patterns);
    for (uint32_t p = 0; p < num_patterns; ++p) {
      weights[p] = model.PatternWeight(p);
    }

    // Pass 2: link each original record to the max-weight masked record.
    std::vector<double> credits(static_cast<size_t>(n), 0.0);
    ParallelFor(0, n, [&](int64_t i) {
      double best = -1e100;
      int64_t best_count = 0;
      bool self_is_best = false;
      for (int64_t j = 0; j < n; ++j) {
        double w = weights[PatternOf(i, masked, j)];
        if (w > best + kEps) {
          best = w;
          best_count = 1;
          self_is_best = (j == i);
        } else if (w >= best - kEps) {
          ++best_count;
          if (j == i) self_is_best = true;
        }
      }
      if (self_is_best && best_count > 0) {
        credits[static_cast<size_t>(i)] = 1.0 / static_cast<double>(best_count);
      }
    });
    double credit = 0.0;
    for (double c : credits) credit += c;
    return n > 0 ? 100.0 * credit / static_cast<double>(n) : 0.0;
  }

  std::unique_ptr<MeasureState> BindState(const Dataset& masked) const override;

  uint32_t PatternOf(int64_t orig_row, const Dataset& masked,
                     int64_t masked_row) const {
    uint32_t pattern = 0;
    for (size_t k = 0; k < attrs_.size(); ++k) {
      if (original_->Code(orig_row, attrs_[k]) ==
          masked.Code(masked_row, attrs_[k])) {
        pattern |= (1u << k);
      }
    }
    return pattern;
  }

  /// \brief Agreement pattern from two flat code tuples (bound order) —
  /// the same bit layout as `PatternOf` for equal codes.
  uint32_t PatternOfCodes(const int32_t* orig_codes,
                          const int32_t* masked_codes) const {
    uint32_t pattern = 0;
    for (size_t k = 0; k < attrs_.size(); ++k) {
      if (orig_codes[k] == masked_codes[k]) pattern |= (1u << k);
    }
    return pattern;
  }

  const Dataset& original() const { return *original_; }
  const std::vector<int>& attrs() const { return attrs_; }
  int em_iterations() const { return em_iterations_; }
  const PatternIndex& clusters() const { return clusters_; }

 private:
  const Dataset* original_;
  std::vector<int> attrs_;
  int em_iterations_;
  PatternIndex clusters_;
};

/// PRL's sufficient statistic is, per original record, the histogram of
/// agreement patterns against every masked record (plus the global pattern
/// counts feeding the EM fit). The histograms are *compressed*: each record
/// keeps a sorted sparse (pattern, count) vector instead of the former dense
/// 2^attrs layout, so the state works at any attribute count (a record can
/// meet at most n distinct patterns no matter how wide the pattern space
/// is). A changed masked record j shifts one histogram unit per original
/// record — O(n · |attrs| + n · log(distinct)) per changed row — after
/// which the EM refit reads the sorted nonzero global counts (identical
/// arithmetic to the dense oracle) and the per-record argmax reads only the
/// record's own nonzero buckets. Cost model: the per-changed-row histogram
/// shifts (two pattern computes plus two sorted-bucket updates per original
/// record) overtake the flat O(n² · |attrs|) rebuild once a batch covers
/// roughly a fifth of the protected cells — fraction 0.2.
class PrlState : public MeasureState {
 public:
  PrlState(const BoundPrl* bound, const Dataset& masked)
      : MeasureState(/*default_rebuild_fraction=*/0.2),
        bound_(bound),
        shards_(GetDataPlane().sharded ? ResolveShardCount(GetDataPlane())
                                       : 1) {
    InitFrom(masked);
    undo_.counts = core_.counts;
    undo_.score = core_.score;
  }

  void ApplySegment(const Dataset& masked_after,
                    const SegmentDelta& segment) override {
    undo_.counts = core_.counts;
    undo_.score = core_.score;
    undo_.em_model = em_model_;
    undo_.warm_em = warm_em_;
    undo_.shifts.clear();
    undo_.rebuilt = false;
    warm_small_delta_ = segment.num_cells() <= kMaxWarmSegmentCells;
    if (segment.num_cells() >= full_rebuild_threshold()) {
      undo_.rebuilt = true;
      undo_.hist_backup = core_.hist;
      InitFrom(masked_after);
      return;
    }
    const auto& row_deltas = segment.rows();
    if (row_deltas.empty()) return;

    const auto& attrs = bound_->attrs();
    int64_t n = bound_->original().num_rows();
    scratch_.resize(static_cast<size_t>(n));

    for (const RowDelta& rd : row_deltas) {
      bool relevant = false;
      for (const auto& cell : rd.cells) {
        for (int attr : attrs) relevant = relevant || cell.attr == attr;
      }
      if (!relevant) continue;
      // Per original record: shift one histogram unit from the changed
      // row's old pattern to its new one. The (old, new) pairs land in a
      // reused dense scratch; only records whose pattern actually moved are
      // logged (sparsely) for Revert and folded into the global counts, so
      // the undo footprint is bounded by real shifts, not n per row.
      ParallelFor(0, n, [&](int64_t i) {
        uint32_t p_old = 0, p_new = 0;
        for (size_t k = 0; k < attrs.size(); ++k) {
          int32_t orig_code = bound_->original().Code(i, attrs[k]);
          if (orig_code == rd.OldCode(masked_after, attrs[k])) {
            p_old |= (1u << k);
          }
          if (orig_code == masked_after.Code(rd.row, attrs[k])) {
            p_new |= (1u << k);
          }
        }
        scratch_[static_cast<size_t>(i)] =
            (static_cast<uint64_t>(p_old) << 32) | p_new;
        if (p_old != p_new) {
          auto& hist = core_.hist[static_cast<size_t>(i)];
          Shift(&hist, p_old, -1);
          Shift(&hist, p_new, +1);
        }
      });
      for (int64_t i = 0; i < n; ++i) {
        auto p_old = static_cast<uint32_t>(scratch_[static_cast<size_t>(i)] >> 32);
        auto p_new = static_cast<uint32_t>(scratch_[static_cast<size_t>(i)] &
                                           0xFFFFFFFFu);
        if (p_old != p_new) {
          undo_.shifts.push_back(Undo::Shift{i, p_old, p_new});
          --count_shifts_[p_old];
          ++count_shifts_[p_new];
        }
      }
    }
    // Global pattern counts are the histograms' column sums; integer
    // arithmetic, so shifting them by the batch's net per-pattern movement
    // lands on exactly the values a from-scratch resum produces.
    MergeCountShifts();
    RefreshScore(masked_after);
  }

  void RevertSegment() override {
    if (undo_.rebuilt) {
      core_.hist = undo_.hist_backup;
    } else {
      // Replay the logged shifts backwards (reverse order keeps multiple
      // shifts of the same record consistent).
      for (auto it = undo_.shifts.rbegin(); it != undo_.shifts.rend(); ++it) {
        auto& hist = core_.hist[static_cast<size_t>(it->record)];
        Shift(&hist, it->p_new, -1);
        Shift(&hist, it->p_old, +1);
      }
    }
    core_.counts = undo_.counts;
    core_.score = undo_.score;
    em_model_ = undo_.em_model;
    warm_em_ = undo_.warm_em;
    undo_.shifts.clear();
  }

  double Score() const override { return core_.score; }

 private:
  /// One nonzero histogram bucket: agreement pattern and its pair count.
  using PatternCount = std::pair<uint32_t, int32_t>;

  struct Core {
    /// Sorted nonzero global pattern counts (EM input).
    std::vector<std::pair<uint32_t, double>> counts;
    /// Per original record: sorted sparse (pattern, count) histogram of the
    /// agreement patterns against every masked record.
    std::vector<std::vector<PatternCount>> hist;
    double score = 0.0;
  };

  /// One-level undo: counts/score snapshots are small; histogram changes
  /// are replayed backwards from a sparse log of the records whose pattern
  /// actually moved — sized by real shifts, never by n x changed rows.
  struct Undo {
    /// One histogram unit moved from `p_old` to `p_new` for `record`.
    struct Shift {
      int64_t record;
      uint32_t p_old;
      uint32_t p_new;
    };
    std::vector<std::pair<uint32_t, double>> counts;
    double score = 0.0;
    std::vector<Shift> shifts;
    bool rebuilt = false;
    std::vector<std::vector<PatternCount>> hist_backup;
    /// Carried EM model snapshot so a reverted apply also rewinds the next
    /// refit's warm-start point (keeps replayed walks bit-reproducible).
    FellegiSunterModel em_model;
    bool warm_em = false;
  };

  /// Moves `delta` units of count into `pattern`'s bucket, keeping the
  /// histogram sorted and zero-free.
  static void Shift(std::vector<PatternCount>* hist, uint32_t pattern,
                    int32_t delta) {
    auto it = std::lower_bound(
        hist->begin(), hist->end(), pattern,
        [](const PatternCount& entry, uint32_t p) { return entry.first < p; });
    if (it != hist->end() && it->first == pattern) {
      it->second += delta;
      if (it->second == 0) hist->erase(it);
    } else {
      hist->insert(it, PatternCount{pattern, delta});
    }
  }

  /// Pattern-clustered build: rows sharing an original code tuple share the
  /// whole histogram, so one O(G) fold per *cluster* (over the masked
  /// pattern groups) replaces n O(n) row scans, then fans out per row. The
  /// bucket counts are integer sums of group sizes — identical to the former
  /// per-row, per-record counting for any shard count.
  void InitFrom(const Dataset& masked) {
    const auto& attrs = bound_->attrs();
    int64_t n = bound_->original().num_rows();
    size_t num_attrs = attrs.size();
    const PatternIndex& clusters = bound_->clusters();
    MaskedGroups groups = MaskedGroups::Build(masked, attrs, shards_);
    int64_t num_clusters = clusters.num_clusters();
    int64_t num_groups = groups.num_groups();
    // Narrow pattern spaces count into a dense per-cluster scratch; wide
    // ones sort the cluster's (pattern, group size) pairs and merge. Both
    // produce the same sorted nonzero buckets.
    const bool dense_scratch =
        num_attrs <= 12;  // 2^12 * 8 bytes of scratch per cluster
    std::vector<std::vector<PatternCount>> cluster_hist(
        static_cast<size_t>(num_clusters));
    ParallelFor(0, num_clusters, [&](int64_t c) {
      auto& hist = cluster_hist[static_cast<size_t>(c)];
      const int32_t* cluster_codes = clusters.codes(c);
      if (dense_scratch) {
        std::vector<int64_t> scratch(static_cast<size_t>(1) << num_attrs, 0);
        for (int64_t g = 0; g < num_groups; ++g) {
          int64_t size = groups.group_size(g);
          if (size <= 0) continue;
          scratch[bound_->PatternOfCodes(cluster_codes, groups.codes(g))] +=
              size;
        }
        for (size_t p = 0; p < scratch.size(); ++p) {
          if (scratch[p] != 0) {
            hist.emplace_back(static_cast<uint32_t>(p),
                              static_cast<int32_t>(scratch[p]));
          }
        }
      } else {
        std::vector<std::pair<uint32_t, int64_t>> pairs;
        pairs.reserve(static_cast<size_t>(num_groups));
        for (int64_t g = 0; g < num_groups; ++g) {
          int64_t size = groups.group_size(g);
          if (size <= 0) continue;
          pairs.emplace_back(
              bound_->PatternOfCodes(cluster_codes, groups.codes(g)), size);
        }
        std::sort(pairs.begin(), pairs.end());
        for (size_t j = 0; j < pairs.size();) {
          size_t run = j;
          int64_t count = 0;
          while (run < pairs.size() && pairs[run].first == pairs[j].first) {
            count += pairs[run].second;
            ++run;
          }
          hist.emplace_back(pairs[j].first, static_cast<int32_t>(count));
          j = run;
        }
      }
    });
    core_.hist.assign(static_cast<size_t>(n), {});
    ParallelFor(0, n, [&](int64_t i) {
      core_.hist[static_cast<size_t>(i)] =
          cluster_hist[static_cast<size_t>(clusters.cluster_of(i))];
    });
    RefreshCounts();
    // Full builds define the oracle semantics: always refit cold.
    warm_em_ = false;
    RefreshScore(masked);
  }

  void RefreshCounts() {
    // Column sums over integer buckets: exact in any accumulation order.
    std::unordered_map<uint32_t, int64_t> totals;
    for (const auto& hist : core_.hist) {
      for (const auto& [pattern, count] : hist) totals[pattern] += count;
    }
    core_.counts.clear();
    core_.counts.reserve(totals.size());
    for (const auto& [pattern, count] : totals) {
      if (count != 0) {
        core_.counts.emplace_back(pattern, static_cast<double>(count));
      }
    }
    std::sort(core_.counts.begin(), core_.counts.end());
  }

  /// Applies the batch's accumulated per-pattern count movement to the
  /// sorted global counts in one linear merge (counts are integer-valued,
  /// so the shifted totals equal a from-scratch resum exactly).
  void MergeCountShifts() {
    if (count_shifts_.empty()) return;
    std::vector<std::pair<uint32_t, double>> shifts;
    shifts.reserve(count_shifts_.size());
    for (const auto& [pattern, delta] : count_shifts_) {
      if (delta != 0) shifts.emplace_back(pattern, static_cast<double>(delta));
    }
    count_shifts_.clear();
    if (shifts.empty()) return;
    std::sort(shifts.begin(), shifts.end());
    std::vector<std::pair<uint32_t, double>> merged;
    merged.reserve(core_.counts.size() + shifts.size());
    size_t a = 0, b = 0;
    while (a < core_.counts.size() || b < shifts.size()) {
      if (b >= shifts.size() || (a < core_.counts.size() &&
                                 core_.counts[a].first < shifts[b].first)) {
        merged.push_back(core_.counts[a++]);
      } else if (a >= core_.counts.size() ||
                 shifts[b].first < core_.counts[a].first) {
        merged.push_back(shifts[b++]);
      } else {
        double value = core_.counts[a].second + shifts[b].second;
        if (value != 0.0) merged.emplace_back(core_.counts[a].first, value);
        ++a;
        ++b;
      }
    }
    core_.counts = std::move(merged);
  }

  void RefreshScore(const Dataset& masked) {
    const auto& attrs = bound_->attrs();
    int64_t n = bound_->original().num_rows();
    // Delta refits warm-start EM from the previous model (a small count
    // shift leaves the fixed point at or next to the old one — 1–3 sweeps
    // instead of the full budget); first fits, rebuilds and heavy segments
    // (see kMaxWarmSegmentCells) run cold.
    FellegiSunterModel model;
    if (warm_em_ && warm_small_delta_) {
      bool hit = false;
      model =
          FitFellegiSunterWarm(core_.counts, static_cast<int>(attrs.size()),
                               bound_->em_iterations(), em_model_, &hit);
      (hit ? EmWarmHitsCounter() : EmColdStartsCounter())->Increment();
    } else {
      model = FitFellegiSunter(core_.counts, static_cast<int>(attrs.size()),
                               bound_->em_iterations());
      EmColdStartsCounter()->Increment();
    }
    em_model_ = model;
    warm_em_ = true;
    // Weights for exactly the patterns alive somewhere in the file; every
    // record's buckets (and its self pattern) are a subset of these.
    std::vector<double> weights(core_.counts.size());
    for (size_t idx = 0; idx < core_.counts.size(); ++idx) {
      weights[idx] = model.PatternWeight(core_.counts[idx].first);
    }
    auto weight_of = [&](uint32_t pattern) {
      auto it = std::lower_bound(
          core_.counts.begin(), core_.counts.end(), pattern,
          [](const std::pair<uint32_t, double>& entry, uint32_t p) {
            return entry.first < p;
          });
      if (it != core_.counts.end() && it->first == pattern) {
        return weights[static_cast<size_t>(it - core_.counts.begin())];
      }
      return model.PatternWeight(pattern);
    };
    std::vector<double> credits(static_cast<size_t>(n), 0.0);
    ParallelFor(0, n, [&](int64_t i) {
      const auto& hist = core_.hist[static_cast<size_t>(i)];
      // Best weight attained by any masked record, support size, and whether
      // the true match is in the support (scan-equivalent, see Compute).
      double best = -1e100;
      for (const auto& [pattern, count] : hist) {
        if (count > 0) {
          double w = weight_of(pattern);
          if (w > best) best = w;
        }
      }
      int64_t best_count = 0;
      for (const auto& [pattern, count] : hist) {
        if (count > 0 && weight_of(pattern) >= best - kEps) {
          best_count += count;
        }
      }
      uint32_t p_self = bound_->PatternOf(i, masked, i);
      bool self_is_best = weight_of(p_self) >= best - kEps;
      if (self_is_best && best_count > 0) {
        credits[static_cast<size_t>(i)] = 1.0 / static_cast<double>(best_count);
      }
    });
    double credit = 0.0;
    for (double c : credits) credit += c;
    core_.score = n > 0 ? 100.0 * credit / static_cast<double>(n) : 0.0;
  }

  const BoundPrl* bound_;
  int shards_;
  Core core_;
  Undo undo_;
  /// Previous refit's EM model — the next delta refit's warm-start point.
  FellegiSunterModel em_model_;
  bool warm_em_ = false;
  /// True when the segment being applied is small enough for a warm refit
  /// (see kMaxWarmSegmentCells); set at the top of every ApplySegment.
  bool warm_small_delta_ = false;
  /// Reused dense (p_old, p_new) scratch for one changed row's parallel
  /// pattern pass (one allocation per state, not per row).
  std::vector<uint64_t> scratch_;
  /// Scratch for the current batch's net global-count movement.
  std::unordered_map<uint32_t, int64_t> count_shifts_;
};

/// Cluster-level PRL state (the sharded data plane): one compressed
/// histogram per *original cluster* instead of per row, scaled by cluster
/// size into the global counts. A changed masked row shifts one unit in
/// each cluster's histogram — O(C * |attrs|) per changed row instead of
/// O(n * |attrs|) — and each row keeps only its own self pattern. All
/// arithmetic (bucket counts, global counts, EM fit, per-cluster argmax,
/// serial row-order credit) reproduces the row-oriented state bit for bit.
class ClusteredPrlState : public MeasureState {
 public:
  ClusteredPrlState(const BoundPrl* bound, const Dataset& masked)
      : MeasureState(/*default_rebuild_fraction=*/0.2),
        bound_(bound),
        shards_(ResolveShardCount(GetDataPlane())) {
    InitFrom(masked);
    undo_.counts = counts_;
    undo_.score = score_;
  }

  void ApplySegment(const Dataset& masked_after,
                    const SegmentDelta& segment) override {
    undo_.counts = counts_;
    undo_.score = score_;
    undo_.em_model = em_model_;
    undo_.warm_em = warm_em_;
    undo_.shifts.clear();
    undo_.p_self.clear();
    undo_.rebuilt = false;
    warm_small_delta_ = segment.num_cells() <= kMaxWarmSegmentCells;
    if (segment.num_cells() >= full_rebuild_threshold()) {
      undo_.rebuilt = true;
      undo_.hist_backup = cluster_hist_;
      undo_.p_self_backup = p_self_;
      InitFrom(masked_after);
      return;
    }
    const auto& row_deltas = segment.rows();
    if (row_deltas.empty()) return;

    const auto& attrs = bound_->attrs();
    const PatternIndex& clusters = bound_->clusters();
    size_t num_attrs = attrs.size();
    int64_t num_clusters = clusters.num_clusters();
    scratch_.resize(static_cast<size_t>(num_clusters));

    for (const RowDelta& rd : row_deltas) {
      bool relevant = false;
      for (const auto& cell : rd.cells) {
        for (int attr : attrs) relevant = relevant || cell.attr == attr;
      }
      if (!relevant) continue;
      rd_codes_.assign(2 * num_attrs, 0);
      int32_t* old_codes = rd_codes_.data();
      int32_t* new_codes = old_codes + num_attrs;
      for (size_t k = 0; k < num_attrs; ++k) {
        old_codes[k] = rd.OldCode(masked_after, attrs[k]);
        new_codes[k] = masked_after.Code(rd.row, attrs[k]);
      }
      // Per original cluster: shift one histogram unit from the changed
      // row's old pattern to its new one (every member row sees the same
      // transition).
      ParallelFor(0, num_clusters, [&](int64_t c) {
        const int32_t* cluster_codes = clusters.codes(c);
        uint32_t p_old = bound_->PatternOfCodes(cluster_codes, old_codes);
        uint32_t p_new = bound_->PatternOfCodes(cluster_codes, new_codes);
        scratch_[static_cast<size_t>(c)] =
            (static_cast<uint64_t>(p_old) << 32) | p_new;
        if (p_old != p_new) {
          auto& hist = cluster_hist_[static_cast<size_t>(c)];
          Shift(&hist, p_old, -1);
          Shift(&hist, p_new, +1);
        }
      });
      for (int64_t c = 0; c < num_clusters; ++c) {
        auto p_old =
            static_cast<uint32_t>(scratch_[static_cast<size_t>(c)] >> 32);
        auto p_new = static_cast<uint32_t>(scratch_[static_cast<size_t>(c)] &
                                           0xFFFFFFFFu);
        if (p_old != p_new) {
          undo_.shifts.push_back(Undo::Shift{c, p_old, p_new});
          int64_t size = clusters.cluster_size(c);
          count_shifts_[p_old] -= size;
          count_shifts_[p_new] += size;
        }
      }
      // The changed row's own self pattern.
      int32_t self_cluster = clusters.cluster_of(rd.row);
      undo_.p_self.push_back(
          PselfUndo{rd.row, p_self_[static_cast<size_t>(rd.row)]});
      p_self_[static_cast<size_t>(rd.row)] =
          bound_->PatternOfCodes(clusters.codes(self_cluster), new_codes);
    }
    MergeCountShifts();
    RefreshScore();
  }

  void RevertSegment() override {
    if (undo_.rebuilt) {
      cluster_hist_ = undo_.hist_backup;
      p_self_ = undo_.p_self_backup;
    } else {
      for (auto it = undo_.shifts.rbegin(); it != undo_.shifts.rend(); ++it) {
        auto& hist = cluster_hist_[static_cast<size_t>(it->cluster)];
        Shift(&hist, it->p_new, -1);
        Shift(&hist, it->p_old, +1);
      }
      for (auto it = undo_.p_self.rbegin(); it != undo_.p_self.rend(); ++it) {
        p_self_[static_cast<size_t>(it->row)] = it->old_pattern;
      }
    }
    counts_ = undo_.counts;
    score_ = undo_.score;
    em_model_ = undo_.em_model;
    warm_em_ = undo_.warm_em;
    undo_.shifts.clear();
    undo_.p_self.clear();
  }

  double Score() const override { return score_; }

 private:
  using PatternCount = std::pair<uint32_t, int32_t>;

  struct PselfUndo {
    int64_t row;
    uint32_t old_pattern;
  };

  struct Undo {
    struct Shift {
      int64_t cluster;
      uint32_t p_old;
      uint32_t p_new;
    };
    std::vector<std::pair<uint32_t, double>> counts;
    double score = 0.0;
    std::vector<Shift> shifts;
    std::vector<PselfUndo> p_self;
    bool rebuilt = false;
    std::vector<std::vector<PatternCount>> hist_backup;
    std::vector<uint32_t> p_self_backup;
    /// Carried EM model snapshot — see PrlState::Undo.
    FellegiSunterModel em_model;
    bool warm_em = false;
  };

  static void Shift(std::vector<PatternCount>* hist, uint32_t pattern,
                    int32_t delta) {
    auto it = std::lower_bound(
        hist->begin(), hist->end(), pattern,
        [](const PatternCount& entry, uint32_t p) { return entry.first < p; });
    if (it != hist->end() && it->first == pattern) {
      it->second += delta;
      if (it->second == 0) hist->erase(it);
    } else {
      hist->insert(it, PatternCount{pattern, delta});
    }
  }

  void InitFrom(const Dataset& masked) {
    const auto& attrs = bound_->attrs();
    int64_t n = bound_->original().num_rows();
    size_t num_attrs = attrs.size();
    const PatternIndex& clusters = bound_->clusters();
    MaskedGroups groups = MaskedGroups::Build(masked, attrs, shards_);
    int64_t num_clusters = clusters.num_clusters();
    int64_t num_groups = groups.num_groups();
    const bool dense_scratch = num_attrs <= 12;
    cluster_hist_.assign(static_cast<size_t>(num_clusters), {});
    ParallelFor(0, num_clusters, [&](int64_t c) {
      auto& hist = cluster_hist_[static_cast<size_t>(c)];
      const int32_t* cluster_codes = clusters.codes(c);
      if (dense_scratch) {
        std::vector<int64_t> scratch(static_cast<size_t>(1) << num_attrs, 0);
        for (int64_t g = 0; g < num_groups; ++g) {
          int64_t size = groups.group_size(g);
          if (size <= 0) continue;
          scratch[bound_->PatternOfCodes(cluster_codes, groups.codes(g))] +=
              size;
        }
        for (size_t p = 0; p < scratch.size(); ++p) {
          if (scratch[p] != 0) {
            hist.emplace_back(static_cast<uint32_t>(p),
                              static_cast<int32_t>(scratch[p]));
          }
        }
      } else {
        std::vector<std::pair<uint32_t, int64_t>> pairs;
        pairs.reserve(static_cast<size_t>(num_groups));
        for (int64_t g = 0; g < num_groups; ++g) {
          int64_t size = groups.group_size(g);
          if (size <= 0) continue;
          pairs.emplace_back(
              bound_->PatternOfCodes(cluster_codes, groups.codes(g)), size);
        }
        std::sort(pairs.begin(), pairs.end());
        for (size_t j = 0; j < pairs.size();) {
          size_t run = j;
          int64_t count = 0;
          while (run < pairs.size() && pairs[run].first == pairs[j].first) {
            count += pairs[run].second;
            ++run;
          }
          hist.emplace_back(pairs[j].first, static_cast<int32_t>(count));
          j = run;
        }
      }
    });
    p_self_.assign(static_cast<size_t>(n), 0);
    ParallelFor(0, n, [&](int64_t i) {
      p_self_[static_cast<size_t>(i)] = bound_->PatternOfCodes(
          clusters.codes(clusters.cluster_of(i)),
          groups.codes(groups.group_of(i)));
    });
    RefreshCounts();
    // Full builds define the oracle semantics: always refit cold.
    warm_em_ = false;
    RefreshScore();
  }

  /// Global counts are the cluster histograms' column sums scaled by
  /// cluster size — the same integer totals as summing per-row histograms.
  void RefreshCounts() {
    const PatternIndex& clusters = bound_->clusters();
    std::unordered_map<uint32_t, int64_t> totals;
    for (int64_t c = 0; c < clusters.num_clusters(); ++c) {
      int64_t size = clusters.cluster_size(c);
      for (const auto& [pattern, count] : cluster_hist_[static_cast<size_t>(c)]) {
        totals[pattern] += size * count;
      }
    }
    counts_.clear();
    counts_.reserve(totals.size());
    for (const auto& [pattern, count] : totals) {
      if (count != 0) {
        counts_.emplace_back(pattern, static_cast<double>(count));
      }
    }
    std::sort(counts_.begin(), counts_.end());
  }

  void MergeCountShifts() {
    if (count_shifts_.empty()) return;
    std::vector<std::pair<uint32_t, double>> shifts;
    shifts.reserve(count_shifts_.size());
    for (const auto& [pattern, delta] : count_shifts_) {
      if (delta != 0) shifts.emplace_back(pattern, static_cast<double>(delta));
    }
    count_shifts_.clear();
    if (shifts.empty()) return;
    std::sort(shifts.begin(), shifts.end());
    std::vector<std::pair<uint32_t, double>> merged;
    merged.reserve(counts_.size() + shifts.size());
    size_t a = 0, b = 0;
    while (a < counts_.size() || b < shifts.size()) {
      if (b >= shifts.size() ||
          (a < counts_.size() && counts_[a].first < shifts[b].first)) {
        merged.push_back(counts_[a++]);
      } else if (a >= counts_.size() || shifts[b].first < counts_[a].first) {
        merged.push_back(shifts[b++]);
      } else {
        double value = counts_[a].second + shifts[b].second;
        if (value != 0.0) merged.emplace_back(counts_[a].first, value);
        ++a;
        ++b;
      }
    }
    counts_ = std::move(merged);
  }

  void RefreshScore() {
    const auto& attrs = bound_->attrs();
    const PatternIndex& clusters = bound_->clusters();
    int64_t n = bound_->original().num_rows();
    int64_t num_clusters = clusters.num_clusters();
    size_t num_attrs = attrs.size();
    // Warm-start delta refits exactly as in PrlState — identical counts,
    // identical carried models and the same segment-size gate on both planes
    // keep the refit arithmetic (and thus the cross-plane bitwise equality)
    // intact.
    FellegiSunterModel model;
    if (warm_em_ && warm_small_delta_) {
      bool hit = false;
      model = FitFellegiSunterWarm(counts_, static_cast<int>(num_attrs),
                                   bound_->em_iterations(), em_model_, &hit);
      (hit ? EmWarmHitsCounter() : EmColdStartsCounter())->Increment();
    } else {
      model = FitFellegiSunter(counts_, static_cast<int>(num_attrs),
                               bound_->em_iterations());
      EmColdStartsCounter()->Increment();
    }
    em_model_ = model;
    warm_em_ = true;
    std::vector<double> weights(counts_.size());
    for (size_t idx = 0; idx < counts_.size(); ++idx) {
      weights[idx] = model.PatternWeight(counts_[idx].first);
    }
    auto weight_of = [&](uint32_t pattern) {
      auto it = std::lower_bound(
          counts_.begin(), counts_.end(), pattern,
          [](const std::pair<uint32_t, double>& entry, uint32_t p) {
            return entry.first < p;
          });
      if (it != counts_.end() && it->first == pattern) {
        return weights[static_cast<size_t>(it - counts_.begin())];
      }
      return model.PatternWeight(pattern);
    };
    // Per-cluster best weight and support (identical bucket scan to the
    // row-oriented state — a cluster's histogram is each member's).
    cluster_best_.assign(static_cast<size_t>(num_clusters), 0.0);
    cluster_best_count_.assign(static_cast<size_t>(num_clusters), 0);
    ParallelFor(0, num_clusters, [&](int64_t c) {
      const auto& hist = cluster_hist_[static_cast<size_t>(c)];
      double best = -1e100;
      for (const auto& [pattern, count] : hist) {
        if (count > 0) {
          double w = weight_of(pattern);
          if (w > best) best = w;
        }
      }
      int64_t best_count = 0;
      for (const auto& [pattern, count] : hist) {
        if (count > 0 && weight_of(pattern) >= best - kEps) {
          best_count += count;
        }
      }
      cluster_best_[static_cast<size_t>(c)] = best;
      cluster_best_count_[static_cast<size_t>(c)] = best_count;
    });
    // Dense self-pattern weight cache (narrow spaces): same values as
    // weight_of, one array read per row in the serial credit loop.
    std::vector<double>* dense = nullptr;
    if (num_attrs <= 12) {
      size_t num_patterns = static_cast<size_t>(1) << num_attrs;
      dense_weights_.resize(num_patterns);
      for (size_t p = 0; p < num_patterns; ++p) {
        dense_weights_[p] = weight_of(static_cast<uint32_t>(p));
      }
      dense = &dense_weights_;
    }
    double credit = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      auto c = static_cast<size_t>(clusters.cluster_of(i));
      uint32_t p_self = p_self_[static_cast<size_t>(i)];
      double w_self = dense ? (*dense)[p_self] : weight_of(p_self);
      if (w_self >= cluster_best_[c] - kEps && cluster_best_count_[c] > 0) {
        credit += 1.0 / static_cast<double>(cluster_best_count_[c]);
      }
    }
    score_ = n > 0 ? 100.0 * credit / static_cast<double>(n) : 0.0;
  }

  const BoundPrl* bound_;
  int shards_;
  std::vector<std::vector<PatternCount>> cluster_hist_;
  std::vector<std::pair<uint32_t, double>> counts_;
  std::vector<uint32_t> p_self_;
  double score_ = 0.0;
  Undo undo_;
  /// Previous refit's EM model — the next delta refit's warm-start point.
  FellegiSunterModel em_model_;
  bool warm_em_ = false;
  /// Mirrors PrlState::warm_small_delta_ — same segment, same gate.
  bool warm_small_delta_ = false;
  // Per-apply scratch, reused across generations.
  std::vector<uint64_t> scratch_;
  std::vector<int32_t> rd_codes_;
  std::vector<double> cluster_best_;
  std::vector<int64_t> cluster_best_count_;
  std::vector<double> dense_weights_;
  std::unordered_map<uint32_t, int64_t> count_shifts_;
};

std::unique_ptr<MeasureState> BoundPrl::BindState(const Dataset& masked) const {
  // The compressed histograms hold at most one bucket per distinct pattern a
  // record actually meets (<= n each), so the state serves any attribute
  // count the measure accepts — no dense-layout attribute cap, no memory
  // cliff.
  if (GetDataPlane().sharded) {
    return std::make_unique<ClusteredPrlState>(this, masked);
  }
  return std::make_unique<PrlState>(this, masked);
}

}  // namespace

Result<std::unique_ptr<BoundMeasure>> ProbabilisticRecordLinkage::Bind(
    const Dataset& original, const std::vector<int>& attrs) const {
  if (attrs.size() > 20) {
    return Status::Invalid("PRL agreement patterns limited to 20 attributes");
  }
  if (em_iterations_ < 1) {
    return Status::Invalid("PRL needs at least one EM iteration");
  }
  return std::unique_ptr<BoundMeasure>(
      new BoundPrl(original, attrs, em_iterations_));
}

void RegisterPrlMeasure(MeasureRegistry* registry) {
  registry->Register(
      "PRL", [](const ParamMap& params) -> Result<std::unique_ptr<Measure>> {
        ParamReader reader("PRL", params);
        int64_t em_iterations = reader.GetInt("em_iterations", 50);
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        return std::unique_ptr<Measure>(
            new ProbabilisticRecordLinkage(static_cast<int>(em_iterations)));
      });
}

}  // namespace metrics
}  // namespace evocat
