#include "metrics/ctbil.h"

#include "metrics/registry.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "data/packed_column.h"
#include "data/stats.h"
#include "metrics/delta.h"
#include "metrics/plane.h"

namespace evocat {
namespace metrics {

namespace {

class BoundCtbIl : public BoundMeasure {
 public:
  BoundCtbIl(const Dataset& original, std::vector<std::vector<int>> subsets)
      : subsets_(std::move(subsets)) {
    original_tables_.reserve(subsets_.size());
    for (const auto& subset : subsets_) {
      original_tables_.push_back(
          std::move(ContingencyTable::Build(original, subset)).ValueOrDie());
    }
    n_ = original.num_rows();
  }

  double Compute(const Dataset& masked) const override {
    double total = 0.0;
    for (size_t i = 0; i < subsets_.size(); ++i) {
      auto masked_table =
          std::move(ContingencyTable::Build(masked, subsets_[i])).ValueOrDie();
      total += static_cast<double>(original_tables_[i].L1Distance(masked_table));
    }
    return ScoreFromL1Total(total);
  }

  std::unique_ptr<MeasureState> BindState(const Dataset& masked) const override;

  double ScoreFromL1Total(double total) const {
    // Each table's L1 distance is at most 2n, so this lands in [0, 100].
    double denom = 2.0 * static_cast<double>(n_) *
                   static_cast<double>(subsets_.size());
    return denom > 0 ? 100.0 * total / denom : 0.0;
  }

  int64_t OriginalCount(size_t subset, uint64_t key) const {
    const auto& cells = original_tables_[subset].cells();
    auto it = cells.find(key);
    return it == cells.end() ? 0 : it->second;
  }

  const ContingencyTable& original_table(size_t subset) const {
    return original_tables_[subset];
  }

  const std::vector<std::vector<int>>& subsets() const { return subsets_; }
  int64_t num_rows() const { return n_; }

 private:
  std::vector<std::vector<int>> subsets_;
  std::vector<ContingencyTable> original_tables_;
  int64_t n_ = 0;
};

/// CTBIL compares masked and original contingency tables cell-wise. The
/// state keeps each subset's masked table plus its current L1 distance; a
/// changed row moves one unit of count from its old cell key to its new one
/// in every subset that contains a touched attribute, adjusting the L1
/// contribution of exactly those two cells. The group update is O(cells)
/// regardless of segment width, so the cost model only rebuilds for
/// genome-sized batches (fraction 1.0).
class CtbIlState : public MeasureState {
 public:
  CtbIlState(const BoundCtbIl* bound, const Dataset& masked)
      : MeasureState(/*default_rebuild_fraction=*/1.0), bound_(bound) {
    DataPlaneConfig plane = GetDataPlane();
    shards_ = plane.sharded ? ResolveShardCount(plane) : 1;
    packed_ = plane.packed;
    // Subsets that contain a given schema attribute.
    for (size_t s = 0; s < bound_->subsets().size(); ++s) {
      for (int attr : bound_->subsets()[s]) {
        if (attr >= static_cast<int>(subsets_of_attr_.size())) {
          subsets_of_attr_.resize(static_cast<size_t>(attr) + 1);
        }
        subsets_of_attr_[static_cast<size_t>(attr)].push_back(s);
      }
    }
    if (packed_) {
      // Bit-packed mirror of the union of bound attributes' masked codes:
      // maintained cell-wise under deltas, read instead of the int32 columns
      // on full rebuilds.
      std::vector<int> mirror_attrs;
      for (size_t attr = 0; attr < subsets_of_attr_.size(); ++attr) {
        if (!subsets_of_attr_[attr].empty()) {
          mirror_attrs.push_back(static_cast<int>(attr));
        }
      }
      mirror_pos_.assign(subsets_of_attr_.size(), -1);
      for (size_t pos = 0; pos < mirror_attrs.size(); ++pos) {
        mirror_pos_[static_cast<size_t>(mirror_attrs[pos])] =
            static_cast<int>(pos);
      }
      mirror_ = PackedTable::FromDataset(masked, mirror_attrs);
    }
    InitFrom(masked);
    undo_l1_ = core_.l1;
    undo_score_ = core_.score;
  }

  void ApplySegment(const Dataset& masked_after,
                    const SegmentDelta& segment) override {
    undo_cells_.clear();
    undo_l1_ = core_.l1;
    undo_score_ = core_.score;
    if (packed_) {
      // Mirror first: a threshold rebuild below reads the mirror, so it must
      // already reflect the post-image.
      mirror_undo_.clear();
      for (const CellDelta& delta : segment.cells()) {
        int pos = delta.attr < static_cast<int>(mirror_pos_.size())
                      ? mirror_pos_[static_cast<size_t>(delta.attr)]
                      : -1;
        if (pos < 0) continue;
        mirror_undo_.push_back(
            MirrorUndo{delta.row, static_cast<size_t>(pos), delta.old_code});
        mirror_.Set(delta.row, static_cast<size_t>(pos), delta.new_code);
      }
    }
    if (segment.num_cells() >= full_rebuild_threshold()) {
      backup_tables_ = core_.tables;
      reverted_by_backup_ = true;
      InitFrom(masked_after);
      return;
    }
    reverted_by_backup_ = false;

    const auto& subsets = bound_->subsets();
    std::vector<int32_t> codes;
    for (const RowDelta& row : segment.rows()) {
      // Union of subsets touched by this row's changed attributes.
      touched_.clear();
      for (const auto& cell : row.cells) {
        if (cell.attr < static_cast<int>(subsets_of_attr_.size())) {
          for (size_t s : subsets_of_attr_[static_cast<size_t>(cell.attr)]) {
            if (std::find(touched_.begin(), touched_.end(), s) == touched_.end()) {
              touched_.push_back(s);
            }
          }
        }
      }
      for (size_t s : touched_) {
        const auto& subset = subsets[s];
        codes.resize(subset.size());
        for (size_t k = 0; k < subset.size(); ++k) {
          codes[k] = row.OldCode(masked_after, subset[k]);
        }
        uint64_t old_key = ContingencyTable::PackKey(codes);
        for (size_t k = 0; k < subset.size(); ++k) {
          codes[k] = masked_after.Code(row.row, subset[k]);
        }
        uint64_t new_key = ContingencyTable::PackKey(codes);
        if (old_key == new_key) continue;
        Bump(s, old_key, -1);
        Bump(s, new_key, +1);
      }
    }
    RefreshScore();
  }

  void RevertSegment() override {
    if (packed_) {
      for (auto it = mirror_undo_.rbegin(); it != mirror_undo_.rend(); ++it) {
        mirror_.Set(it->row, it->pos, it->old_code);
      }
      mirror_undo_.clear();
    }
    if (reverted_by_backup_) {
      core_.tables = backup_tables_;
    } else {
      // Walk the log backwards restoring the first-recorded counts.
      for (auto it = undo_cells_.rbegin(); it != undo_cells_.rend(); ++it) {
        auto& cells = core_.tables[it->subset];
        if (it->old_count == 0) {
          cells.erase(it->key);
        } else {
          cells[it->key] = it->old_count;
        }
      }
    }
    core_.l1 = undo_l1_;
    core_.score = undo_score_;
    undo_cells_.clear();
  }

  double Score() const override { return core_.score; }

 private:
  struct UndoCell {
    size_t subset;
    uint64_t key;
    int64_t old_count;
  };

  /// Row-sharded table build: each shard accumulates a private cell map over
  /// its contiguous range (from the packed mirror when enabled), merged
  /// serially in shard index order. Counts are integers, so the merged table
  /// — and the int64 L1 fold below — is identical to the serial
  /// `ContingencyTable::Build` for any shard count.
  void InitFrom(const Dataset& masked) {
    const auto& subsets = bound_->subsets();
    int64_t n = bound_->num_rows();
    core_.tables.assign(subsets.size(), {});
    core_.l1.assign(subsets.size(), 0);
    for (size_t s = 0; s < subsets.size(); ++s) {
      std::vector<std::unordered_map<uint64_t, int64_t>> partials(
          static_cast<size_t>(shards_));
      if (packed_) {
        std::vector<const PackedColumn*> columns;
        columns.reserve(subsets[s].size());
        for (int attr : subsets[s]) {
          columns.push_back(&mirror_.column(static_cast<size_t>(
              mirror_pos_[static_cast<size_t>(attr)])));
        }
        ForEachShard(n, shards_, [&](int shard, RowRange range) {
          ContingencyTable::AccumulateRangePacked(
              columns, range.begin, range.end,
              &partials[static_cast<size_t>(shard)]);
        });
      } else {
        ForEachShard(n, shards_, [&](int shard, RowRange range) {
          ContingencyTable::AccumulateRange(
              masked, subsets[s], range.begin, range.end,
              &partials[static_cast<size_t>(shard)]);
        });
      }
      core_.tables[s] = std::move(partials[0]);
      for (int shard = 1; shard < shards_; ++shard) {
        for (const auto& [key, count] : partials[static_cast<size_t>(shard)]) {
          core_.tables[s][key] += count;
        }
      }
      int64_t l1 = 0;
      for (const auto& [key, count] : core_.tables[s]) {
        l1 += std::llabs(count - bound_->OriginalCount(s, key));
      }
      // Cells present only in the original table.
      for (const auto& [key, count] : bound_->original_table(s).cells()) {
        if (core_.tables[s].find(key) == core_.tables[s].end()) {
          l1 += std::llabs(count);
        }
      }
      core_.l1[s] = l1;
    }
    RefreshScore();
  }

  void Bump(size_t s, uint64_t key, int64_t delta) {
    auto& cells = core_.tables[s];
    auto [it, inserted] = cells.try_emplace(key, 0);
    int64_t before = it->second;
    undo_cells_.push_back(UndoCell{s, key, before});
    int64_t after = before + delta;
    int64_t orig = bound_->OriginalCount(s, key);
    core_.l1[s] += std::llabs(after - orig) - std::llabs(before - orig);
    if (after == 0) {
      cells.erase(it);
    } else {
      it->second = after;
    }
  }

  void RefreshScore() {
    double total = 0.0;
    for (int64_t l1 : core_.l1) total += static_cast<double>(l1);
    core_.score = bound_->ScoreFromL1Total(total);
  }

  struct Core {
    std::vector<std::unordered_map<uint64_t, int64_t>> tables;
    std::vector<int64_t> l1;
    double score = 0.0;
  };

  struct MirrorUndo {
    int64_t row;
    size_t pos;
    int32_t old_code;
  };

  const BoundCtbIl* bound_;
  std::vector<std::vector<size_t>> subsets_of_attr_;
  std::vector<size_t> touched_;
  int shards_ = 1;
  bool packed_ = false;
  PackedTable mirror_;
  std::vector<int> mirror_pos_;  ///< schema attr -> mirror column position
  std::vector<MirrorUndo> mirror_undo_;
  Core core_;
  std::vector<UndoCell> undo_cells_;
  std::vector<int64_t> undo_l1_;
  double undo_score_ = 0.0;
  bool reverted_by_backup_ = false;
  std::vector<std::unordered_map<uint64_t, int64_t>> backup_tables_;
};

std::unique_ptr<MeasureState> BoundCtbIl::BindState(const Dataset& masked) const {
  return std::make_unique<CtbIlState>(this, masked);
}

}  // namespace

Result<std::unique_ptr<BoundMeasure>> CtbIl::Bind(
    const Dataset& original, const std::vector<int>& attrs) const {
  if (max_dimension_ < 1) {
    return Status::Invalid("CTBIL max_dimension must be >= 1, got ",
                           max_dimension_);
  }
  // Enumerate attribute subsets of size 1..max_dimension (over positions in
  // `attrs`, then map back to schema indices).
  std::vector<std::vector<int>> subsets;
  int n_attrs = static_cast<int>(attrs.size());
  int top = std::min(max_dimension_, n_attrs);
  for (int k = 1; k <= top; ++k) {
    for (const auto& positions : SubsetsOfSize(n_attrs, k)) {
      std::vector<int> subset;
      subset.reserve(positions.size());
      for (int p : positions) subset.push_back(attrs[static_cast<size_t>(p)]);
      subsets.push_back(std::move(subset));
    }
  }
  return std::unique_ptr<BoundMeasure>(
      new BoundCtbIl(original, std::move(subsets)));
}

void RegisterCtbilMeasure(MeasureRegistry* registry) {
  registry->Register(
      "CTBIL", [](const ParamMap& params) -> Result<std::unique_ptr<Measure>> {
        ParamReader reader("CTBIL", params);
        int64_t max_dimension = reader.GetInt("max_dimension", 2);
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        return std::unique_ptr<Measure>(
            new CtbIl(static_cast<int>(max_dimension)));
      });
}

}  // namespace metrics
}  // namespace evocat
