#include "metrics/ctbil.h"

#include <algorithm>

#include "data/stats.h"

namespace evocat {
namespace metrics {

namespace {

class BoundCtbIl : public BoundMeasure {
 public:
  BoundCtbIl(const Dataset& original, std::vector<std::vector<int>> subsets)
      : subsets_(std::move(subsets)) {
    original_tables_.reserve(subsets_.size());
    for (const auto& subset : subsets_) {
      original_tables_.push_back(
          std::move(ContingencyTable::Build(original, subset)).ValueOrDie());
    }
    n_ = original.num_rows();
  }

  double Compute(const Dataset& masked) const override {
    double total = 0.0;
    for (size_t i = 0; i < subsets_.size(); ++i) {
      auto masked_table =
          std::move(ContingencyTable::Build(masked, subsets_[i])).ValueOrDie();
      total += static_cast<double>(original_tables_[i].L1Distance(masked_table));
    }
    // Each table's L1 distance is at most 2n, so this lands in [0, 100].
    double denom = 2.0 * static_cast<double>(n_) *
                   static_cast<double>(subsets_.size());
    return denom > 0 ? 100.0 * total / denom : 0.0;
  }

 private:
  std::vector<std::vector<int>> subsets_;
  std::vector<ContingencyTable> original_tables_;
  int64_t n_ = 0;
};

}  // namespace

Result<std::unique_ptr<BoundMeasure>> CtbIl::Bind(
    const Dataset& original, const std::vector<int>& attrs) const {
  if (max_dimension_ < 1) {
    return Status::Invalid("CTBIL max_dimension must be >= 1, got ",
                           max_dimension_);
  }
  // Enumerate attribute subsets of size 1..max_dimension (over positions in
  // `attrs`, then map back to schema indices).
  std::vector<std::vector<int>> subsets;
  int n_attrs = static_cast<int>(attrs.size());
  int top = std::min(max_dimension_, n_attrs);
  for (int k = 1; k <= top; ++k) {
    for (const auto& positions : SubsetsOfSize(n_attrs, k)) {
      std::vector<int> subset;
      subset.reserve(positions.size());
      for (int p : positions) subset.push_back(attrs[static_cast<size_t>(p)]);
      subsets.push_back(std::move(subset));
    }
  }
  return std::unique_ptr<BoundMeasure>(
      new BoundCtbIl(original, std::move(subsets)));
}

}  // namespace metrics
}  // namespace evocat
