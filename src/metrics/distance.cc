#include "metrics/distance.h"

#include <cmath>

namespace evocat {
namespace metrics {

double ValueDistance(const Attribute& attr, int32_t a, int32_t b) {
  if (a == b) return 0.0;
  if (attr.kind() == AttrKind::kNominal) return 1.0;
  int denom = attr.cardinality() - 1;
  if (denom <= 0) return 0.0;
  return std::fabs(static_cast<double>(a) - static_cast<double>(b)) /
         static_cast<double>(denom);
}

DistanceTables::DistanceTables(const Dataset& dataset,
                               const std::vector<int>& attrs)
    : attrs_(attrs) {
  tables_.reserve(attrs.size());
  for (int attr_idx : attrs) {
    const Attribute& attr = dataset.schema().attribute(attr_idx);
    Table table;
    table.cardinality = static_cast<size_t>(attr.cardinality());
    table.values.resize(table.cardinality * table.cardinality);
    for (size_t a = 0; a < table.cardinality; ++a) {
      for (size_t b = 0; b < table.cardinality; ++b) {
        table.values[a * table.cardinality + b] = static_cast<float>(
            ValueDistance(attr, static_cast<int32_t>(a), static_cast<int32_t>(b)));
      }
    }
    tables_.push_back(std::move(table));
  }
}

double DistanceTables::RecordDistance(const Dataset& x, int64_t rx,
                                      const Dataset& y, int64_t ry) const {
  double sum = 0.0;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    sum += At(i, x.Code(rx, attrs_[i]), y.Code(ry, attrs_[i]));
  }
  return attrs_.empty() ? 0.0 : sum / static_cast<double>(attrs_.size());
}

}  // namespace metrics
}  // namespace evocat
