/// \file prl.h
/// \brief Probabilistic Record Linkage (Fellegi–Sunter model, EM-fitted),
/// following Domingo-Ferrer & Torra 2002 for categorical microdata.
///
/// Every (original, masked) record pair is summarized by its agreement
/// pattern over the protected attributes. The Fellegi–Sunter mixture
/// parameters — m_k = P(agree on attribute k | true match), u_k = P(agree |
/// non-match) and the match prevalence — are estimated by EM over the pattern
/// counts of all n^2 pairs. Each original record is then linked to the masked
/// record with the highest log-likelihood-ratio weight; correct links (ties
/// sharing credit) give the risk percentage.

#ifndef EVOCAT_METRICS_PRL_H_
#define EVOCAT_METRICS_PRL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "metrics/measure.h"

namespace evocat {
namespace metrics {

/// \brief EM-fitted Fellegi–Sunter re-identification risk.
class ProbabilisticRecordLinkage : public Measure {
 public:
  /// \param em_iterations number of EM refinement sweeps over the pattern
  ///        counts (the pattern space is tiny — 2^|attrs| — so sweeps are
  ///        cheap; 50 is far past convergence for these files).
  explicit ProbabilisticRecordLinkage(int em_iterations = 50)
      : em_iterations_(em_iterations) {}

  std::string Name() const override { return "PRL"; }
  MeasureKind Kind() const override { return MeasureKind::kDisclosureRisk; }

  Result<std::unique_ptr<BoundMeasure>> Bind(
      const Dataset& original, const std::vector<int>& attrs) const override;

  int em_iterations() const { return em_iterations_; }

 private:
  int em_iterations_;
};

/// \brief Fellegi–Sunter parameters fitted by EM (exposed for tests).
struct FellegiSunterModel {
  std::vector<double> m;  ///< P(agree on attr k | match)
  std::vector<double> u;  ///< P(agree on attr k | non-match)
  double match_prevalence = 0.0;

  /// \brief Log-likelihood-ratio weight of an agreement pattern (bitmask).
  double PatternWeight(uint32_t pattern) const;
};

/// \brief Fits the Fellegi–Sunter model to agreement-pattern counts.
///
/// `pattern_counts[p]` is the number of record pairs whose agreement bitmask
/// equals `p`; `num_attrs` is the number of compared attributes.
FellegiSunterModel FitFellegiSunter(const std::vector<double>& pattern_counts,
                                    int num_attrs, int em_iterations);

/// \brief Sparse-count fit: entries are (pattern, count) pairs sorted by
/// ascending pattern. Runs the identical floating-point sequence as the
/// dense overload over the nonzero patterns, so both routes agree
/// bit-for-bit — this is what keeps the compressed pattern-histogram state
/// exact against the dense full-evaluation oracle at any attribute count.
FellegiSunterModel FitFellegiSunter(
    const std::vector<std::pair<uint32_t, double>>& pattern_counts,
    int num_attrs, int em_iterations);

/// \brief Warm-started sparse fit for the incremental delta path.
///
/// Runs a short budget of EM sweeps from `warm_start` (normally the previous
/// refit's model — a single-cell delta barely moves the pattern counts, so
/// the old model is already next to the new fixed point). A sweep that
/// leaves the model bitwise unchanged is an exact fixed point — every
/// further sweep would recompute identical E- and M-steps — so the fit stops
/// there and reports `*warm_hit = true`. If no fixed point appears within
/// the warm budget (a large delta moved the counts too far), or the warm
/// model has the wrong arity, or `em_iterations` is too small for the cold
/// trajectory itself to converge, the warm attempt is discarded and the
/// standard cold fit runs unchanged (`*warm_hit = false`).
///
/// A warm hit is exactly self-consistent but not bitwise equal to the cold
/// trajectory's own frozen point: near convergence each EM sweep moves the
/// parameters by less than one ulp, so the map freezes anywhere on a small
/// plateau (~1e-4 wide in the parameters) and the two trajectories stop at
/// different points on it. The delta states carry the same model on every
/// data plane, so plane-vs-plane scores stay bit-identical — the invariant
/// the scale oracle and the bench's max_abs_diff == 0 gates check. Against
/// a cold from-scratch fit the linkage credit only moves if a pattern
/// weight crosses a tie boundary, which the delta suite's 1e-9 checks
/// guard on real walks.
FellegiSunterModel FitFellegiSunterWarm(
    const std::vector<std::pair<uint32_t, double>>& pattern_counts,
    int num_attrs, int em_iterations, const FellegiSunterModel& warm_start,
    bool* warm_hit);

}  // namespace metrics
}  // namespace evocat

#endif  // EVOCAT_METRICS_PRL_H_
