/// \file delta.h
/// \brief Shared plumbing for incremental measure states.
///
/// The measures reason about deltas per *masked record*: a crossover segment
/// that swaps several attributes of the same row must be treated as one row
/// transition (old row image -> new row image), otherwise contingency keys
/// and record distances would be computed against half-updated rows. This
/// header groups a flat `CellDelta` batch by row and reconstructs the
/// pre-batch value of any cell.

#ifndef EVOCAT_METRICS_DELTA_H_
#define EVOCAT_METRICS_DELTA_H_

#include <cstdint>
#include <vector>

#include "metrics/measure.h"

namespace evocat {
namespace metrics {

/// \brief All changed cells of one masked record.
struct RowDelta {
  int64_t row = 0;

  struct Cell {
    int attr = 0;  ///< schema attribute index
    int32_t old_code = 0;
    int32_t new_code = 0;
  };
  /// Changed cells of this row (a handful at most: one per protected attr).
  std::vector<Cell> cells;

  /// \brief The pre-batch code of (row, attr): the recorded old value for a
  /// changed cell, the current value otherwise.
  int32_t OldCode(const Dataset& masked_after, int attr) const {
    for (const Cell& cell : cells) {
      if (cell.attr == attr) return cell.old_code;
    }
    return masked_after.Code(row, attr);
  }

  /// \brief Whether `attr` changed in this row.
  bool Touches(int attr) const {
    for (const Cell& cell : cells) {
      if (cell.attr == attr) return true;
    }
    return false;
  }
};

/// \brief Groups a delta batch by row, preserving first-appearance order.
std::vector<RowDelta> GroupDeltasByRow(const std::vector<CellDelta>& deltas);

/// \brief Maps schema attribute index -> position in `attrs` (-1 when the
/// attribute is not bound). Sized to `num_schema_attrs`.
std::vector<int> AttrPositions(const std::vector<int>& attrs,
                               int num_schema_attrs);

/// \brief Tie epsilon of the record-linkage attacks' best-match comparison
/// (matches the full Compute scans of DBRL/RSRL).
inline constexpr double kLinkageEps = 1e-12;

/// \brief Per-original-record linkage record maintained by the DBRL/RSRL
/// states: the best (minimum) distance over the masked records considered,
/// the size of its tie set, and whether the true match j == i is in it.
struct LinkageRowBest {
  double best = 1e100;
  int32_t count = 0;
  uint8_t self = 0;
};

/// \brief Folds a masked record's distance into the support set (mirrors the
/// full scan's tie handling).
inline void LinkageAdd(LinkageRowBest* row, double d, bool is_self) {
  if (d < row->best - kLinkageEps) {
    row->best = d;
    row->count = 1;
    row->self = is_self;
  } else if (d <= row->best + kLinkageEps) {
    ++row->count;
    if (is_self) row->self = 1;
  }
}

/// \brief Removes a masked record's previous distance from the support set;
/// flags `rescan` when the support empties (the row needs a fresh scan).
inline void LinkageRemove(LinkageRowBest* row, double d, bool is_self,
                          uint8_t* rescan) {
  if (d <= row->best + kLinkageEps && d >= row->best - kLinkageEps) {
    --row->count;
    if (is_self) row->self = 0;
    if (row->count <= 0) *rescan = 1;
  }
}

/// \brief The linkage measures' credit score: each correctly self-linked
/// record contributes 1/|tie set|, scaled to 0..100.
double LinkageCreditScore(const std::vector<LinkageRowBest>& rows);

}  // namespace metrics
}  // namespace evocat

#endif  // EVOCAT_METRICS_DELTA_H_
