/// \file delta.h
/// \brief Shared plumbing for incremental measure states.
///
/// The segment-batch types themselves (`CellDelta`, `RowDelta`,
/// `SegmentDelta`) live in measure.h with the `MeasureState` contract; this
/// header carries the helpers the concrete states share: attribute-position
/// maps and the record-linkage support-set bookkeeping used by DBRL/RSRL.

#ifndef EVOCAT_METRICS_DELTA_H_
#define EVOCAT_METRICS_DELTA_H_

#include <cstdint>
#include <vector>

#include "metrics/measure.h"

namespace evocat {
namespace metrics {

/// \brief Maps schema attribute index -> position in `attrs` (-1 when the
/// attribute is not bound). Sized to `num_schema_attrs`.
std::vector<int> AttrPositions(const std::vector<int>& attrs,
                               int num_schema_attrs);

/// \brief Tie epsilon of the record-linkage attacks' best-match comparison
/// (matches the full Compute scans of DBRL/RSRL).
inline constexpr double kLinkageEps = 1e-12;

/// \brief Per-original-record linkage record maintained by the DBRL/RSRL
/// states: the best (minimum) distance over the masked records considered,
/// the size of its tie set, and whether the true match j == i is in it.
struct LinkageRowBest {
  double best = 1e100;
  int32_t count = 0;
  uint8_t self = 0;
};

/// \brief Folds a masked record's distance into the support set (mirrors the
/// full scan's tie handling).
inline void LinkageAdd(LinkageRowBest* row, double d, bool is_self) {
  if (d < row->best - kLinkageEps) {
    row->best = d;
    row->count = 1;
    row->self = is_self;
  } else if (d <= row->best + kLinkageEps) {
    ++row->count;
    if (is_self) row->self = 1;
  }
}

/// \brief `LinkageAdd` with multiplicity: folds `count` masked records at
/// the same distance in one step (a pattern group). The self flag is left
/// untouched — cluster-level folds reconstruct it from the self distance.
/// Equal to `count` successive LinkageAdd calls whenever distances are
/// either exact ties or separated by more than the epsilon (the generic
/// case for table-lookup distances).
inline void LinkageAddN(LinkageRowBest* row, double d, int64_t count) {
  if (d < row->best - kLinkageEps) {
    row->best = d;
    row->count = static_cast<int32_t>(count);
    row->self = 0;
  } else if (d <= row->best + kLinkageEps) {
    row->count += static_cast<int32_t>(count);
  }
}

/// \brief Removes a masked record's previous distance from the support set;
/// flags `rescan` when the support empties (the row needs a fresh scan).
inline void LinkageRemove(LinkageRowBest* row, double d, bool is_self,
                          uint8_t* rescan) {
  if (d <= row->best + kLinkageEps && d >= row->best - kLinkageEps) {
    --row->count;
    if (is_self) row->self = 0;
    if (row->count <= 0) *rescan = 1;
  }
}

/// \brief `LinkageRemove` with multiplicity: removes `count` masked records
/// at the same distance in one step (a pattern group leaving the candidate
/// set). Like `LinkageAddN` the self flag is left untouched — cluster-level
/// callers reconstruct it from the self distance. Flags `rescan` when the
/// support empties.
inline void LinkageRemoveN(LinkageRowBest* row, double d, int64_t count,
                           uint8_t* rescan) {
  if (d <= row->best + kLinkageEps && d >= row->best - kLinkageEps) {
    row->count -= static_cast<int32_t>(count);
    if (row->count <= 0) *rescan = 1;
  }
}

/// \brief The linkage measures' credit score: each correctly self-linked
/// record contributes 1/|tie set|, scaled to 0..100.
double LinkageCreditScore(const std::vector<LinkageRowBest>& rows);

}  // namespace metrics
}  // namespace evocat

#endif  // EVOCAT_METRICS_DELTA_H_
