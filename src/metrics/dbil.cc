#include "metrics/dbil.h"

#include "metrics/distance.h"

namespace evocat {
namespace metrics {

namespace {

class BoundDbIl : public BoundMeasure {
 public:
  BoundDbIl(const Dataset& original, const std::vector<int>& attrs)
      : original_(&original), tables_(original, attrs) {}

  double Compute(const Dataset& masked) const override {
    const auto& attrs = tables_.attrs();
    int64_t n = original_->num_rows();
    double total = 0.0;
    for (size_t i = 0; i < attrs.size(); ++i) {
      int attr = attrs[i];
      const auto& orig_col = original_->column(attr);
      const auto& mask_col = masked.column(attr);
      for (int64_t r = 0; r < n; ++r) {
        total += tables_.At(i, orig_col[static_cast<size_t>(r)],
                            mask_col[static_cast<size_t>(r)]);
      }
    }
    double cells = static_cast<double>(n) * static_cast<double>(attrs.size());
    return cells > 0 ? 100.0 * total / cells : 0.0;
  }

 private:
  const Dataset* original_;
  DistanceTables tables_;
};

}  // namespace

Result<std::unique_ptr<BoundMeasure>> DbIl::Bind(
    const Dataset& original, const std::vector<int>& attrs) const {
  return std::unique_ptr<BoundMeasure>(new BoundDbIl(original, attrs));
}

}  // namespace metrics
}  // namespace evocat
