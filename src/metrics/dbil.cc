#include "metrics/dbil.h"

#include "metrics/registry.h"

#include "metrics/delta.h"
#include "metrics/distance.h"
#include "metrics/plane.h"

namespace evocat {
namespace metrics {

namespace {

class BoundDbIl : public BoundMeasure {
 public:
  BoundDbIl(const Dataset& original, const std::vector<int>& attrs)
      : original_(&original),
        tables_(original, attrs),
        shards_(GetDataPlane().sharded ? ResolveShardCount(GetDataPlane())
                                       : 1) {}

  double Compute(const Dataset& masked) const override {
    const auto& attrs = tables_.attrs();
    int64_t n = original_->num_rows();
    double total = 0.0;
    for (size_t i = 0; i < attrs.size(); ++i) {
      total += AttrTotal(masked, i);
    }
    double cells = static_cast<double>(n) * static_cast<double>(attrs.size());
    return cells > 0 ? 100.0 * total / cells : 0.0;
  }

  std::unique_ptr<MeasureState> BindState(const Dataset& masked) const override;

  /// \brief Summed value distance of one bound attribute's column.
  ///
  /// Computed from the joint (original, masked) code counts rather than a
  /// per-row float sum: the integer joint shards-and-merges exactly, and the
  /// fixed (o, m) fold order makes the total independent of row order — so
  /// serial and sharded builds, and Compute vs state init, agree bitwise.
  double AttrTotal(const Dataset& masked, size_t i) const {
    int attr = tables_.attrs()[i];
    int64_t n = original_->num_rows();
    const auto& orig_col = original_->column(attr);
    const auto& mask_col = masked.column(attr);
    auto card = static_cast<size_t>(
        original_->schema().attribute(attr).cardinality());
    std::vector<std::vector<int64_t>> partials(
        static_cast<size_t>(shards_),
        std::vector<int64_t>(card * card, 0));
    ForEachShard(n, shards_, [&](int shard, RowRange range) {
      int64_t* joint = partials[static_cast<size_t>(shard)].data();
      for (int64_t r = range.begin; r < range.end; ++r) {
        joint[static_cast<size_t>(orig_col[static_cast<size_t>(r)]) * card +
              static_cast<size_t>(mask_col[static_cast<size_t>(r)])] += 1;
      }
    });
    std::vector<int64_t>& joint = partials[0];
    for (int s = 1; s < shards_; ++s) {
      const auto& partial = partials[static_cast<size_t>(s)];
      for (size_t c = 0; c < joint.size(); ++c) joint[c] += partial[c];
    }
    double total = 0.0;
    for (size_t o = 0; o < card; ++o) {
      for (size_t m = 0; m < card; ++m) {
        int64_t count = joint[o * card + m];
        if (count > 0) {
          total += static_cast<double>(count) *
                   tables_.At(i, static_cast<int32_t>(o),
                              static_cast<int32_t>(m));
        }
      }
    }
    return total;
  }

  const Dataset& original() const { return *original_; }
  const DistanceTables& tables() const { return tables_; }

 private:
  const Dataset* original_;
  DistanceTables tables_;
  int shards_;
};

/// DBIL is a sum of independent per-cell distance terms, so a delta just
/// swaps the changed cells' terms inside per-attribute running totals —
/// O(cells) at any segment width, hence rebuild fraction 1.0.
class DbIlState : public MeasureState {
 public:
  DbIlState(const BoundDbIl* bound, const Dataset& masked)
      : MeasureState(/*default_rebuild_fraction=*/1.0),
        bound_(bound),
        attr_pos_(AttrPositions(bound->tables().attrs(),
                                masked.num_attributes())) {
    InitFrom(masked);
    backup_ = core_;
  }

  void ApplySegment(const Dataset& masked_after,
                    const SegmentDelta& segment) override {
    backup_ = core_;
    if (segment.num_cells() >= full_rebuild_threshold()) {
      InitFrom(masked_after);
      return;
    }
    const auto& tables = bound_->tables();
    for (const CellDelta& delta : segment.cells()) {
      int pos = attr_pos_[static_cast<size_t>(delta.attr)];
      if (pos < 0 || delta.old_code == delta.new_code) continue;
      int32_t orig = bound_->original().Code(delta.row, delta.attr);
      auto i = static_cast<size_t>(pos);
      core_.attr_totals[i] +=
          tables.At(i, orig, delta.new_code) - tables.At(i, orig, delta.old_code);
    }
    RefreshScore();
  }

  void RevertSegment() override { core_ = backup_; }

  double Score() const override { return core_.score; }

 private:
  struct Core {
    std::vector<double> attr_totals;
    double score = 0.0;
  };

  void InitFrom(const Dataset& masked) {
    size_t num_attrs = bound_->tables().attrs().size();
    core_.attr_totals.assign(num_attrs, 0.0);
    for (size_t i = 0; i < num_attrs; ++i) {
      core_.attr_totals[i] = bound_->AttrTotal(masked, i);
    }
    RefreshScore();
  }

  void RefreshScore() {
    double total = 0.0;
    for (double t : core_.attr_totals) total += t;
    double cells = static_cast<double>(bound_->original().num_rows()) *
                   static_cast<double>(core_.attr_totals.size());
    core_.score = cells > 0 ? 100.0 * total / cells : 0.0;
  }

  const BoundDbIl* bound_;
  std::vector<int> attr_pos_;
  Core core_;
  Core backup_;
};

std::unique_ptr<MeasureState> BoundDbIl::BindState(const Dataset& masked) const {
  return std::make_unique<DbIlState>(this, masked);
}

}  // namespace

Result<std::unique_ptr<BoundMeasure>> DbIl::Bind(
    const Dataset& original, const std::vector<int>& attrs) const {
  return std::unique_ptr<BoundMeasure>(new BoundDbIl(original, attrs));
}

void RegisterDbilMeasure(MeasureRegistry* registry) {
  registry->Register(
      "DBIL", [](const ParamMap& params) -> Result<std::unique_ptr<Measure>> {
        ParamReader reader("DBIL", params);
        EVOCAT_RETURN_NOT_OK(reader.Finish());
        return std::unique_ptr<Measure>(new DbIl());
      });
}

}  // namespace metrics
}  // namespace evocat
