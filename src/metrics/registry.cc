#include "metrics/registry.h"

#include <algorithm>

#include "common/string_utils.h"

namespace evocat {
namespace metrics {

MeasureRegistry& MeasureRegistry::Global() {
  static MeasureRegistry* registry = [] {
    auto* r = new MeasureRegistry();
    RegisterCtbilMeasure(r);
    RegisterDbilMeasure(r);
    RegisterEbilMeasure(r);
    RegisterIntervalDisclosureMeasure(r);
    RegisterDbrlMeasure(r);
    RegisterPrlMeasure(r);
    RegisterRsrlMeasure(r);
    return r;
  }();
  return *registry;
}

Status MeasureRegistry::Register(const std::string& name,
                                 MeasureFactory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key = ToLower(name);
  if (entries_.count(key)) {
    return Status::AlreadyExists("measure '", name, "' is already registered");
  }
  entries_[key] = Entry{name, std::move(factory)};
  return Status::OK();
}

Result<std::unique_ptr<Measure>> MeasureRegistry::Create(
    const std::string& name, const ParamMap& params) const {
  MeasureFactory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(ToLower(name));
    if (it == entries_.end()) {
      std::vector<std::string> names;
      for (const auto& [key, entry] : entries_) {
        (void)key;
        names.push_back(entry.canonical_name);
      }
      return Status::NotFound("unknown measure '", name,
                              "'; known: ", Join(names, ','));
    }
    factory = it->second.factory;
  }
  return factory(params);
}

bool MeasureRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(ToLower(name)) > 0;
}

std::vector<std::string> MeasureRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    (void)key;
    names.push_back(entry.canonical_name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace metrics
}  // namespace evocat
