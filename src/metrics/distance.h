/// \file distance.h
/// \brief Value- and record-level distances on categorical data.
///
/// Nominal categories are at distance 0 (equal) or 1 (different). Ordinal
/// categories are at normalized rank distance |a - b| / (cardinality - 1).
/// Record distance over an attribute set is the mean of value distances —
/// the distance used by DBIL, DBRL and the RSRL attack's candidate ranking.

#ifndef EVOCAT_METRICS_DISTANCE_H_
#define EVOCAT_METRICS_DISTANCE_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace evocat {
namespace metrics {

/// \brief Normalized distance in [0,1] between two categories of `attr`.
double ValueDistance(const Attribute& attr, int32_t a, int32_t b);

/// \brief Precomputed per-attribute value-distance lookup tables.
///
/// `Table(i)` is a flattened `card x card` matrix for the i-th bound
/// attribute; `Record(x_codes, y_codes)` sums table lookups — the inner loop
/// of every O(n^2) linkage measure.
class DistanceTables {
 public:
  DistanceTables(const Dataset& dataset, const std::vector<int>& attrs);

  /// \brief Distance between codes `a` and `b` of bound attribute `i`.
  double At(size_t i, int32_t a, int32_t b) const {
    const auto& t = tables_[i];
    return t.values[static_cast<size_t>(a) * t.cardinality +
                    static_cast<size_t>(b)];
  }

  /// \brief Mean value distance between record `rx` of `x` and `ry` of `y`
  /// over the bound attributes.
  double RecordDistance(const Dataset& x, int64_t rx, const Dataset& y,
                        int64_t ry) const;

  /// \brief `RecordDistance` from two flat code tuples (one code per bound
  /// attribute, in bound order). Same summation order and single divide, so
  /// the result is bit-identical to the dataset overload for equal codes —
  /// the kernel of the pattern-clustered linkage states.
  double RecordDistanceCodes(const int32_t* x_codes,
                             const int32_t* y_codes) const {
    double sum = 0.0;
    for (size_t i = 0; i < attrs_.size(); ++i) {
      sum += At(i, x_codes[i], y_codes[i]);
    }
    return sum / static_cast<double>(attrs_.size());
  }

  const std::vector<int>& attrs() const { return attrs_; }

 private:
  struct Table {
    size_t cardinality;
    std::vector<float> values;
  };
  std::vector<int> attrs_;
  std::vector<Table> tables_;
};

}  // namespace metrics
}  // namespace evocat

#endif  // EVOCAT_METRICS_DISTANCE_H_
