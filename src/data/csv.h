/// \file csv.h
/// \brief CSV import/export for categorical microdata.

#ifndef EVOCAT_DATA_CSV_H_
#define EVOCAT_DATA_CSV_H_

#include <iosfwd>
#include <set>
#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace evocat {

/// \brief Options controlling CSV import.
struct CsvReadOptions {
  /// First line holds attribute names. When false, attributes are named c0,
  /// c1, ...
  bool has_header = true;
  /// Field separator.
  char separator = ',';
  /// Attributes (by name) to treat as ordinal; category order follows first
  /// appearance in file order, so pre-sorted files give natural order.
  std::set<std::string> ordinal_attributes;
};

/// \brief Reads a whole CSV file into a dataset (all attributes categorical).
Result<Dataset> ReadCsvFile(const std::string& path,
                            const CsvReadOptions& options = {});

/// \brief Reads CSV from a stream (for tests and in-memory data).
Result<Dataset> ReadCsvStream(std::istream& in, const CsvReadOptions& options = {});

/// \brief Writes `dataset` as CSV with a header line.
Status WriteCsvFile(const Dataset& dataset, const std::string& path,
                    char separator = ',');

/// \brief Writes `dataset` as CSV to a stream.
Status WriteCsvStream(const Dataset& dataset, std::ostream& out,
                      char separator = ',');

}  // namespace evocat

#endif  // EVOCAT_DATA_CSV_H_
