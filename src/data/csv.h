/// \file csv.h
/// \brief CSV import/export for categorical microdata.

#ifndef EVOCAT_DATA_CSV_H_
#define EVOCAT_DATA_CSV_H_

#include <iosfwd>
#include <memory>
#include <set>
#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace evocat {

/// \brief Options controlling CSV import.
struct CsvReadOptions {
  /// First line holds attribute names. When false, attributes are named c0,
  /// c1, ...
  bool has_header = true;
  /// Field separator.
  char separator = ',';
  /// Attributes (by name) to treat as ordinal; category order follows first
  /// appearance in file order, so pre-sorted files give natural order.
  std::set<std::string> ordinal_attributes;
  /// When set, the file is decoded *onto this schema*: attribute count must
  /// match (positional), dictionaries are closed (a value outside an
  /// attribute's dictionary is an error naming its line and column), and
  /// `ordinal_attributes` is ignored. This is how a masked file is read so
  /// its codes are comparable with the original's.
  std::shared_ptr<Schema> bind_schema;
};

/// \brief Reads a whole CSV file into a dataset (all attributes categorical).
///
/// Malformed input fails with the file, 1-based line, and column of the
/// offending cell in the Status message.
Result<Dataset> ReadCsvFile(const std::string& path,
                            const CsvReadOptions& options = {});

/// \brief Reads CSV from a stream (for tests and in-memory data).
Result<Dataset> ReadCsvStream(std::istream& in, const CsvReadOptions& options = {});

/// \brief Writes `dataset` as CSV with a header line.
Status WriteCsvFile(const Dataset& dataset, const std::string& path,
                    char separator = ',');

/// \brief Writes `dataset` as CSV to a stream.
Status WriteCsvStream(const Dataset& dataset, std::ostream& out,
                      char separator = ',');

}  // namespace evocat

#endif  // EVOCAT_DATA_CSV_H_
