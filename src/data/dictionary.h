/// \file dictionary.h
/// \brief Category dictionary: bidirectional mapping string <-> dense code.
///
/// Every categorical attribute owns a `Dictionary`. Codes are dense integers
/// `[0, size)` assigned in insertion order. For ordinal attributes the
/// insertion order *is* the category order (rank == code), so generators and
/// CSV loaders must insert ordinal categories in their natural order.

#ifndef EVOCAT_DATA_DICTIONARY_H_
#define EVOCAT_DATA_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace evocat {

/// \brief Dense string<->code dictionary for one categorical attribute.
class Dictionary {
 public:
  Dictionary() = default;

  /// \brief Returns the code of `value`, inserting it if unseen.
  int32_t GetOrAdd(const std::string& value);

  /// \brief Returns the code of `value` or NotFound.
  Result<int32_t> CodeOf(const std::string& value) const;

  /// \brief True when `value` is present.
  bool Contains(const std::string& value) const {
    return index_.find(value) != index_.end();
  }

  /// \brief The string for `code`; requires 0 <= code < size().
  const std::string& ValueOf(int32_t code) const { return values_[static_cast<size_t>(code)]; }

  /// \brief True when `code` is a valid category code.
  bool IsValidCode(int32_t code) const {
    return code >= 0 && static_cast<size_t>(code) < values_.size();
  }

  /// \brief Number of categories.
  int32_t size() const { return static_cast<int32_t>(values_.size()); }

  /// \brief All category strings in code order.
  const std::vector<std::string>& values() const { return values_; }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, int32_t> index_;
};

}  // namespace evocat

#endif  // EVOCAT_DATA_DICTIONARY_H_
