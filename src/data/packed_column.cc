#include "data/packed_column.h"

#include "obs/metrics.h"

// EVOCAT_SIMD: compile-time toggle for the vectorized bulk-decode fast
// path. Auto-detected (SSE2 is part of the x86-64 baseline, AVX2 arrives
// with -march=native); pass -DEVOCAT_SIMD=0 to force the portable uint64_t
// core everywhere. Non-x86 targets (e.g. aarch64) always take the portable
// core — it is the reference implementation, not a fallback of lesser
// fidelity: both paths extract the same integer fields from the same words.
#if !defined(EVOCAT_SIMD)
#if defined(__SSE2__) || defined(__AVX2__)
#define EVOCAT_SIMD 1
#else
#define EVOCAT_SIMD 0
#endif
#endif

#if EVOCAT_SIMD && (defined(__SSE2__) || defined(__AVX2__))
#define EVOCAT_SIMD_X86 1
#include <immintrin.h>
#else
#define EVOCAT_SIMD_X86 0
#endif

namespace evocat {

namespace {

/// Kernel telemetry, bumped once per bulk call (never per word): words the
/// decode/count kernels walked, and which path served the call.
obs::Counter* WordsScannedCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "evocat_delta_plane_words_scanned_total",
      "64-bit words walked by the packed-column bulk kernels.");
  return counter;
}

obs::Counter* KernelPathCounter(bool simd) {
  static obs::Counter* simd_counter = obs::MetricsRegistry::Global().GetCounter(
      "evocat_delta_plane_kernel_calls_total",
      "Packed-column bulk kernel calls by decode path.", {{"path", "simd"}});
  static obs::Counter* scalar_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "evocat_delta_plane_kernel_calls_total",
          "Packed-column bulk kernel calls by decode path.",
          {{"path", "scalar"}});
  return simd ? simd_counter : scalar_counter;
}

/// Words touched when decoding values [begin, end) at `bits` per value.
inline int64_t WordsSpanned(int64_t begin, int64_t end, int bits) {
  if (begin >= end) return 0;
  uint64_t first = (static_cast<uint64_t>(begin) * bits) >> 6;
  uint64_t last = (static_cast<uint64_t>(end) * bits - 1) >> 6;
  return static_cast<int64_t>(last - first + 1);
}

/// Portable word-walk: load each word once, peel every code that lives
/// entirely inside it, patch the (at most one) straddling code with a
/// single next-word load. `fn(code)` is called in index order.
template <class Fn>
inline void WalkWords(const uint64_t* words, int bits, uint64_t mask,
                      int64_t begin, int64_t end, Fn&& fn) {
  int64_t i = begin;
  while (i < end) {
    uint64_t bit = static_cast<uint64_t>(i) * static_cast<uint64_t>(bits);
    size_t word = static_cast<size_t>(bit >> 6);
    int offset = static_cast<int>(bit & 63u);
    uint64_t cur = words[word];
    while (offset + bits <= 64) {
      fn(static_cast<int32_t>((cur >> offset) & mask));
      offset += bits;
      if (++i == end) return;
    }
    if (offset < 64) {
      // Straddling code: low piece from this word, high piece from the next
      // (the guard word past the column keeps the load in bounds).
      uint64_t value = (cur >> offset) | (words[word + 1] << (64 - offset));
      fn(static_cast<int32_t>(value & mask));
      ++i;
    }
  }
}

#if EVOCAT_SIMD_X86

/// Vectorized decode for the byte-aligned widths. Codes at 4/8/16 bits
/// never straddle words, so the stream is a plain dense array of
/// nibbles/bytes/uint16s that widens to int32 with unpack ops (pure SSE2 —
/// no SSE4.1 dependency; AVX2 builds get the 256-bit converts below).
/// `begin` must be byte-aligned for the width, which the caller guarantees
/// by peeling a scalar head.

inline void DecodeBytes8(const uint8_t* bytes, int64_t count, int32_t* out) {
  const __m128i zero = _mm_setzero_si128();
  int64_t i = 0;
#if defined(__AVX2__)
  for (; i + 16 <= count; i += 16) {
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_cvtepu8_epi32(b));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 8),
                        _mm256_cvtepu8_epi32(_mm_srli_si128(b, 8)));
  }
#endif
  for (; i + 16 <= count; i += 16) {
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + i));
    __m128i lo16 = _mm_unpacklo_epi8(b, zero);
    __m128i hi16 = _mm_unpackhi_epi8(b, zero);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_unpacklo_epi16(lo16, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4),
                     _mm_unpackhi_epi16(lo16, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 8),
                     _mm_unpacklo_epi16(hi16, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 12),
                     _mm_unpackhi_epi16(hi16, zero));
  }
  for (; i < count; ++i) out[i] = bytes[i];
}

inline void DecodeWords16(const uint8_t* bytes, int64_t count, int32_t* out) {
  const __m128i zero = _mm_setzero_si128();
  int64_t i = 0;
#if defined(__AVX2__)
  for (; i + 8 <= count; i += 8) {
    __m128i w =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 2 * i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_cvtepu16_epi32(w));
  }
#endif
  for (; i + 8 <= count; i += 8) {
    __m128i w =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 2 * i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_unpacklo_epi16(w, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4),
                     _mm_unpackhi_epi16(w, zero));
  }
  for (; i < count; ++i) {
    out[i] = static_cast<int32_t>(bytes[2 * i]) |
             (static_cast<int32_t>(bytes[2 * i + 1]) << 8);
  }
}

inline void DecodeNibbles4(const uint8_t* bytes, int64_t count, int32_t* out) {
  const __m128i nibble_mask = _mm_set1_epi8(0x0F);
  int64_t i = 0;
  // 16 bytes -> 32 nibbles per iteration: split even/odd nibbles, then
  // interleave so bytes come out in stream order before widening.
  for (; i + 32 <= count; i += 32) {
    __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + i / 2));
    __m128i even = _mm_and_si128(b, nibble_mask);
    __m128i odd = _mm_and_si128(_mm_srli_epi16(b, 4), nibble_mask);
    __m128i lo = _mm_unpacklo_epi8(even, odd);
    __m128i hi = _mm_unpackhi_epi8(even, odd);
    const __m128i zero = _mm_setzero_si128();
    __m128i lo16a = _mm_unpacklo_epi8(lo, zero);
    __m128i lo16b = _mm_unpackhi_epi8(lo, zero);
    __m128i hi16a = _mm_unpacklo_epi8(hi, zero);
    __m128i hi16b = _mm_unpackhi_epi8(hi, zero);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_unpacklo_epi16(lo16a, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4),
                     _mm_unpackhi_epi16(lo16a, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 8),
                     _mm_unpacklo_epi16(lo16b, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 12),
                     _mm_unpackhi_epi16(lo16b, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 16),
                     _mm_unpacklo_epi16(hi16a, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 20),
                     _mm_unpackhi_epi16(hi16a, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 24),
                     _mm_unpacklo_epi16(hi16b, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 28),
                     _mm_unpackhi_epi16(hi16b, zero));
  }
  for (; i < count; ++i) {
    uint8_t byte = bytes[i / 2];
    out[i] = (i & 1) != 0 ? (byte >> 4) : (byte & 0x0F);
  }
}

/// Dispatches [begin, end) of a byte-aligned-width column to the SIMD
/// decoders, peeling a scalar head until `begin` lands on a byte boundary.
/// Returns false when the width has no vector path.
inline bool DecodeRangeSimd(const uint64_t* words, int bits, uint64_t mask,
                            int64_t begin, int64_t end, int32_t* out) {
  if (bits != 4 && bits != 8 && bits != 16) return false;
  const int values_per_byte_group = bits == 4 ? 2 : 1;
  int64_t i = begin;
  while (i < end && (i % values_per_byte_group) != 0) {
    uint64_t bit = static_cast<uint64_t>(i) * static_cast<uint64_t>(bits);
    *out++ = static_cast<int32_t>((words[bit >> 6] >> (bit & 63u)) & mask);
    ++i;
  }
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(words) +
                         (static_cast<uint64_t>(i) * bits) / 8;
  int64_t count = end - i;
  if (count <= 0) return true;
  if (bits == 4) {
    DecodeNibbles4(bytes, count, out);
  } else if (bits == 8) {
    DecodeBytes8(bytes, count, out);
  } else {
    DecodeWords16(bytes, count, out);
  }
  return true;
}

#endif  // EVOCAT_SIMD_X86

}  // namespace

bool PackedColumn::SimdEnabled() { return EVOCAT_SIMD_X86 != 0; }

int PackedColumn::BitWidthFor(int32_t cardinality) {
  int bits = 1;
  while ((int64_t{1} << bits) < static_cast<int64_t>(cardinality)) ++bits;
  return bits;
}

PackedColumn PackedColumn::Pack(const std::vector<int32_t>& codes,
                                int32_t cardinality) {
  PackedColumn column;
  column.bits_ = BitWidthFor(cardinality);
  column.mask_ = (uint64_t{1} << column.bits_) - 1;
  column.num_values_ = static_cast<int64_t>(codes.size());
  uint64_t total_bits = static_cast<uint64_t>(codes.size()) *
                        static_cast<uint64_t>(column.bits_);
  // One guard word past the end so straddle reads of the last value never
  // run off the buffer.
  size_t num_words = static_cast<size_t>((total_bits + 63) >> 6) + 1;
  column.words_ = std::make_shared<std::vector<uint64_t>>(num_words, 0);
  uint64_t* words = column.words_->data();
  uint64_t bit = 0;
  for (int32_t code : codes) {
    auto value = static_cast<uint64_t>(static_cast<uint32_t>(code)) & column.mask_;
    size_t word = static_cast<size_t>(bit >> 6);
    int offset = static_cast<int>(bit & 63u);
    words[word] |= value << offset;
    if (offset + column.bits_ > 64) words[word + 1] |= value >> (64 - offset);
    bit += static_cast<uint64_t>(column.bits_);
  }
  return column;
}

void PackedColumn::Set(int64_t i, int32_t code) {
  Detach();
  uint64_t bit = static_cast<uint64_t>(i) * static_cast<uint64_t>(bits_);
  size_t word = static_cast<size_t>(bit >> 6);
  int offset = static_cast<int>(bit & 63u);
  auto value = static_cast<uint64_t>(static_cast<uint32_t>(code)) & mask_;
  uint64_t* words = words_->data();
  words[word] = (words[word] & ~(mask_ << offset)) | (value << offset);
  if (offset + bits_ > 64) {
    int spill = 64 - offset;
    words[word + 1] =
        (words[word + 1] & ~(mask_ >> spill)) | (value >> spill);
  }
}

std::vector<int32_t> PackedColumn::Unpack() const {
  std::vector<int32_t> codes(static_cast<size_t>(num_values_));
  DecodeRange(0, num_values_, codes.data());
  return codes;
}

void PackedColumn::DecodeRange(int64_t begin, int64_t end, int32_t* out) const {
  if (begin >= end) return;
  const uint64_t* words = words_->data();
  if (obs::MetricsEnabled()) {
    WordsScannedCounter()->Add(WordsSpanned(begin, end, bits_));
#if EVOCAT_SIMD_X86
    KernelPathCounter(bits_ == 4 || bits_ == 8 || bits_ == 16)->Increment();
#else
    KernelPathCounter(false)->Increment();
#endif
  }
#if EVOCAT_SIMD_X86
  if (DecodeRangeSimd(words, bits_, mask_, begin, end, out)) return;
#endif
  WalkWords(words, bits_, mask_, begin, end,
            [&out](int32_t code) { *out++ = code; });
}

void PackedColumn::AccumulateCounts(int64_t begin, int64_t end,
                                    int64_t* counts) const {
  if (begin >= end) return;
  if (obs::MetricsEnabled()) {
    WordsScannedCounter()->Add(WordsSpanned(begin, end, bits_));
    KernelPathCounter(false)->Increment();
  }
  // Scatter increments do not vectorize; the win is the word walk itself
  // (one load per word instead of one per value).
  WalkWords(words_->data(), bits_, mask_, begin, end,
            [counts](int32_t code) { ++counts[code]; });
}

PackedTable PackedTable::FromDataset(const Dataset& dataset,
                                     const std::vector<int>& attrs) {
  PackedTable table;
  table.attrs_ = attrs;
  table.columns_.reserve(attrs.size());
  for (int attr : attrs) {
    table.columns_.push_back(PackedColumn::Pack(
        dataset.column(attr), dataset.schema().attribute(attr).cardinality()));
  }
  return table;
}

}  // namespace evocat
