#include "data/packed_column.h"

namespace evocat {

int PackedColumn::BitWidthFor(int32_t cardinality) {
  int bits = 1;
  while ((int64_t{1} << bits) < static_cast<int64_t>(cardinality)) ++bits;
  return bits;
}

PackedColumn PackedColumn::Pack(const std::vector<int32_t>& codes,
                                int32_t cardinality) {
  PackedColumn column;
  column.bits_ = BitWidthFor(cardinality);
  column.mask_ = (uint64_t{1} << column.bits_) - 1;
  column.num_values_ = static_cast<int64_t>(codes.size());
  uint64_t total_bits = static_cast<uint64_t>(codes.size()) *
                        static_cast<uint64_t>(column.bits_);
  // One guard word past the end so straddle reads of the last value never
  // run off the buffer.
  size_t num_words = static_cast<size_t>((total_bits + 63) >> 6) + 1;
  column.words_ = std::make_shared<std::vector<uint64_t>>(num_words, 0);
  uint64_t* words = column.words_->data();
  uint64_t bit = 0;
  for (int32_t code : codes) {
    auto value = static_cast<uint64_t>(static_cast<uint32_t>(code)) & column.mask_;
    size_t word = static_cast<size_t>(bit >> 6);
    int offset = static_cast<int>(bit & 63u);
    words[word] |= value << offset;
    if (offset + column.bits_ > 64) words[word + 1] |= value >> (64 - offset);
    bit += static_cast<uint64_t>(column.bits_);
  }
  return column;
}

void PackedColumn::Set(int64_t i, int32_t code) {
  Detach();
  uint64_t bit = static_cast<uint64_t>(i) * static_cast<uint64_t>(bits_);
  size_t word = static_cast<size_t>(bit >> 6);
  int offset = static_cast<int>(bit & 63u);
  auto value = static_cast<uint64_t>(static_cast<uint32_t>(code)) & mask_;
  uint64_t* words = words_->data();
  words[word] = (words[word] & ~(mask_ << offset)) | (value << offset);
  if (offset + bits_ > 64) {
    int spill = 64 - offset;
    words[word + 1] =
        (words[word + 1] & ~(mask_ >> spill)) | (value >> spill);
  }
}

std::vector<int32_t> PackedColumn::Unpack() const {
  std::vector<int32_t> codes(static_cast<size_t>(num_values_));
  ForEachRange(0, num_values_, [&](int64_t i, int32_t code) {
    codes[static_cast<size_t>(i)] = code;
  });
  return codes;
}

void PackedColumn::AccumulateCounts(int64_t begin, int64_t end,
                                    int64_t* counts) const {
  ForEachRange(begin, end,
               [&](int64_t, int32_t code) { ++counts[code]; });
}

PackedTable PackedTable::FromDataset(const Dataset& dataset,
                                     const std::vector<int>& attrs) {
  PackedTable table;
  table.attrs_ = attrs;
  table.columns_.reserve(attrs.size());
  for (int attr : attrs) {
    table.columns_.push_back(PackedColumn::Pack(
        dataset.column(attr), dataset.schema().attribute(attr).cardinality()));
  }
  return table;
}

}  // namespace evocat
