/// \file stats.h
/// \brief Frequency, contingency-table and rank statistics over datasets.
///
/// These are the building blocks of the information-loss measures (CTBIL,
/// EBIL) and the rank-based disclosure-risk measures (ID, RSRL).

#ifndef EVOCAT_DATA_STATS_H_
#define EVOCAT_DATA_STATS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "data/packed_column.h"

namespace evocat {

/// \brief Per-category record counts for one attribute (indexed by code).
std::vector<int64_t> CategoryCounts(const Dataset& dataset, int attr);

/// \brief Per-category record counts of a bit-packed column.
std::vector<int64_t> CategoryCounts(const PackedColumn& column,
                                    int32_t cardinality);

/// \brief Per-category relative frequencies (sums to 1 for non-empty data).
std::vector<double> CategoryFrequencies(const Dataset& dataset, int attr);

/// \brief Joint frequency table over up to 4 attributes.
///
/// Cells are keyed by the packed category codes (16 bits per attribute).
/// Only non-empty cells are stored, so high-dimensional sparse tables stay
/// cheap. `L1Distance` iterates the union of cells of two tables — the core
/// operation of the contingency-table-based information loss.
class ContingencyTable {
 public:
  /// \brief Builds the joint table of `dataset` over `attrs` (1..4 indices).
  static Result<ContingencyTable> Build(const Dataset& dataset,
                                        const std::vector<int>& attrs);

  /// \brief Count for the cell addressed by one code per table attribute.
  int64_t Count(const std::vector<int32_t>& codes) const;

  /// \brief Number of non-empty cells.
  size_t num_cells() const { return cells_.size(); }

  /// \brief Total count (number of records).
  int64_t total() const { return total_; }

  /// \brief Attribute indices this table was built over.
  const std::vector<int>& attrs() const { return attrs_; }

  /// \brief Sum over the union of cells of |count_this - count_other|.
  int64_t L1Distance(const ContingencyTable& other) const;

  /// \brief Access to raw cells (packed key -> count) for iteration.
  const std::unordered_map<uint64_t, int64_t>& cells() const { return cells_; }

  /// \brief Packs one code per attribute into a cell key.
  static uint64_t PackKey(const std::vector<int32_t>& codes);

  /// \brief Adds each row's packed-key count over [begin, end) into `cells`
  /// — the per-shard kernel of the row-sharded contingency builds. Shard
  /// partials are integer counts, so merging them in any order reproduces
  /// the serial `Build` exactly.
  static void AccumulateRange(const Dataset& dataset,
                              const std::vector<int>& attrs, int64_t begin,
                              int64_t end,
                              std::unordered_map<uint64_t, int64_t>* cells);

  /// \brief `AccumulateRange` over bit-packed columns (one per attribute,
  /// same order as the subset) — the packed counting path of CTBIL.
  static void AccumulateRangePacked(
      const std::vector<const PackedColumn*>& columns, int64_t begin,
      int64_t end, std::unordered_map<uint64_t, int64_t>* cells);

 private:
  std::vector<int> attrs_;
  std::unordered_map<uint64_t, int64_t> cells_;
  int64_t total_ = 0;
};

/// \brief Mid-rank of each category within its column (indexed by code).
///
/// Records are conceptually sorted by code; all records sharing a category
/// receive the category's average 1-based position. Categories with zero
/// records get the boundary position. This is the tie-aware rank used by
/// interval disclosure and the rank-swapping attack.
std::vector<double> CategoryMidranks(const Dataset& dataset, int attr);

/// \brief Mid-ranks straight from per-category counts (the kernel behind
/// `CategoryMidranks`, exposed so incremental masked-side states can rebuild
/// ranks bit-identically from maintained counts).
std::vector<double> MidranksFromCounts(const std::vector<int64_t>& counts);

/// \brief All subsets of {0..n-1} with exactly `k` elements (lexicographic).
std::vector<std::vector<int>> SubsetsOfSize(int n, int k);

}  // namespace evocat

#endif  // EVOCAT_DATA_STATS_H_
