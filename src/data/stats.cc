#include "data/stats.h"

#include <algorithm>

namespace evocat {

std::vector<int64_t> CategoryCounts(const Dataset& dataset, int attr) {
  std::vector<int64_t> counts(
      static_cast<size_t>(dataset.schema().attribute(attr).cardinality()), 0);
  for (int32_t code : dataset.column(attr)) {
    counts[static_cast<size_t>(code)] += 1;
  }
  return counts;
}

std::vector<int64_t> CategoryCounts(const PackedColumn& column,
                                    int32_t cardinality) {
  std::vector<int64_t> counts(static_cast<size_t>(cardinality), 0);
  column.AccumulateCounts(0, column.size(), counts.data());
  return counts;
}

std::vector<double> CategoryFrequencies(const Dataset& dataset, int attr) {
  auto counts = CategoryCounts(dataset, attr);
  std::vector<double> freqs(counts.size(), 0.0);
  double n = static_cast<double>(dataset.num_rows());
  if (n <= 0) return freqs;
  for (size_t i = 0; i < counts.size(); ++i) {
    freqs[i] = static_cast<double>(counts[i]) / n;
  }
  return freqs;
}

uint64_t ContingencyTable::PackKey(const std::vector<int32_t>& codes) {
  uint64_t key = 0;
  for (size_t i = 0; i < codes.size(); ++i) {
    key |= (static_cast<uint64_t>(static_cast<uint32_t>(codes[i])) & 0xFFFFu)
           << (16 * i);
  }
  return key;
}

Result<ContingencyTable> ContingencyTable::Build(const Dataset& dataset,
                                                 const std::vector<int>& attrs) {
  if (attrs.empty() || attrs.size() > 4) {
    return Status::Invalid("contingency table supports 1..4 attributes, got ",
                           attrs.size());
  }
  for (int a : attrs) {
    if (a < 0 || a >= dataset.num_attributes()) {
      return Status::OutOfRange("attribute index ", a, " out of range");
    }
    if (dataset.schema().attribute(a).cardinality() > 0xFFFF) {
      return Status::Invalid("attribute cardinality exceeds 65535");
    }
  }
  ContingencyTable table;
  table.attrs_ = attrs;
  std::vector<int32_t> codes(attrs.size());
  for (int64_t r = 0; r < dataset.num_rows(); ++r) {
    for (size_t i = 0; i < attrs.size(); ++i) {
      codes[i] = dataset.Code(r, attrs[i]);
    }
    table.cells_[PackKey(codes)] += 1;
    table.total_ += 1;
  }
  return table;
}

void ContingencyTable::AccumulateRange(
    const Dataset& dataset, const std::vector<int>& attrs, int64_t begin,
    int64_t end, std::unordered_map<uint64_t, int64_t>* cells) {
  std::vector<const Dataset::Column*> columns;
  columns.reserve(attrs.size());
  for (int attr : attrs) columns.push_back(&dataset.column(attr));
  for (int64_t r = begin; r < end; ++r) {
    uint64_t key = 0;
    for (size_t i = 0; i < columns.size(); ++i) {
      key |= (static_cast<uint64_t>(static_cast<uint32_t>(
                  (*columns[i])[static_cast<size_t>(r)])) &
              0xFFFFu)
             << (16 * i);
    }
    (*cells)[key] += 1;
  }
}

void ContingencyTable::AccumulateRangePacked(
    const std::vector<const PackedColumn*>& columns, int64_t begin, int64_t end,
    std::unordered_map<uint64_t, int64_t>* cells) {
  if (begin >= end || columns.empty()) return;
  // Word-parallel path: decode each column in blocks with the bulk kernel
  // (one word load per word instead of one per value), combine the block's
  // codes into a mixed-radix index of `bit_width` bits per attribute, and
  // count into a dense array — the hash-map insert leaves the per-row path
  // entirely. The dense index is converted to the sparse 16-bit-per-attr
  // cell key only once per non-empty cell at flush time. Counts are
  // integers, so the result is bit-identical to the per-row decode loop for
  // any block size.
  constexpr int64_t kBlock = 1024;
  // 2^18 * 8B = 2MB of scratch at most; wider joint domains (which the
  // sparse map exists for in the first place) keep the map per row but
  // still get the block decode.
  constexpr int kMaxDenseBits = 18;
  const size_t k = columns.size();
  int shifts[4] = {0, 0, 0, 0};
  int total_bits = 0;
  for (size_t i = 0; i < k; ++i) {
    shifts[i] = total_bits;
    total_bits += columns[i]->bit_width();
  }
  std::vector<int32_t> buf(k * static_cast<size_t>(kBlock));
  int32_t* col[4] = {nullptr, nullptr, nullptr, nullptr};
  for (size_t i = 0; i < k; ++i) col[i] = buf.data() + i * kBlock;

  const bool dense_fits = total_bits <= kMaxDenseBits;
  std::vector<int64_t> dense;
  if (dense_fits) dense.assign(size_t{1} << total_bits, 0);

  for (int64_t block = begin; block < end; block += kBlock) {
    int64_t len = std::min(kBlock, end - block);
    for (size_t i = 0; i < k; ++i) {
      columns[i]->DecodeRange(block, block + len, col[i]);
    }
    if (dense_fits) {
      int64_t* counts = dense.data();
      switch (k) {
        case 1:
          for (int64_t r = 0; r < len; ++r) ++counts[col[0][r]];
          break;
        case 2: {
          const int s1 = shifts[1];
          for (int64_t r = 0; r < len; ++r) {
            ++counts[col[0][r] | (col[1][r] << s1)];
          }
          break;
        }
        default:
          for (int64_t r = 0; r < len; ++r) {
            uint32_t idx = static_cast<uint32_t>(col[0][r]);
            for (size_t i = 1; i < k; ++i) {
              idx |= static_cast<uint32_t>(col[i][r]) << shifts[i];
            }
            ++counts[idx];
          }
      }
    } else {
      for (int64_t r = 0; r < len; ++r) {
        uint64_t key = 0;
        for (size_t i = 0; i < k; ++i) {
          key |= (static_cast<uint64_t>(static_cast<uint32_t>(col[i][r])) &
                  0xFFFFu)
                 << (16 * i);
        }
        (*cells)[key] += 1;
      }
    }
  }

  if (dense_fits) {
    const uint32_t width_mask[4] = {
        k > 0 ? (uint32_t{1} << columns[0]->bit_width()) - 1 : 0,
        k > 1 ? (uint32_t{1} << columns[1]->bit_width()) - 1 : 0,
        k > 2 ? (uint32_t{1} << columns[2]->bit_width()) - 1 : 0,
        k > 3 ? (uint32_t{1} << columns[3]->bit_width()) - 1 : 0};
    for (size_t idx = 0; idx < dense.size(); ++idx) {
      if (dense[idx] == 0) continue;
      uint64_t key = 0;
      for (size_t i = 0; i < k; ++i) {
        key |= static_cast<uint64_t>((idx >> shifts[i]) & width_mask[i])
               << (16 * i);
      }
      (*cells)[key] += dense[idx];
    }
  }
}

int64_t ContingencyTable::Count(const std::vector<int32_t>& codes) const {
  auto it = cells_.find(PackKey(codes));
  return it == cells_.end() ? 0 : it->second;
}

int64_t ContingencyTable::L1Distance(const ContingencyTable& other) const {
  int64_t dist = 0;
  for (const auto& [key, count] : cells_) {
    auto it = other.cells_.find(key);
    int64_t other_count = it == other.cells_.end() ? 0 : it->second;
    dist += std::llabs(count - other_count);
  }
  // Cells present only in `other`.
  for (const auto& [key, count] : other.cells_) {
    if (cells_.find(key) == cells_.end()) dist += std::llabs(count);
  }
  return dist;
}

std::vector<double> CategoryMidranks(const Dataset& dataset, int attr) {
  return MidranksFromCounts(CategoryCounts(dataset, attr));
}

std::vector<double> MidranksFromCounts(const std::vector<int64_t>& counts) {
  std::vector<double> midranks(counts.size(), 0.0);
  double cum = 0.0;
  for (size_t c = 0; c < counts.size(); ++c) {
    double cnt = static_cast<double>(counts[c]);
    // Average of positions cum+1 .. cum+cnt; boundary position when empty.
    midranks[c] = cnt > 0 ? cum + (cnt + 1.0) / 2.0 : cum + 0.5;
    cum += cnt;
  }
  return midranks;
}

std::vector<std::vector<int>> SubsetsOfSize(int n, int k) {
  std::vector<std::vector<int>> out;
  if (k <= 0 || k > n) return out;
  std::vector<int> subset(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) subset[static_cast<size_t>(i)] = i;
  while (true) {
    out.push_back(subset);
    // Advance to the next lexicographic k-subset.
    int i = k - 1;
    while (i >= 0 && subset[static_cast<size_t>(i)] == n - k + i) --i;
    if (i < 0) break;
    ++subset[static_cast<size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      subset[static_cast<size_t>(j)] = subset[static_cast<size_t>(j - 1)] + 1;
    }
  }
  return out;
}

}  // namespace evocat
