#include "data/schema.h"

namespace evocat {

const char* AttrKindToString(AttrKind kind) {
  switch (kind) {
    case AttrKind::kNominal:
      return "nominal";
    case AttrKind::kOrdinal:
      return "ordinal";
  }
  return "?";
}

Result<int> Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < num_attributes(); ++i) {
    if (attributes_[static_cast<size_t>(i)].name() == name) return i;
  }
  return Status::NotFound("attribute '", name, "' not in schema");
}

Result<std::vector<int>> Schema::IndicesOf(
    const std::vector<std::string>& names) const {
  std::vector<int> out;
  out.reserve(names.size());
  for (const auto& name : names) {
    EVOCAT_ASSIGN_OR_RETURN(int idx, IndexOf(name));
    out.push_back(idx);
  }
  return out;
}

}  // namespace evocat
