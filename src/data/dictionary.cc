#include "data/dictionary.h"

namespace evocat {

int32_t Dictionary::GetOrAdd(const std::string& value) {
  auto it = index_.find(value);
  if (it != index_.end()) return it->second;
  int32_t code = static_cast<int32_t>(values_.size());
  values_.push_back(value);
  index_.emplace(value, code);
  return code;
}

Result<int32_t> Dictionary::CodeOf(const std::string& value) const {
  auto it = index_.find(value);
  if (it == index_.end()) {
    return Status::NotFound("category '", value, "' not in dictionary");
  }
  return it->second;
}

}  // namespace evocat
