#include "data/hierarchy.h"

#include <algorithm>
#include <set>

namespace evocat {

Result<ValueHierarchy> ValueHierarchy::BuildBalanced(int cardinality,
                                                     int fanout) {
  if (cardinality < 1) {
    return Status::Invalid("hierarchy needs cardinality >= 1, got ",
                           cardinality);
  }
  if (fanout < 2) {
    return Status::Invalid("hierarchy fanout must be >= 2, got ", fanout);
  }
  ValueHierarchy hierarchy;
  hierarchy.cardinality_ = cardinality;

  // Level 0: identity.
  std::vector<int32_t> current(static_cast<size_t>(cardinality));
  for (int32_t c = 0; c < cardinality; ++c) current[static_cast<size_t>(c)] = c;
  int groups = cardinality;
  hierarchy.group_maps_.push_back(current);
  hierarchy.num_groups_.push_back(groups);

  // Merge `fanout` adjacent groups per level until a single group remains.
  while (groups > 1) {
    int next_groups = (groups + fanout - 1) / fanout;
    std::vector<int32_t> next(static_cast<size_t>(cardinality));
    for (int32_t c = 0; c < cardinality; ++c) {
      next[static_cast<size_t>(c)] = current[static_cast<size_t>(c)] / fanout;
    }
    current = next;
    groups = next_groups;
    hierarchy.group_maps_.push_back(current);
    hierarchy.num_groups_.push_back(groups);
  }

  hierarchy.RebuildRepresentatives();
  return hierarchy;
}

Result<ValueHierarchy> ValueHierarchy::FromLevelMaps(
    int cardinality, const std::vector<std::vector<int32_t>>& levels) {
  if (cardinality < 1) {
    return Status::Invalid("hierarchy needs cardinality >= 1, got ",
                           cardinality);
  }
  ValueHierarchy hierarchy;
  hierarchy.cardinality_ = cardinality;

  std::vector<int32_t> identity(static_cast<size_t>(cardinality));
  for (int32_t c = 0; c < cardinality; ++c) identity[static_cast<size_t>(c)] = c;
  hierarchy.group_maps_.push_back(identity);
  hierarchy.num_groups_.push_back(cardinality);

  for (size_t l = 0; l < levels.size(); ++l) {
    const auto& level = levels[l];
    if (static_cast<int>(level.size()) != cardinality) {
      return Status::Invalid("level ", l + 1, " maps ", level.size(),
                             " codes, expected ", cardinality);
    }
    // Group ids dense from 0.
    int32_t max_group = -1;
    for (int32_t g : level) {
      if (g < 0) return Status::Invalid("level ", l + 1, ": negative group id");
      max_group = std::max(max_group, g);
    }
    std::set<int32_t> distinct(level.begin(), level.end());
    if (static_cast<int32_t>(distinct.size()) != max_group + 1) {
      return Status::Invalid("level ", l + 1, ": group ids not dense");
    }
    // Coarsening: two codes sharing a group at the previous level must share
    // one here too.
    const auto& previous = hierarchy.group_maps_.back();
    for (int32_t a = 0; a < cardinality; ++a) {
      for (int32_t b = a + 1; b < cardinality; ++b) {
        if (previous[static_cast<size_t>(a)] == previous[static_cast<size_t>(b)] &&
            level[static_cast<size_t>(a)] != level[static_cast<size_t>(b)]) {
          return Status::Invalid("level ", l + 1, " splits codes ", a, " and ",
                                 b, " merged at level ", l);
        }
      }
    }
    hierarchy.group_maps_.push_back(level);
    hierarchy.num_groups_.push_back(max_group + 1);
  }

  hierarchy.RebuildRepresentatives();
  return hierarchy;
}

void ValueHierarchy::RebuildRepresentatives() {
  representatives_.clear();
  for (size_t level = 0; level < group_maps_.size(); ++level) {
    int groups = num_groups_[level];
    // Collect members per group (code order), take the central one.
    std::vector<std::vector<int32_t>> members(static_cast<size_t>(groups));
    for (int32_t c = 0; c < cardinality_; ++c) {
      members[static_cast<size_t>(group_maps_[level][static_cast<size_t>(c)])]
          .push_back(c);
    }
    std::vector<int32_t> reps(static_cast<size_t>(groups), 0);
    for (int g = 0; g < groups; ++g) {
      const auto& group = members[static_cast<size_t>(g)];
      reps[static_cast<size_t>(g)] = group[(group.size() - 1) / 2];
    }
    representatives_.push_back(std::move(reps));
  }
}

int ValueHierarchy::LowestCommonLevel(int32_t a, int32_t b) const {
  for (int level = 0; level < num_levels(); ++level) {
    if (GroupOf(a, level) == GroupOf(b, level)) return level;
  }
  return num_levels();  // no common ancestor (top level not a single group)
}

double ValueHierarchy::SemanticDistance(int32_t a, int32_t b) const {
  if (a == b) return 0.0;
  int height = num_levels() - 1;
  if (height <= 0) return a == b ? 0.0 : 1.0;
  return static_cast<double>(LowestCommonLevel(a, b)) /
         static_cast<double>(height);
}

}  // namespace evocat
