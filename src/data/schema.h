/// \file schema.h
/// \brief Attribute metadata and dataset schema.

#ifndef EVOCAT_DATA_SCHEMA_H_
#define EVOCAT_DATA_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dictionary.h"

namespace evocat {

/// \brief Measurement level of a categorical attribute.
///
/// Ordinal attributes have a meaningful category order (rank == dictionary
/// code); nominal attributes are unordered labels. Distance functions, coding
/// methods and rank-based attacks behave differently per kind.
enum class AttrKind { kNominal, kOrdinal };

const char* AttrKindToString(AttrKind kind);

/// \brief One categorical attribute: name, kind, and its category dictionary.
///
/// The dictionary is shared (`shared_ptr`) between the original dataset and
/// every masked copy, so codes are directly comparable across files.
class Attribute {
 public:
  Attribute(std::string name, AttrKind kind)
      : name_(std::move(name)),
        kind_(kind),
        dictionary_(std::make_shared<Dictionary>()) {}

  const std::string& name() const { return name_; }
  AttrKind kind() const { return kind_; }

  Dictionary& dictionary() { return *dictionary_; }
  const Dictionary& dictionary() const { return *dictionary_; }
  const std::shared_ptr<Dictionary>& dictionary_ptr() const { return dictionary_; }

  /// \brief Number of valid categories.
  int32_t cardinality() const { return dictionary_->size(); }

 private:
  std::string name_;
  AttrKind kind_;
  std::shared_ptr<Dictionary> dictionary_;
};

/// \brief Ordered collection of attributes describing a microdata file.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  /// \brief Appends an attribute; returns its index.
  int AddAttribute(Attribute attribute) {
    attributes_.push_back(std::move(attribute));
    return static_cast<int>(attributes_.size()) - 1;
  }

  int num_attributes() const { return static_cast<int>(attributes_.size()); }

  const Attribute& attribute(int i) const { return attributes_[static_cast<size_t>(i)]; }
  Attribute& attribute(int i) { return attributes_[static_cast<size_t>(i)]; }

  /// \brief Index of the attribute named `name`, or NotFound.
  Result<int> IndexOf(const std::string& name) const;

  /// \brief Indices for a list of attribute names (order preserved).
  Result<std::vector<int>> IndicesOf(const std::vector<std::string>& names) const;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace evocat

#endif  // EVOCAT_DATA_SCHEMA_H_
