#include "data/csv.h"

#include <fstream>
#include <memory>
#include <sstream>

#include "common/string_utils.h"

namespace evocat {

Result<Dataset> ReadCsvStream(std::istream& in, const CsvReadOptions& options) {
  std::string line;
  std::vector<std::string> header;
  if (options.has_header) {
    if (!std::getline(in, line)) {
      return Status::IOError("empty CSV input (missing header)");
    }
    header = SplitCsvLine(Trim(line), options.separator);
  }

  std::vector<std::vector<std::string>> rows;
  int expected_fields = options.has_header ? static_cast<int>(header.size()) : -1;
  int64_t line_no = options.has_header ? 1 : 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    auto fields = SplitCsvLine(trimmed, options.separator);
    if (expected_fields < 0) expected_fields = static_cast<int>(fields.size());
    if (static_cast<int>(fields.size()) != expected_fields) {
      return Status::Invalid("line ", line_no, ": expected ", expected_fields,
                             " fields, got ", fields.size());
    }
    rows.push_back(std::move(fields));
  }
  if (expected_fields <= 0) {
    return Status::Invalid("CSV input has no data rows and no header");
  }

  auto schema = std::make_shared<Schema>();
  for (int a = 0; a < expected_fields; ++a) {
    std::string name = options.has_header ? header[static_cast<size_t>(a)]
                                          : "c" + std::to_string(a);
    AttrKind kind = options.ordinal_attributes.count(name)
                        ? AttrKind::kOrdinal
                        : AttrKind::kNominal;
    schema->AddAttribute(Attribute(name, kind));
  }

  Dataset dataset(schema);
  for (const auto& row : rows) {
    EVOCAT_RETURN_NOT_OK(dataset.AppendRowValues(row));
  }
  return dataset;
}

Result<Dataset> ReadCsvFile(const std::string& path,
                            const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '", path, "' for reading");
  }
  return ReadCsvStream(in, options);
}

Status WriteCsvStream(const Dataset& dataset, std::ostream& out, char separator) {
  const Schema& schema = dataset.schema();
  for (int a = 0; a < schema.num_attributes(); ++a) {
    if (a) out << separator;
    out << CsvEscape(schema.attribute(a).name(), separator);
  }
  out << '\n';
  for (int64_t r = 0; r < dataset.num_rows(); ++r) {
    for (int a = 0; a < schema.num_attributes(); ++a) {
      if (a) out << separator;
      out << CsvEscape(dataset.Value(r, a), separator);
    }
    out << '\n';
  }
  if (!out) return Status::IOError("error while writing CSV stream");
  return Status::OK();
}

Status WriteCsvFile(const Dataset& dataset, const std::string& path,
                    char separator) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '", path, "' for writing");
  }
  return WriteCsvStream(dataset, out, separator);
}

}  // namespace evocat
