#include "data/csv.h"

#include <fstream>
#include <memory>
#include <sstream>

#include "common/string_utils.h"

namespace evocat {

Result<Dataset> ReadCsvStream(std::istream& in, const CsvReadOptions& options) {
  std::string line;
  std::vector<std::string> header;
  if (options.has_header) {
    if (!std::getline(in, line)) {
      return Status::IOError("empty CSV input (missing header)");
    }
    header = SplitCsvLine(Trim(line), options.separator);
  }

  std::vector<std::vector<std::string>> rows;
  std::vector<int64_t> row_lines;  // 1-based source line of each kept row
  int expected_fields = options.has_header ? static_cast<int>(header.size()) : -1;
  int64_t line_no = options.has_header ? 1 : 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    auto fields = SplitCsvLine(trimmed, options.separator);
    if (expected_fields < 0) expected_fields = static_cast<int>(fields.size());
    if (static_cast<int>(fields.size()) != expected_fields) {
      // The offending cell: the first missing column, or the first extra one.
      int column = std::min(static_cast<int>(fields.size()), expected_fields) + 1;
      return Status::Invalid("line ", line_no, ", column ", column,
                             ": expected ", expected_fields, " fields, got ",
                             fields.size());
    }
    rows.push_back(std::move(fields));
    row_lines.push_back(line_no);
  }
  if (expected_fields <= 0) {
    return Status::Invalid("CSV input has no data rows and no header");
  }

  if (options.bind_schema) {
    // Strict decode onto the caller's schema: positions must line up and
    // every value must already be a known category, so each failure names
    // its exact 1-based line and column.
    const Schema& schema = *options.bind_schema;
    if (schema.num_attributes() != expected_fields) {
      return Status::Invalid("file has ", expected_fields,
                             " attributes, bound schema has ",
                             schema.num_attributes());
    }
    // With a header available, also require the names to line up — a
    // reordered file would otherwise decode values against the wrong
    // dictionaries, silently whenever category sets overlap.
    if (options.has_header) {
      for (int a = 0; a < expected_fields; ++a) {
        if (header[static_cast<size_t>(a)] != schema.attribute(a).name()) {
          return Status::Invalid("column ", a + 1, ": header '",
                                 header[static_cast<size_t>(a)],
                                 "' does not match bound schema attribute '",
                                 schema.attribute(a).name(), "'");
        }
      }
    }
    Dataset dataset(options.bind_schema);
    std::vector<int32_t> codes(static_cast<size_t>(expected_fields));
    for (size_t r = 0; r < rows.size(); ++r) {
      for (int a = 0; a < expected_fields; ++a) {
        const std::string& value = rows[r][static_cast<size_t>(a)];
        auto code = schema.attribute(a).dictionary().CodeOf(value);
        if (!code.ok()) {
          return Status::Invalid("line ", row_lines[r], ", column ", a + 1,
                                 ": value '", value,
                                 "' is not a category of attribute '",
                                 schema.attribute(a).name(), "'");
        }
        codes[static_cast<size_t>(a)] = code.ValueOrDie();
      }
      Status append_status = dataset.AppendRowCodes(codes);
      if (!append_status.ok()) {
        return Status(append_status.code(),
                      "line " + std::to_string(row_lines[r]) + ": " +
                          append_status.message());
      }
    }
    return dataset;
  }

  auto schema = std::make_shared<Schema>();
  for (int a = 0; a < expected_fields; ++a) {
    std::string name = options.has_header ? header[static_cast<size_t>(a)]
                                          : "c" + std::to_string(a);
    AttrKind kind = options.ordinal_attributes.count(name)
                        ? AttrKind::kOrdinal
                        : AttrKind::kNominal;
    schema->AddAttribute(Attribute(name, kind));
  }

  Dataset dataset(schema);
  for (size_t r = 0; r < rows.size(); ++r) {
    Status row_status = dataset.AppendRowValues(rows[r]);
    if (!row_status.ok()) {
      return Status(row_status.code(),
                    "line " + std::to_string(row_lines[r]) + ": " +
                        row_status.message());
    }
  }
  return dataset;
}

Result<Dataset> ReadCsvFile(const std::string& path,
                            const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '", path, "' for reading");
  }
  auto dataset = ReadCsvStream(in, options);
  if (!dataset.ok()) {
    // Stream errors name line/column; prepend the file for full context.
    return Status(dataset.status().code(),
                  path + ": " + dataset.status().message());
  }
  return dataset;
}

Status WriteCsvStream(const Dataset& dataset, std::ostream& out, char separator) {
  const Schema& schema = dataset.schema();
  for (int a = 0; a < schema.num_attributes(); ++a) {
    if (a) out << separator;
    out << CsvEscape(schema.attribute(a).name(), separator);
  }
  out << '\n';
  for (int64_t r = 0; r < dataset.num_rows(); ++r) {
    for (int a = 0; a < schema.num_attributes(); ++a) {
      if (a) out << separator;
      out << CsvEscape(dataset.Value(r, a), separator);
    }
    out << '\n';
  }
  if (!out) return Status::IOError("error while writing CSV stream");
  return Status::OK();
}

Status WriteCsvFile(const Dataset& dataset, const std::string& path,
                    char separator) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '", path, "' for writing");
  }
  return WriteCsvStream(dataset, out, separator);
}

}  // namespace evocat
