#include "data/dataset.h"

namespace evocat {

Status Dataset::AppendRowCodes(const std::vector<int32_t>& codes) {
  if (static_cast<int>(codes.size()) != num_attributes()) {
    return Status::Invalid("row has ", codes.size(), " values, schema has ",
                           num_attributes(), " attributes");
  }
  for (int a = 0; a < num_attributes(); ++a) {
    const auto& dict = schema_->attribute(a).dictionary();
    if (!dict.IsValidCode(codes[static_cast<size_t>(a)])) {
      return Status::OutOfRange("code ", codes[static_cast<size_t>(a)],
                                " invalid for attribute '",
                                schema_->attribute(a).name(), "' (cardinality ",
                                dict.size(), ")");
    }
  }
  for (int a = 0; a < num_attributes(); ++a) {
    mutable_column(a).push_back(codes[static_cast<size_t>(a)]);
  }
  return Status::OK();
}

Status Dataset::AppendRowValues(const std::vector<std::string>& values) {
  if (static_cast<int>(values.size()) != num_attributes()) {
    return Status::Invalid("row has ", values.size(), " values, schema has ",
                           num_attributes(), " attributes");
  }
  for (int a = 0; a < num_attributes(); ++a) {
    int32_t code =
        schema_->attribute(a).dictionary().GetOrAdd(values[static_cast<size_t>(a)]);
    mutable_column(a).push_back(code);
  }
  return Status::OK();
}

Dataset Dataset::Clone() const {
  Dataset copy(schema_);
  copy.columns_ = columns_;  // COW: buffers shared until first write
  return copy;
}

bool Dataset::SameCodes(const Dataset& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t a = 0; a < columns_.size(); ++a) {
    if (columns_[a] == other.columns_[a]) continue;  // shared buffer
    if (*columns_[a] != *other.columns_[a]) return false;
  }
  return true;
}

Status Dataset::Validate() const {
  for (int a = 0; a < num_attributes(); ++a) {
    const auto& dict = schema_->attribute(a).dictionary();
    const auto& col = column(a);
    if (col.size() != static_cast<size_t>(num_rows())) {
      return Status::Internal("ragged column for attribute '",
                              schema_->attribute(a).name(), "'");
    }
    for (size_t r = 0; r < col.size(); ++r) {
      if (!dict.IsValidCode(col[r])) {
        return Status::OutOfRange("invalid code ", col[r], " at row ", r,
                                  " attribute '", schema_->attribute(a).name(),
                                  "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace evocat
