/// \file hierarchy.h
/// \brief Value generalization hierarchies (VGH) for categorical attributes.
///
/// Non-perturbative SDC (the paper's global recoding, Argus-style) is
/// classically driven by a per-attribute generalization tree: level 0 holds
/// the original categories, each higher level merges groups of the previous
/// one, and the top level is a single "any" class. A `ValueHierarchy` stores
/// that tree as per-level group maps over the dictionary codes, supports
/// recoding a category to the representative of its level-L ancestor
/// (domain-closed: the representative is an original category), and defines
/// the semantic distance used by hierarchy-aware analyses: the normalized
/// depth of the lowest common ancestor.

#ifndef EVOCAT_DATA_HIERARCHY_H_
#define EVOCAT_DATA_HIERARCHY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/schema.h"

namespace evocat {

/// \brief A generalization tree over one attribute's category codes.
class ValueHierarchy {
 public:
  /// \brief Builds a balanced hierarchy by repeatedly merging `fanout`
  /// adjacent groups (code order) until one group remains.
  ///
  /// Level 0 is the identity (every category its own group). Requires
  /// cardinality >= 1 and fanout >= 2.
  static Result<ValueHierarchy> BuildBalanced(int cardinality, int fanout);

  /// \brief Builds a hierarchy from explicit per-level group assignments.
  ///
  /// `levels[l][code]` is the group id of `code` at level l+1 (level 0 is
  /// implicit). Group ids per level must be dense starting at 0, and each
  /// level must coarsen the previous one (never split a group).
  static Result<ValueHierarchy> FromLevelMaps(
      int cardinality, const std::vector<std::vector<int32_t>>& levels);

  /// \brief Number of levels including the leaf level 0.
  int num_levels() const { return static_cast<int>(group_maps_.size()); }

  /// \brief Number of categories at the leaf level.
  int cardinality() const { return cardinality_; }

  /// \brief Number of distinct groups at `level`.
  int NumGroups(int level) const { return num_groups_[static_cast<size_t>(level)]; }

  /// \brief Group id of `code` at `level` (level 0: the code itself).
  int32_t GroupOf(int32_t code, int level) const {
    return group_maps_[static_cast<size_t>(level)][static_cast<size_t>(code)];
  }

  /// \brief Representative original category of `code`'s group at `level`
  /// (the central member in code order) — keeps recodings domain-closed.
  int32_t RepresentativeOf(int32_t code, int level) const {
    return representatives_[static_cast<size_t>(level)]
                           [static_cast<size_t>(GroupOf(code, level))];
  }

  /// \brief Lowest level at which `a` and `b` share a group (0 when equal;
  /// num_levels()-1 at the latest if the top level is a single group).
  int LowestCommonLevel(int32_t a, int32_t b) const;

  /// \brief Semantic distance in [0, 1]: LowestCommonLevel normalized by the
  /// tree height. 0 iff equal; 1 when only the top level unites them.
  double SemanticDistance(int32_t a, int32_t b) const;

 private:
  int cardinality_ = 0;
  /// group_maps_[level][code] -> group id (level 0 = identity).
  std::vector<std::vector<int32_t>> group_maps_;
  /// representatives_[level][group] -> representative category code.
  std::vector<std::vector<int32_t>> representatives_;
  std::vector<int> num_groups_;

  void RebuildRepresentatives();
};

}  // namespace evocat

#endif  // EVOCAT_DATA_HIERARCHY_H_
