/// \file dataset.h
/// \brief Columnar, dictionary-encoded categorical microdata file.
///
/// A `Dataset` stores one code column per attribute. The schema (attribute
/// names, kinds and dictionaries) is shared by reference between a dataset
/// and all masked copies derived from it, which makes codes directly
/// comparable across files — the property every metric and genetic operator
/// relies on. Masked copies are cheap: the schema is shared, only the code
/// columns are duplicated.

#ifndef EVOCAT_DATA_DATASET_H_
#define EVOCAT_DATA_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/schema.h"

namespace evocat {

/// \brief A categorical microdata table (records x attributes).
class Dataset {
 public:
  /// \brief Empty dataset over an empty schema (placeholder/moved-from use).
  Dataset() : Dataset(std::make_shared<Schema>()) {}

  /// \brief Creates an empty dataset over `schema`.
  explicit Dataset(std::shared_ptr<Schema> schema)
      : schema_(std::move(schema)),
        columns_(static_cast<size_t>(schema_->num_attributes())) {}

  /// Shared schema accessors.
  const Schema& schema() const { return *schema_; }
  Schema& schema() { return *schema_; }
  const std::shared_ptr<Schema>& schema_ptr() const { return schema_; }

  int64_t num_rows() const {
    return columns_.empty() ? 0 : static_cast<int64_t>(columns_[0].size());
  }
  int num_attributes() const { return schema_->num_attributes(); }

  /// \brief Appends a row of pre-encoded codes (one per attribute).
  Status AppendRowCodes(const std::vector<int32_t>& codes);

  /// \brief Appends a row of category strings, growing dictionaries as needed.
  Status AppendRowValues(const std::vector<std::string>& values);

  /// \brief Code at (row, attribute); bounds unchecked on release hot paths.
  int32_t Code(int64_t row, int attr) const {
    return columns_[static_cast<size_t>(attr)][static_cast<size_t>(row)];
  }

  /// \brief Overwrites the code at (row, attribute).
  void SetCode(int64_t row, int attr, int32_t code) {
    columns_[static_cast<size_t>(attr)][static_cast<size_t>(row)] = code;
  }

  /// \brief Category string at (row, attribute).
  const std::string& Value(int64_t row, int attr) const {
    return schema_->attribute(attr).dictionary().ValueOf(Code(row, attr));
  }

  /// \brief Whole code column for an attribute.
  const std::vector<int32_t>& column(int attr) const {
    return columns_[static_cast<size_t>(attr)];
  }
  std::vector<int32_t>& mutable_column(int attr) {
    return columns_[static_cast<size_t>(attr)];
  }

  /// \brief Deep copy of the code columns; schema stays shared.
  Dataset Clone() const;

  /// \brief Verifies every code is valid for its attribute's dictionary.
  Status Validate() const;

  /// \brief True when the code matrices are identical (same schema assumed).
  bool SameCodes(const Dataset& other) const { return columns_ == other.columns_; }

  /// \brief Number of cells (rows x attributes).
  int64_t num_cells() const { return num_rows() * num_attributes(); }

 private:
  std::shared_ptr<Schema> schema_;
  std::vector<std::vector<int32_t>> columns_;
};

}  // namespace evocat

#endif  // EVOCAT_DATA_DATASET_H_
