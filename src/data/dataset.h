/// \file dataset.h
/// \brief Columnar, dictionary-encoded categorical microdata file.
///
/// A `Dataset` stores one code column per attribute. The schema (attribute
/// names, kinds and dictionaries) is shared by reference between a dataset
/// and all masked copies derived from it, which makes codes directly
/// comparable across files — the property every metric and genetic operator
/// relies on.
///
/// Code columns are copy-on-write: copying a dataset (or calling `Clone`)
/// shares the column buffers, and the first mutation of a column through
/// `SetCode` / `mutable_column` / the append API detaches a private copy of
/// just that column. The GA derives thousands of offspring per run that each
/// differ from their parent in one cell or one short gene segment, so
/// offspring construction is O(attributes) pointer copies plus one column
/// copy per *touched* attribute instead of a deep copy of the whole file.
///
/// Thread-safety: concurrent reads of datasets sharing columns are safe, and
/// two *different* dataset objects may detach a shared column concurrently
/// (the reference count is atomic). Mutating one dataset object from two
/// threads is a data race, exactly as before. References returned by
/// `column()` remain valid while any dataset still holding that buffer is
/// alive; a detach in a sibling dataset never moves this dataset's buffer.

#ifndef EVOCAT_DATA_DATASET_H_
#define EVOCAT_DATA_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/schema.h"

namespace evocat {

/// \brief A categorical microdata table (records x attributes).
class Dataset {
 public:
  using Column = std::vector<int32_t>;

  /// \brief Empty dataset over an empty schema (placeholder/moved-from use).
  Dataset() : Dataset(std::make_shared<Schema>()) {}

  /// \brief Creates an empty dataset over `schema`.
  explicit Dataset(std::shared_ptr<Schema> schema) : schema_(std::move(schema)) {
    columns_.reserve(static_cast<size_t>(schema_->num_attributes()));
    for (int a = 0; a < schema_->num_attributes(); ++a) {
      columns_.push_back(std::make_shared<Column>());
    }
  }

  /// Shared schema accessors.
  const Schema& schema() const { return *schema_; }
  Schema& schema() { return *schema_; }
  const std::shared_ptr<Schema>& schema_ptr() const { return schema_; }

  int64_t num_rows() const {
    return columns_.empty() ? 0 : static_cast<int64_t>(columns_[0]->size());
  }
  int num_attributes() const { return schema_->num_attributes(); }

  /// \brief Appends a row of pre-encoded codes (one per attribute).
  Status AppendRowCodes(const std::vector<int32_t>& codes);

  /// \brief Appends a row of category strings, growing dictionaries as needed.
  Status AppendRowValues(const std::vector<std::string>& values);

  /// \brief Code at (row, attribute); bounds unchecked on release hot paths.
  int32_t Code(int64_t row, int attr) const {
    return (*columns_[static_cast<size_t>(attr)])[static_cast<size_t>(row)];
  }

  /// \brief Overwrites the code at (row, attribute), detaching the column
  /// from any copy-on-write siblings first.
  void SetCode(int64_t row, int attr, int32_t code) {
    DetachColumn(attr);
    (*columns_[static_cast<size_t>(attr)])[static_cast<size_t>(row)] = code;
  }

  /// \brief Category string at (row, attribute).
  const std::string& Value(int64_t row, int attr) const {
    return schema_->attribute(attr).dictionary().ValueOf(Code(row, attr));
  }

  /// \brief Whole code column for an attribute (read-only view).
  const Column& column(int attr) const {
    return *columns_[static_cast<size_t>(attr)];
  }

  /// \brief Mutable column access; detaches the column from COW siblings.
  Column& mutable_column(int attr) {
    DetachColumn(attr);
    return *columns_[static_cast<size_t>(attr)];
  }

  /// \brief Cheap copy sharing the column buffers (copy-on-write); schema
  /// stays shared. Mutating the clone never affects this dataset.
  Dataset Clone() const;

  /// \brief Verifies every code is valid for its attribute's dictionary.
  Status Validate() const;

  /// \brief True when the code matrices are identical (same schema assumed).
  bool SameCodes(const Dataset& other) const;

  /// \brief True when this dataset and `other` share the same underlying
  /// buffer for `attr` (COW introspection, used by tests and diagnostics).
  bool SharesColumnStorage(int attr, const Dataset& other) const {
    return columns_[static_cast<size_t>(attr)] ==
           other.columns_[static_cast<size_t>(attr)];
  }

  /// \brief Number of cells (rows x attributes).
  int64_t num_cells() const { return num_rows() * num_attributes(); }

 private:
  /// \brief Gives this dataset a private copy of `attr`'s column if the
  /// buffer is shared with another dataset.
  void DetachColumn(int attr) {
    auto& col = columns_[static_cast<size_t>(attr)];
    if (col.use_count() > 1) col = std::make_shared<Column>(*col);
  }

  std::shared_ptr<Schema> schema_;
  std::vector<std::shared_ptr<Column>> columns_;
};

}  // namespace evocat

#endif  // EVOCAT_DATA_DATASET_H_
