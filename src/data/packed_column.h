/// \file packed_column.h
/// \brief Bit-packed categorical code columns (the million-row data plane).
///
/// A `PackedColumn` stores one code per record in exactly
/// `ceil(log2(cardinality))` bits, tightly packed into 64-bit words (values
/// may straddle word boundaries). A typical protected attribute has 3-25
/// categories, so the packed layout is 6-10x denser than the row-oriented
/// `Dataset::Column` (`int32_t` per cell) — at 10^6 rows the working set of
/// a full-table rebuild drops from megabytes to hundreds of kilobytes per
/// attribute, which is what keeps contingency counting and joint-count
/// rebuilds memory-bandwidth-friendly at scale.
///
/// Like `Dataset` columns, packed columns are copy-on-write: copying a
/// column (or a `PackedTable`) shares the word buffer, and the first `Set`
/// detaches a private copy. Reads decode with a running bit cursor
/// (`ForEachRange`) so sequential scans touch each word once.
///
/// Bulk reads go through the word-parallel kernels (`DecodeRange`,
/// `AccumulateCounts`): each 64-bit word is loaded once and every code it
/// holds is extracted by shift+mask before the next word is touched. On x86
/// an SSE2/AVX2 fast path (compile-time detected, disable with
/// `-DEVOCAT_SIMD=0`) widens the byte-aligned widths; the portable
/// `uint64_t` core covers everything else and is bit-identical to the
/// per-value decode by construction (integer extraction, no reordering of
/// observable effects).

#ifndef EVOCAT_DATA_PACKED_COLUMN_H_
#define EVOCAT_DATA_PACKED_COLUMN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"

namespace evocat {

/// \brief One attribute's codes, bit-packed at the dictionary's width.
class PackedColumn {
 public:
  PackedColumn() = default;

  /// \brief Bits needed to store codes 0..cardinality-1 (at least 1).
  static int BitWidthFor(int32_t cardinality);

  /// \brief Packs a plain code column; `cardinality` fixes the bit width.
  static PackedColumn Pack(const std::vector<int32_t>& codes,
                           int32_t cardinality);

  int64_t size() const { return num_values_; }
  int bit_width() const { return bits_; }

  /// \brief Code at `i`; bounds unchecked on release hot paths.
  int32_t Get(int64_t i) const {
    uint64_t bit = static_cast<uint64_t>(i) * static_cast<uint64_t>(bits_);
    size_t word = static_cast<size_t>(bit >> 6);
    int offset = static_cast<int>(bit & 63u);
    const uint64_t* words = words_->data();
    uint64_t value = words[word] >> offset;
    if (offset + bits_ > 64) value |= words[word + 1] << (64 - offset);
    return static_cast<int32_t>(value & mask_);
  }

  /// \brief Overwrites the code at `i`, detaching from COW siblings first.
  void Set(int64_t i, int32_t code);

  /// \brief Decodes the whole column back to plain codes.
  std::vector<int32_t> Unpack() const;

  /// \brief Calls `fn(i, code)` for every i in [begin, end) with a running
  /// bit cursor (one word read per value, no per-value multiply).
  template <class Fn>
  void ForEachRange(int64_t begin, int64_t end, Fn&& fn) const {
    const uint64_t* words = words_->data();
    uint64_t bit = static_cast<uint64_t>(begin) * static_cast<uint64_t>(bits_);
    for (int64_t i = begin; i < end; ++i, bit += static_cast<uint64_t>(bits_)) {
      size_t word = static_cast<size_t>(bit >> 6);
      int offset = static_cast<int>(bit & 63u);
      uint64_t value = words[word] >> offset;
      if (offset + bits_ > 64) value |= words[word + 1] << (64 - offset);
      fn(i, static_cast<int32_t>(value & mask_));
    }
  }

  /// \brief Decodes the codes of [begin, end) into `out` (length
  /// `end - begin`) by walking whole 64-bit words: one load per word, all
  /// resident codes extracted by shift+mask, straddles patched with a single
  /// next-word load. Byte-aligned widths (4/8/16 bits) take the SIMD fast
  /// path when `EVOCAT_SIMD` is on. Exactly equivalent to `Get` per index.
  void DecodeRange(int64_t begin, int64_t end, int32_t* out) const;

  /// \brief Adds this column's per-category counts over [begin, end) into
  /// `counts` (sized to the cardinality) — the word-parallel counting kernel
  /// behind the sharded contingency builds.
  void AccumulateCounts(int64_t begin, int64_t end, int64_t* counts) const;

  /// \brief True when this build's bulk kernels use the vectorized
  /// (SSE2/AVX2) byte-aligned fast path; false on the portable core.
  static bool SimdEnabled();

  /// \brief True when this column shares its word buffer with `other`
  /// (COW introspection, mirrors `Dataset::SharesColumnStorage`).
  bool SharesStorage(const PackedColumn& other) const {
    return words_ == other.words_;
  }

 private:
  /// \brief Gives this column a private word buffer if shared.
  void Detach() {
    if (words_.use_count() > 1) {
      words_ = std::make_shared<std::vector<uint64_t>>(*words_);
    }
  }

  std::shared_ptr<std::vector<uint64_t>> words_;
  int64_t num_values_ = 0;
  int bits_ = 0;
  uint64_t mask_ = 0;
};

/// \brief A set of packed columns mirroring chosen attributes of a dataset.
///
/// Measure states keep a `PackedTable` of their bound attributes' masked
/// codes, maintain it cell-by-cell under `ApplySegment`/`RevertSegment`, and
/// read it (instead of the int32 columns) on full rebuilds.
class PackedTable {
 public:
  PackedTable() = default;

  /// \brief Packs `attrs`' columns of `dataset` (width from each
  /// attribute's dictionary cardinality).
  static PackedTable FromDataset(const Dataset& dataset,
                                 const std::vector<int>& attrs);

  size_t num_columns() const { return columns_.size(); }
  const std::vector<int>& attrs() const { return attrs_; }
  const PackedColumn& column(size_t pos) const { return columns_[pos]; }

  int32_t Code(int64_t row, size_t pos) const {
    return columns_[pos].Get(row);
  }
  void Set(int64_t row, size_t pos, int32_t code) {
    columns_[pos].Set(row, code);
  }

 private:
  std::vector<int> attrs_;
  std::vector<PackedColumn> columns_;
};

}  // namespace evocat

#endif  // EVOCAT_DATA_PACKED_COLUMN_H_
