/// \file individual.h
/// \brief GA individuals (protected files) and the population container.
///
/// Following the paper's genotype encoding, an individual *is* a protected
/// data file — no binary encoding; genes are the categorical values of the
/// protected attributes. Fitness is the evaluated IL/DR breakdown.

#ifndef EVOCAT_CORE_INDIVIDUAL_H_
#define EVOCAT_CORE_INDIVIDUAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "metrics/fitness.h"

namespace evocat {
namespace core {

/// \brief One candidate protection: the masked file plus its fitness.
struct Individual {
  Dataset data;
  metrics::FitnessBreakdown fitness;
  /// Provenance: the masking method label for seeds, or the producing
  /// genetic operator for offspring (e.g. "mutation<pram(retain=0.30)>").
  std::string origin;
  /// Unique id within a run (assigned by the engine).
  uint64_t id = 0;
  /// Incremental evaluation state for `data` (engine-managed; null when the
  /// engine runs with `incremental_eval` off or the individual was never
  /// evaluated through the delta path).
  std::shared_ptr<metrics::FitnessState> eval_state;

  double score() const { return fitness.score; }
};

/// \brief Population of individuals kept sorted by ascending score
/// (best first), as required by the leader-group selection.
class Population {
 public:
  Population() = default;
  explicit Population(std::vector<Individual> members)
      : members_(std::move(members)) {}

  size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  Individual& operator[](size_t i) { return members_[i]; }
  const Individual& operator[](size_t i) const { return members_[i]; }

  std::vector<Individual>& members() { return members_; }
  const std::vector<Individual>& members() const { return members_; }

  /// \brief Stable-sorts members by ascending score (best first).
  void SortByScore();

  /// \brief Best (lowest-score) individual; population must be sorted.
  const Individual& best() const { return members_.front(); }
  /// \brief Worst (highest-score) individual; population must be sorted.
  const Individual& worst() const { return members_.back(); }

  /// \brief Scores of all members, in member order.
  std::vector<double> Scores() const;

  double MinScore() const;
  double MeanScore() const;
  double MaxScore() const;

 private:
  std::vector<Individual> members_;
};

}  // namespace core
}  // namespace evocat

#endif  // EVOCAT_CORE_INDIVIDUAL_H_
