/// \file engine.h
/// \brief The paper's evolutionary algorithm (Algorithm 1).
///
/// Per generation, a uniform draw picks mutation (one proportionally selected
/// parent, elitist replacement) or crossover (one parent uniformly from the
/// Nb-best leader group, the mate proportionally from the whole population,
/// deterministic-crowding replacement: each offspring competes with its own
/// parent). The population stays sorted by ascending score. Lower score is
/// better throughout.

#ifndef EVOCAT_CORE_ENGINE_H_
#define EVOCAT_CORE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "core/individual.h"
#include "core/operators.h"
#include "core/selection.h"
#include "metrics/fitness.h"

namespace evocat {
namespace core {

/// \brief Which operator a generation executed.
enum class OperatorKind { kMutation, kCrossover };

const char* OperatorKindToString(OperatorKind kind);

/// \brief Engine configuration (defaults reproduce the paper).
struct GaConfig {
  /// Number of generations to run.
  int generations = 400;
  /// Probability that a generation performs mutation (paper: 0.5, the
  /// `alter` draw against the 0.5 delimiter).
  double mutation_rate = 0.5;
  /// Leader group size Nb for crossover's first parent.
  int leader_group_size = 10;
  /// Parent-selection strategy (see selection.h for the Eq. 3 discussion).
  SelectionStrategy selection = SelectionStrategy::kInverseScore;
  /// Whether mutation draws from the domain minus the current category.
  bool mutation_excludes_current = true;
  /// RNG seed for the whole run.
  uint64_t seed = 42;
  /// Early stop after this many generations without best-score improvement
  /// (0 disables; the paper runs a fixed generation budget).
  int no_improvement_window = 0;
  /// Evaluate crossover offspring concurrently (on the shared work-stealing
  /// pool). Applies to every leg: heavy legs (full evaluation or
  /// rebuild-sized segments) overlap too, since their inner per-measure and
  /// per-row loops fan out through nested work stealing instead of
  /// serializing.
  bool parallel_offspring_eval = true;
  /// Score offspring through incremental delta evaluation: each population
  /// member carries a `metrics::FitnessState`, and a mutation/crossover is
  /// re-scored from its operator delta instead of a full re-walk of the
  /// masked file. Scores agree with full evaluation to within 1e-9; set to
  /// false to force the paper's original full-recompute path.
  bool incremental_eval = true;
};

/// \brief Per-generation record (drives the paper's evolution figures).
struct GenerationRecord {
  int generation = 0;
  /// Which island produced this record (0 for single-population strategies;
  /// the islands strategy stamps its subpopulation index here, so one
  /// history vector carries every island's convergence trajectory).
  int island = 0;
  OperatorKind op = OperatorKind::kMutation;
  double min_score = 0.0;
  double mean_score = 0.0;
  double max_score = 0.0;
  /// Offspring evaluated this generation/step (1 mutation / 2 crossover in
  /// the generational loop; lambda or 2*lambda for a steady-state step).
  int evaluations = 0;
  /// Whether any offspring displaced its parent.
  bool accepted = false;
  /// Wall time spent in fitness evaluation this generation.
  double eval_seconds = 0.0;
  /// Total wall time of the generation.
  double total_seconds = 0.0;
};

/// \brief Aggregate run counters (drives the paper's timing table).
struct EvolutionStats {
  int64_t mutation_generations = 0;
  int64_t crossover_generations = 0;
  int64_t accepted_mutations = 0;
  int64_t accepted_crossovers = 0;
  int64_t offspring_evaluated = 0;
  double mutation_eval_seconds = 0.0;
  double crossover_eval_seconds = 0.0;
  double mutation_total_seconds = 0.0;
  double crossover_total_seconds = 0.0;
  double initial_eval_seconds = 0.0;
  double total_seconds = 0.0;
};

/// \brief Outcome of a run: final population, history, counters.
struct EvolutionResult {
  Population population;
  std::vector<GenerationRecord> history;
  EvolutionStats stats;
};

/// \brief Runs the paper's GA over an initial population of protections.
class EvolutionEngine {
 public:
  /// \brief Observer invoked after every generation.
  using ProgressCallback =
      std::function<void(const GenerationRecord&, const Population&)>;

  /// \param evaluator bound fitness evaluator; must outlive the engine.
  EvolutionEngine(const metrics::FitnessEvaluator* evaluator, GaConfig config)
      : evaluator_(evaluator), config_(config) {}

  /// \brief Evolves `initial` (fitness fields may be unset; they are
  /// evaluated up front, in parallel) for the configured generations.
  ///
  /// `cancel` (optional) is polled between generations; once it reads true
  /// the run stops and returns `Status::Cancelled` naming the generation it
  /// reached. Long-running callers (the evocatd job server) flip it from
  /// another thread.
  Result<EvolutionResult> Run(std::vector<Individual> initial,
                              const ProgressCallback& callback = nullptr,
                              const std::atomic<bool>* cancel = nullptr) const;

  const GaConfig& config() const { return config_; }

 private:
  Status ValidateInitial(const std::vector<Individual>& initial) const;

  const metrics::FitnessEvaluator* evaluator_;
  GaConfig config_;
};

}  // namespace core
}  // namespace evocat

#endif  // EVOCAT_CORE_ENGINE_H_
