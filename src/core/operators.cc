#include "core/operators.h"

#include <cassert>

namespace evocat {
namespace core {

MutationOperator::Record MutationOperator::Apply(Dataset* genome,
                                                 Rng* rng) const {
  assert(genome != nullptr);
  assert(layout_.Length() > 0);
  int64_t flat = rng->UniformInt(0, layout_.Length() - 1);
  auto [row, attr] = layout_.Cell(flat);

  Record record;
  record.row = row;
  record.attr = attr;
  record.old_code = genome->Code(row, attr);

  int32_t cardinality = genome->schema().attribute(attr).cardinality();
  if (exclude_current_ && cardinality > 1) {
    // Draw from the domain minus the current category: sample [0, card-2]
    // and shift values at or above the current code by one.
    auto draw = static_cast<int32_t>(rng->UniformInt(0, cardinality - 2));
    record.new_code = draw >= record.old_code ? draw + 1 : draw;
  } else {
    record.new_code = static_cast<int32_t>(rng->UniformInt(0, cardinality - 1));
  }
  genome->SetCode(row, attr, record.new_code);
  return record;
}

CrossoverOperator::Record CrossoverOperator::Apply(const Dataset& x,
                                                   const Dataset& y, Dataset* z1,
                                                   Dataset* z2, Rng* rng) const {
  assert(z1 != nullptr && z2 != nullptr);
  int64_t length = layout_.Length();
  assert(length > 0);

  Record record;
  record.s = rng->UniformInt(0, length - 1);
  record.r = rng->UniformInt(record.s, length - 1);

  *z1 = x.Clone();
  *z2 = y.Clone();
  for (int64_t flat = record.s; flat <= record.r; ++flat) {
    auto [row, attr] = layout_.Cell(flat);
    int32_t xc = x.Code(row, attr);
    int32_t yc = y.Code(row, attr);
    if (xc == yc) continue;  // no-op swap: keep the COW columns shared
    z1->SetCode(row, attr, yc);
    z2->SetCode(row, attr, xc);
    record.deltas1.push_back(metrics::CellDelta{row, attr, xc, yc});
    record.deltas2.push_back(metrics::CellDelta{row, attr, yc, xc});
  }
  return record;
}

}  // namespace core
}  // namespace evocat
