#include "core/operators.h"

#include <cassert>

namespace evocat {
namespace core {

MutationOperator::Record MutationOperator::Apply(Dataset* genome,
                                                 Rng* rng) const {
  assert(genome != nullptr);
  assert(layout_.Length() > 0);
  int64_t flat = rng->UniformInt(0, layout_.Length() - 1);
  auto [row, attr] = layout_.Cell(flat);

  Record record;
  record.row = row;
  record.attr = attr;
  record.old_code = genome->Code(row, attr);

  int32_t cardinality = genome->schema().attribute(attr).cardinality();
  if (exclude_current_ && cardinality > 1) {
    // Draw from the domain minus the current category: sample [0, card-2]
    // and shift values at or above the current code by one.
    auto draw = static_cast<int32_t>(rng->UniformInt(0, cardinality - 2));
    record.new_code = draw >= record.old_code ? draw + 1 : draw;
  } else {
    record.new_code = static_cast<int32_t>(rng->UniformInt(0, cardinality - 1));
  }
  genome->SetCode(row, attr, record.new_code);
  return record;
}

metrics::SegmentDelta CrossoverSegmentSwap(const GenomeLayout& layout,
                                           const Dataset& donor,
                                           Dataset* genome, int64_t s,
                                           int64_t r) {
  metrics::SegmentDelta deltas;
  for (int64_t flat = s; flat <= r; ++flat) {
    auto [row, attr] = layout.Cell(flat);
    int32_t old_code = genome->Code(row, attr);
    int32_t new_code = donor.Code(row, attr);
    if (old_code == new_code) continue;  // no-op swap: keep COW columns shared
    genome->SetCode(row, attr, new_code);
    deltas.Append(row, attr, old_code, new_code);
  }
  return deltas;
}

CrossoverOperator::Record CrossoverOperator::Apply(const Dataset& x,
                                                   const Dataset& y, Dataset* z1,
                                                   Dataset* z2, Rng* rng) const {
  assert(z1 != nullptr && z2 != nullptr);
  int64_t length = layout_.Length();
  assert(length > 0);

  Record record;
  record.s = rng->UniformInt(0, length - 1);
  record.r = rng->UniformInt(record.s, length - 1);

  *z1 = x.Clone();
  *z2 = y.Clone();
  record.deltas1 = CrossoverSegmentSwap(layout_, y, z1, record.s, record.r);
  record.deltas2 = CrossoverSegmentSwap(layout_, x, z2, record.s, record.r);
  return record;
}

}  // namespace core
}  // namespace evocat
