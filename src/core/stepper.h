/// \file stepper.h
/// \brief The paper's per-generation evolution step, factored out of
/// `EvolutionEngine` so pluggable strategies (src/evolve/) can reuse it.
///
/// `GenerationStepper` owns no population and no RNG — it advances the
/// caller's `Population` in place, drawing from the caller's `Rng` and
/// accumulating into the caller's `EvolutionStats`. One stepper drives the
/// classic generational loop (`EvolutionEngine::Run`); the island strategy
/// runs one stepper per subpopulation, each with its own forked RNG stream,
/// which is what makes island evolution deterministic under any thread
/// schedule.

#ifndef EVOCAT_CORE_STEPPER_H_
#define EVOCAT_CORE_STEPPER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/individual.h"
#include "core/operators.h"
#include "core/selection.h"
#include "metrics/fitness.h"

namespace evocat {
namespace core {

/// \brief Strips operator wrappers so provenance stays "op<seed-method-label>"
/// instead of growing a nested chain across generations.
std::string BaseOrigin(const std::string& origin);

/// \brief Evaluates (and, with incremental evaluation, state-binds) every
/// individual of `initial` in parallel.
///
/// `cancel` (optional) is polled at every loop iteration, so cancel latency
/// is bounded by one member evaluation even for large populations; a
/// canceled call returns `Status::Cancelled` (some members may remain
/// unevaluated). `eval_seconds` (optional) receives the wall time.
Status EvaluateInitialPopulation(const metrics::FitnessEvaluator* evaluator,
                                 bool incremental,
                                 std::vector<Individual>* initial,
                                 double* eval_seconds,
                                 const std::atomic<bool>* cancel);

/// \brief Validates a strategy/engine run's inputs (shared by the engine and
/// every evolution strategy). `min_members` is the strategy's population
/// floor (the generational loop needs 2).
Status ValidateRunInputs(const metrics::FitnessEvaluator* evaluator,
                         const GaConfig& config,
                         const std::vector<Individual>& initial,
                         size_t min_members);

/// \brief Advances one population by one generation of the paper's GA.
///
/// Exactly Algorithm 1: a uniform draw picks mutation (proportionally
/// selected parent, elitist replacement) or crossover (leader-group first
/// parent, proportional mate, deterministic-crowding replacement), then the
/// population is re-sorted. The caller owns population, RNG, stats and the
/// id counter; the stepper only requires that `population` stays sorted
/// between calls (which `Step` maintains).
class GenerationStepper {
 public:
  /// \param evaluator bound fitness evaluator; must outlive the stepper.
  /// \param population evaluated, sorted population advanced in place.
  /// \param rng the run's (or island's) private RNG stream.
  /// \param stats aggregate counters accumulated across steps.
  /// \param next_id id source for offspring (unique within the run; island
  ///        strategies hand each stepper a disjoint id range).
  /// \param cancel optional run-cancel flag, polled *inside* the
  ///        per-measure delta evaluation so a rebuild-sized crossover leg
  ///        stops within one measure's rebuild (the driving loop still owns
  ///        the authoritative between-generation poll and the resulting
  ///        `Status::Cancelled`).
  GenerationStepper(const metrics::FitnessEvaluator* evaluator,
                    const GaConfig& config, Population* population, Rng* rng,
                    EvolutionStats* stats, uint64_t* next_id,
                    const std::atomic<bool>* cancel = nullptr);

  /// \brief Runs one generation and returns its record (`record.generation`
  /// is set to `generation`; `record.island` stays 0 — island strategies
  /// stamp it afterwards).
  GenerationRecord Step(int generation);

  const GenomeLayout& layout() const { return layout_; }

 private:
  const metrics::FitnessEvaluator* evaluator_;
  GaConfig config_;
  Population* population_;
  Rng* rng_;
  EvolutionStats* stats_;
  uint64_t* next_id_;
  const std::atomic<bool>* cancel_;

  SelectionPolicy selection_;
  GenomeLayout layout_;
  MutationOperator mutate_;
  CrossoverOperator cross_;
};

}  // namespace core
}  // namespace evocat

#endif  // EVOCAT_CORE_STEPPER_H_
