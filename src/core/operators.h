/// \file operators.h
/// \brief The paper's genetic operators on protected-file genotypes.
///
/// The genome is the flattened sequence of the protected attributes' values
/// in record-major order (record 0's protected values, then record 1's, ...),
/// matching the paper's "value position" language. Mutation rewrites one gene
/// with a valid category of its attribute; crossover swaps the inclusive
/// 2-point segment [s, r] between two files (a single value when s == r).

#ifndef EVOCAT_CORE_OPERATORS_H_
#define EVOCAT_CORE_OPERATORS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "metrics/measure.h"

namespace evocat {
namespace core {

/// \brief Maps flattened gene positions to (record, attribute) cells.
class GenomeLayout {
 public:
  /// \param attrs protected attribute indices (the genes)
  /// \param num_rows records in the file
  GenomeLayout(std::vector<int> attrs, int64_t num_rows)
      : attrs_(std::move(attrs)), num_rows_(num_rows) {}

  /// \brief Total number of genes: records x protected attributes.
  int64_t Length() const {
    return num_rows_ * static_cast<int64_t>(attrs_.size());
  }

  /// \brief Cell (record row, schema attribute index) of a flat position.
  std::pair<int64_t, int> Cell(int64_t flat) const {
    auto width = static_cast<int64_t>(attrs_.size());
    return {flat / width, attrs_[static_cast<size_t>(flat % width)]};
  }

  const std::vector<int>& attrs() const { return attrs_; }
  int64_t num_rows() const { return num_rows_; }

 private:
  std::vector<int> attrs_;
  int64_t num_rows_;
};

/// \brief Applies the inclusive flat-gene segment [s, r] to `genome` in
/// place, drawing replacement codes from `donor`, and returns the changed
/// cells as a row-grouped segment batch.
///
/// This is the crossover operator's write loop: only positions where the two
/// files disagree are written (COW columns stay shared) and recorded, in
/// row-major order. Exposed so parity tests and benches replay
/// crossover-sized legs through the exact operator contract.
metrics::SegmentDelta CrossoverSegmentSwap(const GenomeLayout& layout,
                                           const Dataset& donor,
                                           Dataset* genome, int64_t s,
                                           int64_t r);

/// \brief Paper §2.2.1: replace one random gene with a random valid category.
class MutationOperator {
 public:
  /// \param exclude_current when true, the replacement category is drawn
  ///        from the domain minus the current value, so every mutation
  ///        changes the file; when false the draw is over the full domain
  ///        (the paper's literal wording, which may produce no-ops).
  explicit MutationOperator(GenomeLayout layout, bool exclude_current = true)
      : layout_(std::move(layout)), exclude_current_(exclude_current) {}

  /// \brief What a mutation did (for provenance and tests).
  struct Record {
    int64_t row = 0;
    int attr = 0;
    int32_t old_code = 0;
    int32_t new_code = 0;
  };

  /// \brief Mutates `genome` in place.
  Record Apply(Dataset* genome, Rng* rng) const;

  const GenomeLayout& layout() const { return layout_; }

 private:
  GenomeLayout layout_;
  bool exclude_current_;
};

/// \brief Paper §2.2.2: 2-point crossover at the category level.
class CrossoverOperator {
 public:
  explicit CrossoverOperator(GenomeLayout layout) : layout_(std::move(layout)) {}

  /// \brief The crossing points chosen (inclusive segment) and the cells
  /// that actually changed in each offspring relative to its base parent.
  ///
  /// Only segment positions where the parents disagree are written (and
  /// recorded), so `deltas1`/`deltas2` feed the incremental fitness states
  /// directly: z1 = x + deltas1, z2 = y + deltas2. The deltas are emitted
  /// as `metrics::SegmentDelta` batches — cells grouped by row as they are
  /// produced (the flat gene order is row-major), so every measure state
  /// consumes the grouping without re-deriving it.
  struct Record {
    int64_t s = 0;
    int64_t r = 0;
    metrics::SegmentDelta deltas1;
    metrics::SegmentDelta deltas2;
  };

  /// \brief Produces offspring (z1, z2) from parents (x, y).
  ///
  /// z1 = x with the segment [s, r] taken from y; z2 symmetric. The
  /// offspring share their base parent's untouched columns (COW).
  Record Apply(const Dataset& x, const Dataset& y, Dataset* z1, Dataset* z2,
               Rng* rng) const;

  const GenomeLayout& layout() const { return layout_; }

 private:
  GenomeLayout layout_;
};

}  // namespace core
}  // namespace evocat

#endif  // EVOCAT_CORE_OPERATORS_H_
