#include "core/individual.h"

#include <algorithm>

#include "common/math_utils.h"

namespace evocat {
namespace core {

void Population::SortByScore() {
  std::stable_sort(members_.begin(), members_.end(),
                   [](const Individual& a, const Individual& b) {
                     return a.score() < b.score();
                   });
}

std::vector<double> Population::Scores() const {
  std::vector<double> scores;
  scores.reserve(members_.size());
  for (const auto& m : members_) scores.push_back(m.score());
  return scores;
}

double Population::MinScore() const { return Min(Scores()); }
double Population::MeanScore() const { return Mean(Scores()); }
double Population::MaxScore() const { return Max(Scores()); }

}  // namespace core
}  // namespace evocat
