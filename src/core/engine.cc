#include "core/engine.h"

#include <utility>

#include "common/timer.h"
#include "core/stepper.h"

namespace evocat {
namespace core {

const char* OperatorKindToString(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kMutation:
      return "mutation";
    case OperatorKind::kCrossover:
      return "crossover";
  }
  return "?";
}

Status EvolutionEngine::ValidateInitial(
    const std::vector<Individual>& initial) const {
  return ValidateRunInputs(evaluator_, config_, initial, 2);
}

// The loop body lives in core::GenerationStepper (core/stepper.h) so the
// evolve/ strategies can drive the identical step over their own
// populations and RNG streams; this function is the paper's classic
// generational schedule around it.
Result<EvolutionResult> EvolutionEngine::Run(
    std::vector<Individual> initial, const ProgressCallback& callback,
    const std::atomic<bool>* cancel) const {
  EVOCAT_RETURN_NOT_OK(ValidateInitial(initial));
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled("run canceled before the first generation");
  }

  Timer run_timer;
  EvolutionResult result;
  result.history.reserve(static_cast<size_t>(config_.generations));

  EVOCAT_RETURN_NOT_OK(EvaluateInitialPopulation(
      evaluator_, config_.incremental_eval, &initial,
      &result.stats.initial_eval_seconds, cancel));

  uint64_t next_id = 0;
  for (auto& individual : initial) individual.id = next_id++;

  Population population(std::move(initial));
  population.SortByScore();

  Rng rng(config_.seed);
  GenerationStepper stepper(evaluator_, config_, &population, &rng,
                            &result.stats, &next_id, cancel);

  double best_score = population.MinScore();
  int stale_generations = 0;

  for (int gen = 1; gen <= config_.generations; ++gen) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return Status::Cancelled("run canceled at generation ", gen, " of ",
                               config_.generations);
    }
    GenerationRecord record = stepper.Step(gen);
    result.history.push_back(record);
    if (callback) callback(record, population);

    // Optional early stop on best-score stagnation.
    if (record.min_score < best_score - 1e-12) {
      best_score = record.min_score;
      stale_generations = 0;
    } else {
      ++stale_generations;
    }
    if (config_.no_improvement_window > 0 &&
        stale_generations >= config_.no_improvement_window) {
      break;
    }
  }

  result.stats.total_seconds = run_timer.ElapsedSeconds();
  // The delta states exist to serve the run; returning them would pin
  // megabytes per member and a pointer into the (caller-owned, possibly
  // shorter-lived) evaluator.
  for (auto& member : population.members()) member.eval_state.reset();
  result.population = std::move(population);
  return result;
}

}  // namespace core
}  // namespace evocat
