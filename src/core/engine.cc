#include "core/engine.h"

#include <algorithm>
#include <future>
#include <string>

#include "common/parallel.h"
#include "common/timer.h"

namespace evocat {
namespace core {

namespace {

/// Strips operator wrappers so provenance stays "op<seed-method-label>"
/// instead of growing a nested chain across generations.
std::string BaseOrigin(const std::string& origin) {
  std::string base = origin;
  while (true) {
    bool stripped = false;
    for (const char* prefix : {"mutation<", "cross<"}) {
      size_t len = std::string(prefix).size();
      if (base.rfind(prefix, 0) == 0 && base.size() > len && base.back() == '>') {
        base = base.substr(len, base.size() - len - 1);
        stripped = true;
      }
    }
    if (!stripped) return base;
  }
}

}  // namespace

const char* OperatorKindToString(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kMutation:
      return "mutation";
    case OperatorKind::kCrossover:
      return "crossover";
  }
  return "?";
}

Status EvolutionEngine::ValidateInitial(
    const std::vector<Individual>& initial) const {
  if (evaluator_ == nullptr) {
    return Status::Invalid("engine has no fitness evaluator");
  }
  if (initial.size() < 2) {
    return Status::Invalid("initial population needs >= 2 individuals, got ",
                           initial.size());
  }
  if (config_.generations < 0) {
    return Status::Invalid("generations must be >= 0");
  }
  if (config_.mutation_rate < 0.0 || config_.mutation_rate > 1.0) {
    return Status::Invalid("mutation_rate must be in [0, 1], got ",
                           config_.mutation_rate);
  }
  if (config_.leader_group_size < 1) {
    return Status::Invalid("leader_group_size must be >= 1, got ",
                           config_.leader_group_size);
  }
  const Dataset& original = evaluator_->original();
  for (const auto& individual : initial) {
    EVOCAT_RETURN_NOT_OK(metrics::ValidateComparable(original, individual.data,
                                                     evaluator_->attrs()));
  }
  return Status::OK();
}

Result<EvolutionResult> EvolutionEngine::Run(
    std::vector<Individual> initial, const ProgressCallback& callback) const {
  EVOCAT_RETURN_NOT_OK(ValidateInitial(initial));

  Timer run_timer;
  EvolutionResult result;
  result.history.reserve(static_cast<size_t>(config_.generations));

  // Evaluate the initial population (embarrassingly parallel).
  {
    Timer init_timer;
    ParallelFor(0, static_cast<int64_t>(initial.size()), [&](int64_t i) {
      initial[static_cast<size_t>(i)].fitness =
          evaluator_->Evaluate(initial[static_cast<size_t>(i)].data);
    });
    result.stats.initial_eval_seconds = init_timer.ElapsedSeconds();
  }

  uint64_t next_id = 0;
  for (auto& individual : initial) individual.id = next_id++;

  Population population(std::move(initial));
  population.SortByScore();

  Rng rng(config_.seed);
  SelectionPolicy selection(config_.selection);
  GenomeLayout layout(evaluator_->attrs(), evaluator_->original().num_rows());
  MutationOperator mutate(layout, config_.mutation_excludes_current);
  CrossoverOperator cross(layout);

  double best_score = population.MinScore();
  int stale_generations = 0;

  for (int gen = 1; gen <= config_.generations; ++gen) {
    Timer gen_timer;
    GenerationRecord record;
    record.generation = gen;

    // Paper Algorithm 1: a uniform `alter` draw picks the operator.
    bool do_mutation = rng.UniformDouble() < config_.mutation_rate;
    double eval_seconds = 0.0;

    if (do_mutation) {
      record.op = OperatorKind::kMutation;
      size_t parent_idx = selection.Select(population.Scores(), &rng);
      Individual child;
      child.data = population[parent_idx].data.Clone();
      auto mutation = mutate.Apply(&child.data, &rng);
      (void)mutation;
      child.origin = "mutation<" + BaseOrigin(population[parent_idx].origin) + ">";
      child.id = next_id++;

      Timer eval_timer;
      child.fitness = evaluator_->Evaluate(child.data);
      eval_seconds = eval_timer.ElapsedSeconds();
      record.evaluations = 1;

      // Elitist replacement: the offspring survives only if strictly better.
      if (child.score() < population[parent_idx].score()) {
        population[parent_idx] = std::move(child);
        record.accepted = true;
        ++result.stats.accepted_mutations;
      }
      ++result.stats.mutation_generations;
    } else {
      record.op = OperatorKind::kCrossover;
      // First parent uniformly from the leader group (the Nb best; the
      // population is sorted ascending), mate proportionally from everyone.
      size_t leaders = std::min<size_t>(
          static_cast<size_t>(config_.leader_group_size), population.size());
      size_t i1 = rng.UniformIndex(leaders);
      size_t i2 = selection.Select(population.Scores(), &rng);

      Individual child1, child2;
      cross.Apply(population[i1].data, population[i2].data, &child1.data,
                  &child2.data, &rng);
      child1.origin = "cross<" + BaseOrigin(population[i1].origin) + ">";
      child2.origin = "cross<" + BaseOrigin(population[i2].origin) + ">";
      child1.id = next_id++;
      child2.id = next_id++;

      Timer eval_timer;
      if (config_.parallel_offspring_eval) {
        auto future = std::async(std::launch::async, [&]() {
          return evaluator_->Evaluate(child1.data);
        });
        child2.fitness = evaluator_->Evaluate(child2.data);
        child1.fitness = future.get();
      } else {
        child1.fitness = evaluator_->Evaluate(child1.data);
        child2.fitness = evaluator_->Evaluate(child2.data);
      }
      eval_seconds = eval_timer.ElapsedSeconds();
      record.evaluations = 2;

      // Deterministic crowding: each offspring competes with its own parent.
      if (child1.score() < population[i1].score()) {
        population[i1] = std::move(child1);
        record.accepted = true;
        ++result.stats.accepted_crossovers;
      }
      if (child2.score() < population[i2].score()) {
        population[i2] = std::move(child2);
        record.accepted = true;
        ++result.stats.accepted_crossovers;
      }
      ++result.stats.crossover_generations;
    }

    population.SortByScore();

    record.min_score = population.MinScore();
    record.mean_score = population.MeanScore();
    record.max_score = population.MaxScore();
    record.eval_seconds = eval_seconds;
    record.total_seconds = gen_timer.ElapsedSeconds();
    result.stats.offspring_evaluated += record.evaluations;
    if (record.op == OperatorKind::kMutation) {
      result.stats.mutation_eval_seconds += record.eval_seconds;
      result.stats.mutation_total_seconds += record.total_seconds;
    } else {
      result.stats.crossover_eval_seconds += record.eval_seconds;
      result.stats.crossover_total_seconds += record.total_seconds;
    }
    result.history.push_back(record);
    if (callback) callback(record, population);

    // Optional early stop on best-score stagnation.
    if (record.min_score < best_score - 1e-12) {
      best_score = record.min_score;
      stale_generations = 0;
    } else {
      ++stale_generations;
    }
    if (config_.no_improvement_window > 0 &&
        stale_generations >= config_.no_improvement_window) {
      break;
    }
  }

  result.stats.total_seconds = run_timer.ElapsedSeconds();
  result.population = std::move(population);
  return result;
}

}  // namespace core
}  // namespace evocat
