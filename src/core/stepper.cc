#include "core/stepper.h"

#include <algorithm>
#include <utility>

#include "common/parallel.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace evocat {
namespace core {

namespace {

/// Telemetry handles, resolved once per series. Counter bumps are relaxed
/// atomics and never branch on data values, so instrumentation cannot
/// perturb the run (the off-vs-on oracle test holds this to bit-identity).
obs::Counter* GenerationsCounter(bool mutation) {
  static obs::Counter* mutation_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "evocat_engine_generations_total",
          "Engine generations by the operator the alter draw picked.",
          {{"op", "mutation"}});
  static obs::Counter* crossover_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "evocat_engine_generations_total",
          "Engine generations by the operator the alter draw picked.",
          {{"op", "crossover"}});
  return mutation ? mutation_counter : crossover_counter;
}

obs::Counter* AcceptedCounter(bool mutation) {
  static obs::Counter* mutation_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "evocat_engine_offspring_accepted_total",
          "Offspring that replaced their parent, by operator.",
          {{"op", "mutation"}});
  static obs::Counter* crossover_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "evocat_engine_offspring_accepted_total",
          "Offspring that replaced their parent, by operator.",
          {{"op", "crossover"}});
  return mutation ? mutation_counter : crossover_counter;
}

obs::Histogram* GenerationSecondsHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "evocat_engine_generation_seconds",
          "Wall time per engine generation (operator + evaluation + sort).");
  return histogram;
}

}  // namespace

std::string BaseOrigin(const std::string& origin) {
  struct Prefix {
    const char* text;
    size_t length;
  };
  static constexpr Prefix kPrefixes[] = {{"mutation<", 9}, {"cross<", 6}};
  std::string base = origin;
  while (true) {
    bool stripped = false;
    for (const Prefix& prefix : kPrefixes) {
      if (base.size() > prefix.length && base.back() == '>' &&
          base.compare(0, prefix.length, prefix.text) == 0) {
        base = base.substr(prefix.length, base.size() - prefix.length - 1);
        stripped = true;
      }
    }
    if (!stripped) return base;
  }
}

Status EvaluateInitialPopulation(const metrics::FitnessEvaluator* evaluator,
                                 bool incremental,
                                 std::vector<Individual>* initial,
                                 double* eval_seconds,
                                 const std::atomic<bool>* cancel) {
  Timer init_timer;
  // Embarrassingly parallel. With incremental evaluation on, binding a state
  // costs about one evaluation and seeds the per-member delta machinery in
  // the same pass. Cancellation is polled per iteration (not just between
  // engine generations), so a cancel during a large population's initial
  // sweep takes effect within one member evaluation.
  ParallelFor(0, static_cast<int64_t>(initial->size()), [&](int64_t i) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) return;
    Individual& individual = (*initial)[static_cast<size_t>(i)];
    if (incremental) {
      // A member that arrives with a bound state (the session binds seeds
      // for its initial-cloud report) keeps it — rebinding would double the
      // most expensive pass of a large-population run.
      if (individual.eval_state == nullptr) {
        individual.eval_state = evaluator->BindState(individual.data);
      }
      individual.fitness = individual.eval_state->breakdown();
    } else {
      individual.fitness = evaluator->Evaluate(individual.data);
    }
  });
  if (eval_seconds != nullptr) *eval_seconds = init_timer.ElapsedSeconds();
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled(
        "run canceled during initial population evaluation");
  }
  return Status::OK();
}

Status ValidateRunInputs(const metrics::FitnessEvaluator* evaluator,
                         const GaConfig& config,
                         const std::vector<Individual>& initial,
                         size_t min_members) {
  if (evaluator == nullptr) {
    return Status::Invalid("engine has no fitness evaluator");
  }
  if (initial.size() < min_members) {
    return Status::Invalid("initial population needs >= ", min_members,
                           " individuals, got ", initial.size());
  }
  if (config.generations < 0) {
    return Status::Invalid("generations must be >= 0");
  }
  if (config.mutation_rate < 0.0 || config.mutation_rate > 1.0) {
    return Status::Invalid("mutation_rate must be in [0, 1], got ",
                           config.mutation_rate);
  }
  if (config.leader_group_size < 1) {
    return Status::Invalid("leader_group_size must be >= 1, got ",
                           config.leader_group_size);
  }
  const Dataset& original = evaluator->original();
  for (const auto& individual : initial) {
    EVOCAT_RETURN_NOT_OK(metrics::ValidateComparable(original, individual.data,
                                                     evaluator->attrs()));
  }
  return Status::OK();
}

GenerationStepper::GenerationStepper(const metrics::FitnessEvaluator* evaluator,
                                     const GaConfig& config,
                                     Population* population, Rng* rng,
                                     EvolutionStats* stats, uint64_t* next_id,
                                     const std::atomic<bool>* cancel)
    : evaluator_(evaluator),
      config_(config),
      population_(population),
      rng_(rng),
      stats_(stats),
      next_id_(next_id),
      cancel_(cancel),
      selection_(config.selection),
      layout_(evaluator->attrs(), evaluator->original().num_rows()),
      mutate_(layout_, config.mutation_excludes_current),
      cross_(layout_) {}

// Deterministic crowding means an offspring only ever competes with its own
// parent, so the parent's fitness state can be advanced in place and
// reverted on rejection — no state cloning per generation.
GenerationRecord GenerationStepper::Step(int generation) {
  Population& population = *population_;
  Rng& rng = *rng_;
  const bool incremental = config_.incremental_eval;

  obs::TraceSpan trace_span("engine.generation");
  Timer gen_timer;
  GenerationRecord record;
  record.generation = generation;

  // Paper Algorithm 1: a uniform `alter` draw picks the operator.
  bool do_mutation = rng.UniformDouble() < config_.mutation_rate;
  double eval_seconds = 0.0;

  if (do_mutation) {
    record.op = OperatorKind::kMutation;
    size_t parent_idx = selection_.Select(population.Scores(), &rng);
    Individual child;
    child.data = population[parent_idx].data.Clone();  // COW share
    auto mutation = mutate_.Apply(&child.data, &rng);
    child.origin = "mutation<" + BaseOrigin(population[parent_idx].origin) + ">";
    child.id = (*next_id_)++;

    auto& parent_state = population[parent_idx].eval_state;
    Timer eval_timer;
    if (incremental && parent_state) {
      metrics::SegmentDelta deltas;
      if (mutation.new_code != mutation.old_code) {
        deltas.Append(mutation.row, mutation.attr, mutation.old_code,
                      mutation.new_code);
      }
      parent_state->ApplyDelta(child.data, deltas, cancel_);
      child.fitness = parent_state->breakdown();
    } else {
      child.fitness = evaluator_->Evaluate(child.data);
    }
    eval_seconds = eval_timer.ElapsedSeconds();
    record.evaluations = 1;

    // Elitist replacement: the offspring survives only if strictly better.
    if (child.score() < population[parent_idx].score()) {
      if (incremental && parent_state) {
        child.eval_state = std::move(parent_state);  // state is the child's
      } else if (incremental) {
        child.eval_state = evaluator_->BindState(child.data);
      }
      population[parent_idx] = std::move(child);
      record.accepted = true;
      ++stats_->accepted_mutations;
    } else if (incremental && parent_state) {
      parent_state->Revert();
    }
    ++stats_->mutation_generations;
  } else {
    record.op = OperatorKind::kCrossover;
    // First parent uniformly from the leader group (the Nb best; the
    // population is sorted ascending), mate proportionally from everyone.
    size_t leaders = std::min<size_t>(
        static_cast<size_t>(config_.leader_group_size), population.size());
    size_t i1 = rng.UniformIndex(leaders);
    size_t i2 = selection_.Select(population.Scores(), &rng);

    Individual child1, child2;
    auto segment = cross_.Apply(population[i1].data, population[i2].data,
                                &child1.data, &child2.data, &rng);
    child1.origin = "cross<" + BaseOrigin(population[i1].origin) + ">";
    child2.origin = "cross<" + BaseOrigin(population[i2].origin) + ">";
    child1.id = (*next_id_)++;
    child2.id = (*next_id_)++;

    const bool delta_pair = incremental && i1 != i2 &&
                            population[i1].eval_state != nullptr &&
                            population[i2].eval_state != nullptr;
    // Both legs go through the one segment-delta entry point and may always
    // overlap: a heavy leg (full evaluation or a rebuild-sized segment) no
    // longer hogs or starves the pool, because nested regions — the
    // per-measure fan-out inside FitnessState::ApplyDelta and every
    // measure's own row loops — submit to the shared scheduler instead of
    // serializing.
    Timer eval_timer;
    if (delta_pair) {
      auto eval_leg = [&](int64_t leg) {
        Individual& child = leg == 0 ? child1 : child2;
        size_t parent = leg == 0 ? i1 : i2;
        const auto& deltas = leg == 0 ? segment.deltas1 : segment.deltas2;
        population[parent].eval_state->ApplyDelta(child.data, deltas, cancel_);
        child.fitness = population[parent].eval_state->breakdown();
      };
      if (config_.parallel_offspring_eval) {
        ParallelFor(0, 2, eval_leg);
      } else {
        eval_leg(0);
        eval_leg(1);
      }
    } else {
      auto eval_leg = [&](int64_t leg) {
        Individual& child = leg == 0 ? child1 : child2;
        child.fitness = evaluator_->Evaluate(child.data);
      };
      if (config_.parallel_offspring_eval) {
        ParallelFor(0, 2, eval_leg);
      } else {
        eval_leg(0);
        eval_leg(1);
      }
    }
    eval_seconds = eval_timer.ElapsedSeconds();
    record.evaluations = 2;

    // Deterministic crowding: each offspring competes with its own parent.
    if (child1.score() < population[i1].score()) {
      if (delta_pair) {
        child1.eval_state = std::move(population[i1].eval_state);
      } else if (incremental) {
        child1.eval_state = evaluator_->BindState(child1.data);
      }
      population[i1] = std::move(child1);
      record.accepted = true;
      ++stats_->accepted_crossovers;
    } else if (delta_pair) {
      population[i1].eval_state->Revert();
    }
    if (child2.score() < population[i2].score()) {
      if (delta_pair) {
        child2.eval_state = std::move(population[i2].eval_state);
      } else if (incremental) {
        // Covers the i1 == i2 self-mating corner: offspring were scored in
        // full, so an accepted one needs a fresh state of its own.
        child2.eval_state = evaluator_->BindState(child2.data);
      }
      population[i2] = std::move(child2);
      record.accepted = true;
      ++stats_->accepted_crossovers;
    } else if (delta_pair) {
      population[i2].eval_state->Revert();
    }
    ++stats_->crossover_generations;
  }

  population.SortByScore();

  record.min_score = population.MinScore();
  record.mean_score = population.MeanScore();
  record.max_score = population.MaxScore();
  record.eval_seconds = eval_seconds;
  record.total_seconds = gen_timer.ElapsedSeconds();
  stats_->offspring_evaluated += record.evaluations;
  if (record.op == OperatorKind::kMutation) {
    stats_->mutation_eval_seconds += record.eval_seconds;
    stats_->mutation_total_seconds += record.total_seconds;
  } else {
    stats_->crossover_eval_seconds += record.eval_seconds;
    stats_->crossover_total_seconds += record.total_seconds;
  }
  const bool mutation_op = record.op == OperatorKind::kMutation;
  GenerationsCounter(mutation_op)->Increment();
  if (record.accepted) AcceptedCounter(mutation_op)->Increment();
  GenerationSecondsHistogram()->Observe(record.total_seconds);
  return record;
}

}  // namespace core
}  // namespace evocat
