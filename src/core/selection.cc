#include "core/selection.h"

#include <algorithm>

namespace evocat {
namespace core {

namespace {
// Floor keeping inverse/literal weights finite when scores touch zero.
constexpr double kScoreEpsilon = 1e-6;
}  // namespace

const char* SelectionStrategyToString(SelectionStrategy strategy) {
  switch (strategy) {
    case SelectionStrategy::kInverseScore:
      return "inverse";
    case SelectionStrategy::kLiteralScore:
      return "literal";
    case SelectionStrategy::kRank:
      return "rank";
    case SelectionStrategy::kUniform:
      return "uniform";
  }
  return "?";
}

Result<SelectionStrategy> SelectionStrategyFromString(const std::string& name) {
  for (SelectionStrategy strategy :
       {SelectionStrategy::kInverseScore, SelectionStrategy::kLiteralScore,
        SelectionStrategy::kRank, SelectionStrategy::kUniform}) {
    if (name == SelectionStrategyToString(strategy)) return strategy;
  }
  return Status::Invalid("unknown selection strategy '", name,
                         "'; expected inverse|literal|rank|uniform");
}

std::vector<double> SelectionPolicy::Weights(
    const std::vector<double>& scores) const {
  std::vector<double> weights(scores.size(), 1.0);
  switch (strategy_) {
    case SelectionStrategy::kInverseScore:
      for (size_t i = 0; i < scores.size(); ++i) {
        weights[i] = 1.0 / std::max(scores[i], kScoreEpsilon);
      }
      break;
    case SelectionStrategy::kLiteralScore:
      for (size_t i = 0; i < scores.size(); ++i) {
        weights[i] = std::max(scores[i], kScoreEpsilon);
      }
      break;
    case SelectionStrategy::kRank:
      for (size_t i = 0; i < scores.size(); ++i) {
        weights[i] = static_cast<double>(scores.size() - i);
      }
      break;
    case SelectionStrategy::kUniform:
      break;
  }
  return weights;
}

size_t SelectionPolicy::Select(const std::vector<double>& scores,
                               Rng* rng) const {
  auto weights = Weights(scores);
  return rng->WeightedIndex(weights);
}

}  // namespace core
}  // namespace evocat
