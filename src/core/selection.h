/// \file selection.h
/// \brief Fitness-proportional parent selection (paper §2.4).
///
/// The paper's Eq. 3 literally reads p(Xi) = Score(Xi) / Σ Score(Xj), which
/// favours *high* (bad) scores in a minimization problem — contradicting the
/// surrounding text ("better individuals have a greater probability of being
/// selected") and the paper's own analysis of the score trajectories. The
/// default strategy therefore implements the described behaviour
/// (probability proportional to inverse score); the literal equation and two
/// baselines are available for the selection ablation bench.

#ifndef EVOCAT_CORE_SELECTION_H_
#define EVOCAT_CORE_SELECTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace evocat {
namespace core {

/// \brief Parent-selection strategies over population scores.
enum class SelectionStrategy {
  /// p(Xi) ∝ 1 / Score(Xi): favours good (low) scores. Default; matches the
  /// paper's described behaviour.
  kInverseScore,
  /// p(Xi) ∝ Score(Xi): the paper's Eq. 3 taken literally (favours bad
  /// scores); kept for the ablation study.
  kLiteralScore,
  /// p(Xi) ∝ (N - rank(Xi)): linear rank selection, best rank heaviest.
  /// Scores must be sorted ascending.
  kRank,
  /// Uniform choice (selection-pressure-free baseline).
  kUniform,
};

const char* SelectionStrategyToString(SelectionStrategy strategy);

/// \brief Inverse of SelectionStrategyToString; rejects unknown names.
Result<SelectionStrategy> SelectionStrategyFromString(const std::string& name);

/// \brief Draws parent indices according to a strategy.
class SelectionPolicy {
 public:
  explicit SelectionPolicy(SelectionStrategy strategy) : strategy_(strategy) {}

  /// \brief Selection weights for `scores` (exposed for tests).
  ///
  /// For `kRank`, `scores` must be sorted ascending (the population
  /// invariant maintained by the engine).
  std::vector<double> Weights(const std::vector<double>& scores) const;

  /// \brief Draws one index according to the strategy's weights.
  size_t Select(const std::vector<double>& scores, Rng* rng) const;

  SelectionStrategy strategy() const { return strategy_; }

 private:
  SelectionStrategy strategy_;
};

}  // namespace core
}  // namespace evocat

#endif  // EVOCAT_CORE_SELECTION_H_
