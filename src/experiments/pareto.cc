#include "experiments/pareto.h"

#include <algorithm>

namespace evocat {
namespace experiments {

bool Dominates(const IndividualSummary& a, const IndividualSummary& b) {
  return a.il <= b.il && a.dr <= b.dr && (a.il < b.il || a.dr < b.dr);
}

std::vector<size_t> ParetoFrontIndices(
    const std::vector<IndividualSummary>& members) {
  std::vector<size_t> front;
  for (size_t i = 0; i < members.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < members.size(); ++j) {
      if (j != i && Dominates(members[j], members[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  std::sort(front.begin(), front.end(), [&](size_t a, size_t b) {
    if (members[a].il != members[b].il) return members[a].il < members[b].il;
    return members[a].dr < members[b].dr;
  });
  // Duplicate (IL, DR) points add no hypervolume and clutter the front.
  front.erase(std::unique(front.begin(), front.end(),
                          [&](size_t a, size_t b) {
                            return members[a].il == members[b].il &&
                                   members[a].dr == members[b].dr;
                          }),
              front.end());
  return front;
}

double DominatedHypervolume(const std::vector<IndividualSummary>& members,
                            double ref_il, double ref_dr) {
  if (ref_il <= 0.0 || ref_dr <= 0.0) return 0.0;
  auto front = ParetoFrontIndices(members);
  // Sweep the front in ascending IL; each point contributes the rectangle
  // between its DR and the previous (higher) DR, out to the IL reference.
  double hypervolume = 0.0;
  double prev_dr = ref_dr;
  for (size_t idx : front) {
    const auto& p = members[idx];
    if (p.il >= ref_il || p.dr >= prev_dr) continue;
    hypervolume += (ref_il - p.il) * (prev_dr - std::max(p.dr, 0.0));
    prev_dr = std::max(p.dr, 0.0);
    if (prev_dr <= 0.0) break;
  }
  return hypervolume / (ref_il * ref_dr);
}

ParetoStats AnalyzePareto(const std::vector<IndividualSummary>& members) {
  ParetoStats stats;
  auto front = ParetoFrontIndices(members);
  stats.front.reserve(front.size());
  for (size_t idx : front) stats.front.push_back(members[idx]);
  stats.hypervolume = DominatedHypervolume(members);
  // Dominated fraction counts members beaten by at least one other member
  // (duplicates of front points count as non-dominated).
  size_t dominated = 0;
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = 0; j < members.size(); ++j) {
      if (j != i && Dominates(members[j], members[i])) {
        ++dominated;
        break;
      }
    }
  }
  stats.dominated_fraction =
      members.empty() ? 0.0
                      : static_cast<double>(dominated) /
                            static_cast<double>(members.size());
  return stats;
}

}  // namespace experiments
}  // namespace evocat
