#include "experiments/runner.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"
#include "common/parallel.h"
#include "datagen/generator.h"

namespace evocat {
namespace experiments {

namespace {

IndividualSummary Summarize(const core::Individual& individual) {
  IndividualSummary summary;
  summary.origin = individual.origin;
  summary.il = individual.fitness.il;
  summary.dr = individual.fitness.dr;
  summary.score = individual.fitness.score;
  return summary;
}

ScoreTriple TripleOf(const std::vector<IndividualSummary>& members) {
  ScoreTriple triple;
  std::vector<double> scores;
  scores.reserve(members.size());
  for (const auto& m : members) scores.push_back(m.score);
  triple.min = Min(scores);
  triple.mean = Mean(scores);
  triple.max = Max(scores);
  return triple;
}

}  // namespace

Result<ExperimentResult> RunExperiment(const DatasetCase& dataset_case,
                                       const ExperimentOptions& options) {
  if (options.remove_best_fraction < 0.0 ||
      options.remove_best_fraction >= 1.0) {
    return Status::Invalid("remove_best_fraction must be in [0, 1), got ",
                           options.remove_best_fraction);
  }

  // (1) Synthetic dataset standing in for the UCI file.
  EVOCAT_ASSIGN_OR_RETURN(Dataset original,
                          datagen::Generate(dataset_case.profile,
                                            options.data_seed));
  EVOCAT_ASSIGN_OR_RETURN(
      std::vector<int> attrs,
      datagen::ProtectedAttributeIndices(dataset_case.profile, original));

  // (2) Initial population of protections (paper §3 method mixes).
  EVOCAT_ASSIGN_OR_RETURN(
      auto protections,
      protection::BuildProtections(original, attrs,
                                   dataset_case.population_spec,
                                   options.protection_seed));

  // (3) Fitness evaluator with the experiment's aggregation.
  metrics::FitnessEvaluator::Options fitness_options = options.fitness;
  fitness_options.aggregation = options.aggregation;
  EVOCAT_ASSIGN_OR_RETURN(
      auto evaluator,
      metrics::FitnessEvaluator::Create(original, attrs, fitness_options));

  std::vector<core::Individual> initial;
  initial.reserve(protections.size());
  for (auto& file : protections) {
    core::Individual individual;
    individual.data = std::move(file.data);
    individual.origin = std::move(file.method_label);
    initial.push_back(std::move(individual));
  }

  // Evaluate the seeds now: the dispersion figures need the initial cloud,
  // and the robustness experiment removes the best seeds by score.
  ParallelFor(0, static_cast<int64_t>(initial.size()), [&](int64_t i) {
    initial[static_cast<size_t>(i)].fitness =
        evaluator->Evaluate(initial[static_cast<size_t>(i)].data);
  });
  std::stable_sort(initial.begin(), initial.end(),
                   [](const core::Individual& a, const core::Individual& b) {
                     return a.score() < b.score();
                   });

  if (options.remove_best_fraction > 0.0) {
    auto removed = static_cast<size_t>(
        std::llround(options.remove_best_fraction *
                     static_cast<double>(initial.size())));
    removed = std::min(removed, initial.size() - 2);  // keep a viable population
    initial.erase(initial.begin(),
                  initial.begin() + static_cast<std::ptrdiff_t>(removed));
  }

  ExperimentResult result;
  result.dataset = dataset_case.profile.name;
  result.options = options;
  result.initial.reserve(initial.size());
  for (const auto& individual : initial) {
    result.initial.push_back(Summarize(individual));
  }
  result.initial_scores = TripleOf(result.initial);

  // (4) Evolve.
  core::GaConfig config;
  config.generations = options.generations;
  config.mutation_rate = options.mutation_rate;
  config.leader_group_size = options.leader_group_size;
  config.selection = options.selection;
  config.mutation_excludes_current = options.mutation_excludes_current;
  config.incremental_eval = options.incremental_eval;
  config.seed = options.ga_seed;

  core::EvolutionEngine engine(evaluator.get(), config);
  EVOCAT_ASSIGN_OR_RETURN(core::EvolutionResult evolution,
                          engine.Run(std::move(initial)));

  result.history = std::move(evolution.history);
  result.stats = evolution.stats;
  result.final_population.reserve(evolution.population.size());
  for (const auto& individual : evolution.population.members()) {
    result.final_population.push_back(Summarize(individual));
  }
  result.final_scores = TripleOf(result.final_population);
  return result;
}

}  // namespace experiments
}  // namespace evocat
