#include "experiments/runner.h"

#include <limits>

#include "api/session.h"

namespace evocat {
namespace experiments {

namespace {

/// api summaries -> the runner's (IL, DR, score) triples.
std::vector<IndividualSummary> ToSummaries(
    const std::vector<api::MemberSummary>& members) {
  std::vector<IndividualSummary> summaries;
  summaries.reserve(members.size());
  for (const auto& member : members) {
    IndividualSummary summary;
    summary.origin = member.origin;
    summary.il = member.fitness.il;
    summary.dr = member.fitness.dr;
    summary.score = member.fitness.score;
    summaries.push_back(std::move(summary));
  }
  return summaries;
}

ScoreTriple ToTriple(const api::ScoreStats& stats) {
  ScoreTriple triple;
  triple.min = stats.min;
  triple.mean = stats.mean;
  triple.max = stats.max;
  return triple;
}

/// Measure toggles -> the JobSpec's enabled-measure list (empty == all).
std::vector<std::string> EnabledMeasures(
    const metrics::FitnessEvaluator::Options& options) {
  if (options.use_ctbil && options.use_dbil && options.use_ebil &&
      options.use_id && options.use_dbrl && options.use_prl &&
      options.use_rsrl) {
    return {};
  }
  std::vector<std::string> enabled;
  if (options.use_ctbil) enabled.push_back("CTBIL");
  if (options.use_dbil) enabled.push_back("DBIL");
  if (options.use_ebil) enabled.push_back("EBIL");
  if (options.use_id) enabled.push_back("ID");
  if (options.use_dbrl) enabled.push_back("DBRL");
  if (options.use_prl) enabled.push_back("PRL");
  if (options.use_rsrl) enabled.push_back("RSRL");
  return enabled;
}

}  // namespace

double ExperimentResult::ImprovementPercent(double start, double end) {
  if (start <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  return 100.0 * (start - end) / start;
}

Result<ExperimentResult> RunExperiment(const DatasetCase& dataset_case,
                                       const ExperimentOptions& options) {
  // The runner is a thin adapter now: a DatasetCase + ExperimentOptions is
  // exactly one JobSpec with all stage seeds pinned, executed by the façade.
  api::JobSpec spec;
  spec.name = dataset_case.profile.name;
  spec.source.kind = api::SourceSpec::Kind::kSynthetic;
  spec.source.has_inline_profile = true;
  spec.source.profile = dataset_case.profile;
  spec.methods = api::RosterFromPopulationSpec(dataset_case.population_spec);

  metrics::FitnessEvaluator::Options fitness = options.fitness;
  fitness.aggregation = options.aggregation;
  // All-toggles-false would map onto MeasureSpec's empty list, which means
  // "all enabled" — reject it here as FitnessEvaluator::Create always did.
  // (Every partially-disabled case is validated by the spec itself.)
  if (!fitness.use_ctbil && !fitness.use_dbil && !fitness.use_ebil &&
      !fitness.use_id && !fitness.use_dbrl && !fitness.use_prl &&
      !fitness.use_rsrl) {
    return Status::Invalid("at least one information-loss measure is required");
  }
  spec.measures.aggregation = fitness.aggregation;
  spec.measures.il_weight = fitness.il_weight;
  spec.measures.enabled = EnabledMeasures(fitness);
  spec.measures.ctbil_max_dimension = fitness.ctbil_max_dimension;
  spec.measures.id_window_percent = fitness.id_window_percent;
  spec.measures.rsrl_assumed_p_percent = fitness.rsrl_assumed_p_percent;
  spec.measures.prl_em_iterations = fitness.prl_em_iterations;
  spec.fitness.delta_rebuild_fraction = fitness.delta_rebuild_fraction;
  spec.fitness.rebuild_fractions = fitness.measure_rebuild_fractions;

  spec.ga.generations = options.generations;
  spec.ga.mutation_rate = options.mutation_rate;
  spec.ga.leader_group_size = options.leader_group_size;
  spec.ga.selection = options.selection;
  spec.ga.mutation_excludes_current = options.mutation_excludes_current;
  spec.ga.incremental_eval = options.incremental_eval;

  spec.remove_best_fraction = options.remove_best_fraction;
  spec.seeds.data = options.data_seed;
  spec.seeds.protection = options.protection_seed;
  spec.seeds.ga = options.ga_seed;

  api::Session session;
  EVOCAT_ASSIGN_OR_RETURN(api::RunArtifacts artifacts, session.Run(spec));

  ExperimentResult result;
  result.dataset = artifacts.dataset;
  result.options = options;
  result.initial = ToSummaries(artifacts.initial);
  result.final_population = ToSummaries(artifacts.final_population);
  result.history = std::move(artifacts.history);
  result.stats = artifacts.stats;
  result.initial_scores = ToTriple(artifacts.initial_scores);
  result.final_scores = ToTriple(artifacts.final_scores);
  return result;
}

}  // namespace experiments
}  // namespace evocat
