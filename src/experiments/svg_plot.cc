#include "experiments/svg_plot.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <functional>
#include <sstream>
#include <utility>

#include "common/string_utils.h"

namespace evocat {
namespace experiments {

namespace {

constexpr double kWidth = 640.0;
constexpr double kHeight = 480.0;
constexpr double kMargin = 56.0;

struct Axis {
  double min = 0.0;
  double max = 1.0;

  double ToPixelX(double v) const {
    return kMargin + (v - min) / (max - min) * (kWidth - 2 * kMargin);
  }
  double ToPixelY(double v) const {
    return kHeight - kMargin - (v - min) / (max - min) * (kHeight - 2 * kMargin);
  }
};

void Header(std::ostringstream& out, const std::string& title) {
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << kWidth
      << "\" height=\"" << kHeight << "\" viewBox=\"0 0 " << kWidth << " "
      << kHeight << "\">\n";
  out << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  out << "<text x=\"" << kWidth / 2 << "\" y=\"24\" text-anchor=\"middle\" "
         "font-family=\"sans-serif\" font-size=\"15\">"
      << title << "</text>\n";
}

void Frame(std::ostringstream& out, const Axis& x, const Axis& y,
           const std::string& x_label, const std::string& y_label) {
  out << StrFormat(
      "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
      "fill=\"none\" stroke=\"#444\"/>\n",
      kMargin, kMargin, kWidth - 2 * kMargin, kHeight - 2 * kMargin);
  // Four ticks per axis with value labels.
  for (int i = 0; i <= 4; ++i) {
    double xv = x.min + (x.max - x.min) * i / 4.0;
    double yv = y.min + (y.max - y.min) * i / 4.0;
    out << StrFormat(
        "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" "
        "font-family=\"sans-serif\" font-size=\"11\">%.0f</text>\n",
        x.ToPixelX(xv), kHeight - kMargin + 18.0, xv);
    out << StrFormat(
        "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\" "
        "font-family=\"sans-serif\" font-size=\"11\">%.0f</text>\n",
        kMargin - 8.0, y.ToPixelY(yv) + 4.0, yv);
  }
  out << StrFormat(
      "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" "
      "font-family=\"sans-serif\" font-size=\"13\">%s</text>\n",
      kWidth / 2, kHeight - 12.0, x_label.c_str());
  out << StrFormat(
      "<text x=\"16\" y=\"%.1f\" text-anchor=\"middle\" "
      "font-family=\"sans-serif\" font-size=\"13\" "
      "transform=\"rotate(-90 16 %.1f)\">%s</text>\n",
      kHeight / 2, kHeight / 2, y_label.c_str());
}

}  // namespace

std::string RenderDispersionSvg(const ExperimentResult& result,
                                const std::string& title) {
  std::ostringstream out;
  Header(out, title);

  Axis axis;  // shared square axis so the IL = DR diagonal is meaningful
  axis.min = 0.0;
  axis.max = 1.0;
  for (const auto* population : {&result.initial, &result.final_population}) {
    for (const auto& m : *population) {
      axis.max = std::max({axis.max, m.il, m.dr});
    }
  }
  axis.max = std::ceil(axis.max / 10.0) * 10.0;
  Frame(out, axis, axis, "information loss", "disclosure risk");

  // IL = DR diagonal.
  out << StrFormat(
      "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#bbb\" "
      "stroke-dasharray=\"4 3\"/>\n",
      axis.ToPixelX(axis.min), axis.ToPixelY(axis.min), axis.ToPixelX(axis.max),
      axis.ToPixelY(axis.max));

  for (const auto& m : result.initial) {
    out << StrFormat(
        "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"4\" fill=\"none\" "
        "stroke=\"#1f77b4\" stroke-width=\"1.2\"/>\n",
        axis.ToPixelX(m.il), axis.ToPixelY(m.dr));
  }
  for (const auto& m : result.final_population) {
    out << StrFormat(
        "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3\" fill=\"#d62728\"/>\n",
        axis.ToPixelX(m.il), axis.ToPixelY(m.dr));
  }

  // Legend.
  out << "<circle cx=\"" << kWidth - 150 << "\" cy=\"44\" r=\"4\" fill=\"none\" "
         "stroke=\"#1f77b4\"/><text x=\"" << kWidth - 140
      << "\" y=\"48\" font-family=\"sans-serif\" font-size=\"12\">initial"
         "</text>\n";
  out << "<circle cx=\"" << kWidth - 150 << "\" cy=\"62\" r=\"3\" "
         "fill=\"#d62728\"/><text x=\"" << kWidth - 140
      << "\" y=\"66\" font-family=\"sans-serif\" font-size=\"12\">final"
         "</text>\n";
  out << "</svg>\n";
  return out.str();
}

std::string RenderEvolutionSvg(const ExperimentResult& result,
                               const std::string& title) {
  std::ostringstream out;
  Header(out, title);

  Axis x, y;
  x.min = 0.0;
  x.max = std::max<size_t>(1, result.history.size());
  y.min = 1e100;
  y.max = -1e100;
  auto widen = [&](double v) {
    y.min = std::min(y.min, v);
    y.max = std::max(y.max, v);
  };
  widen(result.initial_scores.min);
  widen(result.initial_scores.max);
  for (const auto& record : result.history) {
    widen(record.min_score);
    widen(record.max_score);
  }
  double pad = std::max(1.0, (y.max - y.min) * 0.08);
  y.min = std::max(0.0, y.min - pad);
  y.max = y.max + pad;
  Frame(out, x, y, "generation", "score");

  struct Series {
    const char* color;
    const char* label;
    std::function<double(const core::GenerationRecord&)> value;
    double initial;
  };
  const Series series[] = {
      {"#2ca02c", "min",
       [](const core::GenerationRecord& r) { return r.min_score; },
       result.initial_scores.min},
      {"#1f77b4", "mean",
       [](const core::GenerationRecord& r) { return r.mean_score; },
       result.initial_scores.mean},
      {"#d62728", "max",
       [](const core::GenerationRecord& r) { return r.max_score; },
       result.initial_scores.max},
  };
  int legend_y = 44;
  for (const auto& s : series) {
    out << "<polyline fill=\"none\" stroke=\"" << s.color
        << "\" stroke-width=\"1.5\" points=\"";
    out << StrFormat("%.1f,%.1f ", x.ToPixelX(0), y.ToPixelY(s.initial));
    for (const auto& record : result.history) {
      out << StrFormat("%.1f,%.1f ", x.ToPixelX(record.generation),
                       y.ToPixelY(s.value(record)));
    }
    out << "\"/>\n";
    out << "<text x=\"" << kWidth - 140 << "\" y=\"" << legend_y
        << "\" font-family=\"sans-serif\" font-size=\"12\" fill=\"" << s.color
        << "\">" << s.label << "</text>\n";
    legend_y += 18;
  }
  out << "</svg>\n";
  return out.str();
}

Status WriteFigureSvgs(const ExperimentResult& result, const std::string& title,
                       const std::string& directory, const std::string& stem) {
  for (const auto& [suffix, content] :
       {std::pair<std::string, std::string>{
            "_dispersion.svg", RenderDispersionSvg(result, title)},
        std::pair<std::string, std::string>{
            "_evolution.svg", RenderEvolutionSvg(result, title)}}) {
    std::string path = directory + "/" + stem + suffix;
    std::ofstream out(path);
    if (!out) return Status::IOError("cannot open '", path, "' for writing");
    out << content;
    if (!out) return Status::IOError("error writing '", path, "'");
  }
  return Status::OK();
}

}  // namespace experiments
}  // namespace evocat
