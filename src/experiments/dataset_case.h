/// \file dataset_case.h
/// \brief The paper's four evaluation cases: dataset profile + population mix.

#ifndef EVOCAT_EXPERIMENTS_DATASET_CASE_H_
#define EVOCAT_EXPERIMENTS_DATASET_CASE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "datagen/profile.h"
#include "protection/population_builder.h"

namespace evocat {
namespace experiments {

/// \brief One paper evaluation setting: which data, which initial population.
struct DatasetCase {
  datagen::SyntheticProfile profile;
  protection::PopulationSpec population_spec;
};

/// \brief Housing: 1000x11, protections 110.
DatasetCase HousingCase();
/// \brief German Credit: 1000x13, protections 104.
DatasetCase GermanCase();
/// \brief Solar Flare: 1066x13, protections 104.
DatasetCase FlareCase();
/// \brief Adult: 1000x8, protections 86.
DatasetCase AdultCase();

/// \brief All four cases in the paper's presentation order.
std::vector<DatasetCase> AllCases();

/// \brief Case lookup by profile name ("housing", "german", "flare", "adult").
Result<DatasetCase> CaseByName(const std::string& name);

}  // namespace experiments
}  // namespace evocat

#endif  // EVOCAT_EXPERIMENTS_DATASET_CASE_H_
