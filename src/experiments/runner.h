/// \file runner.h
/// \brief End-to-end experiment pipeline reproducing the paper's §3.
///
/// A run (1) generates the synthetic dataset, (2) builds the initial
/// population of protections, (3) optionally removes the best fraction
/// (robustness experiment §3.3), (4) evolves the population, and (5) returns
/// the initial/final (IL, DR) clouds plus the score-evolution history —
/// exactly the data behind the paper's dispersion and evolution figures.

#ifndef EVOCAT_EXPERIMENTS_RUNNER_H_
#define EVOCAT_EXPERIMENTS_RUNNER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "experiments/dataset_case.h"
#include "metrics/fitness.h"

namespace evocat {
namespace experiments {

/// \brief Experiment knobs; defaults reproduce the paper's first experiment.
struct ExperimentOptions {
  /// Score aggregation: kMean = Eq. 1 (experiment 1), kMax = Eq. 2 (2, 3).
  metrics::ScoreAggregation aggregation = metrics::ScoreAggregation::kMean;
  /// GA generation budget.
  int generations = 400;
  /// Fraction of the best initial individuals removed before evolution
  /// (0.05 / 0.10 in the robustness experiment §3.3).
  double remove_best_fraction = 0.0;
  /// Seeds: dataset sampling, masking methods, evolution.
  uint64_t data_seed = 0xDA7A;
  uint64_t protection_seed = 0x9A5C;
  uint64_t ga_seed = 42;
  /// GA parameters (paper defaults).
  double mutation_rate = 0.5;
  int leader_group_size = 10;
  core::SelectionStrategy selection = core::SelectionStrategy::kInverseScore;
  bool mutation_excludes_current = true;
  /// Incremental (operator-delta) fitness evaluation; false forces the
  /// paper's original full re-evaluation per offspring.
  bool incremental_eval = true;
  /// Measure configuration; `aggregation` above overrides its aggregation.
  metrics::FitnessEvaluator::Options fitness;
};

/// \brief (IL, DR, score) of one population member, with provenance.
struct IndividualSummary {
  std::string origin;
  double il = 0.0;
  double dr = 0.0;
  double score = 0.0;
};

/// \brief Min/mean/max triple of a population's scores.
struct ScoreTriple {
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

/// \brief Everything a paper figure/table needs from one run.
struct ExperimentResult {
  std::string dataset;
  ExperimentOptions options;
  /// Initial population (after any best-removal), evaluated.
  std::vector<IndividualSummary> initial;
  /// Final population, same order convention (sorted by score).
  std::vector<IndividualSummary> final_population;
  /// Per-generation min/mean/max trajectory.
  std::vector<core::GenerationRecord> history;
  core::EvolutionStats stats;
  ScoreTriple initial_scores;
  ScoreTriple final_scores;

  /// \brief Percentage improvement (start -> end) of a score statistic.
  ///
  /// Undefined for non-positive start scores — the ratio would claim "no
  /// improvement" (or a nonsensical sign) — so those return NaN; reports
  /// print "n/a" for NaN rather than a number.
  static double ImprovementPercent(double start, double end);
};

/// \brief Runs one experiment end to end.
Result<ExperimentResult> RunExperiment(const DatasetCase& dataset_case,
                                       const ExperimentOptions& options);

}  // namespace experiments
}  // namespace evocat

#endif  // EVOCAT_EXPERIMENTS_RUNNER_H_
