#include "experiments/dataset_case.h"

namespace evocat {
namespace experiments {

DatasetCase HousingCase() {
  return DatasetCase{datagen::HousingProfile(),
                     protection::HousingPopulationSpec()};
}

DatasetCase GermanCase() {
  return DatasetCase{datagen::GermanCreditProfile(),
                     protection::GermanFlarePopulationSpec()};
}

DatasetCase FlareCase() {
  return DatasetCase{datagen::SolarFlareProfile(),
                     protection::GermanFlarePopulationSpec()};
}

DatasetCase AdultCase() {
  return DatasetCase{datagen::AdultProfile(), protection::AdultPopulationSpec()};
}

std::vector<DatasetCase> AllCases() {
  return {AdultCase(), HousingCase(), GermanCase(), FlareCase()};
}

Result<DatasetCase> CaseByName(const std::string& name) {
  if (name == "housing") return HousingCase();
  if (name == "german") return GermanCase();
  if (name == "flare") return FlareCase();
  if (name == "adult") return AdultCase();
  return Status::NotFound("unknown dataset case '", name,
                          "'; expected housing|german|flare|adult");
}

}  // namespace experiments
}  // namespace evocat
