/// \file report.h
/// \brief Emitters turning experiment results into the paper's figures/tables.
///
/// Benches print machine-readable CSV rows prefixed by a series tag, plus a
/// human-readable summary mirroring the percentages quoted in the paper's
/// running text.

#ifndef EVOCAT_EXPERIMENTS_REPORT_H_
#define EVOCAT_EXPERIMENTS_REPORT_H_

#include <iosfwd>
#include <string>

#include "experiments/runner.h"

namespace evocat {
namespace experiments {

/// \brief Dispersion-figure data: `dispersion,<phase>,<index>,<il>,<dr>,
/// <score>,<origin>` rows for the initial and final populations.
void PrintDispersionCsv(const ExperimentResult& result, std::ostream& out);

/// \brief Evolution-figure data: `evolution,<generation>,<min>,<mean>,<max>,
/// <operator>` rows (generation 0 is the initial population).
void PrintEvolutionCsv(const ExperimentResult& result, std::ostream& out);

/// \brief Paper-style improvement summary for max/mean/min scores.
void PrintImprovementSummary(const ExperimentResult& result, std::ostream& out);

/// \brief Timing table mirroring the paper's §3.2 in-text numbers: average
/// wall time of mutation vs crossover generations, split into fitness
/// evaluation and everything else.
void PrintTimingSummary(const ExperimentResult& result, std::ostream& out);

/// \brief Measures how balanced the final cloud is: mean |IL - DR| of a
/// population (paper §3.2 discusses balance under Eq. 2).
double MeanImbalance(const std::vector<IndividualSummary>& members);

}  // namespace experiments
}  // namespace evocat

#endif  // EVOCAT_EXPERIMENTS_REPORT_H_
