/// \file svg_plot.h
/// \brief Self-contained SVG renderers for the paper's two figure types.
///
/// The paper's artifacts are figures; these helpers render an
/// `ExperimentResult` into the same two pictures with zero external
/// dependencies: the (IL, DR) dispersion scatter (initial vs final clouds)
/// and the min/mean/max score-evolution lines. Bench binaries write them
/// when `EVOCAT_SVG_DIR` is set.

#ifndef EVOCAT_EXPERIMENTS_SVG_PLOT_H_
#define EVOCAT_EXPERIMENTS_SVG_PLOT_H_

#include <string>

#include "common/status.h"
#include "experiments/runner.h"

namespace evocat {
namespace experiments {

/// \brief SVG scatter of initial (hollow) vs final (filled) (IL, DR) pairs,
/// with the IL = DR diagonal for the balance story.
std::string RenderDispersionSvg(const ExperimentResult& result,
                                const std::string& title);

/// \brief SVG line chart of min/mean/max score over generations.
std::string RenderEvolutionSvg(const ExperimentResult& result,
                               const std::string& title);

/// \brief Writes both figures as `<stem>_dispersion.svg` and
/// `<stem>_evolution.svg` under `directory`.
Status WriteFigureSvgs(const ExperimentResult& result, const std::string& title,
                       const std::string& directory, const std::string& stem);

}  // namespace experiments
}  // namespace evocat

#endif  // EVOCAT_EXPERIMENTS_SVG_PLOT_H_
