/// \file pareto.h
/// \brief Multi-objective (Pareto) analysis of (IL, DR) populations.
///
/// The paper collapses the IL/DR trade-off to a scalar score; its dispersion
/// figures, however, are exactly the multi-objective picture. This module
/// quantifies those clouds: the non-dominated (Pareto) front and the
/// dominated hypervolume against the worst point (100, 100). A protection
/// run improved in the multi-objective sense when the final front's
/// hypervolume exceeds the initial front's.

#ifndef EVOCAT_EXPERIMENTS_PARETO_H_
#define EVOCAT_EXPERIMENTS_PARETO_H_

#include <cstddef>
#include <vector>

#include "experiments/runner.h"

namespace evocat {
namespace experiments {

/// \brief True when `a` Pareto-dominates `b` (both objectives minimized:
/// no worse in either, strictly better in at least one).
bool Dominates(const IndividualSummary& a, const IndividualSummary& b);

/// \brief Indices of the non-dominated members, sorted by ascending IL.
std::vector<size_t> ParetoFrontIndices(const std::vector<IndividualSummary>& members);

/// \brief Hypervolume dominated by the population's Pareto front relative to
/// the reference point (ref_il, ref_dr), normalized to [0, 1].
///
/// Larger is better. Points at or beyond the reference contribute nothing.
double DominatedHypervolume(const std::vector<IndividualSummary>& members,
                            double ref_il = 100.0, double ref_dr = 100.0);

/// \brief Aggregate multi-objective statistics of one population.
struct ParetoStats {
  /// Non-dominated members, ascending IL (descending DR).
  std::vector<IndividualSummary> front;
  /// Normalized dominated hypervolume w.r.t. (100, 100).
  double hypervolume = 0.0;
  /// Fraction of members that are dominated by some other member.
  double dominated_fraction = 0.0;
};

/// \brief Computes front, hypervolume and dominated fraction.
ParetoStats AnalyzePareto(const std::vector<IndividualSummary>& members);

}  // namespace experiments
}  // namespace evocat

#endif  // EVOCAT_EXPERIMENTS_PARETO_H_
