#include "experiments/report.h"

#include <cmath>
#include <iomanip>
#include <ostream>

#include "core/engine.h"

namespace evocat {
namespace experiments {

void PrintDispersionCsv(const ExperimentResult& result, std::ostream& out) {
  out << "series,phase,index,il,dr,score,origin\n";
  auto print_phase = [&](const char* phase,
                         const std::vector<IndividualSummary>& members) {
    for (size_t i = 0; i < members.size(); ++i) {
      const auto& m = members[i];
      out << "dispersion," << phase << ',' << i << ',' << std::fixed
          << std::setprecision(3) << m.il << ',' << m.dr << ',' << m.score
          << ',' << m.origin << '\n';
    }
  };
  print_phase("initial", result.initial);
  print_phase("final", result.final_population);
}

void PrintEvolutionCsv(const ExperimentResult& result, std::ostream& out) {
  out << "series,generation,min_score,mean_score,max_score,operator\n";
  out << "evolution,0," << std::fixed << std::setprecision(3)
      << result.initial_scores.min << ',' << result.initial_scores.mean << ','
      << result.initial_scores.max << ",initial\n";
  for (const auto& record : result.history) {
    out << "evolution," << record.generation << ',' << std::fixed
        << std::setprecision(3) << record.min_score << ',' << record.mean_score
        << ',' << record.max_score << ','
        << core::OperatorKindToString(record.op) << '\n';
  }
}

void PrintImprovementSummary(const ExperimentResult& result, std::ostream& out) {
  auto line = [&](const char* stat, double start, double end) {
    out << "  " << stat << " score: " << std::fixed << std::setprecision(2)
        << start << " -> " << end;
    double improvement = ExperimentResult::ImprovementPercent(start, end);
    if (std::isnan(improvement)) {
      out << "  (improvement n/a: non-positive start score)\n";
    } else {
      out << "  (" << improvement << "% improvement)\n";
    }
  };
  out << "[" << result.dataset << "] aggregation="
      << metrics::ScoreAggregationToString(result.options.aggregation)
      << " generations=" << result.history.size()
      << " population=" << result.final_population.size() << "\n";
  line("max ", result.initial_scores.max, result.final_scores.max);
  line("mean", result.initial_scores.mean, result.final_scores.mean);
  line("min ", result.initial_scores.min, result.final_scores.min);
  out << "  balance |IL-DR|: initial " << std::fixed << std::setprecision(2)
      << MeanImbalance(result.initial) << " -> final "
      << MeanImbalance(result.final_population) << "\n";
}

void PrintTimingSummary(const ExperimentResult& result, std::ostream& out) {
  const auto& stats = result.stats;
  auto avg = [](double total, int64_t count) {
    return count > 0 ? total / static_cast<double>(count) : 0.0;
  };
  double mut_total = avg(stats.mutation_total_seconds, stats.mutation_generations);
  double mut_eval = avg(stats.mutation_eval_seconds, stats.mutation_generations);
  double cross_total =
      avg(stats.crossover_total_seconds, stats.crossover_generations);
  double cross_eval =
      avg(stats.crossover_eval_seconds, stats.crossover_generations);

  out << "series,operator,generations,avg_total_s,avg_fitness_s,avg_rest_s,"
         "fitness_share\n";
  out << "timing,mutation," << stats.mutation_generations << ',' << std::fixed
      << std::setprecision(6) << mut_total << ',' << mut_eval << ','
      << (mut_total - mut_eval) << ',' << std::setprecision(4)
      << (mut_total > 0 ? mut_eval / mut_total : 0.0) << '\n';
  out << "timing,crossover," << stats.crossover_generations << ',' << std::fixed
      << std::setprecision(6) << cross_total << ',' << cross_eval << ','
      << (cross_total - cross_eval) << ',' << std::setprecision(4)
      << (cross_total > 0 ? cross_eval / cross_total : 0.0) << '\n';
}

double MeanImbalance(const std::vector<IndividualSummary>& members) {
  if (members.empty()) return 0.0;
  double total = 0.0;
  for (const auto& m : members) total += std::fabs(m.il - m.dr);
  return total / static_cast<double>(members.size());
}

}  // namespace experiments
}  // namespace evocat
