/// \file jobspec.h
/// \brief Declarative description of one end-to-end protection job.
///
/// A `JobSpec` is the single input of the `evocat::api` façade: it names the
/// dataset source (CSV file or synthetic profile), the protected attributes,
/// the seed-method roster with parameter grids, the measure configuration,
/// the full GA configuration, the seeds, and which artifacts to keep. It
/// parses from and serializes to JSON (see docs/api.md for the schema);
/// validation errors name the offending field (`"ga.mutation_rate"`,
/// `"methods[2].grid.k"`), and unknown fields or enum spellings are rejected
/// rather than ignored.

#ifndef EVOCAT_API_JOBSPEC_H_
#define EVOCAT_API_JOBSPEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/json.h"
#include "common/params.h"
#include "common/result.h"
#include "core/engine.h"
#include "datagen/profile.h"
#include "metrics/fitness.h"

namespace evocat {
namespace api {

/// \brief Where the original dataset comes from.
struct SourceSpec {
  enum class Kind { kCsv, kSynthetic };
  Kind kind = Kind::kSynthetic;

  /// CSV source (kind == kCsv).
  std::string path;
  bool has_header = true;
  std::string separator = ",";
  std::vector<std::string> ordinal_attributes;

  /// Synthetic source (kind == kSynthetic): either a named paper profile
  /// ("housing" | "german" | "flare" | "adult") ...
  std::string case_name = "adult";
  /// ... or a full inline profile (takes precedence when set).
  bool has_inline_profile = false;
  datagen::SyntheticProfile profile;
};

/// \brief One roster entry: a registry method name plus a parameter grid.
///
/// The grid maps parameter name -> list of values; the entry expands to the
/// cross product (first key outermost), one method instance per combination.
/// An empty grid yields a single instance with default parameters.
struct MethodGridSpec {
  std::string name;
  std::vector<std::pair<std::string, std::vector<std::string>>> grid;
};

/// \brief Measure toggles, parameters, weights and aggregation.
struct MeasureSpec {
  metrics::ScoreAggregation aggregation = metrics::ScoreAggregation::kMean;
  double il_weight = 0.5;
  /// Enabled measure names (registry spellings); empty = all seven.
  std::vector<std::string> enabled;
  int ctbil_max_dimension = 2;
  double id_window_percent = 10.0;
  double rsrl_assumed_p_percent = 15.0;
  int prl_em_iterations = 50;
};

/// \brief Incremental-evaluation cost-model tuning (the JSON `fitness`
/// object; see docs/perf.md for the per-measure cost model).
struct FitnessSpec {
  /// Global override of every measure's rebuild fraction — the share of the
  /// protected cells a segment batch may touch before a measure state
  /// recomputes from scratch. 0 (default) keeps the per-measure defaults
  /// (counting measures ~1.0, linkage attacks 0.4–0.6).
  double delta_rebuild_fraction = 0.0;
  /// Per-measure overrides by registry name; beat the global override.
  /// Serialized as the `rebuild_fractions` object.
  std::vector<std::pair<std::string, double>> rebuild_fractions;
  /// Bind-time probe: measure each unpinned measure's rebuild-vs-incremental
  /// crossover on the first state bind and use the measured fractions
  /// instead of the hand-calibrated defaults. Trades cross-run
  /// bit-reproducibility (the probe is wall-clock based) for tuned rebuild
  /// scheduling; pin fractions above to keep a measure bit-exact.
  bool probe_rebuild_fractions = false;
};

/// \brief Which evolution strategy schedules the GA step, plus its
/// parameters (see docs/strategies.md).
///
/// `name` is a `evolve::StrategyRegistry` spelling; `params` is the
/// strategy's flat parameter map (e.g. `{"lambda": "8"}` for steady_state,
/// `{"islands": "4", "migration_interval": "25"}` for islands). The default
/// reproduces the paper's generational loop bit-identically.
struct StrategySpec {
  std::string name = "generational";
  ParamMap params;
};

/// \brief Seeds for the three stochastic stages. Unset stage seeds are
/// derived deterministically from `master`, so one number fully reproduces a
/// job while explicit stage seeds allow exact legacy replication.
struct SeedSpec {
  uint64_t master = 42;
  std::optional<uint64_t> data;
  std::optional<uint64_t> protection;
  std::optional<uint64_t> ga;

  uint64_t DataSeed() const;
  uint64_t ProtectionSeed() const;
  uint64_t GaSeed() const;
  /// \brief Pins all three stage seeds to their effective values.
  void MakeExplicit();
};

/// \brief Which artifacts a run keeps/writes.
struct OutputSpec {
  bool initial_population = true;
  bool final_population = true;
  bool history = true;
  /// Carry the telemetry section (stage timings, per-generation timing
  /// series, counter totals) in the artifacts. Pure observation: the run
  /// itself is bit-identical either way.
  bool telemetry = true;
  /// When non-empty, the best protected file is written here as CSV.
  std::string best_csv_path;
  /// When non-empty, the (loaded or generated) original is written here.
  std::string original_csv_path;
};

/// \brief The façade's declarative job description.
struct JobSpec {
  std::string name = "job";
  SourceSpec source;
  /// Protected (quasi-identifier) attribute names; may stay empty for
  /// synthetic sources (the profile's protected set applies).
  std::vector<std::string> protected_attributes;
  /// Seed-method roster; empty = the paper's default mix for the source.
  std::vector<MethodGridSpec> methods;
  MeasureSpec measures;
  /// Incremental-evaluation rebuild tuning (measure-owned cost model).
  FitnessSpec fitness;
  /// GA configuration. `ga.seed` is ignored — `seeds` owns all seeding.
  core::GaConfig ga;
  /// Evolution strategy scheduling the GA step (default: the paper's
  /// generational loop).
  StrategySpec strategy;
  /// Fraction of the best initial protections removed before evolution.
  double remove_best_fraction = 0.0;
  SeedSpec seeds;
  OutputSpec outputs;

  /// \brief Parses and validates a spec; errors name the offending field.
  static Result<JobSpec> FromJson(const JsonValue& json);
  static Result<JobSpec> FromJsonText(const std::string& text);
  static Result<JobSpec> FromJsonFile(const std::string& path);

  JsonValue ToJson() const;
  std::string ToJsonText() const { return ToJson().Dump(2) + "\n"; }

  /// \brief Structural validation (also run by FromJson after parsing).
  Status Validate() const;

  /// \brief The measure configuration as evaluator options.
  metrics::FitnessEvaluator::Options FitnessOptions() const;
};

/// \brief Expands a grid to the cross product of its values (first key
/// outermost); a grid-less entry yields one empty parameter map.
std::vector<ParamMap> ExpandGrid(const MethodGridSpec& spec);

}  // namespace api
}  // namespace evocat

#endif  // EVOCAT_API_JOBSPEC_H_
