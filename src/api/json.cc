#include "api/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/params.h"

namespace evocat {
namespace api {

JsonValue JsonValue::MakeBool(bool value) {
  JsonValue v = OfType(Type::kBool);
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::MakeNumber(double value) {
  JsonValue v = OfType(Type::kNumber);
  v.number_ = value;
  // Integral doubles within int64 range serialize without a fraction. The
  // upper bound is exclusive: the double 2^63 itself is out of int64 range
  // (the cast would be UB); the lower bound -2^63 is exactly representable.
  if (std::isfinite(value) && value == std::floor(value) &&
      value >= -9223372036854775808.0 && value < 9223372036854775808.0) {
    v.is_integer_ = true;
    v.int_ = static_cast<int64_t>(value);
  }
  return v;
}

JsonValue JsonValue::MakeInt(int64_t value) {
  JsonValue v = OfType(Type::kNumber);
  v.is_integer_ = true;
  v.int_ = value;
  v.number_ = static_cast<double>(value);
  return v;
}

JsonValue JsonValue::MakeString(std::string value) {
  JsonValue v = OfType(Type::kString);
  v.string_ = std::move(value);
  return v;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  for (auto& [name, existing] : members_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

namespace {

/// Recursive-descent parser tracking 1-based line/column for error messages.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    EVOCAT_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing content");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& detail) const {
    return Status::Invalid("JSON parse error at line ", line_, ", column ",
                           column_, ": ", detail);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  char Advance() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        Advance();
      } else {
        break;
      }
    }
  }

  Status Expect(char expected) {
    if (AtEnd() || Peek() != expected) {
      return Error(std::string("expected '") + expected + "'");
    }
    Advance();
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (AtEnd()) return Error("unexpected end of input");
    char c = Peek();
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        return ParseString(out);
      case 't':
      case 'f':
        return ParseBool(out);
      case 'n':
        return ParseNull(out);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Status ParseLiteral(const char* literal) {
    for (const char* p = literal; *p; ++p) {
      if (AtEnd() || Peek() != *p) {
        return Error(std::string("invalid literal (expected '") + literal +
                     "')");
      }
      Advance();
    }
    return Status::OK();
  }

  Status ParseNull(JsonValue* out) {
    EVOCAT_RETURN_NOT_OK(ParseLiteral("null"));
    *out = JsonValue::MakeNull();
    return Status::OK();
  }

  Status ParseBool(JsonValue* out) {
    if (Peek() == 't') {
      EVOCAT_RETURN_NOT_OK(ParseLiteral("true"));
      *out = JsonValue::MakeBool(true);
    } else {
      EVOCAT_RETURN_NOT_OK(ParseLiteral("false"));
      *out = JsonValue::MakeBool(false);
    }
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    bool is_integer = true;
    if (!AtEnd() && Peek() == '-') Advance();
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
    if (!AtEnd() && Peek() == '.') {
      is_integer = false;
      Advance();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      is_integer = false;
      Advance();
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) Advance();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
    }
    std::string token = text_.substr(start, pos_ - start);
    if (is_integer) {
      int64_t value = 0;
      if (ParseInt64(token, &value).ok()) {
        *out = JsonValue::MakeInt(value);
        return Status::OK();
      }
      // Falls through for magnitudes beyond int64 (kept as a double).
    }
    double value = 0.0;
    Status status = ParseDouble(token, &value);
    if (!status.ok()) return Error("malformed number '" + token + "'");
    *out = JsonValue::MakeNumber(value);
    return Status::OK();
  }

  Status ParseHex4(unsigned* out) {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (AtEnd()) return Error("truncated \\u escape");
      char h = Advance();
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        return Error("invalid \\u escape digit");
      }
    }
    *out = code;
    return Status::OK();
  }

  Status ParseString(JsonValue* out) {
    std::string value;
    EVOCAT_RETURN_NOT_OK(ParseRawString(&value));
    *out = JsonValue::MakeString(std::move(value));
    return Status::OK();
  }

  Status ParseRawString(std::string* out) {
    EVOCAT_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      char c = Advance();
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (AtEnd()) return Error("unterminated escape sequence");
      char escape = Advance();
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          EVOCAT_RETURN_NOT_OK(ParseHex4(&code));
          // UTF-16 surrogate pair: a high half must be followed by an
          // escaped low half; emitting halves separately would produce
          // invalid UTF-8 (CESU-8) that standard JSON tooling rejects.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (AtEnd() || Advance() != '\\' || AtEnd() || Advance() != 'u') {
              return Error("high surrogate not followed by \\u escape");
            }
            unsigned low = 0;
            EVOCAT_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate in \\u pair");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate \\u escape");
          }
          // UTF-8 encode the code point.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else if (code < 0x10000) {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xF0 | (code >> 18)));
            out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error(std::string("invalid escape '\\") + escape + "'");
      }
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    EVOCAT_RETURN_NOT_OK(Expect('['));
    *out = JsonValue::MakeArray();
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      Advance();
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      JsonValue item;
      EVOCAT_RETURN_NOT_OK(ParseValue(&item, depth + 1));
      out->Append(std::move(item));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated array");
      char c = Advance();
      if (c == ']') return Status::OK();
      if (c != ',') return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    EVOCAT_RETURN_NOT_OK(Expect('{'));
    *out = JsonValue::MakeObject();
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      Advance();
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      EVOCAT_RETURN_NOT_OK(ParseRawString(&key));
      if (out->Find(key) != nullptr) {
        return Error("duplicate object key '" + key + "'");
      }
      SkipWhitespace();
      EVOCAT_RETURN_NOT_OK(Expect(':'));
      SkipWhitespace();
      JsonValue value;
      EVOCAT_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated object");
      char c = Advance();
      if (c == '}') return Status::OK();
      if (c != ',') return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  int64_t line_ = 1;
  int64_t column_ = 1;
};

void AppendEscaped(const std::string& text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).Parse();
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent > 0;
  auto newline = [&](int level) {
    if (!pretty) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent * level), ' ');
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      if (is_integer_) {
        *out += std::to_string(int_);
      } else if (std::isfinite(number_)) {
        *out += FormatDouble(number_);
      } else {
        *out += "null";  // JSON has no NaN/Inf
      }
      break;
    case Type::kString:
      AppendEscaped(string_, out);
      break;
    case Type::kArray: {
      if (items_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i) out->push_back(',');
        newline(depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i) out->push_back(',');
        newline(depth + 1);
        AppendEscaped(members_[i].first, out);
        *out += pretty ? ": " : ":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

}  // namespace api
}  // namespace evocat
