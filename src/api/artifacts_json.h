/// \file artifacts_json.h
/// \brief JSON serialization of `RunArtifacts` (see docs/api.md).
///
/// The server's result endpoint and any artifact archival go through this
/// one serializer: the resolved spec (stage seeds pinned, so the document
/// reproduces the run), score stats, engine statistics, the population
/// summaries/history the spec's output toggles kept, and — optionally —
/// the best protected file inlined as CSV text.

#ifndef EVOCAT_API_ARTIFACTS_JSON_H_
#define EVOCAT_API_ARTIFACTS_JSON_H_

#include "api/json.h"
#include "api/session.h"

namespace evocat {
namespace api {

struct ArtifactsJsonOptions {
  /// Inline the best protected file as CSV text under "best_csv". The only
  /// field whose size scales with the dataset; turn off when the caller
  /// wants scores only (the server maps `?best_csv=0` here).
  bool include_best_csv = true;
};

/// \brief Serializes artifacts to a JSON document.
JsonValue ArtifactsToJson(const RunArtifacts& artifacts,
                          const ArtifactsJsonOptions& options = {});

}  // namespace api
}  // namespace evocat

#endif  // EVOCAT_API_ARTIFACTS_JSON_H_
