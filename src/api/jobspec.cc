#include "api/jobspec.h"

#include <fstream>
#include <set>
#include <sstream>

#include "common/rng.h"
#include "common/string_utils.h"
#include "evolve/registry.h"
#include "metrics/registry.h"
#include "protection/registry.h"

namespace evocat {
namespace api {

namespace {

/// Validating reader over one JSON object. Typed getters leave the output
/// untouched for absent keys, record the first type error with the full field
/// path ("ga.mutation_rate"), and `Finish()` rejects unconsumed (unknown)
/// keys by name.
class Fields {
 public:
  Fields(std::string path, const JsonValue& value, Status* status)
      : path_(std::move(path)), value_(&value), status_(status) {
    if (!value.is_object()) {
      Fail("", "expected a JSON object");
      value_ = nullptr;
    }
  }

  bool ok() const { return value_ != nullptr; }

  std::string FieldPath(const std::string& key) const {
    if (key.empty()) return path_.empty() ? "spec" : path_;
    return path_.empty() ? key : path_ + "." + key;
  }

  /// \brief Raw member access (marks the key consumed); nullptr if absent.
  const JsonValue* Get(const std::string& key) {
    consumed_.insert(key);
    return value_ ? value_->Find(key) : nullptr;
  }

  void String(const std::string& key, std::string* out) {
    const JsonValue* v = Get(key);
    if (!v) return;
    if (!v->is_string()) return Fail(key, "expected a string");
    *out = v->string_value();
  }

  void Bool(const std::string& key, bool* out) {
    const JsonValue* v = Get(key);
    if (!v) return;
    if (!v->is_bool()) return Fail(key, "expected true or false");
    *out = v->bool_value();
  }

  void Double(const std::string& key, double* out) {
    const JsonValue* v = Get(key);
    if (!v) return;
    if (!v->is_number()) return Fail(key, "expected a number");
    *out = v->number_value();
  }

  void Int(const std::string& key, int* out) {
    const JsonValue* v = Get(key);
    if (!v) return;
    if (!v->is_integer()) return Fail(key, "expected an integer");
    if (v->int_value() < INT32_MIN || v->int_value() > INT32_MAX) {
      return Fail(key, "integer out of range");
    }
    *out = static_cast<int>(v->int_value());
  }

  void Int64(const std::string& key, int64_t* out) {
    const JsonValue* v = Get(key);
    if (!v) return;
    if (!v->is_integer()) return Fail(key, "expected an integer");
    *out = v->int_value();
  }

  /// Seeds are full 64-bit: accepted as a JSON integer or a decimal string
  /// (the serializer emits a string above int64 range).
  void Uint64(const std::string& key, uint64_t* out) {
    const JsonValue* v = Get(key);
    if (!v) return;
    uint64_t value = 0;
    if (!DecodeUint64(*v, &value)) {
      return Fail(key, "expected a non-negative integer");
    }
    *out = value;
  }

  void OptUint64(const std::string& key, std::optional<uint64_t>* out) {
    const JsonValue* v = Get(key);
    if (!v || v->is_null()) return;
    uint64_t value = 0;
    if (!DecodeUint64(*v, &value)) {
      return Fail(key, "expected a non-negative integer");
    }
    *out = value;
  }

  static bool DecodeUint64(const JsonValue& v, uint64_t* out) {
    if (v.is_integer() && v.int_value() >= 0) {
      *out = static_cast<uint64_t>(v.int_value());
      return true;
    }
    if (v.is_string() && !v.string_value().empty()) {
      const std::string& text = v.string_value();
      uint64_t value = 0;
      for (char c : text) {
        if (c < '0' || c > '9') return false;
        uint64_t digit = static_cast<uint64_t>(c - '0');
        if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
        value = value * 10 + digit;
      }
      *out = value;
      return true;
    }
    return false;
  }

  void StringList(const std::string& key, std::vector<std::string>* out) {
    const JsonValue* v = Get(key);
    if (!v) return;
    if (!v->is_array()) return Fail(key, "expected an array of strings");
    out->clear();
    for (size_t i = 0; i < v->size(); ++i) {
      if (!v->at(i).is_string()) {
        return Fail(key + "[" + std::to_string(i) + "]", "expected a string");
      }
      out->push_back(v->at(i).string_value());
    }
  }

  void Fail(const std::string& key, const std::string& detail) {
    if (status_->ok()) {
      *status_ = Status::Invalid(FieldPath(key), ": ", detail);
    }
  }

  /// \brief Rejects any key that no getter consumed.
  void Finish() {
    if (!value_) return;
    for (const auto& [key, member] : value_->members()) {
      (void)member;
      if (!consumed_.count(key)) {
        if (status_->ok()) {
          *status_ = Status::Invalid("unknown field '", FieldPath(key), "'");
        }
        return;
      }
    }
  }

 private:
  std::string path_;
  const JsonValue* value_;
  Status* status_;
  std::set<std::string> consumed_;
};

/// Scalar grid value -> canonical parameter string.
Status ScalarToString(const JsonValue& value, std::string* out) {
  switch (value.type()) {
    case JsonValue::Type::kString:
      *out = value.string_value();
      return Status::OK();
    case JsonValue::Type::kNumber:
      *out = value.is_integer() ? std::to_string(value.int_value())
                                : FormatDouble(value.number_value());
      return Status::OK();
    case JsonValue::Type::kBool:
      *out = value.bool_value() ? "true" : "false";
      return Status::OK();
    default:
      return Status::Invalid("expected a string, number or boolean");
  }
}

void ParseSource(const std::string& path, const JsonValue& json,
                 SourceSpec* source, Status* status) {
  Fields f(path, json, status);
  std::string kind;
  f.String("kind", &kind);
  if (!kind.empty()) {
    if (kind == "csv") {
      source->kind = SourceSpec::Kind::kCsv;
    } else if (kind == "synthetic") {
      source->kind = SourceSpec::Kind::kSynthetic;
    } else {
      f.Fail("kind", "unknown source kind '" + kind +
                         "'; expected csv|synthetic");
    }
  }
  f.String("path", &source->path);
  f.Bool("has_header", &source->has_header);
  f.String("separator", &source->separator);
  f.StringList("ordinal_attributes", &source->ordinal_attributes);
  bool case_present = f.Get("case") != nullptr;
  f.String("case", &source->case_name);
  bool profile_present = false;
  if (const JsonValue* profile = f.Get("profile")) {
    profile_present = true;
    source->has_inline_profile = true;
    Fields p(f.FieldPath("profile"), *profile, status);
    p.String("name", &source->profile.name);
    p.Int64("num_records", &source->profile.num_records);
    if (const JsonValue* attributes = p.Get("attributes")) {
      if (!attributes->is_array()) {
        p.Fail("attributes", "expected an array of attribute objects");
      } else {
        source->profile.attributes.clear();
        for (size_t i = 0; i < attributes->size(); ++i) {
          std::string attr_path =
              p.FieldPath("attributes") + "[" + std::to_string(i) + "]";
          Fields a(attr_path, attributes->at(i), status);
          datagen::SyntheticAttribute attribute;
          a.String("name", &attribute.name);
          std::string attr_kind;
          a.String("kind", &attr_kind);
          if (attr_kind == "ordinal") {
            attribute.kind = AttrKind::kOrdinal;
          } else if (!attr_kind.empty() && attr_kind != "nominal") {
            a.Fail("kind", "unknown attribute kind '" + attr_kind +
                               "'; expected nominal|ordinal");
          }
          a.Int("cardinality", &attribute.cardinality);
          a.Double("zipf_s", &attribute.zipf_s);
          a.Double("latent_weight", &attribute.latent_weight);
          a.Finish();
          source->profile.attributes.push_back(std::move(attribute));
        }
      }
    }
    p.StringList("protected_attributes",
                 &source->profile.protected_attributes);
    p.Finish();
  }
  // Mirror of the csv-only-field guard in Validate: synthetic-only fields on
  // a csv source would otherwise be silently discarded.
  if (source->kind == SourceSpec::Kind::kCsv) {
    if (case_present) f.Fail("case", "only valid for synthetic sources");
    if (profile_present) f.Fail("profile", "only valid for synthetic sources");
  }
  f.Finish();
}

void ParseMethods(const JsonValue& json, std::vector<MethodGridSpec>* methods,
                  Status* status) {
  if (!json.is_array()) {
    if (status->ok()) {
      *status = Status::Invalid("methods: expected an array of method specs");
    }
    return;
  }
  methods->clear();
  for (size_t i = 0; i < json.size(); ++i) {
    std::string path = "methods[" + std::to_string(i) + "]";
    Fields f(path, json.at(i), status);
    MethodGridSpec method;
    f.String("name", &method.name);
    if (const JsonValue* grid = f.Get("grid")) {
      if (!grid->is_object()) {
        f.Fail("grid", "expected an object of parameter value lists");
      } else {
        for (const auto& [key, values] : grid->members()) {
          std::vector<std::string> expanded;
          if (values.is_array()) {
            for (size_t v = 0; v < values.size(); ++v) {
              std::string text;
              Status scalar = ScalarToString(values.at(v), &text);
              if (!scalar.ok()) {
                f.Fail("grid." + key + "[" + std::to_string(v) + "]",
                       scalar.message());
                break;
              }
              expanded.push_back(std::move(text));
            }
            if (values.size() == 0) {
              f.Fail("grid." + key, "value list must not be empty");
            }
          } else {
            std::string text;
            Status scalar = ScalarToString(values, &text);
            if (!scalar.ok()) {
              f.Fail("grid." + key, scalar.message());
            } else {
              expanded.push_back(std::move(text));
            }
          }
          method.grid.emplace_back(key, std::move(expanded));
        }
      }
    }
    f.Finish();
    methods->push_back(std::move(method));
  }
}

void ParseMeasures(const JsonValue& json, MeasureSpec* measures,
                   FitnessSpec* fitness, Status* status) {
  Fields f("measures", json, status);
  std::string aggregation;
  f.String("aggregation", &aggregation);
  if (!aggregation.empty()) {
    auto parsed = metrics::ScoreAggregationFromString(aggregation);
    if (!parsed.ok()) {
      f.Fail("aggregation", parsed.status().message());
    } else {
      measures->aggregation = parsed.ValueOrDie();
    }
  }
  f.Double("il_weight", &measures->il_weight);
  f.StringList("enabled", &measures->enabled);
  f.Int("ctbil_max_dimension", &measures->ctbil_max_dimension);
  f.Double("id_window_percent", &measures->id_window_percent);
  f.Double("rsrl_assumed_p_percent", &measures->rsrl_assumed_p_percent);
  f.Int("prl_em_iterations", &measures->prl_em_iterations);
  // Legacy alias of fitness.delta_rebuild_fraction (the knob moved into the
  // `fitness` cost-model block when it became measure-owned); accepted on
  // input, serialized only in its new home.
  f.Double("delta_rebuild_fraction", &fitness->delta_rebuild_fraction);
  f.Finish();
}

void ParseFitness(const JsonValue& json, FitnessSpec* fitness,
                  Status* status) {
  Fields f("fitness", json, status);
  f.Double("delta_rebuild_fraction", &fitness->delta_rebuild_fraction);
  f.Bool("probe_rebuild_fractions", &fitness->probe_rebuild_fractions);
  if (const JsonValue* fractions = f.Get("rebuild_fractions")) {
    if (!fractions->is_object()) {
      f.Fail("rebuild_fractions",
             "expected an object of measure-name -> fraction");
    } else {
      fitness->rebuild_fractions.clear();
      for (const auto& [key, value] : fractions->members()) {
        if (!value.is_number()) {
          f.Fail("rebuild_fractions." + key, "expected a number");
          break;
        }
        fitness->rebuild_fractions.emplace_back(key, value.number_value());
      }
    }
  }
  f.Finish();
}

void ParseGa(const JsonValue& json, core::GaConfig* ga, Status* status) {
  Fields f("ga", json, status);
  f.Int("generations", &ga->generations);
  f.Double("mutation_rate", &ga->mutation_rate);
  f.Int("leader_group_size", &ga->leader_group_size);
  std::string selection;
  f.String("selection", &selection);
  if (!selection.empty()) {
    auto parsed = core::SelectionStrategyFromString(selection);
    if (!parsed.ok()) {
      f.Fail("selection", parsed.status().message());
    } else {
      ga->selection = parsed.ValueOrDie();
    }
  }
  f.Bool("mutation_excludes_current", &ga->mutation_excludes_current);
  f.Int("no_improvement_window", &ga->no_improvement_window);
  f.Bool("parallel_offspring_eval", &ga->parallel_offspring_eval);
  f.Bool("incremental_eval", &ga->incremental_eval);
  f.Finish();
}

void ParseStrategy(const JsonValue& json, StrategySpec* strategy,
                   Status* status) {
  Fields f("strategy", json, status);
  f.String("name", &strategy->name);
  if (const JsonValue* params = f.Get("params")) {
    if (!params->is_object()) {
      f.Fail("params", "expected an object of scalar parameters");
    } else {
      strategy->params.clear();
      for (const auto& [key, value] : params->members()) {
        std::string text;
        Status scalar = ScalarToString(value, &text);
        if (!scalar.ok()) {
          f.Fail("params." + key, scalar.message());
          break;
        }
        strategy->params[key] = std::move(text);
      }
    }
  }
  f.Finish();
}

void ParseSeeds(const JsonValue& json, SeedSpec* seeds, Status* status) {
  Fields f("seeds", json, status);
  f.Uint64("master", &seeds->master);
  f.OptUint64("data", &seeds->data);
  f.OptUint64("protection", &seeds->protection);
  f.OptUint64("ga", &seeds->ga);
  f.Finish();
}

void ParseOutputs(const JsonValue& json, OutputSpec* outputs, Status* status) {
  Fields f("outputs", json, status);
  f.Bool("initial_population", &outputs->initial_population);
  f.Bool("final_population", &outputs->final_population);
  f.Bool("history", &outputs->history);
  f.Bool("telemetry", &outputs->telemetry);
  f.String("best_csv_path", &outputs->best_csv_path);
  f.String("original_csv_path", &outputs->original_csv_path);
  f.Finish();
}

/// Grid value -> JSON scalar (numbers regain their numeric type).
JsonValue GridValueToJson(const std::string& text) {
  int64_t integer = 0;
  if (ParseInt64(text, &integer).ok()) return JsonValue::MakeInt(integer);
  double number = 0.0;
  if (ParseDouble(text, &number).ok()) return JsonValue::MakeNumber(number);
  return JsonValue::MakeString(text);
}

/// Seeds above int64 range serialize as decimal strings (JSON integers are
/// parsed as int64).
JsonValue Uint64ToJson(uint64_t value) {
  if (value <= static_cast<uint64_t>(INT64_MAX)) {
    return JsonValue::MakeInt(static_cast<int64_t>(value));
  }
  return JsonValue::MakeString(std::to_string(value));
}

JsonValue StringListToJson(const std::vector<std::string>& values) {
  JsonValue array = JsonValue::MakeArray();
  for (const auto& value : values) array.Append(JsonValue::MakeString(value));
  return array;
}

}  // namespace

void SeedSpec::MakeExplicit() {
  uint64_t data_seed = DataSeed();
  uint64_t protection_seed = ProtectionSeed();
  uint64_t ga_seed = GaSeed();
  data = data_seed;
  protection = protection_seed;
  ga = ga_seed;
}

namespace {
/// Stage seeds derived from the master in a fixed order, so explicitly
/// pinning one stage never changes the others.
enum SeedStage { kDataStage = 0, kProtectionStage = 1, kGaStage = 2 };

uint64_t DerivedSeed(uint64_t master, SeedStage stage) {
  Rng rng(master);
  uint64_t seed = 0;
  for (int i = 0; i <= stage; ++i) seed = rng.NextU64();
  return seed;
}
}  // namespace

uint64_t SeedSpec::DataSeed() const {
  return data ? *data : DerivedSeed(master, kDataStage);
}
uint64_t SeedSpec::ProtectionSeed() const {
  return protection ? *protection : DerivedSeed(master, kProtectionStage);
}
uint64_t SeedSpec::GaSeed() const {
  return ga ? *ga : DerivedSeed(master, kGaStage);
}

Result<JobSpec> JobSpec::FromJson(const JsonValue& json) {
  Status status;
  JobSpec spec;
  Fields f("", json, &status);
  f.String("name", &spec.name);
  if (const JsonValue* source = f.Get("source")) {
    ParseSource("source", *source, &spec.source, &status);
  }
  f.StringList("protected_attributes", &spec.protected_attributes);
  if (const JsonValue* methods = f.Get("methods")) {
    ParseMethods(*methods, &spec.methods, &status);
  }
  if (const JsonValue* measures = f.Get("measures")) {
    ParseMeasures(*measures, &spec.measures, &spec.fitness, &status);
  }
  if (const JsonValue* fitness = f.Get("fitness")) {
    ParseFitness(*fitness, &spec.fitness, &status);
  }
  if (const JsonValue* ga = f.Get("ga")) {
    ParseGa(*ga, &spec.ga, &status);
  }
  if (const JsonValue* strategy = f.Get("strategy")) {
    ParseStrategy(*strategy, &spec.strategy, &status);
  }
  f.Double("remove_best_fraction", &spec.remove_best_fraction);
  if (const JsonValue* seeds = f.Get("seeds")) {
    ParseSeeds(*seeds, &spec.seeds, &status);
  }
  if (const JsonValue* outputs = f.Get("outputs")) {
    ParseOutputs(*outputs, &spec.outputs, &status);
  }
  f.Finish();
  EVOCAT_RETURN_NOT_OK(status);
  EVOCAT_RETURN_NOT_OK(spec.Validate());
  return spec;
}

Result<JobSpec> JobSpec::FromJsonText(const std::string& text) {
  EVOCAT_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(text));
  return FromJson(json);
}

Result<JobSpec> JobSpec::FromJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open job spec '", path, "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto spec = FromJsonText(buffer.str());
  if (!spec.ok()) {
    return Status(spec.status().code(),
                  path + ": " + spec.status().message());
  }
  return spec;
}

Status JobSpec::Validate() const {
  if (source.kind == SourceSpec::Kind::kCsv) {
    if (source.path.empty()) {
      return Status::Invalid("source.path: required for csv sources");
    }
    if (source.separator.size() != 1) {
      return Status::Invalid("source.separator: expected a single character, "
                             "got '", source.separator, "'");
    }
    if (protected_attributes.empty()) {
      return Status::Invalid(
          "protected_attributes: required for csv sources");
    }
    if (source.has_inline_profile) {
      return Status::Invalid(
          "source.profile: only valid for synthetic sources");
    }
  } else if (source.has_inline_profile) {
    if (source.profile.num_records <= 0) {
      return Status::Invalid("source.profile.num_records: must be positive");
    }
    if (source.profile.attributes.empty()) {
      return Status::Invalid("source.profile.attributes: must not be empty");
    }
    for (size_t i = 0; i < source.profile.attributes.size(); ++i) {
      if (source.profile.attributes[i].cardinality < 2) {
        return Status::Invalid("source.profile.attributes[", i,
                               "].cardinality: must be at least 2");
      }
    }
    if (protected_attributes.empty() &&
        source.profile.protected_attributes.empty()) {
      return Status::Invalid(
          "protected_attributes: required (profile declares none)");
    }
  } else {
    auto profile = datagen::ProfileByName(source.case_name);
    if (!profile.ok()) {
      return Status::Invalid("source.case: ", profile.status().message());
    }
  }
  if (source.kind == SourceSpec::Kind::kSynthetic) {
    // A csv-only field on a synthetic source is almost always a forgotten
    // "kind": "csv" — running the synthetic default instead of the user's
    // file would be a silent wrong-dataset run.
    if (!source.path.empty()) {
      return Status::Invalid(
          "source.path: only valid for csv sources (missing "
          "\"kind\": \"csv\"?)");
    }
    if (!source.ordinal_attributes.empty()) {
      return Status::Invalid(
          "source.ordinal_attributes: only valid for csv sources");
    }
    if (!source.has_header) {
      return Status::Invalid("source.has_header: only valid for csv sources");
    }
    if (source.separator != ",") {
      return Status::Invalid("source.separator: only valid for csv sources");
    }
  }

  for (size_t i = 0; i < methods.size(); ++i) {
    const MethodGridSpec& method = methods[i];
    if (!protection::MethodRegistry::Global().Contains(method.name)) {
      return Status::Invalid(
          "methods[", i, "].name: unknown protection method '", method.name,
          "'; known: ",
          Join(protection::MethodRegistry::Global().Names(), ','));
    }
    for (const auto& [key, values] : method.grid) {
      if (values.empty()) {
        return Status::Invalid("methods[", i, "].grid.", key,
                               ": value list must not be empty");
      }
    }
    // Dry-run every combination (construction is cheap) so unknown parameter
    // keys and malformed values fail at spec validation instead of mid-run.
    // Range errors (e.g. microaggregation k < 2) are the methods' own
    // Protect-time checks and still surface at run time.
    for (const ParamMap& params : ExpandGrid(method)) {
      auto instance =
          protection::MethodRegistry::Global().Create(method.name, params);
      if (!instance.ok()) {
        return Status::Invalid("methods[", i, "]: ",
                               instance.status().message());
      }
    }
  }

  if (measures.il_weight < 0.0 || measures.il_weight > 1.0) {
    return Status::Invalid("measures.il_weight: must be in [0, 1], got ",
                           measures.il_weight);
  }
  for (size_t i = 0; i < measures.enabled.size(); ++i) {
    if (!metrics::MeasureRegistry::Global().Contains(measures.enabled[i])) {
      return Status::Invalid(
          "measures.enabled[", i, "]: unknown measure '", measures.enabled[i],
          "'; known: ", Join(metrics::MeasureRegistry::Global().Names(), ','));
    }
  }
  metrics::FitnessEvaluator::Options fitness_options = FitnessOptions();
  if (!fitness_options.use_ctbil && !fitness_options.use_dbil &&
      !fitness_options.use_ebil) {
    return Status::Invalid(
        "measures.enabled: at least one information-loss measure is required");
  }
  if (!fitness_options.use_id && !fitness_options.use_dbrl &&
      !fitness_options.use_prl && !fitness_options.use_rsrl) {
    return Status::Invalid(
        "measures.enabled: at least one disclosure-risk measure is required");
  }
  if (fitness.delta_rebuild_fraction < 0.0 ||
      fitness.delta_rebuild_fraction > 1.0) {
    return Status::Invalid(
        "fitness.delta_rebuild_fraction: must be in [0, 1] (0 keeps the "
        "per-measure defaults), got ",
        fitness.delta_rebuild_fraction);
  }
  for (const auto& [name, fraction] : fitness.rebuild_fractions) {
    if (!metrics::MeasureRegistry::Global().Contains(name)) {
      return Status::Invalid(
          "fitness.rebuild_fractions: unknown measure '", name, "'; known: ",
          Join(metrics::MeasureRegistry::Global().Names(), ','));
    }
    if (fraction <= 0.0 || fraction > 1.0) {
      return Status::Invalid("fitness.rebuild_fractions.", name,
                             ": must be in (0, 1], got ", fraction);
    }
  }

  if (strategy.name.empty()) {
    return Status::Invalid("strategy.name: must not be empty");
  }
  if (!evolve::StrategyRegistry::Global().Contains(strategy.name)) {
    return Status::Invalid(
        "strategy.name: unknown evolution strategy '", strategy.name,
        "'; known: ", Join(evolve::StrategyRegistry::Global().Names(), ','));
  }
  // Dry-run construction (cheap) so unknown parameter keys and out-of-range
  // values fail at spec validation instead of mid-run.
  {
    auto instance =
        evolve::StrategyRegistry::Global().Create(strategy.name,
                                                  strategy.params);
    if (!instance.ok()) {
      return Status::Invalid("strategy: ", instance.status().message());
    }
  }

  if (ga.generations < 0) {
    return Status::Invalid("ga.generations: must be non-negative, got ",
                           ga.generations);
  }
  if (ga.mutation_rate < 0.0 || ga.mutation_rate > 1.0) {
    return Status::Invalid("ga.mutation_rate: must be in [0, 1], got ",
                           ga.mutation_rate);
  }
  if (ga.leader_group_size < 1) {
    return Status::Invalid("ga.leader_group_size: must be at least 1, got ",
                           ga.leader_group_size);
  }
  if (remove_best_fraction < 0.0 || remove_best_fraction >= 1.0) {
    return Status::Invalid("remove_best_fraction: must be in [0, 1), got ",
                           remove_best_fraction);
  }
  return Status::OK();
}

metrics::FitnessEvaluator::Options JobSpec::FitnessOptions() const {
  metrics::FitnessEvaluator::Options options;
  options.aggregation = measures.aggregation;
  options.il_weight = measures.il_weight;
  options.ctbil_max_dimension = measures.ctbil_max_dimension;
  options.id_window_percent = measures.id_window_percent;
  options.rsrl_assumed_p_percent = measures.rsrl_assumed_p_percent;
  options.prl_em_iterations = measures.prl_em_iterations;
  options.delta_rebuild_fraction = fitness.delta_rebuild_fraction;
  options.measure_rebuild_fractions = fitness.rebuild_fractions;
  options.probe_rebuild_fractions = fitness.probe_rebuild_fractions;
  if (!measures.enabled.empty()) {
    options.use_ctbil = options.use_dbil = options.use_ebil = false;
    options.use_id = options.use_dbrl = options.use_prl = options.use_rsrl =
        false;
    for (const std::string& name : measures.enabled) {
      std::string key = ToLower(name);
      if (key == "ctbil") options.use_ctbil = true;
      if (key == "dbil") options.use_dbil = true;
      if (key == "ebil") options.use_ebil = true;
      if (key == "id") options.use_id = true;
      if (key == "dbrl") options.use_dbrl = true;
      if (key == "prl") options.use_prl = true;
      if (key == "rsrl") options.use_rsrl = true;
    }
  }
  return options;
}

JsonValue JobSpec::ToJson() const {
  JsonValue json = JsonValue::MakeObject();
  json.Set("name", JsonValue::MakeString(name));

  JsonValue source_json = JsonValue::MakeObject();
  if (source.kind == SourceSpec::Kind::kCsv) {
    source_json.Set("kind", JsonValue::MakeString("csv"));
    source_json.Set("path", JsonValue::MakeString(source.path));
    source_json.Set("has_header", JsonValue::MakeBool(source.has_header));
    source_json.Set("separator", JsonValue::MakeString(source.separator));
    if (!source.ordinal_attributes.empty()) {
      source_json.Set("ordinal_attributes",
                      StringListToJson(source.ordinal_attributes));
    }
  } else {
    source_json.Set("kind", JsonValue::MakeString("synthetic"));
    if (source.has_inline_profile) {
      JsonValue profile = JsonValue::MakeObject();
      profile.Set("name", JsonValue::MakeString(source.profile.name));
      profile.Set("num_records",
                  JsonValue::MakeInt(source.profile.num_records));
      JsonValue attributes = JsonValue::MakeArray();
      for (const auto& attribute : source.profile.attributes) {
        JsonValue a = JsonValue::MakeObject();
        a.Set("name", JsonValue::MakeString(attribute.name));
        a.Set("kind", JsonValue::MakeString(
                          attribute.kind == AttrKind::kOrdinal ? "ordinal"
                                                               : "nominal"));
        a.Set("cardinality", JsonValue::MakeInt(attribute.cardinality));
        a.Set("zipf_s", JsonValue::MakeNumber(attribute.zipf_s));
        a.Set("latent_weight", JsonValue::MakeNumber(attribute.latent_weight));
        attributes.Append(std::move(a));
      }
      profile.Set("attributes", std::move(attributes));
      if (!source.profile.protected_attributes.empty()) {
        profile.Set("protected_attributes",
                    StringListToJson(source.profile.protected_attributes));
      }
      source_json.Set("profile", std::move(profile));
    } else {
      source_json.Set("case", JsonValue::MakeString(source.case_name));
    }
  }
  json.Set("source", std::move(source_json));

  if (!protected_attributes.empty()) {
    json.Set("protected_attributes", StringListToJson(protected_attributes));
  }

  if (!methods.empty()) {
    JsonValue methods_json = JsonValue::MakeArray();
    for (const MethodGridSpec& method : methods) {
      JsonValue entry = JsonValue::MakeObject();
      entry.Set("name", JsonValue::MakeString(method.name));
      if (!method.grid.empty()) {
        JsonValue grid = JsonValue::MakeObject();
        for (const auto& [key, values] : method.grid) {
          JsonValue list = JsonValue::MakeArray();
          for (const std::string& value : values) {
            list.Append(GridValueToJson(value));
          }
          grid.Set(key, std::move(list));
        }
        entry.Set("grid", std::move(grid));
      }
      methods_json.Append(std::move(entry));
    }
    json.Set("methods", std::move(methods_json));
  }

  JsonValue measures_json = JsonValue::MakeObject();
  measures_json.Set("aggregation",
                    JsonValue::MakeString(metrics::ScoreAggregationToString(
                        measures.aggregation)));
  measures_json.Set("il_weight", JsonValue::MakeNumber(measures.il_weight));
  if (!measures.enabled.empty()) {
    measures_json.Set("enabled", StringListToJson(measures.enabled));
  }
  measures_json.Set("ctbil_max_dimension",
                    JsonValue::MakeInt(measures.ctbil_max_dimension));
  measures_json.Set("id_window_percent",
                    JsonValue::MakeNumber(measures.id_window_percent));
  measures_json.Set("rsrl_assumed_p_percent",
                    JsonValue::MakeNumber(measures.rsrl_assumed_p_percent));
  measures_json.Set("prl_em_iterations",
                    JsonValue::MakeInt(measures.prl_em_iterations));
  json.Set("measures", std::move(measures_json));

  JsonValue fitness_json = JsonValue::MakeObject();
  fitness_json.Set("delta_rebuild_fraction",
                   JsonValue::MakeNumber(fitness.delta_rebuild_fraction));
  if (!fitness.rebuild_fractions.empty()) {
    JsonValue fractions = JsonValue::MakeObject();
    for (const auto& [name, fraction] : fitness.rebuild_fractions) {
      fractions.Set(name, JsonValue::MakeNumber(fraction));
    }
    fitness_json.Set("rebuild_fractions", std::move(fractions));
  }
  // Serialized only when set so paper-default dumps stay byte-stable.
  if (fitness.probe_rebuild_fractions) {
    fitness_json.Set("probe_rebuild_fractions", JsonValue::MakeBool(true));
  }
  json.Set("fitness", std::move(fitness_json));

  JsonValue ga_json = JsonValue::MakeObject();
  ga_json.Set("generations", JsonValue::MakeInt(ga.generations));
  ga_json.Set("mutation_rate", JsonValue::MakeNumber(ga.mutation_rate));
  ga_json.Set("leader_group_size", JsonValue::MakeInt(ga.leader_group_size));
  ga_json.Set("selection", JsonValue::MakeString(
                               core::SelectionStrategyToString(ga.selection)));
  ga_json.Set("mutation_excludes_current",
              JsonValue::MakeBool(ga.mutation_excludes_current));
  ga_json.Set("no_improvement_window",
              JsonValue::MakeInt(ga.no_improvement_window));
  ga_json.Set("parallel_offspring_eval",
              JsonValue::MakeBool(ga.parallel_offspring_eval));
  ga_json.Set("incremental_eval", JsonValue::MakeBool(ga.incremental_eval));
  json.Set("ga", std::move(ga_json));

  JsonValue strategy_json = JsonValue::MakeObject();
  strategy_json.Set("name", JsonValue::MakeString(strategy.name));
  if (!strategy.params.empty()) {
    JsonValue params = JsonValue::MakeObject();
    for (const auto& [key, value] : strategy.params) {
      params.Set(key, GridValueToJson(value));
    }
    strategy_json.Set("params", std::move(params));
  }
  json.Set("strategy", std::move(strategy_json));

  json.Set("remove_best_fraction",
           JsonValue::MakeNumber(remove_best_fraction));

  JsonValue seeds_json = JsonValue::MakeObject();
  seeds_json.Set("master", Uint64ToJson(seeds.master));
  if (seeds.data) seeds_json.Set("data", Uint64ToJson(*seeds.data));
  if (seeds.protection) {
    seeds_json.Set("protection", Uint64ToJson(*seeds.protection));
  }
  if (seeds.ga) seeds_json.Set("ga", Uint64ToJson(*seeds.ga));
  json.Set("seeds", std::move(seeds_json));

  JsonValue outputs_json = JsonValue::MakeObject();
  outputs_json.Set("initial_population",
                   JsonValue::MakeBool(outputs.initial_population));
  outputs_json.Set("final_population",
                   JsonValue::MakeBool(outputs.final_population));
  outputs_json.Set("history", JsonValue::MakeBool(outputs.history));
  outputs_json.Set("telemetry", JsonValue::MakeBool(outputs.telemetry));
  if (!outputs.best_csv_path.empty()) {
    outputs_json.Set("best_csv_path",
                     JsonValue::MakeString(outputs.best_csv_path));
  }
  if (!outputs.original_csv_path.empty()) {
    outputs_json.Set("original_csv_path",
                     JsonValue::MakeString(outputs.original_csv_path));
  }
  json.Set("outputs", std::move(outputs_json));
  return json;
}

std::vector<ParamMap> ExpandGrid(const MethodGridSpec& spec) {
  std::vector<ParamMap> combinations{ParamMap{}};
  for (const auto& [key, values] : spec.grid) {
    std::vector<ParamMap> expanded;
    expanded.reserve(combinations.size() * values.size());
    for (const ParamMap& base : combinations) {
      for (const std::string& value : values) {
        ParamMap params = base;
        params[key] = value;
        expanded.push_back(std::move(params));
      }
    }
    combinations = std::move(expanded);
  }
  return combinations;
}

}  // namespace api
}  // namespace evocat
