#include "api/artifacts_json.h"

#include <sstream>

#include "data/csv.h"

namespace evocat {
namespace api {

namespace {

JsonValue ScoreStatsToJson(const ScoreStats& stats) {
  JsonValue json = JsonValue::MakeObject();
  json.Set("min", JsonValue::MakeNumber(stats.min));
  json.Set("mean", JsonValue::MakeNumber(stats.mean));
  json.Set("max", JsonValue::MakeNumber(stats.max));
  return json;
}

JsonValue BreakdownToJson(const metrics::FitnessBreakdown& fitness) {
  JsonValue json = JsonValue::MakeObject();
  json.Set("ctbil", JsonValue::MakeNumber(fitness.ctbil));
  json.Set("dbil", JsonValue::MakeNumber(fitness.dbil));
  json.Set("ebil", JsonValue::MakeNumber(fitness.ebil));
  json.Set("id", JsonValue::MakeNumber(fitness.id));
  json.Set("dbrl", JsonValue::MakeNumber(fitness.dbrl));
  json.Set("prl", JsonValue::MakeNumber(fitness.prl));
  json.Set("rsrl", JsonValue::MakeNumber(fitness.rsrl));
  json.Set("il", JsonValue::MakeNumber(fitness.il));
  json.Set("dr", JsonValue::MakeNumber(fitness.dr));
  json.Set("score", JsonValue::MakeNumber(fitness.score));
  return json;
}

JsonValue MemberToJson(const MemberSummary& member) {
  JsonValue json = JsonValue::MakeObject();
  json.Set("origin", JsonValue::MakeString(member.origin));
  json.Set("fitness", BreakdownToJson(member.fitness));
  return json;
}

JsonValue MembersToJson(const std::vector<MemberSummary>& members) {
  JsonValue array = JsonValue::MakeArray();
  for (const MemberSummary& member : members) {
    array.Append(MemberToJson(member));
  }
  return array;
}

JsonValue HistoryToJson(const std::vector<core::GenerationRecord>& history) {
  JsonValue array = JsonValue::MakeArray();
  for (const core::GenerationRecord& record : history) {
    JsonValue json = JsonValue::MakeObject();
    json.Set("generation", JsonValue::MakeInt(record.generation));
    json.Set("island", JsonValue::MakeInt(record.island));
    json.Set("op",
             JsonValue::MakeString(core::OperatorKindToString(record.op)));
    json.Set("min_score", JsonValue::MakeNumber(record.min_score));
    json.Set("mean_score", JsonValue::MakeNumber(record.mean_score));
    json.Set("max_score", JsonValue::MakeNumber(record.max_score));
    json.Set("evaluations", JsonValue::MakeInt(record.evaluations));
    json.Set("accepted", JsonValue::MakeBool(record.accepted));
    json.Set("eval_seconds", JsonValue::MakeNumber(record.eval_seconds));
    json.Set("total_seconds", JsonValue::MakeNumber(record.total_seconds));
    array.Append(std::move(json));
  }
  return array;
}

JsonValue StatsToJson(const core::EvolutionStats& stats) {
  JsonValue json = JsonValue::MakeObject();
  json.Set("mutation_generations",
           JsonValue::MakeInt(stats.mutation_generations));
  json.Set("crossover_generations",
           JsonValue::MakeInt(stats.crossover_generations));
  json.Set("accepted_mutations", JsonValue::MakeInt(stats.accepted_mutations));
  json.Set("accepted_crossovers",
           JsonValue::MakeInt(stats.accepted_crossovers));
  json.Set("offspring_evaluated",
           JsonValue::MakeInt(stats.offspring_evaluated));
  json.Set("mutation_eval_seconds",
           JsonValue::MakeNumber(stats.mutation_eval_seconds));
  json.Set("crossover_eval_seconds",
           JsonValue::MakeNumber(stats.crossover_eval_seconds));
  json.Set("mutation_total_seconds",
           JsonValue::MakeNumber(stats.mutation_total_seconds));
  json.Set("crossover_total_seconds",
           JsonValue::MakeNumber(stats.crossover_total_seconds));
  json.Set("initial_eval_seconds",
           JsonValue::MakeNumber(stats.initial_eval_seconds));
  json.Set("total_seconds", JsonValue::MakeNumber(stats.total_seconds));
  return json;
}

JsonValue TelemetryToJson(const TelemetryArtifacts& telemetry) {
  JsonValue json = JsonValue::MakeObject();
  JsonValue stages = JsonValue::MakeObject();
  stages.Set("load_seconds", JsonValue::MakeNumber(telemetry.load_seconds));
  stages.Set("protect_seconds",
             JsonValue::MakeNumber(telemetry.protect_seconds));
  stages.Set("bind_seconds", JsonValue::MakeNumber(telemetry.bind_seconds));
  stages.Set("evolve_seconds",
             JsonValue::MakeNumber(telemetry.evolve_seconds));
  stages.Set("total_seconds", JsonValue::MakeNumber(telemetry.total_seconds));
  json.Set("stages", std::move(stages));
  JsonValue generation_seconds = JsonValue::MakeArray();
  for (double seconds : telemetry.generation_seconds) {
    generation_seconds.Append(JsonValue::MakeNumber(seconds));
  }
  json.Set("generation_seconds", std::move(generation_seconds));
  JsonValue eval_seconds = JsonValue::MakeArray();
  for (double seconds : telemetry.generation_eval_seconds) {
    eval_seconds.Append(JsonValue::MakeNumber(seconds));
  }
  json.Set("generation_eval_seconds", std::move(eval_seconds));
  JsonValue counters = JsonValue::MakeObject();
  for (const auto& counter : telemetry.counters) {
    counters.Set(counter.first, JsonValue::MakeInt(counter.second));
  }
  json.Set("counters", std::move(counters));
  return json;
}

}  // namespace

JsonValue ArtifactsToJson(const RunArtifacts& artifacts,
                          const ArtifactsJsonOptions& options) {
  JsonValue json = JsonValue::MakeObject();
  json.Set("job_name", JsonValue::MakeString(artifacts.job_name));
  json.Set("dataset", JsonValue::MakeString(artifacts.dataset));
  json.Set("spec", artifacts.spec.ToJson());

  JsonValue attrs = JsonValue::MakeArray();
  for (int attr : artifacts.protected_attrs) {
    attrs.Append(JsonValue::MakeInt(attr));
  }
  json.Set("protected_attrs", std::move(attrs));
  json.Set("num_rows", JsonValue::MakeInt(artifacts.num_rows));
  json.Set("population_size", JsonValue::MakeInt(artifacts.population_size));

  json.Set("initial_scores", ScoreStatsToJson(artifacts.initial_scores));
  json.Set("final_scores", ScoreStatsToJson(artifacts.final_scores));
  json.Set("stats", StatsToJson(artifacts.stats));
  json.Set("best", MemberToJson(artifacts.best));
  json.Set("evaluations", JsonValue::MakeInt(artifacts.evaluations));

  // Empty vectors mean the spec's output toggles pruned them; mirror that by
  // omitting the keys rather than emitting noise arrays.
  if (!artifacts.initial.empty()) {
    json.Set("initial_population", MembersToJson(artifacts.initial));
  }
  if (!artifacts.final_population.empty()) {
    json.Set("final_population", MembersToJson(artifacts.final_population));
  }
  if (!artifacts.history.empty()) {
    json.Set("history", HistoryToJson(artifacts.history));
  }
  // Present iff `outputs.telemetry` was on — the off-vs-on oracle compares
  // artifacts minus this section.
  if (artifacts.telemetry.enabled) {
    json.Set("telemetry", TelemetryToJson(artifacts.telemetry));
  }

  if (options.include_best_csv) {
    std::ostringstream csv;
    // Streaming an in-memory dataset cannot fail; ignore the Status to keep
    // the serializer total.
    (void)WriteCsvStream(artifacts.best_data, csv);
    json.Set("best_csv", JsonValue::MakeString(csv.str()));
  }
  return json;
}

}  // namespace api
}  // namespace evocat
