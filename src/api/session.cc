#include "api/session.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/math_utils.h"
#include "common/parallel.h"
#include "common/params.h"
#include "common/string_utils.h"
#include "common/task_scheduler.h"
#include "common/timer.h"
#include "data/csv.h"
#include "datagen/generator.h"
#include "evolve/registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "protection/registry.h"

namespace evocat {
namespace api {

namespace {

/// Stage-latency histograms, one series per pipeline stage.
obs::Histogram* StageSecondsHistogram(const char* stage) {
  static obs::Histogram* load = obs::MetricsRegistry::Global().GetHistogram(
      "evocat_session_stage_seconds",
      "Wall time of one session pipeline stage.", {{"stage", "load"}});
  static obs::Histogram* protect = obs::MetricsRegistry::Global().GetHistogram(
      "evocat_session_stage_seconds",
      "Wall time of one session pipeline stage.", {{"stage", "protect"}});
  static obs::Histogram* bind = obs::MetricsRegistry::Global().GetHistogram(
      "evocat_session_stage_seconds",
      "Wall time of one session pipeline stage.", {{"stage", "bind"}});
  static obs::Histogram* evolve = obs::MetricsRegistry::Global().GetHistogram(
      "evocat_session_stage_seconds",
      "Wall time of one session pipeline stage.", {{"stage", "evolve"}});
  if (stage[0] == 'l') return load;
  if (stage[0] == 'p') return protect;
  if (stage[0] == 'b') return bind;
  return evolve;
}

obs::Counter* CacheHitsCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "evocat_csv_cache_hits_total",
      "Source loads served from the session CSV cache.");
  return counter;
}

obs::Counter* CacheMissesCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "evocat_csv_cache_misses_total",
      "Source loads that had to read and parse the CSV file.");
  return counter;
}

obs::Counter* CacheEvictionsCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "evocat_csv_cache_evictions_total",
      "Cached CSV originals evicted by the LRU bound.");
  return counter;
}

MemberSummary Summarize(const core::Individual& individual) {
  MemberSummary summary;
  summary.origin = individual.origin;
  summary.fitness = individual.fitness;
  return summary;
}

ScoreStats StatsOf(const std::vector<core::Individual>& members) {
  ScoreStats stats;
  std::vector<double> scores;
  scores.reserve(members.size());
  for (const auto& m : members) scores.push_back(m.fitness.score);
  stats.min = Min(scores);
  stats.mean = Mean(scores);
  stats.max = Max(scores);
  return stats;
}

void AppendGrid(std::vector<MethodGridSpec>* roster, const std::string& name,
                std::vector<std::pair<std::string, std::vector<std::string>>>
                    grid) {
  for (const auto& [key, values] : grid) {
    (void)key;
    if (values.empty()) return;  // empty dimension -> no instances
  }
  if (grid.empty()) return;
  MethodGridSpec method;
  method.name = name;
  method.grid = std::move(grid);
  roster->push_back(std::move(method));
}

std::vector<std::string> IntValues(const std::vector<int>& values) {
  std::vector<std::string> out;
  out.reserve(values.size());
  for (int v : values) out.push_back(std::to_string(v));
  return out;
}

std::vector<std::string> DoubleValues(const std::vector<double>& values) {
  std::vector<std::string> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(FormatDouble(v));
  return out;
}

/// Default population mix keyed by synthetic case name; anything else
/// (CSV files, custom profiles) gets the generic Adult mix.
protection::PopulationSpec DefaultSpecFor(const std::string& case_name) {
  if (case_name == "housing") return protection::HousingPopulationSpec();
  if (case_name == "german" || case_name == "flare") {
    return protection::GermanFlarePopulationSpec();
  }
  return protection::AdultPopulationSpec();
}

}  // namespace

std::vector<MethodGridSpec> RosterFromPopulationSpec(
    const protection::PopulationSpec& spec) {
  std::vector<MethodGridSpec> roster;
  std::vector<std::string> orderings;
  orderings.reserve(spec.microagg_orderings.size());
  for (protection::MicroOrdering ordering : spec.microagg_orderings) {
    orderings.push_back(protection::MicroOrderingToString(ordering));
  }
  // Grid order mirrors protection::InstantiateMethods: k outermost, then
  // ordering; method families in the same sequence.
  AppendGrid(&roster, "microaggregation",
             {{"k", IntValues(spec.microagg_ks)}, {"ordering", orderings}});
  AppendGrid(&roster, "bottomcoding",
             {{"fraction", DoubleValues(spec.bottom_fractions)}});
  AppendGrid(&roster, "topcoding",
             {{"fraction", DoubleValues(spec.top_fractions)}});
  AppendGrid(&roster, "globalrecoding",
             {{"group_size", IntValues(spec.recoding_group_sizes)}});
  AppendGrid(&roster, "rankswapping",
             {{"p_percent", DoubleValues(spec.rankswap_percents)}});
  AppendGrid(&roster, "pram", {{"retain", DoubleValues(spec.pram_retains)}});
  return roster;
}

Result<Session::SourceData> Session::LoadSource(const JobSpec& spec) {
  SourceData source;
  if (spec.source.kind == SourceSpec::Kind::kCsv) {
    CsvReadOptions csv_options;
    csv_options.has_header = spec.source.has_header;
    csv_options.separator = spec.source.separator[0];
    for (const auto& name : spec.source.ordinal_attributes) {
      csv_options.ordinal_attributes.insert(name);
    }
    std::string cache_key = spec.source.path + "\n" + spec.source.separator +
                            (spec.source.has_header ? "H" : "-") + "\n" +
                            Join(spec.source.ordinal_attributes, ',');
    bool cached =
        options_.cache_sources && LookupCachedSource(cache_key, &source.original);
    if (!cached) {
      EVOCAT_ASSIGN_OR_RETURN(source.original,
                              ReadCsvFile(spec.source.path, csv_options));
      if (options_.cache_sources) {
        InsertCachedSource(cache_key, source.original.Clone());
      }
    }
    source.label = spec.source.path;
    source.default_spec = protection::AdultPopulationSpec();
    EVOCAT_ASSIGN_OR_RETURN(
        source.attrs,
        source.original.schema().IndicesOf(spec.protected_attributes));
    return source;
  }

  datagen::SyntheticProfile profile;
  if (spec.source.has_inline_profile) {
    profile = spec.source.profile;
  } else {
    EVOCAT_ASSIGN_OR_RETURN(profile,
                            datagen::ProfileByName(spec.source.case_name));
  }
  EVOCAT_ASSIGN_OR_RETURN(source.original,
                          datagen::Generate(profile, spec.seeds.DataSeed()));
  source.label = profile.name;
  source.default_spec = DefaultSpecFor(spec.source.has_inline_profile
                                           ? std::string()
                                           : spec.source.case_name);
  const std::vector<std::string>& names = spec.protected_attributes.empty()
                                              ? profile.protected_attributes
                                              : spec.protected_attributes;
  EVOCAT_ASSIGN_OR_RETURN(source.attrs,
                          source.original.schema().IndicesOf(names));
  return source;
}

bool Session::LookupCachedSource(const std::string& key, Dataset* out) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_index_.find(key);
  if (it == cache_index_.end()) {
    ++cache_stats_.misses;
    CacheMissesCounter()->Increment();
    return false;
  }
  cache_entries_.splice(cache_entries_.begin(), cache_entries_, it->second);
  *out = it->second->second.Clone();
  ++cache_stats_.hits;
  CacheHitsCounter()->Increment();
  return true;
}

void Session::InsertCachedSource(const std::string& key, Dataset dataset) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    // A concurrent job loaded the same source first; refresh recency only.
    cache_entries_.splice(cache_entries_.begin(), cache_entries_, it->second);
    return;
  }
  cache_entries_.emplace_front(key, std::move(dataset));
  cache_index_[key] = cache_entries_.begin();
  if (options_.max_cached_sources > 0) {
    while (cache_entries_.size() > options_.max_cached_sources) {
      cache_index_.erase(cache_entries_.back().first);
      cache_entries_.pop_back();
      ++cache_stats_.evictions;
      CacheEvictionsCounter()->Increment();
    }
  }
}

Session::CacheStats Session::cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  CacheStats stats = cache_stats_;
  stats.entries = static_cast<int64_t>(cache_entries_.size());
  return stats;
}

Result<RunArtifacts> Session::Run(const JobSpec& input_spec,
                                  const RunControl* control) {
  EVOCAT_RETURN_NOT_OK(input_spec.Validate());
  if (control != nullptr && control->cancel.load(std::memory_order_relaxed)) {
    return Status::Cancelled("job canceled before execution started");
  }
  JobSpec spec = input_spec;
  spec.seeds.MakeExplicit();

  // Stage timing is pure observation: relaxed counter bumps and steady-clock
  // reads, no RNG and no data-dependent branches, so a telemetry-on run is
  // bit-identical to a telemetry-off one (oracle-tested).
  Timer run_timer;
  TelemetryArtifacts telemetry;

  // (1) Original dataset + protected attribute indices.
  auto load_span = std::make_unique<obs::TraceSpan>("session.load");
  Timer stage_timer;
  EVOCAT_ASSIGN_OR_RETURN(SourceData source, LoadSource(spec));
  telemetry.load_seconds = stage_timer.ElapsedSeconds();
  load_span.reset();
  StageSecondsHistogram("load")->Observe(telemetry.load_seconds);

  // (2) Method roster: the spec's, or the paper mix for this source.
  std::vector<MethodGridSpec> roster =
      spec.methods.empty() ? RosterFromPopulationSpec(source.default_spec)
                           : spec.methods;
  std::vector<std::unique_ptr<protection::ProtectionMethod>> methods;
  for (size_t i = 0; i < roster.size(); ++i) {
    for (const ParamMap& params : ExpandGrid(roster[i])) {
      auto method =
          protection::MethodRegistry::Global().Create(roster[i].name, params);
      if (!method.ok()) {
        return Status::Invalid("methods[", i, "]: ",
                               method.status().message());
      }
      methods.push_back(std::move(method).ValueOrDie());
    }
  }
  if (methods.empty()) {
    return Status::Invalid("methods: the roster expands to zero instances");
  }

  // Cancellation checkpoints between the expensive stages; inside a stage
  // the engine's per-generation poll takes over.
  auto canceled_at = [control](const char* stage) -> Status {
    if (control != nullptr && control->cancel.load(std::memory_order_relaxed)) {
      return Status::Cancelled("job canceled ", stage);
    }
    return Status::OK();
  };
  EVOCAT_RETURN_NOT_OK(canceled_at("after loading the source"));

  // (3) Seed protections, one forked RNG stream per method instance.
  auto protect_span = std::make_unique<obs::TraceSpan>("session.protect");
  stage_timer.Reset();
  EVOCAT_ASSIGN_OR_RETURN(
      auto protections,
      protection::BuildProtectionsWith(source.original, source.attrs, methods,
                                       spec.seeds.ProtectionSeed()));
  telemetry.protect_seconds = stage_timer.ElapsedSeconds();
  protect_span.reset();
  StageSecondsHistogram("protect")->Observe(telemetry.protect_seconds);
  EVOCAT_RETURN_NOT_OK(canceled_at("after building the seed protections"));

  // (4) Fitness evaluator over the spec's measure configuration; binding and
  // the initial evaluation sweep below are one "bind" telemetry stage.
  auto bind_span = std::make_unique<obs::TraceSpan>("session.bind");
  stage_timer.Reset();
  EVOCAT_ASSIGN_OR_RETURN(auto evaluator,
                          metrics::FitnessEvaluator::Create(
                              source.original, source.attrs,
                              spec.FitnessOptions()));

  std::vector<core::Individual> initial;
  initial.reserve(protections.size());
  for (auto& file : protections) {
    core::Individual individual;
    individual.data = std::move(file.data);
    individual.origin = std::move(file.method_label);
    initial.push_back(std::move(individual));
  }

  // Evaluate the seeds now: callers want the initial cloud, and best-removal
  // needs scores. With incremental evaluation on, bind each member's delta
  // state instead of running the full O(n²)-per-linkage-measure oracle — the
  // state's breakdown is the same score, the engine reuses the bind, and at
  // 10^5+ rows this is the difference between seconds and hours of seeding.
  ParallelFor(0, static_cast<int64_t>(initial.size()), [&](int64_t i) {
    core::Individual& member = initial[static_cast<size_t>(i)];
    if (spec.ga.incremental_eval) {
      member.eval_state = evaluator->BindState(member.data);
      member.fitness = member.eval_state->breakdown();
    } else {
      member.fitness = evaluator->Evaluate(member.data);
    }
  });
  std::stable_sort(initial.begin(), initial.end(),
                   [](const core::Individual& a, const core::Individual& b) {
                     return a.score() < b.score();
                   });

  if (spec.remove_best_fraction > 0.0 && initial.size() > 2) {
    auto removed = static_cast<size_t>(
        std::llround(spec.remove_best_fraction *
                     static_cast<double>(initial.size())));
    removed = std::min(removed, initial.size() - 2);  // keep a viable population
    initial.erase(initial.begin(),
                  initial.begin() + static_cast<std::ptrdiff_t>(removed));
  }
  telemetry.bind_seconds = stage_timer.ElapsedSeconds();
  bind_span.reset();
  StageSecondsHistogram("bind")->Observe(telemetry.bind_seconds);

  RunArtifacts artifacts;
  artifacts.job_name = spec.name;
  artifacts.dataset = source.label;
  artifacts.protected_attrs = source.attrs;
  artifacts.num_rows = source.original.num_rows();
  artifacts.population_size = static_cast<int64_t>(initial.size());
  if (spec.outputs.initial_population) {
    artifacts.initial.reserve(initial.size());
    for (const auto& individual : initial) {
      artifacts.initial.push_back(Summarize(individual));
    }
  }
  artifacts.initial_scores = StatsOf(initial);

  // (5) Evolution through the spec's strategy. The default ("generational")
  // delegates straight to core::EvolutionEngine, so specs without a strategy
  // block evolve bit-identically to the pre-strategy façade.
  core::GaConfig config = spec.ga;
  config.seed = spec.seeds.GaSeed();
  EVOCAT_ASSIGN_OR_RETURN(auto strategy,
                          evolve::StrategyRegistry::Global().Create(
                              spec.strategy.name, spec.strategy.params));
  auto evolve_span = std::make_unique<obs::TraceSpan>("session.evolve");
  stage_timer.Reset();
  EVOCAT_ASSIGN_OR_RETURN(
      core::EvolutionResult evolution,
      strategy->Run(evaluator.get(), config, std::move(initial),
                    control != nullptr ? &control->cancel : nullptr));
  telemetry.evolve_seconds = stage_timer.ElapsedSeconds();
  evolve_span.reset();
  StageSecondsHistogram("evolve")->Observe(telemetry.evolve_seconds);

  // Telemetry section: sample the per-generation series before the history
  // vector is (conditionally) moved into the artifacts, then snapshot the
  // registry's counter totals.
  if (spec.outputs.telemetry) {
    telemetry.enabled = true;
    telemetry.total_seconds = run_timer.ElapsedSeconds();
    telemetry.generation_seconds.reserve(evolution.history.size());
    telemetry.generation_eval_seconds.reserve(evolution.history.size());
    for (const auto& record : evolution.history) {
      telemetry.generation_seconds.push_back(record.total_seconds);
      telemetry.generation_eval_seconds.push_back(record.eval_seconds);
    }
    for (const auto& sample : obs::MetricsRegistry::Global().CounterTotals()) {
      telemetry.counters.emplace_back(sample.series, sample.value);
    }
    // Probed rebuild fractions (bind-time probe, when enabled) persist into
    // the run artifacts so a probed run stays explainable after the fact.
    // Gauges don't flow through CounterTotals, so append them here, in ppm
    // to fit the integer counter rows.
    for (const auto& [measure, fraction] :
         evaluator->probed_rebuild_fractions()) {
      telemetry.counters.emplace_back(
          "evocat_delta_plane_probe_fraction_ppm{measure=\"" + measure + "\"}",
          static_cast<int64_t>(std::llround(fraction * 1e6)));
    }
    artifacts.telemetry = std::move(telemetry);
  }

  if (spec.outputs.history) artifacts.history = std::move(evolution.history);
  artifacts.stats = evolution.stats;
  artifacts.final_scores = StatsOf(evolution.population.members());
  if (spec.outputs.final_population) {
    artifacts.final_population.reserve(evolution.population.size());
    for (const auto& individual : evolution.population.members()) {
      artifacts.final_population.push_back(Summarize(individual));
    }
  }
  const core::Individual& best = evolution.population.best();
  artifacts.best = Summarize(best);
  artifacts.best_data = best.data.Clone();
  artifacts.evaluations = evaluator->num_evaluations();
  artifacts.spec = std::move(spec);

  // (6) Requested file outputs.
  if (!artifacts.spec.outputs.best_csv_path.empty()) {
    EVOCAT_RETURN_NOT_OK(
        WriteCsvFile(artifacts.best_data, artifacts.spec.outputs.best_csv_path));
  }
  if (!artifacts.spec.outputs.original_csv_path.empty()) {
    EVOCAT_RETURN_NOT_OK(WriteCsvFile(
        source.original, artifacts.spec.outputs.original_csv_path));
  }
  return artifacts;
}

std::vector<Result<RunArtifacts>> Session::RunBatch(
    const std::vector<JobSpec>& specs, const BatchOptions& batch) {
  std::vector<Result<RunArtifacts>> results(
      specs.size(), Result<RunArtifacts>(Status::Internal("job not executed")));
  if (!batch.work_stealing) {
    // Legacy schedule: jobs fan out across the worker pool; the nested-region
    // guard makes each job's inner loops serial, so N jobs use N workers
    // without oversubscription. Each slot is written by exactly one iteration.
    ParallelFor(0, static_cast<int64_t>(specs.size()), [&](int64_t i) {
      results[static_cast<size_t>(i)] = Run(specs[static_cast<size_t>(i)]);
    });
    return results;
  }
  // Work-stealing schedule: each job is one scheduler task; a job's inner
  // ParallelFor loops split into chunks that idle workers steal (see
  // common/task_scheduler.h), so the tail of a skewed batch — one heavy job
  // outliving its siblings — still uses every worker. The caller sleeps in
  // Wait rather than executing, keeping active threads at the worker count.
  TaskScheduler& scheduler = TaskScheduler::Shared();
  TaskScheduler::Group group;
  for (size_t i = 0; i < specs.size(); ++i) {
    scheduler.Submit(&group,
                     [this, &specs, &results, i] { results[i] = Run(specs[i]); });
  }
  scheduler.Wait(&group);
  return results;
}

}  // namespace api
}  // namespace evocat
