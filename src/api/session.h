/// \file session.h
/// \brief The façade's execution engine: JobSpec in, RunArtifacts out.
///
/// A `Session` owns everything a job needs at runtime — dataset loading
/// (with a CSV cache shared across jobs), registry-based method
/// construction, population building, fitness binding and engine execution —
/// and returns structured `RunArtifacts`. `RunBatch` executes a vector of
/// JobSpecs concurrently on the shared worker pool; every job is seeded from
/// its own spec with isolated RNG streams, so batch results are bit-identical
/// to running each job alone.

#ifndef EVOCAT_API_SESSION_H_
#define EVOCAT_API_SESSION_H_

#include <atomic>
#include <cstddef>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "api/jobspec.h"
#include "common/result.h"
#include "core/engine.h"
#include "metrics/fitness.h"
#include "protection/population_builder.h"

namespace evocat {
namespace api {

/// \brief Min/mean/max of a population's scores.
struct ScoreStats {
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

/// \brief One population member: provenance plus its full breakdown.
struct MemberSummary {
  std::string origin;
  metrics::FitnessBreakdown fitness;
};

/// \brief Per-run telemetry captured when `outputs.telemetry` is on: stage
/// wall times, the per-generation timing series, and a snapshot of the
/// process-wide counter totals at run end. Pure observation — the run is
/// bit-identical with the section on or off (everything else in
/// `RunArtifacts` is unchanged).
struct TelemetryArtifacts {
  bool enabled = false;
  /// Stage wall seconds: source load, seed protections, fitness bind +
  /// initial evaluation, evolution, and the whole run.
  double load_seconds = 0.0;
  double protect_seconds = 0.0;
  double bind_seconds = 0.0;
  double evolve_seconds = 0.0;
  double total_seconds = 0.0;
  /// Per-generation wall/eval seconds in generation order — carried even
  /// when `outputs.history` is off, so every finished job ships its profile.
  std::vector<double> generation_seconds;
  std::vector<double> generation_eval_seconds;
  /// Counter totals (`name{labels}` -> value) from the process-wide metrics
  /// registry at run end. On a daemon running concurrent jobs these
  /// aggregate across jobs; the series above are this run's alone.
  std::vector<std::pair<std::string, int64_t>> counters;
};

/// \brief Everything a caller can want back from one job.
struct RunArtifacts {
  std::string job_name;
  /// Dataset label: the synthetic profile name or the CSV path.
  std::string dataset;
  /// The spec as executed, with all stage seeds made explicit — serializing
  /// this spec reproduces the run exactly.
  JobSpec spec;
  std::vector<int> protected_attrs;
  int64_t num_rows = 0;
  /// Population size after any best-removal (always set, unlike the
  /// population vectors below, which respect the output toggles).
  int64_t population_size = 0;

  /// Initial population after best-removal (empty unless requested).
  std::vector<MemberSummary> initial;
  /// Final population, sorted by ascending score (empty unless requested).
  std::vector<MemberSummary> final_population;
  /// Per-generation trajectory (empty unless requested).
  std::vector<core::GenerationRecord> history;
  core::EvolutionStats stats;
  ScoreStats initial_scores;
  ScoreStats final_scores;

  /// The best individual and its protected file.
  MemberSummary best;
  Dataset best_data;
  /// Fitness evaluations served over the whole run.
  int64_t evaluations = 0;
  /// Stage timings + per-generation series (`outputs.telemetry`).
  TelemetryArtifacts telemetry;
};

/// \brief Cooperative cancellation handle for a running job.
///
/// Flip `cancel` from any thread; the engine polls it between generations
/// and the run returns `Status::Cancelled`. One control governs one run.
struct RunControl {
  std::atomic<bool> cancel{false};
};

/// \brief Executes JobSpecs; reusable across jobs and threads.
class Session {
 public:
  struct Options {
    /// Cache CSV originals across jobs (keyed by path + read options).
    bool cache_sources = true;
    /// Maximum cached CSV originals; the least recently used entry is
    /// evicted beyond this. 0 means unbounded (not recommended for
    /// long-running daemons).
    size_t max_cached_sources = 8;
  };

  /// \brief Source-cache counters (monotonic over the session's lifetime).
  struct CacheStats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t entries = 0;  ///< current resident originals
  };

  struct BatchOptions {
    /// Execute jobs on the work-stealing task scheduler: a heavy job's
    /// data-parallel phases (per-grid-point seed protections, per-member
    /// evaluations, measure row loops) split into subtasks that idle workers
    /// steal, so a skewed batch keeps every core busy. false restores the
    /// one-job-per-worker schedule (each job's inner loops strictly serial).
    /// Both schedules produce bit-identical artifacts.
    bool work_stealing = true;
  };

  Session() = default;
  explicit Session(Options options) : options_(options) {}

  /// \brief Runs one job end to end. `control` (optional) allows concurrent
  /// cancellation; a canceled run returns `Status::Cancelled`.
  Result<RunArtifacts> Run(const JobSpec& spec,
                           const RunControl* control = nullptr);

  /// \brief Runs every spec concurrently across the worker threads.
  ///
  /// Slot i holds job i's artifacts or the Status explaining its failure;
  /// one failing job never aborts its siblings. Every job is seeded from its
  /// own spec, so each slot is bit-identical to `Run(specs[i])` alone under
  /// either scheduling mode.
  std::vector<Result<RunArtifacts>> RunBatch(
      const std::vector<JobSpec>& specs, const BatchOptions& batch);
  std::vector<Result<RunArtifacts>> RunBatch(const std::vector<JobSpec>& specs) {
    return RunBatch(specs, BatchOptions());
  }

  /// \brief Current source-cache counters (thread-safe snapshot).
  CacheStats cache_stats() const;

  /// \brief A loaded original plus resolved protected attribute indices.
  struct SourceData {
    Dataset original;
    std::vector<int> attrs;
    /// Dataset label (profile name or CSV path).
    std::string label;
    /// The paper's default population mix for this source (used when the
    /// spec's method roster is empty).
    protection::PopulationSpec default_spec;
  };

  /// \brief Loads/generates the spec's original dataset (shared with the
  /// evaluation tool, which scores external files against it).
  Result<SourceData> LoadSource(const JobSpec& spec);

 private:
  /// \brief Clones a cached original and promotes it to most recent; false
  /// on miss. Counts the hit/miss.
  bool LookupCachedSource(const std::string& key, Dataset* out);
  /// \brief Inserts (or refreshes) a cached original, evicting the least
  /// recently used entries beyond `max_cached_sources`.
  void InsertCachedSource(const std::string& key, Dataset dataset);

  Options options_;
  mutable std::mutex cache_mutex_;
  /// LRU order, most recent first; the index maps cache key -> entry.
  std::list<std::pair<std::string, Dataset>> cache_entries_;
  std::map<std::string, std::list<std::pair<std::string, Dataset>>::iterator>
      cache_index_;
  CacheStats cache_stats_;
};

/// \brief The paper's population mix as a declarative roster (grid order
/// matches `protection::InstantiateMethods` exactly).
std::vector<MethodGridSpec> RosterFromPopulationSpec(
    const protection::PopulationSpec& spec);

}  // namespace api
}  // namespace evocat

#endif  // EVOCAT_API_SESSION_H_
