/// \file session.h
/// \brief The façade's execution engine: JobSpec in, RunArtifacts out.
///
/// A `Session` owns everything a job needs at runtime — dataset loading
/// (with a CSV cache shared across jobs), registry-based method
/// construction, population building, fitness binding and engine execution —
/// and returns structured `RunArtifacts`. `RunBatch` executes a vector of
/// JobSpecs concurrently on the shared worker pool; every job is seeded from
/// its own spec with isolated RNG streams, so batch results are bit-identical
/// to running each job alone.

#ifndef EVOCAT_API_SESSION_H_
#define EVOCAT_API_SESSION_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "api/jobspec.h"
#include "common/result.h"
#include "core/engine.h"
#include "metrics/fitness.h"
#include "protection/population_builder.h"

namespace evocat {
namespace api {

/// \brief Min/mean/max of a population's scores.
struct ScoreStats {
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

/// \brief One population member: provenance plus its full breakdown.
struct MemberSummary {
  std::string origin;
  metrics::FitnessBreakdown fitness;
};

/// \brief Everything a caller can want back from one job.
struct RunArtifacts {
  std::string job_name;
  /// Dataset label: the synthetic profile name or the CSV path.
  std::string dataset;
  /// The spec as executed, with all stage seeds made explicit — serializing
  /// this spec reproduces the run exactly.
  JobSpec spec;
  std::vector<int> protected_attrs;
  int64_t num_rows = 0;
  /// Population size after any best-removal (always set, unlike the
  /// population vectors below, which respect the output toggles).
  int64_t population_size = 0;

  /// Initial population after best-removal (empty unless requested).
  std::vector<MemberSummary> initial;
  /// Final population, sorted by ascending score (empty unless requested).
  std::vector<MemberSummary> final_population;
  /// Per-generation trajectory (empty unless requested).
  std::vector<core::GenerationRecord> history;
  core::EvolutionStats stats;
  ScoreStats initial_scores;
  ScoreStats final_scores;

  /// The best individual and its protected file.
  MemberSummary best;
  Dataset best_data;
  /// Fitness evaluations served over the whole run.
  int64_t evaluations = 0;
};

/// \brief Executes JobSpecs; reusable across jobs and threads.
class Session {
 public:
  struct Options {
    /// Cache CSV originals across jobs (keyed by path + read options).
    bool cache_sources = true;
  };

  Session() = default;
  explicit Session(Options options) : options_(options) {}

  /// \brief Runs one job end to end.
  Result<RunArtifacts> Run(const JobSpec& spec);

  /// \brief Runs every spec concurrently on the shared worker pool.
  ///
  /// Slot i holds job i's artifacts or the Status explaining its failure;
  /// one failing job never aborts its siblings.
  std::vector<Result<RunArtifacts>> RunBatch(const std::vector<JobSpec>& specs);

  /// \brief A loaded original plus resolved protected attribute indices.
  struct SourceData {
    Dataset original;
    std::vector<int> attrs;
    /// Dataset label (profile name or CSV path).
    std::string label;
    /// The paper's default population mix for this source (used when the
    /// spec's method roster is empty).
    protection::PopulationSpec default_spec;
  };

  /// \brief Loads/generates the spec's original dataset (shared with the
  /// evaluation tool, which scores external files against it).
  Result<SourceData> LoadSource(const JobSpec& spec);

 private:
  Options options_;
  std::mutex cache_mutex_;
  std::map<std::string, Dataset> csv_cache_;
};

/// \brief The paper's population mix as a declarative roster (grid order
/// matches `protection::InstantiateMethods` exactly).
std::vector<MethodGridSpec> RosterFromPopulationSpec(
    const protection::PopulationSpec& spec);

}  // namespace api
}  // namespace evocat

#endif  // EVOCAT_API_SESSION_H_
