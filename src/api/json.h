/// \file json.h
/// \brief Self-contained JSON value type for the evocat::api façade.
///
/// JobSpecs are parsed from and serialized to JSON; no third-party JSON
/// dependency is available in the build image, so the façade carries its own
/// small implementation. Design points that matter to the API:
///  - objects preserve insertion order (method parameter grids expand in the
///    order the spec lists their keys, and dumps are diff-stable);
///  - integers are kept exact (seeds are 64-bit), doubles serialize with the
///    shortest representation that round-trips;
///  - parse errors carry 1-based line/column positions.

#ifndef EVOCAT_API_JSON_H_
#define EVOCAT_API_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace evocat {
namespace api {

/// \brief One JSON value: null, bool, number, string, array or object.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool value);
  static JsonValue MakeNumber(double value);
  static JsonValue MakeInt(int64_t value);
  static JsonValue MakeString(std::string value);
  static JsonValue MakeArray() { return OfType(Type::kArray); }
  static JsonValue MakeObject() { return OfType(Type::kObject); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }
  /// \brief True for numbers written without fraction/exponent (exact int64).
  bool is_integer() const { return type_ == Type::kNumber && is_integer_; }

  /// Value accessors; calling the wrong one for the type is a programming
  /// error (checked only by the typed JobSpec readers, not here).
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  int64_t int_value() const { return int_; }
  const std::string& string_value() const { return string_; }

  /// Array access.
  size_t size() const { return items_.size(); }
  const JsonValue& at(size_t index) const { return items_[index]; }
  void Append(JsonValue value) { items_.push_back(std::move(value)); }

  /// Object access (insertion-ordered).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  /// \brief Member lookup; nullptr when absent.
  const JsonValue* Find(const std::string& key) const;
  /// \brief Sets (or replaces) a member, keeping first-insertion order.
  void Set(const std::string& key, JsonValue value);

  /// \brief Parses a complete JSON document (errors carry line/column).
  static Result<JsonValue> Parse(const std::string& text);

  /// \brief Serializes; `indent > 0` pretty-prints, 0 is compact.
  std::string Dump(int indent = 0) const;

 private:
  static JsonValue OfType(Type type) {
    JsonValue value;
    value.type_ = type;
    return value;
  }

  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  bool is_integer_ = false;
  double number_ = 0.0;
  int64_t int_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace api
}  // namespace evocat

#endif  // EVOCAT_API_JSON_H_
