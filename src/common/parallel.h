/// \file parallel.h
/// \brief Minimal data-parallel helper used for batch fitness evaluation.

#ifndef EVOCAT_COMMON_PARALLEL_H_
#define EVOCAT_COMMON_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace evocat {

/// \brief Runs `fn(i)` for every i in [begin, end) across worker threads.
///
/// Iterations must be independent; results should be written to disjoint
/// slots. `num_threads <= 0` routes the loop onto the process-wide
/// work-stealing `TaskScheduler` (hardware-sized): chunks of the range are
/// executed by idle workers with the caller participating, and *nested*
/// regions split onto the same pool instead of serializing — an inner
/// measure loop inside an outer per-offspring loop fans out across whatever
/// workers are idle. Falls back to a serial loop for tiny ranges. Blocks
/// until all iterations complete.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn, int num_threads = 0);

}  // namespace evocat

#endif  // EVOCAT_COMMON_PARALLEL_H_
