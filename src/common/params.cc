#include "common/params.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace evocat {

Status ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) return Status::Invalid("empty integer literal");
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE) return Status::Invalid("integer out of range: ", text);
  if (end == text.c_str() || *end != '\0') {
    return Status::Invalid("not an integer: '", text, "'");
  }
  *out = static_cast<int64_t>(value);
  return Status::OK();
}

Status ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return Status::Invalid("empty number literal");
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::Invalid("not a number: '", text, "'");
  }
  // Rejects overflow (ERANGE -> ±inf) and the "inf"/"nan" literals strtod
  // accepts — non-finite values have no JSON representation and would break
  // spec round-trips. Underflow to (sub)normal zero is fine.
  if (!std::isfinite(value)) {
    return Status::Invalid("number out of range: '", text, "'");
  }
  *out = value;
  return Status::OK();
}

std::string FormatDouble(double value) {
  char buffer[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

void ParamReader::RecordError(const std::string& key,
                              const std::string& detail) {
  if (status_.ok()) {
    status_ = Status::Invalid(context_, ".", key, ": ", detail);
  }
}

int64_t ParamReader::GetInt(const std::string& key, int64_t default_value) {
  consumed_.insert(key);
  auto it = params_->find(key);
  if (it == params_->end()) return default_value;
  int64_t value = default_value;
  Status status = ParseInt64(it->second, &value);
  if (!status.ok()) RecordError(key, status.message());
  return value;
}

double ParamReader::GetDouble(const std::string& key, double default_value) {
  consumed_.insert(key);
  auto it = params_->find(key);
  if (it == params_->end()) return default_value;
  double value = default_value;
  Status status = ParseDouble(it->second, &value);
  if (!status.ok()) RecordError(key, status.message());
  return value;
}

std::string ParamReader::GetString(const std::string& key,
                                   std::string default_value) {
  consumed_.insert(key);
  auto it = params_->find(key);
  return it == params_->end() ? default_value : it->second;
}

Status ParamReader::Finish() const {
  if (!status_.ok()) return status_;
  for (const auto& [key, value] : *params_) {
    (void)value;
    if (!consumed_.count(key)) {
      return Status::Invalid("unknown parameter '", context_, ".", key, "'");
    }
  }
  return Status::OK();
}

}  // namespace evocat
