#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <iostream>
#include <utility>

namespace evocat {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::atomic<LogFormat> g_format{LogFormat::kText};

thread_local std::string t_job_id;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

/// RFC 3339 UTC with millisecond precision, e.g. "2026-08-09T14:03:22.174Z".
std::string IsoTimestamp() {
  auto now = std::chrono::system_clock::now();
  std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                    now.time_since_epoch())
                    .count() %
                1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis));
  return buf;
}

void AppendJsonEscaped(std::string* out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c == '\n') {
      *out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void SetLogFormat(LogFormat format) { g_format.store(format); }
LogFormat GetLogFormat() { return g_format.load(); }

ScopedLogJobId::ScopedLogJobId(std::string job_id)
    : previous_(std::move(t_job_id)) {
  t_job_id = std::move(job_id);
}

ScopedLogJobId::~ScopedLogJobId() { t_job_id = std::move(previous_); }

namespace internal {

const std::string& CurrentLogJobId() { return t_job_id; }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (level_ < GetLogLevel()) return;
  if (GetLogFormat() == LogFormat::kJson) {
    std::string line = "{\"ts\":\"" + IsoTimestamp() + "\",\"level\":\"";
    line += LevelName(level_);
    line += "\",\"component\":\"";
    line += Basename(file_);
    line += ":" + std::to_string(line_);
    line += "\",\"msg\":\"";
    AppendJsonEscaped(&line, stream_.str());
    line += "\"";
    if (!t_job_id.empty()) {
      line += ",\"job_id\":\"";
      AppendJsonEscaped(&line, t_job_id);
      line += "\"";
    }
    line += "}";
    std::cerr << line << std::endl;
    return;
  }
  std::ostringstream prefix;
  prefix << "[" << LevelName(level_) << " " << Basename(file_) << ":" << line_
         << "] ";
  if (!t_job_id.empty()) prefix << "(job " << t_job_id << ") ";
  std::cerr << prefix.str() << stream_.str() << std::endl;
}

}  // namespace internal
}  // namespace evocat
