/// \file flags.h
/// \brief Tiny declarative command-line flag parser for the evocat tools.
///
/// Supports `--name=value`, `--name value`, bare boolean `--name`, and
/// `--help`. Unknown flags are errors; positional arguments are collected.

#ifndef EVOCAT_COMMON_FLAGS_H_
#define EVOCAT_COMMON_FLAGS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace evocat {

/// \brief Declarative flag registry + parser.
class FlagParser {
 public:
  explicit FlagParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Registers a string flag backed by `*out` (preloaded with its default).
  void AddString(const std::string& name, const std::string& description,
                 std::string* out);
  /// Registers an integer flag.
  void AddInt(const std::string& name, const std::string& description,
              int64_t* out);
  /// Registers a floating-point flag.
  void AddDouble(const std::string& name, const std::string& description,
                 double* out);
  /// Registers a boolean flag (`--name`, `--name=true/false`).
  void AddBool(const std::string& name, const std::string& description,
               bool* out);

  /// \brief Parses argv. On `--help`, returns OK and sets `help_requested()`.
  Status Parse(int argc, const char* const* argv);

  /// \brief Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  bool help_requested() const { return help_requested_; }

  /// \brief Human-readable usage text.
  std::string Usage() const;

 private:
  struct Flag {
    std::string name;
    std::string description;
    std::string default_repr;
    bool is_bool = false;
    std::function<Status(const std::string&)> set;
  };

  void Register(Flag flag) { flags_.push_back(std::move(flag)); }
  Flag* Find(const std::string& name);

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace evocat

#endif  // EVOCAT_COMMON_FLAGS_H_
