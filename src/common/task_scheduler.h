/// \file task_scheduler.h
/// \brief Work-stealing task scheduler for batch job execution.
///
/// The scheduler runs coarse tasks (whole protection jobs) on a fixed set of
/// worker threads and lets a running task split its data-parallel phases —
/// per-grid-point seed protections, per-member initial evaluations, the
/// measures' row loops — into chunk subtasks that *idle* workers steal. When
/// every worker is busy the split is skipped entirely and the loop runs
/// serially on its owner, so a saturated batch behaves exactly like the
/// one-job-per-worker schedule while a skewed batch (one heavy job outliving
/// its siblings) fans its inner loops out across the idle workers.
///
/// Scheduling never changes results: subtasks are independent iterations
/// writing disjoint slots, so a stolen chunk computes bit-identically to a
/// serial one. `ParallelFor` (common/parallel.h) routes to the shared
/// scheduler automatically when called from a worker thread.

#ifndef EVOCAT_COMMON_TASK_SCHEDULER_H_
#define EVOCAT_COMMON_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace evocat {

/// \brief Runs detached tasks on worker threads with work-stealing loops.
class TaskScheduler {
 public:
  /// \brief Completion tracker for a set of submitted tasks.
  class Group {
   public:
    Group() = default;
    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;

   private:
    friend class TaskScheduler;
    std::atomic<int64_t> pending_{0};
  };

  /// \brief `num_threads <= 0` uses the hardware concurrency (min 1).
  explicit TaskScheduler(int num_threads = 0);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// \brief Process-wide scheduler sized to the hardware (created lazily,
  /// lives to process exit).
  static TaskScheduler& Shared();

  /// \brief Enqueues a task; workers pick it up in submission order.
  /// `group` (optional) tracks completion for `Wait`.
  void Submit(Group* group, std::function<void()> fn);

  /// \brief Blocks until every task submitted against `group` has finished.
  /// The caller sleeps rather than executing tasks, so total active threads
  /// never exceed the worker count.
  void Wait(Group* group);

  /// \brief True when the calling thread is a worker of *any* scheduler.
  static bool OnWorkerThread();

  /// \brief The scheduler whose worker loop the calling thread is running,
  /// or nullptr on a non-worker thread.
  static TaskScheduler* Current();

  /// \brief Work-stealing parallel loop; must be called from a worker.
  ///
  /// Splits [begin, end) into chunks on the calling worker's own deque; the
  /// owner executes them newest-first while idle workers steal oldest-first.
  /// When no worker is idle the loop simply runs serially (no queue traffic).
  /// Blocks until every iteration completed. Iterations must be independent.
  /// Nested calls are first-class: a chunk that opens its own inner loop
  /// splits again onto the executing worker's deque, so inner regions feed
  /// the same pool instead of serializing.
  void ParallelForOnWorker(int64_t begin, int64_t end,
                           const std::function<void(int64_t)>& fn);

  /// \brief Parallel loop entry for *any* thread.
  ///
  /// On a worker of this scheduler it is `ParallelForOnWorker`; on a foreign
  /// thread the chunks are injected into the global queue and the calling
  /// thread participates by draining its own chunks while idle workers take
  /// the rest. Concurrent regions from different threads interleave on the
  /// pool rather than serializing behind a region lock. Blocks until every
  /// iteration completed; iterations must be independent.
  void ParallelForShared(int64_t begin, int64_t end,
                         const std::function<void(int64_t)>& fn);

  int num_workers() const { return static_cast<int>(workers_.size()); }
  /// \brief Chunks executed by a worker other than their owner (diagnostic;
  /// drives the batch bench's work-stealing report).
  int64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    Group* group = nullptr;
    std::function<void()> fn;
  };

  /// Per-worker state; chunk subtasks live in the owner's deque.
  struct Worker {
    std::deque<Task> deque;
  };

  void WorkerLoop(int index);
  /// Pops a runnable task: the worker's own deque first (newest), then the
  /// global queue, then steals the oldest chunk from a sibling. Must be
  /// called with `mutex_` held; `thief` is the calling worker's index.
  bool PopTaskLocked(int thief, Task* task);
  /// Executes a claimed task (timing it into the telemetry registry when
  /// metrics are on) and reports completion. Call without `mutex_` held.
  void RunTask(Task* task);
  void FinishTask(const Task& task);

  std::mutex mutex_;
  std::condition_variable wake_;   // workers: new work available
  std::condition_variable done_;   // waiters: some task/group finished
  std::deque<Task> global_queue_;
  std::vector<std::unique_ptr<Worker>> worker_state_;
  std::vector<std::thread> workers_;
  std::atomic<int> idle_workers_{0};
  std::atomic<int64_t> steals_{0};
  bool stop_ = false;
};

}  // namespace evocat

#endif  // EVOCAT_COMMON_TASK_SCHEDULER_H_
