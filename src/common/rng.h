/// \file rng.h
/// \brief Deterministic random number generation for evocat.
///
/// All stochastic components (dataset generators, masking methods, genetic
/// operators, selection) draw from an explicitly passed `Rng`. There is no
/// global RNG state. The generator is `std::mt19937_64` (bit-exact across
/// standard libraries), and all derived draws (bounded integers, doubles,
/// weighted choice) are implemented here rather than via `std::*_distribution`
/// — the standard distributions are not guaranteed to produce identical
/// streams across implementations, which would break experiment
/// reproducibility.

#ifndef EVOCAT_COMMON_RNG_H_
#define EVOCAT_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace evocat {

/// \brief Seeded, reproducible random number generator.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(uint64_t seed = 0xEC0CA7u) : engine_(seed) {}

  /// \brief Next raw 64-bit value.
  uint64_t NextU64() { return engine_(); }

  /// \brief Uniform integer in the inclusive range [lo, hi].
  ///
  /// Uses rejection sampling (unbiased). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// \brief Uniform index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n) {
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// \brief Uniform double in [0, 1).
  double UniformDouble();

  /// \brief Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// \brief Bernoulli trial with success probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// \brief Standard normal via Box–Muller (deterministic, no cached spare).
  double Gaussian();

  /// \brief Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// \brief Index drawn proportionally to non-negative `weights`.
  ///
  /// Requires at least one strictly positive weight; falls back to the last
  /// index under floating-point underflow at the boundary.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// \brief Zipf-distributed value in [0, n) with exponent `s` (s >= 0).
  ///
  /// s == 0 degenerates to uniform. Implemented by inverse-CDF over the
  /// precomputed table; intended for modest n (category domains).
  size_t Zipf(size_t n, double s);

  /// \brief Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = UniformIndex(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// \brief Sample `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// \brief Derives an independent child generator (for parallel components).
  Rng Fork() { return Rng(NextU64() ^ 0x9E3779B97F4A7C15ull); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace evocat

#endif  // EVOCAT_COMMON_RNG_H_
