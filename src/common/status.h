/// \file status.h
/// \brief Operation status codes and the `Status` value used across evocat.
///
/// evocat follows the Arrow/RocksDB idiom: fallible operations return a
/// `Status` (or a `Result<T>`, see result.h) rather than throwing. Hot paths
/// (fitness evaluation, genetic operators) are written so that they cannot
/// fail once inputs are validated, keeping `Status` checks at module borders.

#ifndef EVOCAT_COMMON_STATUS_H_
#define EVOCAT_COMMON_STATUS_H_

#include <sstream>
#include <string>
#include <utility>

namespace evocat {

/// \brief Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kNotImplemented,
  kInternal,
  kCancelled,
  kResourceExhausted,
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus a contextual message.
///
/// `Status` is cheap to copy in the OK case (empty message). Use the factory
/// functions (`Status::Invalid(...)` etc.) to construct errors; each accepts
/// a stream of `<<`-able arguments.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \brief Factory for the OK status.
  static Status OK() { return Status(); }

  template <typename... Args>
  static Status Invalid(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return Make(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Make(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status IOError(Args&&... args) {
    return Make(StatusCode::kIOError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotImplemented(Args&&... args) {
    return Make(StatusCode::kNotImplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Cancelled(Args&&... args) {
    return Make(StatusCode::kCancelled, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ResourceExhausted(Args&&... args) {
    return Make(StatusCode::kResourceExhausted, std::forward<Args>(args)...);
  }

  /// \brief True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args) {
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return Status(code, oss.str());
  }

  StatusCode code_;
  std::string message_;
};

/// \brief Propagates a non-OK status to the caller.
#define EVOCAT_RETURN_NOT_OK(expr)             \
  do {                                         \
    ::evocat::Status _st = (expr);             \
    if (!_st.ok()) return _st;                 \
  } while (false)

}  // namespace evocat

#endif  // EVOCAT_COMMON_STATUS_H_
