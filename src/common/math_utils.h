/// \file math_utils.h
/// \brief Small numeric kernels shared by the metric implementations.

#ifndef EVOCAT_COMMON_MATH_UTILS_H_
#define EVOCAT_COMMON_MATH_UTILS_H_

#include <cstddef>
#include <vector>

namespace evocat {

/// \brief Shannon entropy (bits) of a discrete distribution.
///
/// `probs` need not be normalized; zero entries are skipped. Returns 0 for an
/// empty or all-zero input.
double Entropy(const std::vector<double>& probs);

/// \brief Entropy (bits) of the normalized histogram of `counts`.
double EntropyFromCounts(const std::vector<double>& counts);

/// \brief Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// \brief Population variance; 0 for fewer than two elements.
double Variance(const std::vector<double>& xs);

/// \brief Population standard deviation.
double StdDev(const std::vector<double>& xs);

/// \brief Minimum; +inf for empty input.
double Min(const std::vector<double>& xs);

/// \brief Maximum; -inf for empty input.
double Max(const std::vector<double>& xs);

/// \brief Linear-interpolated percentile `q` in [0, 100]; 0 for empty input.
double Percentile(std::vector<double> xs, double q);

/// \brief Clamps `x` into [lo, hi].
double Clamp(double x, double lo, double hi);

/// \brief x * log2(x) with the 0 * log 0 = 0 convention.
double XLogX(double x);

/// \brief True when |a - b| <= tol.
bool NearlyEqual(double a, double b, double tol = 1e-9);

}  // namespace evocat

#endif  // EVOCAT_COMMON_MATH_UTILS_H_
