/// \file result.h
/// \brief `Result<T>`: a value or the `Status` explaining why there is none.

#ifndef EVOCAT_COMMON_RESULT_H_
#define EVOCAT_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace evocat {

/// \brief Either a `T` (success) or a non-OK `Status` (failure).
///
/// Mirrors `arrow::Result`. Construction from a `T` yields a success value;
/// construction from a non-OK `Status` yields a failure. Constructing from an
/// OK status is a programming error and is converted to an Internal error.
template <typename T>
class Result {
 public:
  /// Success.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Failure; `status` must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from an OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief The failure status, or OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// \brief Borrow the value; requires `ok()`.
  const T& ValueOrDie() const& {
    DieIfError();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    DieIfError();
    return std::get<T>(repr_);
  }
  /// \brief Move the value out; requires `ok()`.
  T ValueOrDie() && {
    DieIfError();
    return std::move(std::get<T>(repr_));
  }

  /// \brief Shorthand aliases matching Arrow naming.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// \brief The value, or `fallback` on failure.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  void DieIfError() const {
    if (!ok()) {
      EVOCAT_LOG(ERROR) << "Fatal: ValueOrDie on error result: "
                        << std::get<Status>(repr_).ToString();
      std::abort();
    }
  }

  std::variant<Status, T> repr_;
};

/// \brief Assigns the value of a `Result` expression or propagates its error.
///
/// Usage: `EVOCAT_ASSIGN_OR_RETURN(auto ds, Dataset::FromCsv(path));`
#define EVOCAT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).ValueOrDie()

#define EVOCAT_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define EVOCAT_ASSIGN_OR_RETURN_NAME(x, y) EVOCAT_ASSIGN_OR_RETURN_CONCAT(x, y)

#define EVOCAT_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  EVOCAT_ASSIGN_OR_RETURN_IMPL(                                              \
      EVOCAT_ASSIGN_OR_RETURN_NAME(_evocat_result_, __LINE__), lhs, rexpr)

}  // namespace evocat

#endif  // EVOCAT_COMMON_RESULT_H_
