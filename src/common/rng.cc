#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace evocat {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextU64());
  }
  // Rejection sampling: draw until the value falls below the largest
  // multiple of `range`, guaranteeing uniformity.
  uint64_t limit = UINT64_MAX - (UINT64_MAX % range + 1) % range;
  uint64_t draw;
  do {
    draw = NextU64();
  } while (draw > limit);
  return lo + static_cast<int64_t>(draw % range);
}

double Rng::UniformDouble() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Gaussian() {
  // Box–Muller without caching to keep the stream position deterministic.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  // Floating-point boundary: return the last index with non-zero weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

size_t Rng::Zipf(size_t n, double s) {
  assert(n > 0);
  std::vector<double> weights(n);
  for (size_t k = 0; k < n; ++k) {
    weights[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
  }
  return WeightedIndex(weights);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Partial Fisher–Yates over an index vector.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + UniformIndex(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace evocat
