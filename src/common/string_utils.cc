#include "common/string_utils.h"

#include <cstdarg>
#include <cstdio>

namespace evocat {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitSkipEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& field : Split(s, sep)) {
    if (!field.empty()) out.push_back(std::move(field));
  }
  return out;
}

std::vector<std::string> SplitCsvLine(std::string_view line, char sep) {
  std::vector<std::string> out;
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
    } else if (c == sep) {
      out.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  out.push_back(std::move(field));
  return out;
}

std::string Join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.push_back(sep);
    out += parts[i];
  }
  return out;
}

std::string CsvEscape(const std::string& field, char sep) {
  bool needs_quotes = field.find(sep) != std::string::npos ||
                      field.find('"') != std::string::npos ||
                      field.find('\n') != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return std::string(s.substr(b, e - b));
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

}  // namespace evocat
