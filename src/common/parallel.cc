#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/task_scheduler.h"

namespace evocat {

namespace {

// Nested ParallelFor calls run serially: measures parallelize internally,
// and batch evaluation parallelizes over individuals — without this guard
// the two levels would multiply into heavy oversubscription.
thread_local bool t_in_parallel_region = false;

/// Persistent worker pool. ParallelFor is called thousands of times per
/// second from the GA's fitness evaluations; spawning threads per call costs
/// more than the loops themselves, so workers are created once and woken per
/// region. Concurrent regions (e.g. the engine evaluating two offspring on
/// two threads, each fanning out) are serialized on `region_mutex_` — each
/// region still uses the whole pool.
class Pool {
 public:
  static Pool& Instance() {
    static Pool* pool = new Pool();  // leaked deliberately: lives to exit
    return *pool;
  }

  void Run(int64_t begin, int64_t end, const std::function<void(int64_t)>& fn) {
    std::lock_guard<std::mutex> region_guard(region_mutex_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      fn_ = &fn;
      next_.store(begin, std::memory_order_relaxed);
      end_ = end;
      chunk_ = std::max<int64_t>(
          1, (end - begin) / (static_cast<int64_t>(workers_.size() + 1) * 8));
      pending_ = static_cast<int>(workers_.size());
      ++generation_;
    }
    wake_.notify_all();
    Process(fn);  // the calling thread participates
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return pending_ == 0; });
    fn_ = nullptr;
  }

 private:
  Pool() {
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw <= 0) hw = 4;
    for (int i = 0; i < hw - 1; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
      workers_.back().detach();
    }
  }

  void WorkerLoop() {
    t_in_parallel_region = true;
    uint64_t seen = 0;
    while (true) {
      const std::function<void(int64_t)>* fn = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] { return generation_ != seen; });
        seen = generation_;
        fn = fn_;
      }
      if (fn != nullptr) Process(*fn);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_ == 0) done_.notify_all();
      }
    }
  }

  void Process(const std::function<void(int64_t)>& fn) {
    bool was_nested = t_in_parallel_region;
    t_in_parallel_region = true;
    while (true) {
      int64_t start = next_.fetch_add(chunk_, std::memory_order_relaxed);
      if (start >= end_) break;
      int64_t stop = std::min(end_, start + chunk_);
      for (int64_t i = start; i < stop; ++i) fn(i);
    }
    t_in_parallel_region = was_nested;
  }

  std::mutex region_mutex_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<std::thread> workers_;
  const std::function<void(int64_t)>* fn_ = nullptr;
  std::atomic<int64_t> next_{0};
  int64_t end_ = 0;
  int64_t chunk_ = 1;
  int pending_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn, int num_threads) {
  int64_t count = end - begin;
  if (count <= 0) return;
  if (num_threads == 1 || count < 2) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // On a task-scheduler worker (batch jobs, the evocatd daemon) the loop is
  // split into chunks that idle workers steal; with every worker busy it
  // degenerates to the serial loop. Either way the iteration set and its
  // output slots are identical, so results do not depend on the route.
  if (num_threads <= 0 && TaskScheduler::OnWorkerThread()) {
    TaskScheduler::Current()->ParallelForOnWorker(begin, end, fn);
    return;
  }
  if (t_in_parallel_region) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  if (num_threads > 1) {
    // Explicit small worker count (test/diagnostic path): spawn directly.
    int workers = static_cast<int>(std::min<int64_t>(num_threads, count));
    std::atomic<int64_t> next{begin};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&]() {
        t_in_parallel_region = true;
        while (true) {
          int64_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= end) break;
          fn(i);
        }
      });
    }
    for (auto& t : threads) t.join();
    return;
  }
  Pool::Instance().Run(begin, end, fn);
}

}  // namespace evocat
