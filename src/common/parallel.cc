#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/task_scheduler.h"

namespace evocat {

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn, int num_threads) {
  int64_t count = end - begin;
  if (count <= 0) return;
  if (num_threads == 1 || count < 2) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  if (num_threads > 1) {
    // Explicit small worker count (test/diagnostic path): spawn directly.
    int workers = static_cast<int>(std::min<int64_t>(num_threads, count));
    std::atomic<int64_t> next{begin};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&]() {
        while (true) {
          int64_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= end) break;
          fn(i);
        }
      });
    }
    for (auto& t : threads) t.join();
    return;
  }
  // Every implicit loop runs on one process-wide work-stealing scheduler.
  // On a scheduler worker (batch jobs, the evocatd daemon, an enclosing
  // ParallelFor chunk) the range splits into chunks that idle workers steal;
  // elsewhere the chunks are injected into the shared queue with the caller
  // participating. Nested regions therefore fan out across whatever workers
  // are idle instead of serializing. Either way the iteration set and its
  // output slots are identical, so results do not depend on the route.
  if (TaskScheduler::OnWorkerThread()) {
    TaskScheduler::Current()->ParallelForOnWorker(begin, end, fn);
    return;
  }
  TaskScheduler::Shared().ParallelForShared(begin, end, fn);
}

}  // namespace evocat
