/// \file string_utils.h
/// \brief Minimal string helpers (CSV parsing support, joins, formatting).

#ifndef EVOCAT_COMMON_STRING_UTILS_H_
#define EVOCAT_COMMON_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

namespace evocat {

/// \brief Splits `s` on `sep` (no quoting); always yields at least one field.
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief Splits `s` on `sep` and drops empty fields (CLI name lists:
/// "a,,b," -> {"a", "b"}).
std::vector<std::string> SplitSkipEmpty(std::string_view s, char sep);

/// \brief Splits one CSV line honouring double-quoted fields with "" escapes.
std::vector<std::string> SplitCsvLine(std::string_view line, char sep = ',');

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, char sep);

/// \brief Quotes a CSV field if it contains the separator, quotes or newlines.
std::string CsvEscape(const std::string& field, char sep = ',');

/// \brief Strips ASCII whitespace from both ends.
std::string Trim(std::string_view s);

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// \brief Lower-cases ASCII characters.
std::string ToLower(std::string_view s);

}  // namespace evocat

#endif  // EVOCAT_COMMON_STRING_UTILS_H_
