/// \file version.h
/// \brief The evocat build version string.
///
/// Surfaced by `/healthz` (so load balancers and rollout tooling can tell
/// which build is serving) and by the tools' startup logs. Bump the minor
/// version when the JobSpec schema or the wire protocol gains fields.

#ifndef EVOCAT_COMMON_VERSION_H_
#define EVOCAT_COMMON_VERSION_H_

namespace evocat {

/// \brief Semantic version of the evocat library and protocol surface.
inline constexpr const char kVersion[] = "0.4.0";

}  // namespace evocat

#endif  // EVOCAT_COMMON_VERSION_H_
