/// \file params.h
/// \brief String-keyed parameter maps for name-based factories.
///
/// The method and measure registries construct implementations from
/// `ParamMap`s — flat string->string maps decoded from a JobSpec's JSON
/// parameter objects. `ParamReader` is the validating accessor every factory
/// uses: typed getters record which keys were consumed, and `Finish()` turns
/// the first type error or any unconsumed (unknown) key into a Status that
/// names the offending field as `<context>.<key>`.

#ifndef EVOCAT_COMMON_PARAMS_H_
#define EVOCAT_COMMON_PARAMS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/status.h"

namespace evocat {

/// \brief Flat parameter map; values are decimal numbers or enum tokens.
using ParamMap = std::map<std::string, std::string>;

/// \brief Validating typed reader over one ParamMap.
///
/// ```
/// ParamReader reader("pram", params);
/// double retain = reader.GetDouble("retain", 0.8);
/// EVOCAT_RETURN_NOT_OK(reader.Finish());  // unknown keys, parse errors
/// ```
class ParamReader {
 public:
  ParamReader(std::string context, const ParamMap& params)
      : context_(std::move(context)), params_(&params) {}

  /// Typed getters; a missing key yields the default, a malformed value is
  /// recorded and surfaced by Finish().
  int64_t GetInt(const std::string& key, int64_t default_value);
  double GetDouble(const std::string& key, double default_value);
  std::string GetString(const std::string& key, std::string default_value);

  /// \brief True when `key` is present in the map.
  bool Has(const std::string& key) const { return params_->count(key) > 0; }

  /// \brief First recorded error, or Invalid naming any unconsumed key.
  Status Finish() const;

 private:
  void RecordError(const std::string& key, const std::string& detail);

  std::string context_;
  const ParamMap* params_;
  std::set<std::string> consumed_;
  Status status_;  // first error wins
};

/// \brief Parses a full decimal integer ("42", "-3"); no trailing junk.
Status ParseInt64(const std::string& text, int64_t* out);
/// \brief Parses a full floating-point literal; no trailing junk.
Status ParseDouble(const std::string& text, double* out);
/// \brief Formats `value` with the shortest representation that re-parses to
/// the identical double (stable across dump/parse round trips).
std::string FormatDouble(double value);

}  // namespace evocat

#endif  // EVOCAT_COMMON_PARAMS_H_
