#include "common/flags.h"

#include <cstdlib>
#include <sstream>

#include "common/string_utils.h"

namespace evocat {

namespace {

Status ParseInt(const std::string& text, int64_t* out) {
  char* end = nullptr;
  errno = 0;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    return Status::Invalid("not an integer: '", text, "'");
  }
  *out = value;
  return Status::OK();
}

Status ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    return Status::Invalid("not a number: '", text, "'");
  }
  *out = value;
  return Status::OK();
}

Status ParseBool(const std::string& text, bool* out) {
  std::string lower = ToLower(text);
  if (lower == "true" || lower == "1" || lower == "yes" || lower.empty()) {
    *out = true;
    return Status::OK();
  }
  if (lower == "false" || lower == "0" || lower == "no") {
    *out = false;
    return Status::OK();
  }
  return Status::Invalid("not a boolean: '", text, "'");
}

}  // namespace

void FlagParser::AddString(const std::string& name,
                           const std::string& description, std::string* out) {
  Flag flag;
  flag.name = name;
  flag.description = description;
  flag.default_repr = *out;
  flag.set = [out](const std::string& text) {
    *out = text;
    return Status::OK();
  };
  Register(std::move(flag));
}

void FlagParser::AddInt(const std::string& name, const std::string& description,
                        int64_t* out) {
  Flag flag;
  flag.name = name;
  flag.description = description;
  flag.default_repr = std::to_string(*out);
  flag.set = [out](const std::string& text) { return ParseInt(text, out); };
  Register(std::move(flag));
}

void FlagParser::AddDouble(const std::string& name,
                           const std::string& description, double* out) {
  Flag flag;
  flag.name = name;
  flag.description = description;
  flag.default_repr = StrFormat("%g", *out);
  flag.set = [out](const std::string& text) { return ParseDouble(text, out); };
  Register(std::move(flag));
}

void FlagParser::AddBool(const std::string& name, const std::string& description,
                         bool* out) {
  Flag flag;
  flag.name = name;
  flag.description = description;
  flag.default_repr = *out ? "true" : "false";
  flag.is_bool = true;
  flag.set = [out](const std::string& text) { return ParseBool(text, out); };
  Register(std::move(flag));
}

FlagParser::Flag* FlagParser::Find(const std::string& name) {
  for (auto& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return Status::OK();
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name = body;
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    }
    Flag* flag = Find(name);
    if (flag == nullptr) {
      return Status::Invalid("unknown flag --", name, "\n", Usage());
    }
    if (!has_value) {
      if (flag->is_bool) {
        value = "true";  // bare boolean
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::Invalid("flag --", name, " needs a value");
      }
    }
    Status status = flag->set(value);
    if (!status.ok()) {
      return Status::Invalid("flag --", name, ": ", status.message());
    }
  }
  return Status::OK();
}

std::string FlagParser::Usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\nflags:\n";
  for (const auto& flag : flags_) {
    out << "  --" << flag.name;
    if (!flag.is_bool) out << "=<value>";
    out << "\n      " << flag.description << " (default: "
        << (flag.default_repr.empty() ? "\"\"" : flag.default_repr) << ")\n";
  }
  out << "  --help\n      show this message\n";
  return out.str();
}

}  // namespace evocat
