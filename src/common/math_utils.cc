#include "common/math_utils.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace evocat {

double Entropy(const std::vector<double>& probs) {
  double total = 0.0;
  for (double p : probs) total += p;
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double p : probs) {
    if (p <= 0.0) continue;
    double q = p / total;
    h -= q * std::log2(q);
  }
  return h;
}

double EntropyFromCounts(const std::vector<double>& counts) {
  return Entropy(counts);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Min(const std::vector<double>& xs) {
  double m = std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::min(m, x);
  return m;
}

double Max(const std::vector<double>& xs) {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  return m;
}

double Percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  q = Clamp(q, 0.0, 100.0);
  double pos = q / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Clamp(double x, double lo, double hi) {
  return std::max(lo, std::min(hi, x));
}

double XLogX(double x) { return x <= 0.0 ? 0.0 : x * std::log2(x); }

bool NearlyEqual(double a, double b, double tol) {
  return std::fabs(a - b) <= tol;
}

}  // namespace evocat
