/// \file timer.h
/// \brief Wall-clock stopwatch used by the experiment timing tables.

#ifndef EVOCAT_COMMON_TIMER_H_
#define EVOCAT_COMMON_TIMER_H_

#include <chrono>

namespace evocat {

/// \brief Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// \brief Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// \brief Seconds elapsed since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// \brief Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace evocat

#endif  // EVOCAT_COMMON_TIMER_H_
