/// \file logging.h
/// \brief Leveled stderr logging with a process-wide threshold.
///
/// Usage: `EVOCAT_LOG(INFO) << "generation " << g << " best=" << best;`
/// Experiments default to WARNING to keep bench output machine-readable.
///
/// Two output formats share one sink (stderr): the human `[LEVEL file:line]`
/// text default, and a structured mode (`SetLogFormat(LogFormat::kJson)`,
/// evocatd `--log-json`) emitting one JSON object per line with `ts`,
/// `level`, `component`, `msg`, and `job_id` when a `ScopedLogJobId` is
/// active on the logging thread.

#ifndef EVOCAT_COMMON_LOGGING_H_
#define EVOCAT_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace evocat {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Sets the minimum level that is emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

enum class LogFormat { kText = 0, kJson = 1 };

/// \brief Selects text (default) or one-JSON-object-per-line output.
void SetLogFormat(LogFormat format);
LogFormat GetLogFormat();

/// \brief Tags every log line from the current thread with a job id for the
/// scope's lifetime (evocatd wraps each job execution in one). Nests: the
/// previous id is restored on destruction.
class ScopedLogJobId {
 public:
  explicit ScopedLogJobId(std::string job_id);
  ~ScopedLogJobId();

  ScopedLogJobId(const ScopedLogJobId&) = delete;
  ScopedLogJobId& operator=(const ScopedLogJobId&) = delete;

 private:
  std::string previous_;
};

namespace internal {

/// \brief The job id set by the innermost `ScopedLogJobId` on this thread
/// (empty when none).
const std::string& CurrentLogJobId();

/// \brief Accumulates one log line and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace evocat

#define EVOCAT_LOG_DEBUG ::evocat::LogLevel::kDebug
#define EVOCAT_LOG_INFO ::evocat::LogLevel::kInfo
#define EVOCAT_LOG_WARNING ::evocat::LogLevel::kWarning
#define EVOCAT_LOG_ERROR ::evocat::LogLevel::kError

#define EVOCAT_LOG(severity) \
  ::evocat::internal::LogMessage(EVOCAT_LOG_##severity, __FILE__, __LINE__)

#endif  // EVOCAT_COMMON_LOGGING_H_
