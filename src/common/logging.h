/// \file logging.h
/// \brief Leveled stderr logging with a process-wide threshold.
///
/// Usage: `EVOCAT_LOG(INFO) << "generation " << g << " best=" << best;`
/// Experiments default to WARNING to keep bench output machine-readable.

#ifndef EVOCAT_COMMON_LOGGING_H_
#define EVOCAT_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace evocat {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Sets the minimum level that is emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// \brief Accumulates one log line and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace evocat

#define EVOCAT_LOG_DEBUG ::evocat::LogLevel::kDebug
#define EVOCAT_LOG_INFO ::evocat::LogLevel::kInfo
#define EVOCAT_LOG_WARNING ::evocat::LogLevel::kWarning
#define EVOCAT_LOG_ERROR ::evocat::LogLevel::kError

#define EVOCAT_LOG(severity) \
  ::evocat::internal::LogMessage(EVOCAT_LOG_##severity, __FILE__, __LINE__)

#endif  // EVOCAT_COMMON_LOGGING_H_
