#include "common/task_scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace evocat {

namespace {

/// Set while a thread runs a scheduler's worker loop (or executes a stolen
/// chunk); lets ParallelFor route loops back into the owning scheduler.
thread_local TaskScheduler* t_scheduler = nullptr;
thread_local int t_worker_index = -1;

/// Registry handles, resolved once. The gauges aggregate across every
/// scheduler instance (tests build private ones); the process-wide numbers
/// are what /healthz and /metrics report.
obs::Counter* StealsCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "evocat_scheduler_steals_total",
      "Chunk subtasks executed by a worker other than their owner.");
  return counter;
}

obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge(
      "evocat_scheduler_queue_depth",
      "Tasks and chunk subtasks currently queued and not yet claimed.");
  return gauge;
}

obs::Gauge* WorkersGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge(
      "evocat_scheduler_workers",
      "Worker threads across all live schedulers.");
  return gauge;
}

obs::Histogram* TaskSecondsHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "evocat_scheduler_task_seconds",
          "Wall time per claimed task or chunk; the _sum is total busy "
          "worker-seconds (utilization numerator).");
  return histogram;
}

}  // namespace

TaskScheduler::TaskScheduler(int num_threads) {
  int count = num_threads;
  if (count <= 0) {
    count = static_cast<int>(std::thread::hardware_concurrency());
    if (count <= 0) count = 4;
  }
  worker_state_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    worker_state_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  WorkersGauge()->Add(count);
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
  WorkersGauge()->Add(-static_cast<int64_t>(workers_.size()));
}

TaskScheduler& TaskScheduler::Shared() {
  // Leaked deliberately: worker threads must outlive every static destructor.
  static TaskScheduler* shared = new TaskScheduler();
  return *shared;
}

bool TaskScheduler::OnWorkerThread() { return t_scheduler != nullptr; }

TaskScheduler* TaskScheduler::Current() { return t_scheduler; }

void TaskScheduler::Submit(Group* group, std::function<void()> fn) {
  if (group != nullptr) {
    group->pending_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    global_queue_.push_back(Task{group, std::move(fn)});
  }
  QueueDepthGauge()->Increment();
  wake_.notify_one();
}

void TaskScheduler::Wait(Group* group) {
  if (group == nullptr) return;
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] {
    return group->pending_.load(std::memory_order_acquire) == 0;
  });
}

bool TaskScheduler::PopTaskLocked(int thief, Task* task) {
  Worker& own = *worker_state_[static_cast<size_t>(thief)];
  if (!own.deque.empty()) {
    *task = std::move(own.deque.back());
    own.deque.pop_back();
    QueueDepthGauge()->Decrement();
    return true;
  }
  if (!global_queue_.empty()) {
    *task = std::move(global_queue_.front());
    global_queue_.pop_front();
    QueueDepthGauge()->Decrement();
    return true;
  }
  // Steal the oldest chunk of a sibling; oldest-first keeps the victim's
  // newest (cache-warm) chunks with their owner.
  for (size_t offset = 1; offset < worker_state_.size(); ++offset) {
    size_t victim = (static_cast<size_t>(thief) + offset) % worker_state_.size();
    Worker& other = *worker_state_[victim];
    if (!other.deque.empty()) {
      *task = std::move(other.deque.front());
      other.deque.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
      StealsCounter()->Increment();
      QueueDepthGauge()->Decrement();
      return true;
    }
  }
  return false;
}

void TaskScheduler::RunTask(Task* task) {
  if (obs::MetricsEnabled()) {
    auto start = std::chrono::steady_clock::now();
    task->fn();
    TaskSecondsHistogram()->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  } else {
    task->fn();
  }
  FinishTask(*task);
}

void TaskScheduler::FinishTask(const Task& task) {
  if (task.group == nullptr) return;
  bool completed =
      task.group->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1;
  if (completed) {
    // Lock pairs the notification with Wait's predicate check.
    std::lock_guard<std::mutex> lock(mutex_);
    done_.notify_all();
  }
}

void TaskScheduler::WorkerLoop(int index) {
  t_scheduler = this;
  t_worker_index = index;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    Task task;
    if (PopTaskLocked(index, &task)) {
      lock.unlock();
      RunTask(&task);
      lock.lock();
      continue;
    }
    if (stop_) return;
    idle_workers_.fetch_add(1, std::memory_order_release);
    wake_.wait(lock);
    idle_workers_.fetch_sub(1, std::memory_order_release);
  }
}

void TaskScheduler::ParallelForOnWorker(
    int64_t begin, int64_t end, const std::function<void(int64_t)>& fn) {
  int64_t count = end - begin;
  if (count <= 0) return;
  const int worker = t_worker_index;
  // Serial fast paths: tiny ranges, foreign threads, and — the common case in
  // a saturated batch — no idle worker to steal anything.
  if (count < 2 || t_scheduler != this ||
      idle_workers_.load(std::memory_order_acquire) == 0) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  int64_t chunk = std::max<int64_t>(
      1, count / (static_cast<int64_t>(worker_state_.size()) * 4));
  Group group;
  Worker& own = *worker_state_[static_cast<size_t>(worker)];
  int64_t chunks = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int64_t start = begin; start < end; start += chunk) {
      int64_t stop = std::min(end, start + chunk);
      group.pending_.fetch_add(1, std::memory_order_relaxed);
      own.deque.push_back(Task{&group, [&fn, start, stop] {
                                 for (int64_t i = start; i < stop; ++i) fn(i);
                               }});
      ++chunks;
    }
  }
  QueueDepthGauge()->Add(chunks);
  wake_.notify_all();

  // The owner drains its own chunks newest-first; thieves take them
  // oldest-first. Once every chunk is claimed the owner sleeps until the
  // last thief reports in.
  std::unique_lock<std::mutex> lock(mutex_);
  while (group.pending_.load(std::memory_order_acquire) > 0) {
    if (!own.deque.empty() && own.deque.back().group == &group) {
      Task task = std::move(own.deque.back());
      own.deque.pop_back();
      QueueDepthGauge()->Decrement();
      lock.unlock();
      RunTask(&task);
      lock.lock();
      continue;
    }
    done_.wait(lock, [&] {
      return group.pending_.load(std::memory_order_acquire) == 0;
    });
  }
}

void TaskScheduler::ParallelForShared(
    int64_t begin, int64_t end, const std::function<void(int64_t)>& fn) {
  int64_t count = end - begin;
  if (count <= 0) return;
  if (t_scheduler == this && t_worker_index >= 0) {
    ParallelForOnWorker(begin, end, fn);
    return;
  }
  if (count < 2) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  int64_t chunk = std::max<int64_t>(
      1, count / (static_cast<int64_t>(worker_state_.size()) * 4));
  Group group;
  int64_t chunks = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int64_t start = begin; start < end; start += chunk) {
      int64_t stop = std::min(end, start + chunk);
      group.pending_.fetch_add(1, std::memory_order_relaxed);
      global_queue_.push_back(Task{&group, [&fn, start, stop] {
                                     for (int64_t i = start; i < stop; ++i) {
                                       fn(i);
                                     }
                                   }});
      ++chunks;
    }
  }
  QueueDepthGauge()->Add(chunks);
  wake_.notify_all();

  // The caller participates: it drains its own chunks from the global queue
  // (skipping foreign tasks) and sleeps only once every remaining chunk is
  // running on a worker.
  std::unique_lock<std::mutex> lock(mutex_);
  while (group.pending_.load(std::memory_order_acquire) > 0) {
    auto it = std::find_if(
        global_queue_.begin(), global_queue_.end(),
        [&group](const Task& task) { return task.group == &group; });
    if (it != global_queue_.end()) {
      Task task = std::move(*it);
      global_queue_.erase(it);
      QueueDepthGauge()->Decrement();
      lock.unlock();
      RunTask(&task);
      lock.lock();
      continue;
    }
    done_.wait(lock, [&] {
      return group.pending_.load(std::memory_order_acquire) == 0;
    });
  }
}

}  // namespace evocat
