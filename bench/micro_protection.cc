// Micro-benchmarks for the six masking methods on paper-size files.

#include <benchmark/benchmark.h>

#include <map>

#include "datagen/generator.h"
#include "protection/coding.h"
#include "protection/global_recoding.h"
#include "protection/microaggregation.h"
#include "protection/pram.h"
#include "protection/rank_swapping.h"

namespace {

using namespace evocat;

struct Fixture {
  Dataset original;
  std::vector<int> attrs;
};

Fixture& SharedFixture(int64_t rows) {
  static auto* fixtures = new std::map<int64_t, Fixture*>();
  auto it = fixtures->find(rows);
  if (it == fixtures->end()) {
    auto profile = datagen::HousingProfile();
    profile.num_records = rows;
    auto* fixture = new Fixture;
    fixture->original = datagen::Generate(profile, 77).ValueOrDie();
    fixture->attrs =
        datagen::ProtectedAttributeIndices(profile, fixture->original)
            .ValueOrDie();
    it = fixtures->emplace(rows, fixture).first;
  }
  return *it->second;
}

template <typename MethodT>
void RunMethod(benchmark::State& state, MethodT method) {
  Fixture& fixture = SharedFixture(state.range(0));
  Rng rng(9);
  for (auto _ : state) {
    auto masked = method.Protect(fixture.original, fixture.attrs, &rng);
    benchmark::DoNotOptimize(masked.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_MicroaggregationUnivariate(benchmark::State& state) {
  RunMethod(state, protection::Microaggregation(
                       5, protection::MicroOrdering::kUnivariate));
}
void BM_MicroaggregationMultivariate(benchmark::State& state) {
  RunMethod(state, protection::Microaggregation(
                       5, protection::MicroOrdering::kSortBySum));
}
void BM_BottomCoding(benchmark::State& state) {
  RunMethod(state, protection::BottomCoding(0.25));
}
void BM_TopCoding(benchmark::State& state) {
  RunMethod(state, protection::TopCoding(0.25));
}
void BM_GlobalRecoding(benchmark::State& state) {
  RunMethod(state, protection::GlobalRecoding(3));
}
void BM_RankSwapping(benchmark::State& state) {
  RunMethod(state, protection::RankSwapping(10.0));
}
void BM_Pram(benchmark::State& state) {
  RunMethod(state, protection::Pram(0.6));
}

BENCHMARK(BM_MicroaggregationUnivariate)->Arg(1000)->Arg(4000);
BENCHMARK(BM_MicroaggregationMultivariate)->Arg(1000)->Arg(4000);
BENCHMARK(BM_BottomCoding)->Arg(1000)->Arg(4000);
BENCHMARK(BM_TopCoding)->Arg(1000)->Arg(4000);
BENCHMARK(BM_GlobalRecoding)->Arg(1000)->Arg(4000);
BENCHMARK(BM_RankSwapping)->Arg(1000)->Arg(4000);
BENCHMARK(BM_Pram)->Arg(1000)->Arg(4000);

}  // namespace

BENCHMARK_MAIN();
