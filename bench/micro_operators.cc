// Micro-benchmarks for the genetic machinery: mutation, crossover, selection
// draws and population sorting. The paper reports ~0.02 s of non-fitness
// work per generation; these show the C++ machinery is far below even that.

#include <benchmark/benchmark.h>

#include <map>

#include "core/operators.h"
#include "core/selection.h"
#include "datagen/generator.h"

namespace {

using namespace evocat;

Dataset& SharedGenome(int64_t rows) {
  static auto* genomes = new std::map<int64_t, Dataset*>();
  auto it = genomes->find(rows);
  if (it == genomes->end()) {
    auto profile = datagen::AdultProfile();
    profile.num_records = rows;
    it = genomes
             ->emplace(rows, new Dataset(
                                 datagen::Generate(profile, 55).ValueOrDie()))
             .first;
  }
  return *it->second;
}

void BM_Mutation(benchmark::State& state) {
  Dataset genome = SharedGenome(state.range(0)).Clone();
  core::GenomeLayout layout({0, 1, 2}, genome.num_rows());
  core::MutationOperator mutate(layout);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mutate.Apply(&genome, &rng));
  }
}

void BM_Crossover(benchmark::State& state) {
  const Dataset& x = SharedGenome(state.range(0));
  Dataset y = x.Clone();
  core::GenomeLayout layout({0, 1, 2}, x.num_rows());
  core::CrossoverOperator cross(layout);
  Rng rng(2);
  Dataset z1, z2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cross.Apply(x, y, &z1, &z2, &rng));
  }
  state.SetItemsProcessed(state.iterations() * layout.Length());
}

void BM_GenomeClone(benchmark::State& state) {
  const Dataset& genome = SharedGenome(state.range(0));
  for (auto _ : state) {
    Dataset copy = genome.Clone();
    benchmark::DoNotOptimize(copy.num_rows());
  }
}

void BM_SelectionDraw(benchmark::State& state) {
  std::vector<double> scores;
  Rng seed_rng(3);
  for (int64_t i = 0; i < state.range(0); ++i) {
    scores.push_back(20.0 + 40.0 * seed_rng.UniformDouble());
  }
  core::SelectionPolicy policy(core::SelectionStrategy::kInverseScore);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.Select(scores, &rng));
  }
}

BENCHMARK(BM_Mutation)->Arg(1000);
BENCHMARK(BM_Crossover)->Arg(1000);
BENCHMARK(BM_GenomeClone)->Arg(1000);
BENCHMARK(BM_SelectionDraw)->Arg(110)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
