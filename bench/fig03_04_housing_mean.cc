// Reproduces Figures 3-4: Housing dataset, fitness Eq.1 (mean) of Marés & Torra, PAIS/EDBT 2012.
// See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for results.

#include "bench_util.h"

int main() {
  evocat::bench::FigureSpec spec;
  spec.title = "Figures 3-4: Housing dataset, fitness Eq.1 (mean)";
  spec.dataset = "housing";
  spec.aggregation = evocat::metrics::ScoreAggregation::kMean;
  spec.remove_best_fraction = 0.0;
  spec.generations = 2000;
  spec.paper_notes =
      "max 36.96->36.14 (2.22%), mean 29.79->25.25 (15.24%), min 20.36->20.12 (1.18%)";
  return evocat::bench::RunFigureBench(spec);
}
