// Reproduces Figures 17+19: Flare, Eq.2 (max), best 5% removed of Marés & Torra, PAIS/EDBT 2012.
// See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for results.

#include "bench_util.h"

int main() {
  evocat::bench::FigureSpec spec;
  spec.title = "Figures 17+19: Flare, Eq.2 (max), best 5% removed";
  spec.dataset = "flare";
  spec.aggregation = evocat::metrics::ScoreAggregation::kMax;
  spec.remove_best_fraction = 0.05;
  spec.generations = 2000;
  spec.paper_notes =
      "reaches min 32.96, 1.33 points above the full-population min (31.63)";
  return evocat::bench::RunFigureBench(spec);
}
