// Reproduces the paper's §3.2 in-text timing table: average wall time per
// generation split by operator (mutation vs crossover) and by phase (fitness
// evaluation vs everything else).
//
// Paper (Java-era, 2012 hardware): mutation generations averaged 120.34 s
// (120.32 s fitness), crossover generations 242.48 s (242.46 s fitness), and
// the non-fitness remainder was 0.02 s. The *shape* to reproduce: fitness
// dominates (>99% of generation time) and crossover costs ~2x mutation (two
// offspring evaluated instead of one). Absolute numbers are ~4 orders of
// magnitude smaller here (C++, bound measures, modern CPU).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/logging.h"
#include "experiments/report.h"

using namespace evocat;

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("# Timing table (paper 3.2 in-text numbers)\n");
  std::printf("# paper: mutation 120.34 s/gen (fitness 120.32), crossover "
              "242.48 s/gen (fitness 242.46), rest 0.02 s\n");
  std::printf("# expected shape: fitness share > 0.99, crossover/mutation "
              "ratio ~ 2\n");

  // Serial offspring evaluation so crossover's 2-evaluation cost is visible
  // in wall time exactly as in the paper's sequential implementation.
  auto dataset_case = experiments::CaseByName("flare").ValueOrDie();
  auto options =
      bench::BenchOptions(metrics::ScoreAggregation::kMax, /*generations=*/300);
  auto result = experiments::RunExperiment(dataset_case, options);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  const auto& experiment = result.ValueOrDie();
  experiments::PrintTimingSummary(experiment, std::cout);

  const auto& stats = experiment.stats;
  auto avg = [](double total, int64_t count) {
    return count > 0 ? total / static_cast<double>(count) : 0.0;
  };
  double mutation_avg =
      avg(stats.mutation_total_seconds, stats.mutation_generations);
  double crossover_avg =
      avg(stats.crossover_total_seconds, stats.crossover_generations);
  std::printf("# crossover/mutation generation cost ratio: %.2f (paper: %.2f)\n",
              mutation_avg > 0 ? crossover_avg / mutation_avg : 0.0,
              242.48 / 120.34);
  double fitness_share =
      (stats.mutation_eval_seconds + stats.crossover_eval_seconds) /
      (stats.mutation_total_seconds + stats.crossover_total_seconds);
  std::printf("# fitness share of generation time: %.4f (paper: %.4f)\n",
              fitness_share, (120.32 + 242.46) / (120.34 + 242.48));
  return 0;
}
