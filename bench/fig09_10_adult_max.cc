// Reproduces Figures 9-10: Adult dataset, fitness Eq.2 (max) of Marés & Torra, PAIS/EDBT 2012.
// See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for results.

#include "bench_util.h"

int main() {
  evocat::bench::FigureSpec spec;
  spec.title = "Figures 9-10: Adult dataset, fitness Eq.2 (max)";
  spec.dataset = "adult";
  spec.aggregation = evocat::metrics::ScoreAggregation::kMax;
  spec.remove_best_fraction = 0.0;
  spec.generations = 2000;
  spec.paper_notes =
      "max 72.19->64.38 (10.82%), mean 47.05->38.57 (18.02%), min 30.70->30.28 (1.34%)";
  return evocat::bench::RunFigureBench(spec);
}
