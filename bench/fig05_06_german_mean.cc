// Reproduces Figures 5-6: German dataset, fitness Eq.1 (mean) of Marés & Torra, PAIS/EDBT 2012.
// See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for results.

#include "bench_util.h"

int main() {
  evocat::bench::FigureSpec spec;
  spec.title = "Figures 5-6: German dataset, fitness Eq.1 (mean)";
  spec.dataset = "german";
  spec.aggregation = evocat::metrics::ScoreAggregation::kMean;
  spec.remove_best_fraction = 0.0;
  spec.generations = 2000;
  spec.paper_notes =
      "max 36.59->31.74 (13.25%), mean 29.37->28.91 (1.57%), min 26.68->26.54 (0.52%)";
  return evocat::bench::RunFigureBench(spec);
}
