/// \file bench_util.h
/// \brief Shared driver for the paper-figure reproduction binaries.
///
/// Every `fig*` bench runs one experiment from the paper's §3 and prints:
///   1. a header identifying the paper artifact and the expected shape,
///   2. the dispersion series (initial/final (IL, DR) clouds),
///   3. the evolution series (min/mean/max score per generation),
///   4. a paper-style improvement summary.
/// Output is stdout CSV prefixed with series tags so it can be both read and
/// plotted.

#ifndef EVOCAT_BENCH_BENCH_UTIL_H_
#define EVOCAT_BENCH_BENCH_UTIL_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "experiments/runner.h"

namespace evocat {
namespace bench {

/// \brief Declarative description of one figure-reproduction run.
struct FigureSpec {
  /// e.g. "Figures 1-2: Adult dataset, fitness Eq.1 (mean)".
  std::string title;
  /// Case name: housing | german | flare | adult.
  std::string dataset;
  metrics::ScoreAggregation aggregation = metrics::ScoreAggregation::kMean;
  /// Robustness experiment: fraction of best seeds removed.
  double remove_best_fraction = 0.0;
  int generations = 400;
  /// The paper's reported numbers for this artifact (free text, printed in
  /// the header so paper-vs-measured is visible in the raw output).
  std::string paper_notes;
};

/// \brief Runs the spec and prints all series; returns a process exit code.
int RunFigureBench(const FigureSpec& spec);

/// \brief Shared experiment defaults for bench binaries (fixed seeds).
experiments::ExperimentOptions BenchOptions(metrics::ScoreAggregation aggregation,
                                            int generations);

/// \brief Minimal ordered JSON object writer for machine-readable bench
/// summaries (`BENCH_engine.json`). Keys keep insertion order; values are
/// numbers, strings, or nested objects.
class JsonObject {
 public:
  JsonObject& Add(const std::string& key, double value);
  JsonObject& Add(const std::string& key, int64_t value);
  JsonObject& Add(const std::string& key, const std::string& value);
  JsonObject& Add(const std::string& key, const JsonObject& object);

  /// \brief Serializes with 2-space indentation.
  std::string ToString(int indent = 0) const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// \brief Writes `object` to `path` (overwrites), trailing newline included.
Status WriteJsonFile(const std::string& path, const JsonObject& object);

/// \brief Per-run engine throughput numbers derived from an experiment
/// result — the stable schema tracked in BENCH_engine.json across PRs.
JsonObject EngineThroughputJson(const experiments::ExperimentResult& result);

}  // namespace bench
}  // namespace evocat

#endif  // EVOCAT_BENCH_BENCH_UTIL_H_
