// Reproduces Figures 11-12: Housing dataset, fitness Eq.2 (max) of Marés & Torra, PAIS/EDBT 2012.
// See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for results.

#include "bench_util.h"

int main() {
  evocat::bench::FigureSpec spec;
  spec.title = "Figures 11-12: Housing dataset, fitness Eq.2 (max)";
  spec.dataset = "housing";
  spec.aggregation = evocat::metrics::ScoreAggregation::kMax;
  spec.remove_best_fraction = 0.0;
  spec.generations = 2000;
  spec.paper_notes =
      "max 72.65->69.63 (4.16%), mean 42.32->30.12 (28.83%), min no decrement";
  return evocat::bench::RunFigureBench(spec);
}
